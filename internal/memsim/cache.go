// Package memsim provides the microarchitectural memory-system components
// shared by the CPU and GPU simulators: set-associative caches with LRU
// replacement, a TLB with flush support, and a synthetic address-stream
// generator that turns a trace.Phase's pattern/footprint/reuse descriptor
// into a concrete reference stream.
//
// These components replace the paper's physical memory hierarchies (Xeon
// LLC, T4 L2/TLB). Contention between concurrent applications emerges the
// same way it does in hardware: interleaved streams from different sources
// evict each other's lines from shared structures.
package memsim

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes used throughout the simulators.
const LineSize = 64

// Cache is a set-associative cache with true-LRU replacement. It tracks
// per-source hit/miss statistics so shared caches can attribute interference
// to individual applications. The zero value is not usable; call NewCache.
type Cache struct {
	name     string
	sets     int
	ways     int
	setShift uint
	setMask  uint64
	// tags[set*ways+way] holds the line tag; valid bit is tracked
	// separately so tag 0 is usable.
	tags  []uint64
	valid []bool
	// src[set*ways+way] records which source installed the line, for
	// inter-source eviction accounting.
	src []int
	// lru[set*ways+way] is a per-set logical clock; the smallest value in
	// a set is the LRU way.
	lru   []uint64
	clock uint64

	stats []CacheStats // indexed by source id
	// evictions[victim] counts lines lost to any other source.
	crossEvictions []uint64
}

// CacheStats accumulates per-source access results.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an idle source.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewCache builds a cache of totalBytes capacity and the given
// associativity, serving up to nSources distinct requestors.
func NewCache(name string, totalBytes int64, ways, nSources int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || nSources <= 0 {
		return nil, fmt.Errorf("memsim: invalid cache config %q (bytes=%d ways=%d sources=%d)",
			name, totalBytes, ways, nSources)
	}
	lines := totalBytes / LineSize
	if lines < int64(ways) {
		return nil, fmt.Errorf("memsim: cache %q too small for %d ways", name, ways)
	}
	sets := int(lines) / ways
	// Round sets down to a power of two for mask indexing.
	if sets&(sets-1) != 0 {
		sets = 1 << (bits.Len(uint(sets)) - 1)
	}
	c := &Cache{
		name:           name,
		sets:           sets,
		ways:           ways,
		setShift:       uint(bits.TrailingZeros(uint(LineSize))),
		setMask:        uint64(sets - 1),
		tags:           make([]uint64, sets*ways),
		valid:          make([]bool, sets*ways),
		src:            make([]int, sets*ways),
		lru:            make([]uint64, sets*ways),
		stats:          make([]CacheStats, nSources),
		crossEvictions: make([]uint64, nSources),
	}
	return c, nil
}

// Access looks up addr on behalf of source, installing the line on a miss.
// It returns true on a hit.
func (c *Cache) Access(source int, addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.Len(uint(c.sets-1)))
	base := set * c.ways
	c.clock++
	c.stats[source].Accesses++

	lruWay, lruClock := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < lruClock {
			lruClock = c.lru[i]
			lruWay = w
		}
	}
	// Miss: install over the LRU way.
	c.stats[source].Misses++
	i := base + lruWay
	if c.valid[i] && c.src[i] != source {
		c.crossEvictions[c.src[i]]++
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.src[i] = source
	c.lru[i] = c.clock
	return false
}

// Stats returns the accumulated statistics for source.
func (c *Cache) Stats(source int) CacheStats { return c.stats[source] }

// CrossEvictions returns how many of source's lines were evicted by other
// sources — the direct measure of destructive interference.
func (c *Cache) CrossEvictions(source int) uint64 { return c.crossEvictions[source] }

// Reset clears contents and statistics, keeping the geometry.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	for i := range c.stats {
		c.stats[i] = CacheStats{}
		c.crossEvictions[i] = 0
	}
	c.clock = 0
}

// Sets returns the number of sets (exported for tests).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityBytes returns the rounded capacity actually simulated.
func (c *Cache) CapacityBytes() int64 { return int64(c.sets) * int64(c.ways) * LineSize }
