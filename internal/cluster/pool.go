package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health-probe defaults.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = 1 * time.Second
	// DefaultFailAfter consecutive probe failures eject a replica;
	// DefaultReviveAfter consecutive successes re-admit it. Asymmetric on
	// purpose: ejection should be quick (requests are failing), re-entry
	// slightly sticky (a flapping replica shouldn't churn the ring).
	DefaultFailAfter   = 3
	DefaultReviveAfter = 2
)

// PoolConfig configures replica membership.
type PoolConfig struct {
	// Replicas are the member base URLs (e.g. "http://127.0.0.1:8081");
	// required, order defines identity. Every replica stays on the hash
	// ring permanently — health only decides whether traffic routed to it
	// is diverted to the next ring node — so a recovered replica gets its
	// original keyspace (and its warm cache) back.
	Replicas []string
	// VirtualNodes per replica on the ring; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Client performs health probes; nil means a client bounded by
	// ProbeTimeout.
	Client *http.Client
	// ProbeInterval between health rounds for Start; 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz request; 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// FailAfter / ReviveAfter are the consecutive-probe thresholds; 0
	// means the defaults.
	FailAfter   int
	ReviveAfter int
	// Logf reports membership transitions (ejections, re-admissions);
	// nil discards them.
	Logf func(format string, args ...any)
}

// replicaState tracks one member's health.
type replicaState struct {
	url       string
	healthy   bool
	succ      int // consecutive probe successes
	fail      int // consecutive probe failures (or reported ones)
	lastError string
}

// ReplicaStatus is a point-in-time public view of one member.
type ReplicaStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
}

// Pool is the health-checked membership set: a fixed replica list, a
// consistent-hash ring over all of it, and a health bit per replica that
// probes flip. All methods are safe for concurrent use.
type Pool struct {
	cfg  PoolConfig
	ring *Ring

	mu       sync.Mutex
	replicas []*replicaState

	ejections    int64
	readmissions int64
}

// NewPool validates the config and returns a pool with every replica
// optimistically healthy — a router boots usable before the first probe
// round, and a genuinely dead replica costs FailAfter probes.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: pool needs at least one replica")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ReviveAfter <= 0 {
		cfg.ReviveAfter = DefaultReviveAfter
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ring, err := NewRing(cfg.Replicas, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, ring: ring}
	for _, u := range cfg.Replicas {
		p.replicas = append(p.replicas, &replicaState{url: u, healthy: true})
	}
	return p, nil
}

// Route returns the replicas to try for key, healthiest-preference order:
// the key's owner and ring-order fallbacks, healthy members first. The
// full candidate list is returned (never empty) so a caller can still try
// ejected replicas when everything is marked down — a pool that sheds all
// traffic on a flaky probe round would turn a monitoring blip into an
// outage.
func (p *Pool) Route(key string) []string {
	candidates := p.ring.LookupN(key, len(p.cfg.Replicas))
	p.mu.Lock()
	healthy := make(map[string]bool, len(p.replicas))
	for _, r := range p.replicas {
		healthy[r.url] = r.healthy
	}
	p.mu.Unlock()
	// Stable partition: healthy candidates keep ring order, then ejected
	// ones as a last resort.
	out := make([]string, 0, len(candidates))
	for _, c := range candidates {
		if healthy[c] {
			out = append(out, c)
		}
	}
	for _, c := range candidates {
		if !healthy[c] {
			out = append(out, c)
		}
	}
	return out
}

// ReportFailure records a request-path failure against url (network error
// or 5xx while forwarding): passive detection between probe rounds. It
// counts like a failed probe, so FailAfter request failures eject the
// replica without waiting for the prober.
func (p *Pool) ReportFailure(url string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.url == url {
			p.failLocked(r, msg)
			return
		}
	}
}

// Probe runs one synchronous health round: GET /healthz on every replica
// concurrently. Exported so tests (and the loadgen harness) can step
// membership deterministically instead of sleeping through intervals.
func (p *Pool) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	results := make([]error, len(p.cfg.Replicas))
	for i, u := range p.cfg.Replicas {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			results[i] = p.probeOne(ctx, u)
		}(i, u)
	}
	wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.replicas {
		if err := results[i]; err != nil {
			p.failLocked(r, err.Error())
		} else {
			p.succeedLocked(r)
		}
	}
}

// probeOne checks one replica's /healthz.
func (p *Pool) probeOne(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	// Require a parseable health body: a load balancer answering 200 with
	// an HTML error page must not count as a live replica.
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("healthz body: %v", err)
	}
	if body.Status != "ok" {
		return fmt.Errorf("healthz status %q", body.Status)
	}
	return nil
}

// failLocked and succeedLocked apply the consecutive-count thresholds.
// Callers hold p.mu.
func (p *Pool) failLocked(r *replicaState, msg string) {
	r.succ = 0
	r.fail++
	r.lastError = msg
	if r.healthy && r.fail >= p.cfg.FailAfter {
		r.healthy = false
		p.ejections++
		p.cfg.Logf("cluster: ejecting %s after %d consecutive failures (%s)", r.url, r.fail, msg)
	}
}

func (p *Pool) succeedLocked(r *replicaState) {
	r.fail = 0
	r.succ++
	r.lastError = ""
	if !r.healthy && r.succ >= p.cfg.ReviveAfter {
		r.healthy = true
		p.readmissions++
		p.cfg.Logf("cluster: re-admitting %s after %d consecutive healthy probes", r.url, r.succ)
	}
}

// Start probes on the configured interval until ctx is cancelled. Run it
// in a goroutine; it performs one immediate round first so a dead replica
// configured at boot is ejected within FailAfter*interval, not one extra.
func (p *Pool) Start(ctx context.Context) {
	p.Probe(ctx)
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Probe(ctx)
		}
	}
}

// Status snapshots every member's health, in configuration order.
func (p *Pool) Status() []ReplicaStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaStatus, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = ReplicaStatus{URL: r.url, Healthy: r.healthy, LastError: r.lastError}
	}
	return out
}

// HealthyCount returns how many members are currently admitted.
func (p *Pool) HealthyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.replicas {
		if r.healthy {
			n++
		}
	}
	return n
}

// Ejections and Readmissions return the lifetime transition counters.
func (p *Pool) Ejections() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejections
}

func (p *Pool) Readmissions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readmissions
}
