module mapc

go 1.22
