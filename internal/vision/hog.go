package vision

import (
	"math"

	"mapc/internal/trace"
)

// HoG computes Histogram-of-Oriented-Gradients descriptors (Dalal & Triggs):
// per-pixel gradients, 9-bin orientation histograms over 8x8 cells with
// bilinear bin interpolation, and L2-normalized 2x2-cell blocks.
type HoG struct {
	CellSize int // pixels per cell side
	Bins     int // orientation bins over [0, pi)
	Block    int // cells per block side
}

// NewHoG returns the canonical 8px/9bin/2x2 configuration.
func NewHoG() *HoG { return &HoG{CellSize: 8, Bins: 9, Block: 2} }

// Name implements Benchmark.
func (h *HoG) Name() string { return "hog" }

// Scene implements Benchmark.
func (h *HoG) Scene() SceneKind { return SceneTextured }

func (h *HoG) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var blocks int
	var energy float64
	for _, im := range images {
		desc := h.Describe(im, rec)
		blocks += len(desc)
		for _, b := range desc {
			for _, v := range b {
				energy += v * v
			}
		}
	}
	n := float64(len(images))
	return map[string]float64{
		"blocks":     float64(blocks) / n,
		"descEnergy": energy / n,
	}, nil
}

// Describe returns the block descriptors (each Block*Block*Bins long) of im.
func (h *HoG) Describe(im *Image, rec *trace.Recorder) [][]float64 {
	// Phase 1: gradient magnitude/orientation for every pixel.
	rec.BeginPhase("hog-gradients", im.Bytes()*3, trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.8,
		Parallelism: im.W * im.H,
		VectorWidth: simdWidth,
	})
	gx, gy := Sobel(im, rec)
	mag := NewImage(im.W, im.H)
	ang := NewImage(im.W, im.H)
	for i := range mag.Pix {
		dx, dy := gx.Pix[i], gy.Pix[i]
		mag.Pix[i] = math.Sqrt(dx*dx + dy*dy)
		a := math.Atan2(dy, dx)
		if a < 0 {
			a += math.Pi // unsigned orientation in [0, pi)
		}
		ang.Pix[i] = a
	}
	px := uint64(im.W * im.H)
	rec.FP(px * 12) // sqrt+atan2 amortized cost
	rec.Mem(px * 4)
	rec.Control(px)
	rec.EndPhase()

	// Phase 2: cell histograms with linear bin interpolation.
	cellsX := im.W / h.CellSize
	cellsY := im.H / h.CellSize
	rec.BeginPhase("hog-cell-histograms", int64(cellsX*cellsY*h.Bins*8)+im.Bytes()*2, trace.PhaseOpts{
		Pattern:     trace.Strided,
		StrideBytes: int64(h.CellSize * 8),
		Reuse:       0.5,
		Parallelism: cellsX * cellsY * h.CellSize * h.CellSize, // pixel-parallel with atomic bin updates
		VectorWidth: 1,
	})
	hist := make([][]float64, cellsX*cellsY)
	for i := range hist {
		hist[i] = make([]float64, h.Bins)
	}
	binWidth := math.Pi / float64(h.Bins)
	for cy := 0; cy < cellsY; cy++ {
		for cx := 0; cx < cellsX; cx++ {
			hh := hist[cy*cellsX+cx]
			for py := 0; py < h.CellSize; py++ {
				for pxx := 0; pxx < h.CellSize; pxx++ {
					x := cx*h.CellSize + pxx
					y := cy*h.CellSize + py
					a := ang.At(x, y)
					m := mag.At(x, y)
					fb := a/binWidth - 0.5
					b0 := int(math.Floor(fb))
					frac := fb - float64(b0)
					b1 := b0 + 1
					if b0 < 0 {
						b0 += h.Bins
					}
					if b1 >= h.Bins {
						b1 -= h.Bins
					}
					hh[b0] += m * (1 - frac)
					hh[b1] += m * frac
				}
			}
		}
	}
	cpx := uint64(cellsX*cellsY) * uint64(h.CellSize*h.CellSize)
	rec.FP(cpx * 6)
	rec.Mem(cpx * 4)
	rec.ALU(cpx * 3)
	rec.Control(cpx * 2)
	rec.Shift(cpx)
	rec.EndPhase()

	// Phase 3: block assembly + L2 normalization.
	blocksX := cellsX - h.Block + 1
	blocksY := cellsY - h.Block + 1
	if blocksX < 0 {
		blocksX = 0
	}
	if blocksY < 0 {
		blocksY = 0
	}
	rec.BeginPhase("hog-block-normalize", int64(blocksX*blocksY*h.Block*h.Block*h.Bins*8), trace.PhaseOpts{
		Pattern:     trace.Sequential,
		Reuse:       0.6,
		Parallelism: maxInt(blocksX*blocksY*h.Block*h.Block*h.Bins, 1), // element-parallel
		VectorWidth: simdWidth,
	})
	out := make([][]float64, 0, blocksX*blocksY)
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			desc := make([]float64, 0, h.Block*h.Block*h.Bins)
			for dy := 0; dy < h.Block; dy++ {
				for dx := 0; dx < h.Block; dx++ {
					desc = append(desc, hist[(by+dy)*cellsX+bx+dx]...)
				}
			}
			L2Normalize(desc, rec)
			out = append(out, desc)
		}
	}
	rec.Mem(uint64(len(out)) * uint64(h.Block*h.Block*h.Bins))
	rec.Control(uint64(len(out)))
	rec.EndPhase()
	return out
}
