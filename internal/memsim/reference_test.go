package memsim

import "math/bits"

// This file retains the pre-optimization TLB and Cache implementations
// verbatim (modulo renaming) as executable specifications. The production
// structures were rebuilt for throughput — O(1) exact-LRU TLB, fused-line
// cache with a precomputed tag shift — under a bit-identity contract: same
// hits, same misses, same victim choices, same statistics. The differential
// tests in differential_test.go drive millions of randomized accesses
// through both and fail on the first divergence.
//
// Do not "fix" or modernize this code: its value is being the frozen
// original. If simulation semantics are deliberately changed, change both
// implementations and re-record the golden corpus hashes in
// internal/dataset/golden_hash_test.go.

// refTLB is the original fully-associative linear-scan TLB with LRU
// replacement (smallest logical clock wins, lowest index on ties).
type refTLB struct {
	entries int
	pages   []uint64
	srcs    []int
	valid   []bool
	lru     []uint64
	clock   uint64
	stats   []CacheStats
	flushes uint64
}

func newRefTLB(entries, nSources int) *refTLB {
	return &refTLB{
		entries: entries,
		pages:   make([]uint64, entries),
		srcs:    make([]int, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
		stats:   make([]CacheStats, nSources),
	}
}

func (t *refTLB) Access(source int, addr uint64) bool {
	page := addr / PageSize
	t.clock++
	t.stats[source].Accesses++
	lruIdx, lruClock := 0, ^uint64(0)
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page && t.srcs[i] == source {
			t.lru[i] = t.clock
			return true
		}
		if t.lru[i] < lruClock {
			lruClock = t.lru[i]
			lruIdx = i
		}
	}
	t.stats[source].Misses++
	t.pages[lruIdx] = page
	t.srcs[lruIdx] = source
	t.valid[lruIdx] = true
	t.lru[lruIdx] = t.clock
	return false
}

func (t *refTLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
		t.lru[i] = 0
	}
	t.flushes++
}

func (t *refTLB) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.lru[i] = 0
	}
	for i := range t.stats {
		t.stats[i] = CacheStats{}
	}
	t.clock = 0
	t.flushes = 0
}

func (t *refTLB) Stats(source int) CacheStats { return t.stats[source] }
func (t *refTLB) Flushes() uint64             { return t.flushes }

// refCache is the original set-associative cache with parallel
// tags/valid/src/lru slices and the per-access bits.Len tag-shift
// recomputation (the hoisting of which is one of this PR's fixes).
type refCache struct {
	sets           int
	ways           int
	setShift       uint
	setMask        uint64
	tags           []uint64
	valid          []bool
	src            []int
	lru            []uint64
	clock          uint64
	stats          []CacheStats
	crossEvictions []uint64
}

func newRefCache(totalBytes int64, ways, nSources int) *refCache {
	lines := totalBytes / LineSize
	sets := int(lines) / ways
	if sets&(sets-1) != 0 {
		sets = 1 << (bits.Len(uint(sets)) - 1)
	}
	return &refCache{
		sets:           sets,
		ways:           ways,
		setShift:       uint(bits.TrailingZeros(uint(LineSize))),
		setMask:        uint64(sets - 1),
		tags:           make([]uint64, sets*ways),
		valid:          make([]bool, sets*ways),
		src:            make([]int, sets*ways),
		lru:            make([]uint64, sets*ways),
		stats:          make([]CacheStats, nSources),
		crossEvictions: make([]uint64, nSources),
	}
}

func (c *refCache) Access(source int, addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.Len(uint(c.sets-1)))
	base := set * c.ways
	c.clock++
	c.stats[source].Accesses++

	lruWay, lruClock := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < lruClock {
			lruClock = c.lru[i]
			lruWay = w
		}
	}
	c.stats[source].Misses++
	i := base + lruWay
	if c.valid[i] && c.src[i] != source {
		c.crossEvictions[c.src[i]]++
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.src[i] = source
	c.lru[i] = c.clock
	return false
}

func (c *refCache) Install(source int, addr uint64) {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.Len(uint(c.sets-1)))
	base := set * c.ways
	c.clock++
	lruWay, lruClock := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return
		}
		if c.lru[i] < lruClock {
			lruClock = c.lru[i]
			lruWay = w
		}
	}
	i := base + lruWay
	if c.valid[i] && c.src[i] != source {
		c.crossEvictions[c.src[i]]++
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.src[i] = source
	c.lru[i] = c.clock
}

func (c *refCache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	for i := range c.stats {
		c.stats[i] = CacheStats{}
		c.crossEvictions[i] = 0
	}
	c.clock = 0
}

func (c *refCache) Stats(source int) CacheStats      { return c.stats[source] }
func (c *refCache) CrossEvictions(source int) uint64 { return c.crossEvictions[source] }
