package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
}

func TestForEachCoversAllIndicesInOrderSlots(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 137
			out := make([]int, n)
			err := ForEach(workers, n, func(i int) error {
				out[i] = i*i + 1
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i+1 {
					t.Fatalf("slot %d holds %d", i, v)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	calls := 0
	if err := ForEach(4, 0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -5, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty ranges", calls)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 64, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	var calls atomic.Int64
	err := ForEach(2, 10_000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// In-flight work may finish, but the pool must not sweep the whole
	// range after the failure is observed.
	if c := calls.Load(); c > 1000 {
		t.Errorf("%d calls after early failure", c)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	var calls int
	err := ForEach(1, 100, func(i int) error {
		calls++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("serial path ran %d calls (err=%v), want exactly 4", calls, err)
	}
}

// TestForEachConcurrentSafety hammers the pool itself from parallel tests;
// meaningful under -race.
func TestForEachConcurrentSafety(t *testing.T) {
	for g := 0; g < 4; g++ {
		t.Run(fmt.Sprintf("hammer-%d", g), func(t *testing.T) {
			t.Parallel()
			var sum atomic.Int64
			if err := ForEach(8, 500, func(i int) error {
				sum.Add(int64(i))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if want := int64(500 * 499 / 2); sum.Load() != want {
				t.Fatalf("sum %d, want %d", sum.Load(), want)
			}
		})
	}
}
