// Capacityplan: use the simulation substrate directly to answer the
// capacity question behind the paper's motivation (Figures 1-3): how does
// each vision workload scale as a GPU server admits more concurrent
// instances, and where does co-location stop paying off versus queueing?
package main

import (
	"fmt"
	"log"

	"mapc/internal/cpusim"
	"mapc/internal/gpusim"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

const maxInstances = 4

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacityplan: ")

	gcfg := gpusim.DefaultConfig()
	ccfg := cpusim.DefaultConfig()

	fmt.Println("GPU throughput (jobs/sec) vs. admitted concurrent instances, batch 40:")
	fmt.Printf("%-9s", "bench")
	for n := 1; n <= maxInstances; n++ {
		fmt.Printf("  n=%d      ", n)
	}
	fmt.Println("  best")
	for _, b := range vision.All() {
		res, err := vision.Run(b, 40, 42)
		if err != nil {
			log.Fatal(err)
		}
		w := res.Workload
		fmt.Printf("%-9s", b.Name())
		bestN, bestTput := 1, 0.0
		for n := 1; n <= maxInstances; n++ {
			ws := make([]*trace.Workload, n)
			for i := range ws {
				ws[i] = w.Clone()
			}
			rr, err := gpusim.Run(gcfg, ws)
			if err != nil {
				log.Fatal(err)
			}
			// Throughput: n jobs complete by the bag makespan.
			tput := float64(n) / gpusim.BagTime(rr)
			fmt.Printf("  %8.1f", tput)
			if tput > bestTput {
				bestTput, bestN = tput, n
			}
		}
		fmt.Printf("  n=%d\n", bestN)
	}

	// Where does the GPU stop beating the CPU under concurrency? (Fig 3.)
	fmt.Println("\nGPU/CPU performance ratio at 1 and 4 instances:")
	for _, b := range vision.All() {
		res, err := vision.Run(b, 40, 42)
		if err != nil {
			log.Fatal(err)
		}
		w := res.Workload
		ratio := func(n int) float64 {
			ws := make([]*trace.Workload, n)
			apps := make([]cpusim.App, n)
			for i := range ws {
				ws[i] = w.Clone()
				apps[i] = cpusim.App{Workload: w.Clone(), Threads: 16}
			}
			gr, err := gpusim.Run(gcfg, ws)
			if err != nil {
				log.Fatal(err)
			}
			cr, err := cpusim.Run(ccfg, apps)
			if err != nil {
				log.Fatal(err)
			}
			return cr[0].TimeSec / gr[0].TimeSec
		}
		r1, r4 := ratio(1), ratio(maxInstances)
		verdict := "GPU wins throughout"
		switch {
		case r1 < 1 && r4 < 1:
			verdict = "CPU wins throughout"
		case r1 >= 1 && r4 < 1:
			verdict = "GPU wins alone, loses under concurrency"
		}
		fmt.Printf("  %-9s 1-inst %5.2f   %d-inst %5.2f   %s\n",
			b.Name(), r1, maxInstances, r4, verdict)
	}
}
