// Command benchjson records Go benchmark results as JSON and gates CI on
// regressions against a committed baseline.
//
// Record mode runs the memsim and simcache microbenchmarks and the
// corpus-generation benchmark (or parses saved `go test -bench` output) and
// appends one labelled entry to the baseline file. With -fidelity it also
// runs the per-tier fidelity benchmark (BenchmarkFidelityCorpus), the
// in-process differential exactness oracle, and the k × share-skew
// scenario suite (dataset.DefaultSkewScenarios at the mixed tier),
// recording per-tier points/sec, the fast tier's relative-error bounds and
// per-cell analytic coverage:
//
//	go run ./scripts/benchjson -label after -out BENCH_baseline.json
//	go run ./scripts/benchjson -label before -input old_bench.txt -out BENCH_baseline.json
//	go run ./scripts/benchjson -label phase-replay -fidelity -out BENCH_baseline.json
//
// Check mode re-runs only the fast microbenchmarks and fails (exit 1)
// if any ns/op exceeds factor x the newest baseline entry. The corpus
// points/sec figure is machine-dependent context and is never gated; the
// *fidelity* figures are gated statically against the committed entry —
// the newest entry carrying them must show fast-tier throughput at or
// above -min-fast-points and oracle bounds at or under -max-oracle-err,
// and the newest skew-suite entry must keep every cell's analytic
// coverage at or above -min-skew-coverage with its sampled oracle inside
// the same error bound:
//
//	go run ./scripts/benchjson -check BENCH_baseline.json            # default -factor 2
//
// Serve-check mode gates a BENCH_serve.json produced by cmd/mapc-loadgen
// (schema: internal/benchio): every entry must show real traffic, a shed
// rate at or under -max-shed and a p99 at or under -max-p99-ms. CI runs it
// after the loadgen smoke job:
//
//	go run ./scripts/benchjson -serve-check BENCH_serve.json -max-shed 0.1 -max-p99-ms 10000
//
// Only the Go toolchain and stdlib are required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"mapc/internal/benchio"
	"mapc/internal/dataset"
	"mapc/internal/phasesum"
)

// Entry is one labelled benchmark snapshot.
type Entry struct {
	Label              string  `json:"label"`
	Date               string  `json:"date"`
	CorpusPointsPerSec float64 `json:"corpus_points_per_sec,omitempty"`
	// FidelityPointsPerSec holds per-tier bag-measurement throughput from
	// BenchmarkFidelityCorpus, keyed "exact" | "mixed" | "fast".
	FidelityPointsPerSec map[string]float64 `json:"fidelity_points_per_sec,omitempty"`
	// Oracle holds the differential exactness oracle's error bounds for
	// the fast tier on the paper corpus.
	Oracle *dataset.OracleReport `json:"oracle,omitempty"`
	// SkewSuite records the k × share-skew scenario matrix
	// (dataset.DefaultSkewScenarios) run at the mixed tier: per-cell
	// analytic coverage, fallback-reason counts and sampled oracle bounds.
	// Check mode hard-gates its worst cell.
	SkewSuite         *dataset.ScenarioReport `json:"skew_suite,omitempty"`
	MicrobenchNsPerOp map[string]float64      `json:"microbench_ns_per_op"`
}

// Baseline is the schema of BENCH_baseline.json.
type Baseline struct {
	Machine string  `json:"machine"`
	Entries []Entry `json:"entries"`
}

func main() {
	label := flag.String("label", "", "record mode: append an entry with this label to -out")
	out := flag.String("out", "BENCH_baseline.json", "record mode: baseline file to create or append to")
	input := flag.String("input", "", "record mode: comma-separated saved `go test -bench` output files to parse instead of running benchmarks")
	check := flag.String("check", "", "check mode: baseline file to gate against (re-runs memsim+simcache microbenchmarks)")
	factor := flag.Float64("factor", 2.0, "check mode: fail when fresh ns/op > factor x baseline")
	benchtime := flag.String("benchtime", "", "passed to `go test -benchtime` (empty = go default)")
	corpus := flag.Bool("corpus", true, "record mode: also run the slow corpus-generation benchmark")
	fidelity := flag.Bool("fidelity", false, "record mode: also run the per-tier fidelity benchmark and the differential exactness oracle")
	oracleFrac := flag.Float64("oracle-frac", 0.1, "record mode with -fidelity: fraction of bags the oracle re-measures exactly")
	oracleSeed := flag.Uint64("oracle-seed", 1, "record mode with -fidelity: seed selecting the oracle's bag sample")
	minFastPoints := flag.Float64("min-fast-points", 100, "check mode: fail when the baseline's fast-tier throughput is below this many points/sec (0 = skip the fidelity gate)")
	maxOracleErr := flag.Float64("max-oracle-err", 0.05, "check mode: fail when the baseline's oracle max relative error exceeds this")
	minSkewCoverage := flag.Float64("min-skew-coverage", 0.9, "check mode: fail when the baseline skew suite's worst-cell analytic coverage is below this (0 = skip the skew gate)")
	serveCheck := flag.String("serve-check", "", "serve-check mode: BENCH_serve.json (mapc-loadgen output) to gate")
	maxShed := flag.Float64("max-shed", 0.10, "serve-check mode: fail when any entry's shed rate exceeds this")
	maxP99Ms := flag.Float64("max-p99-ms", 10000, "serve-check mode: fail when any entry's p99 exceeds this many ms")
	maxErrorRate := flag.Float64("max-error-rate", 1, "serve-check mode: fail when any entry's hard-failure rate (transport errors + non-503 5xx, recomputed from status counts) exceeds this")
	minAvailability := flag.Float64("min-availability", 0, "serve-check mode: fail when any entry's availability (1 - hard-failure rate) is below this; 0 disables the gate")
	flag.Parse()

	switch {
	case *serveCheck != "":
		if err := runServeCheck(*serveCheck, *maxShed, *maxP99Ms, *maxErrorRate, *minAvailability); err != nil {
			fatal(err)
		}
	case *check != "":
		if err := runCheck(*check, *factor, *benchtime, *minFastPoints, *maxOracleErr, *minSkewCoverage); err != nil {
			fatal(err)
		}
	case *label != "":
		if err := runRecord(*label, *out, *input, *benchtime, *corpus, *fidelity, *oracleFrac, *oracleSeed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// microbenchRuns lists the fast, gated microbenchmark suites: the memsim
// hot paths (TLB/cache/stream) and the simcache memo paths (hit,
// move-to-front, miss+evict churn). Both record and check mode run exactly
// this set so baseline entries and fresh runs always cover the same names.
var microbenchRuns = []struct{ pkg, pattern string }{
	{"./internal/memsim", "BenchmarkTLBAccess|BenchmarkCacheAccess|BenchmarkStreamNext"},
	{"./internal/simcache", "BenchmarkSimCache"},
}

func runRecord(label, out, input, benchtime string, corpus, fidelity bool, oracleFrac float64, oracleSeed uint64) error {
	var outputs []string
	if input != "" {
		for _, f := range strings.Split(input, ",") {
			b, err := os.ReadFile(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			outputs = append(outputs, string(b))
		}
	} else {
		for _, mb := range microbenchRuns {
			micro, err := goBench(mb.pkg, mb.pattern, benchtime)
			if err != nil {
				return err
			}
			outputs = append(outputs, micro)
		}
		if corpus {
			c, err := goBench("./internal/dataset", "BenchmarkGenerateCorpus", benchtime)
			if err != nil {
				return err
			}
			outputs = append(outputs, c)
		}
		if fidelity {
			c, err := goBench("./internal/dataset", "BenchmarkFidelityCorpus", benchtime)
			if err != nil {
				return err
			}
			outputs = append(outputs, c)
		}
	}

	entry := Entry{
		Label:             label,
		Date:              time.Now().UTC().Format("2006-01-02"),
		MicrobenchNsPerOp: map[string]float64{},
	}
	var machine string
	points := map[string][]float64{}
	for _, o := range outputs {
		res := parseBench(o)
		if machine == "" {
			machine = res.machine
		}
		for name, ns := range res.nsPerOp {
			entry.MicrobenchNsPerOp[name] = ns
		}
		for name, vals := range res.points {
			points[name] = append(points[name], vals...)
		}
	}
	var corpusVals []float64
	for name, vals := range points {
		if strings.HasPrefix(name, "GenerateCorpus") {
			corpusVals = append(corpusVals, vals...)
		}
	}
	if len(corpusVals) > 0 {
		entry.CorpusPointsPerSec = round3(mean(corpusVals))
	}
	for _, tier := range []string{"exact", "mixed", "fast"} {
		if vals := points["FidelityCorpus/"+tier]; len(vals) > 0 {
			if entry.FidelityPointsPerSec == nil {
				entry.FidelityPointsPerSec = map[string]float64{}
			}
			entry.FidelityPointsPerSec[tier] = round3(mean(vals))
		}
	}
	// points/sec entries also report a (meaningless at n=1) ns/op; drop the
	// throughput benchmarks from the gated microbench map.
	for name := range entry.MicrobenchNsPerOp {
		if strings.HasPrefix(name, "GenerateCorpus") || strings.HasPrefix(name, "FidelityCorpus") {
			delete(entry.MicrobenchNsPerOp, name)
		}
	}
	if len(entry.MicrobenchNsPerOp) == 0 && entry.CorpusPointsPerSec == 0 && len(entry.FidelityPointsPerSec) == 0 {
		return fmt.Errorf("no benchmark results parsed")
	}

	if fidelity && input == "" {
		rep, err := runOracle(oracleFrac, oracleSeed)
		if err != nil {
			return err
		}
		entry.Oracle = &rep
		fmt.Fprintf(os.Stderr,
			"benchjson: oracle (%s, %d/%d bags): cpu max %.4g mean %.4g, gpu max %.4g mean %.4g rel. err\n",
			rep.Fidelity, rep.Sampled, rep.Total,
			rep.MaxRelErrCPU, rep.MeanRelErrCPU, rep.MaxRelErrGPU, rep.MeanRelErrGPU)

		skew, err := runSkewSuite(oracleFrac, oracleSeed)
		if err != nil {
			return err
		}
		entry.SkewSuite = skew
		fmt.Fprintf(os.Stderr,
			"benchjson: skew suite (%s, %d cells): min analytic coverage %.4g, max oracle gpu err %.4g\n",
			skew.Fidelity, len(skew.Scenarios), skew.MinAnalyticCoverage(), skew.MaxRelErrGPU())
	}

	base := &Baseline{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, base); err != nil {
			return fmt.Errorf("parsing existing %s: %w", out, err)
		}
	}
	if base.Machine == "" {
		base.Machine = machine
	}
	base.Entries = append(base.Entries, entry)
	b, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended entry %q (%d microbenches, corpus %.3g points/sec) to %s\n",
		label, len(entry.MicrobenchNsPerOp), entry.CorpusPointsPerSec, out)
	return nil
}

// runOracle measures the fast tier's relative-error bounds in-process on
// the paper corpus (Workers 1 so the figure matches the single-core
// throughput target's conditions).
func runOracle(frac float64, seed uint64) (dataset.OracleReport, error) {
	cfg := dataset.DefaultConfig()
	cfg.Workers = 1
	cfg.Fidelity = phasesum.Fast
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		return dataset.OracleReport{}, err
	}
	return gen.RunOracle(frac, seed)
}

// runSkewSuite generates the benchmarked k × share-skew matrix at the
// mixed tier over a compact three-benchmark suite — small enough to record
// in seconds, skewed enough (minority shares down to 0.05) to exercise the
// fractional-share closed form's whole envelope.
func runSkewSuite(oracleFrac float64, oracleSeed uint64) (*dataset.ScenarioReport, error) {
	cfg := dataset.DefaultConfig()
	cfg.Benchmarks = []string{"fast", "hog", "knn"}
	cfg.BatchSizes = []int{20, 40, 80}
	cfg.MixedPairs = 2
	cfg.Fidelity = phasesum.Mixed
	return dataset.RunScenarios(cfg, dataset.DefaultSkewScenarios(), oracleFrac, oracleSeed)
}

// mean averages a non-empty slice.
func mean(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func runCheck(path string, factor float64, benchtime string, minFastPoints, maxOracleErr, minSkewCoverage float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.Entries) == 0 {
		return fmt.Errorf("%s has no entries", path)
	}
	ref := base.Entries[len(base.Entries)-1] // newest entry is the current expectation
	if len(ref.MicrobenchNsPerOp) == 0 {
		return fmt.Errorf("newest entry %q has no microbenches to gate on", ref.Label)
	}

	fresh := map[string]float64{}
	for _, mb := range microbenchRuns {
		out, err := goBench(mb.pkg, mb.pattern, benchtime)
		if err != nil {
			return err
		}
		for name, ns := range parseBench(out).nsPerOp {
			fresh[name] = ns
		}
	}

	names := make([]string, 0, len(ref.MicrobenchNsPerOp))
	for name := range ref.MicrobenchNsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed bool
	for _, name := range names {
		want := ref.MicrobenchNsPerOp[name]
		got, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %-28s missing from fresh run\n", name)
			failed = true
			continue
		}
		ratio := got / want
		status := "ok  "
		if got > want*factor {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s %-28s baseline %8.2f ns/op, fresh %8.2f ns/op (%.2fx, limit %.1fx)\n",
			status, name, want, got, ratio, factor)
	}
	if failed {
		return fmt.Errorf("microbenchmark regression beyond %.1fx baseline (%s entry %q)", factor, path, ref.Label)
	}
	fmt.Fprintf(os.Stderr, "benchjson: all %d microbenches within %.1fx of baseline entry %q\n", len(names), factor, ref.Label)
	if minFastPoints > 0 {
		if err := checkFidelity(&base, path, minFastPoints, maxOracleErr); err != nil {
			return err
		}
	}
	if minSkewCoverage > 0 {
		if err := checkSkewSuite(&base, path, minSkewCoverage, maxOracleErr); err != nil {
			return err
		}
	}
	return nil
}

// checkFidelity gates the committed fidelity figures: the newest entry
// carrying them must record fast-tier throughput at or above minFastPoints
// points/sec and oracle error bounds at or under maxOracleErr. The gate is
// static — it holds the baseline a contributor commits to the bar, so a
// regression recorded into BENCH_baseline.json fails CI instead of
// quietly becoming the new normal.
func checkFidelity(base *Baseline, path string, minFastPoints, maxOracleErr float64) error {
	for i := len(base.Entries) - 1; i >= 0; i-- {
		e := base.Entries[i]
		if len(e.FidelityPointsPerSec) == 0 {
			continue
		}
		fast, ok := e.FidelityPointsPerSec["fast"]
		if !ok {
			return fmt.Errorf("entry %q records fidelity throughput but no fast tier", e.Label)
		}
		if fast < minFastPoints {
			return fmt.Errorf("entry %q: fast tier %.3g points/sec below the %.3g floor", e.Label, fast, minFastPoints)
		}
		if e.Oracle == nil {
			return fmt.Errorf("entry %q records fidelity throughput but no oracle bounds", e.Label)
		}
		if !e.Oracle.Within(maxOracleErr) {
			return fmt.Errorf("entry %q: oracle max relative error (cpu %.4g, gpu %.4g) exceeds %.4g",
				e.Label, e.Oracle.MaxRelErrCPU, e.Oracle.MaxRelErrGPU, maxOracleErr)
		}
		fmt.Fprintf(os.Stderr,
			"benchjson: ok   fidelity entry %q: fast %.4g points/sec (floor %.4g), oracle max err cpu %.4g gpu %.4g (bound %.4g)\n",
			e.Label, fast, minFastPoints, e.Oracle.MaxRelErrCPU, e.Oracle.MaxRelErrGPU, maxOracleErr)
		return nil
	}
	return fmt.Errorf("%s has no entry with fidelity figures — record one with -label <x> -fidelity", path)
}

// checkSkewSuite gates the committed skew-suite matrix: the newest entry
// carrying one must keep every cell's analytic coverage at or above
// minSkewCoverage and the worst sampled oracle error at or under
// maxOracleErr. Like checkFidelity, the gate is static — it keeps skewed
// and bandwidth-bound bags on the analytic tier by contract, so a model
// change that pushes a skew cell back to exact simulation fails CI.
func checkSkewSuite(base *Baseline, path string, minSkewCoverage, maxOracleErr float64) error {
	for i := len(base.Entries) - 1; i >= 0; i-- {
		e := base.Entries[i]
		if e.SkewSuite == nil {
			continue
		}
		if cov := e.SkewSuite.MinAnalyticCoverage(); cov < minSkewCoverage {
			return fmt.Errorf("entry %q: skew-suite analytic coverage %.4g below the %.4g floor", e.Label, cov, minSkewCoverage)
		}
		if gpuErr := e.SkewSuite.MaxRelErrGPU(); gpuErr > maxOracleErr {
			return fmt.Errorf("entry %q: skew-suite oracle max gpu error %.4g exceeds %.4g", e.Label, gpuErr, maxOracleErr)
		}
		fmt.Fprintf(os.Stderr,
			"benchjson: ok   skew-suite entry %q: %d cells, min coverage %.4g (floor %.4g), max oracle gpu err %.4g (bound %.4g)\n",
			e.Label, len(e.SkewSuite.Scenarios), e.SkewSuite.MinAnalyticCoverage(), minSkewCoverage,
			e.SkewSuite.MaxRelErrGPU(), maxOracleErr)
		return nil
	}
	return fmt.Errorf("%s has no entry with a skew suite — record one with -label <x> -fidelity", path)
}

// runServeCheck gates every entry of a loadgen-produced BENCH_serve.json:
// real successful traffic, shed rate within maxShed, p99 within maxP99Ms,
// and — for the chaos job — a hard-failure rate within maxErrorRate and an
// availability at or above minAvailability. Error rate and availability are
// recomputed from StatusCounts rather than trusted from the entry, so
// hand-edited or pre-resilience entries gate on the same ground truth.
// Gating every entry (not just the newest) lets one CI run record several
// configurations — 1-replica and 3-replica, say — and hold them all to the
// same bar.
func runServeCheck(path string, maxShed, maxP99Ms, maxErrorRate, minAvailability float64) error {
	sb, err := benchio.Load(path)
	if err != nil {
		return err
	}
	if len(sb.Entries) == 0 {
		return fmt.Errorf("%s has no entries — did mapc-loadgen run?", path)
	}
	var failed bool
	for _, e := range sb.Entries {
		var faults []string
		if e.StatusCounts["200"] == 0 {
			faults = append(faults, "no successful responses")
		}
		if e.ShedRate > maxShed {
			faults = append(faults, fmt.Sprintf("shed %.3f > %.3f", e.ShedRate, maxShed))
		}
		if e.P99Ms > maxP99Ms {
			faults = append(faults, fmt.Sprintf("p99 %.1fms > %.1fms", e.P99Ms, maxP99Ms))
		}
		errRate := e.ComputedErrorRate()
		avail := e.ComputedAvailability()
		if errRate > maxErrorRate {
			faults = append(faults, fmt.Sprintf("error rate %.4f > %.4f", errRate, maxErrorRate))
		}
		if minAvailability > 0 && avail < minAvailability {
			faults = append(faults, fmt.Sprintf("availability %.4f < %.4f", avail, minAvailability))
		}
		status := "ok  "
		if len(faults) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"benchjson: %s %-20s %s x%d: %d req, shed %.3f, err %.4f, avail %.4f, p50 %.2fms p99 %.2fms p999 %.2fms, %.1f rps (%.2f/core)%s\n",
			status, e.Label, e.Target, e.Replicas, e.Requests, e.ShedRate, errRate, avail,
			e.P50Ms, e.P99Ms, e.P999Ms, e.ThroughputRPS, e.ThroughputPerCore,
			suffixFaults(faults))
	}
	if failed {
		return fmt.Errorf("serving-tier gate failed (%s)", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: all %d serve entries within shed <= %.3f, p99 <= %.1fms, error rate <= %.4f\n",
		len(sb.Entries), maxShed, maxP99Ms, maxErrorRate)
	return nil
}

func suffixFaults(faults []string) string {
	if len(faults) == 0 {
		return ""
	}
	return " [" + strings.Join(faults, "; ") + "]"
}

func goBench(pkg, pattern, benchtime string) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", pkg}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench %s: %w\n%s", pkg, err, out)
	}
	return string(out), nil
}

type benchResults struct {
	machine string
	nsPerOp map[string]float64
	// points collects points/sec values per benchmark name (repeated runs
	// of one name are averaged by the caller).
	points map[string][]float64
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts ns/op and points/sec from `go test -bench` output.
// Benchmark names are reported without the "Benchmark" prefix or the
// -GOMAXPROCS suffix, e.g. "TLBAccessHitHeavy", "StreamNext/random".
func parseBench(out string) benchResults {
	res := benchResults{nsPerOp: map[string]float64{}, points: map[string][]float64{}}
	var cpu, goos, goarch string
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "cpu: "):
			cpu = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		// Sub-benchmarks repeated with identical names gain a #NN suffix;
		// fold them onto the base name (points/sec values are averaged by
		// the caller, ns/op keeps the last value seen).
		if i := strings.Index(name, "#"); i >= 0 {
			name = name[:i]
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp[name] = v
			case "points/sec":
				res.points[name] = append(res.points[name], v)
			}
		}
	}
	if cpu != "" {
		res.machine = fmt.Sprintf("%s (%s/%s)", cpu, goos, goarch)
	}
	return res
}

func round3(v float64) float64 {
	f, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 4, 64), 64)
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
