package dataset

import (
	"fmt"
	"math"

	"mapc/internal/cpusim"
	"mapc/internal/gpusim"
	"mapc/internal/phasesum"
	"mapc/internal/trace"
)

// The differential exactness oracle: re-measure a seeded fraction of the
// corpus's bags through the exact simulators and report the analytic
// tier's relative error on the two co-run targets — the CPU makespan
// (behind the fairness feature) and the GPU bag time (the label). The
// resulting bounds are recorded into BENCH_baseline.json and gated in CI,
// so a model regression that widens the error fails the perf gate even
// when throughput improves.

// OracleReport summarizes one differential-oracle run.
type OracleReport struct {
	// Fidelity is the generator's configured tier under test.
	Fidelity string `json:"fidelity"`
	// Sampled and Total count the bags re-measured exactly vs. enumerated.
	Sampled int `json:"sampled"`
	Total   int `json:"total"`
	// MaxRelErrCPU / MeanRelErrCPU bound the relative error of the shared
	// CPU run's makespan (seconds) against exact simulation.
	MaxRelErrCPU  float64 `json:"max_rel_err_cpu"`
	MeanRelErrCPU float64 `json:"mean_rel_err_cpu"`
	// MaxRelErrGPU / MeanRelErrGPU bound the relative error of the GPU bag
	// time — the corpus label.
	MaxRelErrGPU  float64 `json:"max_rel_err_gpu"`
	MeanRelErrGPU float64 `json:"mean_rel_err_gpu"`
}

// Within reports whether both max-error bounds are at or under maxErr.
func (r OracleReport) Within(maxErr float64) bool {
	return r.MaxRelErrCPU <= maxErr && r.MaxRelErrGPU <= maxErr
}

// bagTargets measures the bag's two co-run targets at the generator's
// configured fidelity: the shared CPU run's makespan and the shared GPU
// run's bag time.
func (g *Generator) bagTargets(bag []Member) (cpuMakespan, gpuBagTime float64, err error) {
	ms, err := g.measureBag(bag)
	if err != nil {
		return 0, 0, err
	}
	apps := make([]cpusim.App, len(ms))
	workloads := make([]*trace.Workload, len(ms))
	for i := range ms {
		apps[i] = cpusim.App{Workload: ms[i].mm.workload, Threads: g.cfg.Threads}
		workloads[i] = ms[i].mm.workload
	}
	cpuShared, kind, err := cpusim.RunMemoFidelity(g.cfg.CPU, g.memo, apps, g.cfg.Fidelity)
	if err != nil {
		return 0, 0, fmt.Errorf("dataset: shared CPU run %s: %w", bagLabel(ms), err)
	}
	g.countFidelity(kind)
	for i := range cpuShared {
		if cpuShared[i].TimeSec > cpuMakespan {
			cpuMakespan = cpuShared[i].TimeSec
		}
	}
	// The generation share vector rides along (g.cfg.Shares): the exact
	// twin inherits it through the copied config, so skewed corpora are
	// scored against the matching exact co-run, not the equal split.
	gpuShared, kind, err := gpusim.RunMemoSharesFidelity(g.cfg.GPU, g.memo, workloads, g.cfg.Shares, g.cfg.Fidelity)
	if err != nil {
		return 0, 0, fmt.Errorf("dataset: shared GPU run %s: %w", bagLabel(ms), err)
	}
	g.countFidelity(kind)
	return cpuMakespan, gpusim.BagTime(gpuShared), nil
}

// splitmix64 is the sampling PRNG: tiny, stdlib-free and stable across Go
// versions, so a (frac, seed) pair always selects the same bags.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sampleIndexes picks m distinct indexes out of total via a seeded
// Fisher-Yates prefix, deterministically in (total, m, seed).
func sampleIndexes(total, m int, seed uint64) []int {
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	s := seed
	for i := 0; i < m; i++ {
		j := i + int(splitmix64(&s)%uint64(total-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m]
}

// RunOracle re-measures a seeded fraction of the corpus's bags through the
// exact simulators and reports the analytic tier's relative-error bounds.
// frac in (0, 1] selects the sampled share of the bag list (at least one
// bag); seed fixes the sample, so a (config, frac, seed) triple is fully
// reproducible. The exact twin shares g's simulation memo — isolated
// prefixes are reused; only the genuinely shared replays run cold — so the
// oracle costs a frac-sized slice of an exact generation, not a full one.
//
// Running it on an exact-fidelity generator is a valid (if trivial)
// differential test: every error is zero.
func (g *Generator) RunOracle(frac float64, seed uint64) (OracleReport, error) {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return OracleReport{}, fmt.Errorf("dataset: oracle fraction %v outside (0, 1]", frac)
	}
	bags, err := g.Bags()
	if err != nil {
		return OracleReport{}, err
	}
	if len(bags) == 0 {
		return OracleReport{}, fmt.Errorf("dataset: no bags to sample")
	}
	m := int(math.Round(frac * float64(len(bags))))
	if m < 1 {
		m = 1
	}
	if m > len(bags) {
		m = len(bags)
	}

	exCfg := g.cfg
	exCfg.Fidelity = phasesum.Exact
	exact := &Generator{cfg: exCfg, memo: g.memo, cache: map[Member]*measureEntry{}}

	rep := OracleReport{Fidelity: g.cfg.Fidelity.String(), Sampled: m, Total: len(bags)}
	var cpuSum, gpuSum float64
	for _, bi := range sampleIndexes(len(bags), m, seed) {
		aCPU, aGPU, err := g.bagTargets(bags[bi])
		if err != nil {
			return OracleReport{}, err
		}
		eCPU, eGPU, err := exact.bagTargets(bags[bi])
		if err != nil {
			return OracleReport{}, err
		}
		cpuErr := relErr(aCPU, eCPU)
		gpuErr := relErr(aGPU, eGPU)
		cpuSum += cpuErr
		gpuSum += gpuErr
		if cpuErr > rep.MaxRelErrCPU {
			rep.MaxRelErrCPU = cpuErr
		}
		if gpuErr > rep.MaxRelErrGPU {
			rep.MaxRelErrGPU = gpuErr
		}
	}
	rep.MeanRelErrCPU = cpuSum / float64(m)
	rep.MeanRelErrGPU = gpuSum / float64(m)
	return rep, nil
}

// relErr is |got-want|/want, with an absolute fallback when want is zero.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
