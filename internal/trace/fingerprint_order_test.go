package trace

import (
	"fmt"
	"testing"

	"mapc/internal/isa"
	"mapc/internal/phasesum"
)

// The fast fidelity tier keys memoized phase summaries by
// Workload.Fingerprint(). Summaries are per-phase histograms, so two
// workloads holding the same *multiset* of phases in different orders have
// colliding summary multisets — yet their interleaved executions differ
// (phase order decides what is resident when). This property test pins
// that Fingerprint() distinguishes phase orderings, so summary cache
// entries can never be served across reordered workloads.

// fpRand is a tiny deterministic PRNG (splitmix64) so the property test
// replays identically everywhere.
type fpRand uint64

func (r *fpRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fpRand) intn(n int) int { return int(r.next() % uint64(n)) }

// randomPhases builds n distinct phases with randomized fields.
func randomPhases(r *fpRand, n int) []Phase {
	out := make([]Phase, n)
	for i := range out {
		var counts isa.Counts
		counts.Add(isa.MEM, uint64(1000+r.intn(100000)))
		counts.Add(isa.ALU, uint64(1000+r.intn(100000)))
		out[i] = Phase{
			Name:        fmt.Sprintf("phase-%d-%d", i, r.intn(1000)),
			Counts:      counts,
			Footprint:   int64(1+r.intn(1<<20)) * 64,
			Pattern:     Pattern(r.intn(4)),
			StrideBytes: 64,
			Reuse:       float64(r.intn(100)) / 100,
			Parallelism: 1 + r.intn(1<<16),
			VectorWidth: 1 + r.intn(8),
			Launches:    1 + r.intn(4),
		}
	}
	return out
}

// permute returns a copy of phases reordered by a random non-identity
// permutation (nil when n < 2 admits none).
func permute(r *fpRand, phases []Phase) []Phase {
	n := len(phases)
	if n < 2 {
		return nil
	}
	for tries := 0; tries < 100; tries++ {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := r.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		identity := true
		for i, p := range perm {
			if p != i {
				identity = false
				break
			}
		}
		if identity {
			continue
		}
		out := make([]Phase, n)
		for i, p := range perm {
			out[i] = phases[p]
		}
		return out
	}
	// 100 straight identity draws over n >= 2 is (1/n!)^100 — unreachable.
	panic("permute: no non-identity permutation drawn")
}

func TestFingerprintDistinguishesPhaseOrder(t *testing.T) {
	r := fpRand(12345)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.intn(6)
		w := &Workload{Benchmark: "prop", BatchSize: 20, Phases: randomPhases(&r, n)}
		shuffled := &Workload{Benchmark: "prop", BatchSize: 20, Phases: permute(&r, w.Phases)}

		// The reordered workload holds the identical phase multiset: its
		// per-phase summaries collide with the original's as a set. The
		// fingerprints must still differ.
		if w.Fingerprint() == shuffled.Fingerprint() {
			t.Fatalf("trial %d: permuted workload shares fingerprint %#x", trial, w.Fingerprint())
		}

		// Sanity inside the same trial: equal content hashes equal.
		clone := &Workload{Benchmark: "prop", BatchSize: 20, Phases: append([]Phase(nil), w.Phases...)}
		if w.Fingerprint() != clone.Fingerprint() {
			t.Fatalf("trial %d: identical workloads disagree on fingerprint", trial)
		}
	}
}

// TestFingerprintOrderBeyondCollidingSummaries constructs the sharpest
// version of the collision: two phases with identical *streams* (same
// counts, footprint, pattern, reuse), differing only in name, swapped
// between two workloads. Their phasesum sketches are equal element-wise
// after sorting — a true summary collision — and the fingerprints still
// differ.
func TestFingerprintOrderBeyondCollidingSummaries(t *testing.T) {
	var counts isa.Counts
	counts.Add(isa.MEM, 50000)
	counts.Add(isa.ALU, 20000)
	mk := func(name string) Phase {
		return Phase{
			Name: name, Counts: counts, Footprint: 1 << 20,
			Pattern: Sequential, StrideBytes: 64, Reuse: 0.5,
			Parallelism: 4096, VectorWidth: 1, Launches: 1,
		}
	}
	a := &Workload{Benchmark: "col", BatchSize: 20, Phases: []Phase{mk("p0"), mk("p1")}}
	b := &Workload{Benchmark: "col", BatchSize: 20, Phases: []Phase{mk("p1"), mk("p0")}}

	// Demonstrate the summary collision: both orderings sketch to the
	// same per-phase histograms (the stream is phase-symmetric here).
	addrs := make([]uint64, 2048)
	for i := range addrs {
		addrs[i] = uint64(i%512) << phasesum.LineShift
	}
	ends := []int{1024, 2048}
	sa := phasesum.Summarize(addrs, ends)
	sb := phasesum.Summarize(addrs, ends)
	if sa.Line[0] != sb.Line[0] || sa.Line[1] != sb.Line[1] {
		t.Fatal("setup: expected colliding summaries")
	}

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("swapped-phase workloads share a fingerprint despite colliding summaries")
	}
}
