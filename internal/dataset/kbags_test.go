package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"mapc/internal/faultinject"
	"mapc/internal/parallel"
)

// This file is the k-app-bag property suite: it pins the generalization
// from fixed pairs to k-member bags (k = 2..8) with three families of
// invariants:
//
//  1. permutation invariance — features, fairness and the measured bag
//     time depend only on the *multiset* of members, never on the order
//     the caller lists them;
//  2. k=2 reduction — the pair corpus is byte-identical to the legacy
//     pipeline (the golden SHA-256 constants in golden_hash_test.go pass
//     unmodified; here we additionally pin config-fingerprint equality);
//  3. differential oracles at k>2 — memo-on/memo-off, eviction pressure
//     and every worker count must hash bit-identically, and kill+resume
//     must reproduce the uninterrupted corpus.

// hashCorpusK is hashCorpus generalized to any bag size (the original
// stays pair-shaped because its output feeds the recorded golden
// constants). At k=2 the two serializations differ only in the member
// separator, not in coverage: every numeric field is hashed.
func hashCorpusK(c *Corpus) string {
	var sb strings.Builder
	f := func(v float64) {
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		sb.WriteByte(',')
	}
	fmt.Fprintf(&sb, "names=%s;", strings.Join(c.FeatureNames, ","))
	f(c.CPUTimeDivisor)
	for i := range c.Points {
		p := &c.Points[i]
		fmt.Fprintf(&sb, ";%s:%t:", BagKeyOf(p.Members), p.Homogeneous)
		for _, v := range p.X {
			f(v)
		}
		f(p.Y)
		f(p.Fairness)
		for _, v := range p.CPUTimes {
			f(v)
		}
		for _, v := range p.GPUTimes {
			f(v)
		}
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// kConfig is smallConfig at bag size k.
func kConfig(k int) Config {
	cfg := smallConfig()
	cfg.K = k
	return cfg
}

// binomial returns C(n, k).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// TestConfigKValidation pins the accepted bag-size range: 0 (legacy
// default, meaning 2), and 2..MaxApps inclusive; everything else is
// refused at generator construction.
func TestConfigKValidation(t *testing.T) {
	for _, k := range []int{0, 2, 3, 8} {
		cfg := smallConfig()
		cfg.K = k
		if _, err := NewGenerator(cfg); err != nil {
			t.Errorf("K=%d rejected: %v", k, err)
		}
	}
	for _, k := range []int{-1, 1, 9, 100} {
		cfg := smallConfig()
		cfg.K = k
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("K=%d accepted; want a validation error", k)
		}
	}
	if got := (Config{}).EffectiveK(); got != 2 {
		t.Errorf("EffectiveK(0) = %d, want the legacy pair default 2", got)
	}
	if got := (Config{K: 5}).EffectiveK(); got != 5 {
		t.Errorf("EffectiveK(5) = %d", got)
	}
}

// TestFingerprintPairCompat pins journal compatibility across the
// generalization: a K=0 (default) config and an explicit K=2 config share
// one fingerprint — so pair journals written before the k-sweep existed
// keep resuming — while every k>2 fingerprint is distinct from the pair
// one and from each other.
func TestFingerprintPairCompat(t *testing.T) {
	base := smallConfig() // K=0
	two := kConfig(2)
	if base.Fingerprint() != two.Fingerprint() {
		t.Errorf("K=0 and K=2 fingerprints differ:\n  %s\n  %s",
			base.Fingerprint(), two.Fingerprint())
	}
	seen := map[string]int{base.Fingerprint(): 2}
	for k := 3; k <= 8; k++ {
		fp := kConfig(k).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("K=%d and K=%d share fingerprint %q", k, prev, fp)
		}
		seen[fp] = k
	}
}

// TestBagsKSweepShapes pins the enumeration plan at every supported k on
// the small registry (3 benchmarks x 3 batches, 2 mixed bags):
// n*B homogeneous k-copy bags, C(n,k) distinct-benchmark combinations
// with cycling batch sizes, then the mixed-batch walk — and Generate()
// yields exactly one point per bag, in bag order, as multisets.
func TestBagsKSweepShapes(t *testing.T) {
	const n, B, mixed = 3, 3, 2
	for k := 2; k <= 8; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			cfg := kConfig(k)
			gen, err := NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bags, err := gen.Bags()
			if err != nil {
				t.Fatal(err)
			}
			want := n*B + binomial(n, k) + mixed
			if len(bags) != want {
				t.Fatalf("k=%d: %d bags, want %d (= %d homogeneous + C(%d,%d)=%d + %d mixed)",
					k, len(bags), want, n*B, n, k, binomial(n, k), mixed)
			}
			for i, bag := range bags {
				if len(bag) != k {
					t.Fatalf("bag %d has %d members, want %d: %v", i, len(bag), k, bag)
				}
			}
			// Homogeneous prefix: k identical copies per (benchmark, batch).
			for i := 0; i < n*B; i++ {
				for _, m := range bags[i][1:] {
					if m != bags[i][0] {
						t.Errorf("homogeneous bag %d mixes members: %v", i, bags[i])
					}
				}
			}
			// Combination block: k distinct benchmarks, one shared batch.
			for i := n * B; i < n*B+binomial(n, k); i++ {
				seen := map[string]bool{}
				for _, m := range bags[i] {
					if seen[m.Benchmark] {
						t.Errorf("combination bag %d repeats benchmark %s: %v", i, m.Benchmark, bags[i])
					}
					seen[m.Benchmark] = true
					if m.Batch != bags[i][0].Batch {
						t.Errorf("combination bag %d mixes batches: %v", i, bags[i])
					}
				}
			}
			// Mixed tail: never all one benchmark, batches off the base size.
			for i := len(bags) - mixed; i < len(bags); i++ {
				allSame := true
				for _, m := range bags[i][1:] {
					if m.Benchmark != bags[i][0].Benchmark {
						allSame = false
					}
				}
				if allSame {
					t.Errorf("mixed bag %d is single-benchmark: %v", i, bags[i])
				}
				for _, m := range bags[i] {
					if m.Batch == cfg.BatchSizes[0] {
						t.Errorf("mixed bag %d uses the base batch size: %v", i, bags[i])
					}
				}
			}

			// Generate() is the same plan, measured: point i <-> bag i.
			c, err := gen.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Points) != len(bags) {
				t.Fatalf("%d points for %d bags", len(c.Points), len(bags))
			}
			wantWidth := k*10 + 1 // per-app block is 2 + NumCategories = 10
			if len(c.FeatureNames) != wantWidth {
				t.Errorf("k=%d feature width %d, want %d", k, len(c.FeatureNames), wantWidth)
			}
			for i := range c.Points {
				p := &c.Points[i]
				if sortedBagKey(p.Members) != sortedBagKey(bags[i]) {
					t.Errorf("point %d members %v, bag %v", i, p.Members, bags[i])
				}
				if len(p.X) != wantWidth {
					t.Errorf("point %d: %d features, want %d", i, len(p.X), wantWidth)
				}
				if len(p.CPUTimes) != k || len(p.GPUTimes) != k {
					t.Errorf("point %d: %d/%d isolated times, want %d each",
						i, len(p.CPUTimes), len(p.GPUTimes), k)
				}
				if p.Fairness <= 0 || p.Fairness > 1 {
					t.Errorf("point %d: fairness %v outside (0,1]", i, p.Fairness)
				}
			}
		})
	}
}

// sortedBagKey is the multiset identity of a bag: its key after sorting
// by (benchmark, batch).
func sortedBagKey(ms []Member) string {
	s := append([]Member(nil), ms...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Benchmark < s[j-1].Benchmark ||
			(s[j].Benchmark == s[j-1].Benchmark && s[j].Batch < s[j-1].Batch)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return BagKeyOf(s)
}

// TestBagPermutationInvariance is the headline property: for k in
// {3, 4, 8}, every permutation of a bag yields bit-identical features,
// fairness, measured bag time and isolated-time vectors (after aligning
// by the canonical member order). Randomized: 20 shuffles per bag from a
// fixed seed.
func TestBagPermutationInvariance(t *testing.T) {
	gen, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	bagsByK := map[int][]Member{
		3: {
			{Benchmark: "fast", Batch: 20},
			{Benchmark: "hog", Batch: 40},
			{Benchmark: "knn", Batch: 80},
		},
		4: {
			{Benchmark: "fast", Batch: 20},
			{Benchmark: "fast", Batch: 80},
			{Benchmark: "hog", Batch: 40},
			{Benchmark: "knn", Batch: 40},
		},
		// k=8 exceeds the registry size, so members repeat — the pipeline
		// supports duplicate (benchmark, batch) members and must stay
		// order-blind for them too.
		8: {
			{Benchmark: "fast", Batch: 20},
			{Benchmark: "fast", Batch: 40},
			{Benchmark: "fast", Batch: 80},
			{Benchmark: "hog", Batch: 20},
			{Benchmark: "hog", Batch: 40},
			{Benchmark: "knn", Batch: 20},
			{Benchmark: "knn", Batch: 80},
			{Benchmark: "knn", Batch: 80},
		},
	}
	for k, base := range bagsByK {
		k, base := k, base
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			wantX, wantFair, err := gen.BagFeatures(base)
			if err != nil {
				t.Fatal(err)
			}
			wantPt, err := gen.MeasureBag(base)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(k)))
			for trial := 0; trial < 20; trial++ {
				perm := append([]Member(nil), base...)
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				x, fair, err := gen.BagFeatures(perm)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !reflect.DeepEqual(x, wantX) {
					t.Fatalf("trial %d: features depend on member order\nperm %v\n got %v\nwant %v",
						trial, perm, x, wantX)
				}
				if fair != wantFair {
					t.Fatalf("trial %d: fairness %v != %v for %v", trial, fair, wantFair, perm)
				}
				pt, err := gen.MeasureBag(perm)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if pt.Y != wantPt.Y {
					t.Fatalf("trial %d: bag time %v != %v for %v", trial, pt.Y, wantPt.Y, perm)
				}
				if !reflect.DeepEqual(pt.Members, wantPt.Members) {
					t.Fatalf("trial %d: canonical member order unstable: %v vs %v",
						trial, pt.Members, wantPt.Members)
				}
				if !reflect.DeepEqual(pt.X, wantPt.X) ||
					!reflect.DeepEqual(pt.CPUTimes, wantPt.CPUTimes) ||
					!reflect.DeepEqual(pt.GPUTimes, wantPt.GPUTimes) {
					t.Fatalf("trial %d: point payload depends on member order for %v", trial, perm)
				}
			}
		})
	}
}

// TestBagTimeMonotoneInMembers is the aggregate-slowdown sanity property:
// adding an application to a bag can only increase contention — the
// measured bag time must never drop as the bag grows, and each bag runs
// at least as long as its slowest member runs alone.
func TestBagTimeMonotoneInMembers(t *testing.T) {
	gen, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := []Member{
		{Benchmark: "fast", Batch: 20},
		{Benchmark: "hog", Batch: 40},
		{Benchmark: "knn", Batch: 80},
		{Benchmark: "fast", Batch: 80},
		{Benchmark: "hog", Batch: 20},
		{Benchmark: "knn", Batch: 20},
		{Benchmark: "fast", Batch: 40},
		{Benchmark: "knn", Batch: 40},
	}
	prev := 0.0
	for k := 2; k <= len(members); k++ {
		bag := members[:k]
		pt, err := gen.MeasureBag(bag)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Y < prev {
			t.Errorf("bag time dropped from %v to %v when growing to k=%d (%v)",
				prev, pt.Y, k, bag)
		}
		var slowest float64
		for _, gt := range pt.GPUTimes {
			if gt > slowest {
				slowest = gt
			}
		}
		if pt.Y < slowest {
			t.Errorf("k=%d: shared bag time %v beats the slowest member alone (%v); contention went negative",
				k, pt.Y, slowest)
		}
		prev = pt.Y
	}
}

// TestCorpusKDifferentialOracles is the k>2 equivalent of the golden-hash
// suite, using self-referential hashes (no recorded constants exist for
// k>2): for k in {3, 4} the corpus must hash bit-identically with the
// memo on, off (SimCacheMB=0), under 1 MiB eviction pressure, and at
// worker counts 1, 4 and 7.
func TestCorpusKDifferentialOracles(t *testing.T) {
	for _, k := range []int{3, 4} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ref := hashCorpusK(generateWithWorkers(t, kConfig(k), 1))

			for _, workers := range []int{4, 7} {
				c := generateWithWorkers(t, kConfig(k), workers)
				if got := hashCorpusK(c); got != ref {
					t.Errorf("workers=%d corpus hash %s != serial %s: worker invariance broken at k=%d",
						workers, got, ref, k)
				}
			}
			memoOff := kConfig(k)
			memoOff.SimCacheMB = 0
			if got := hashCorpusK(generateWithWorkers(t, memoOff, 2)); got != ref {
				t.Errorf("memo-off corpus hash %s != memo-on %s at k=%d", got, ref, k)
			}
			starved := kConfig(k)
			starved.SimCacheMB = 1
			if got := hashCorpusK(generateWithWorkers(t, starved, 2)); got != ref {
				t.Errorf("eviction-pressure corpus hash %s != reference %s at k=%d", got, ref, k)
			}
		})
	}
}

// TestBagKeyPairEquality pins that BagKeyOf on a two-member slice is the
// legacy pair key byte for byte — the journal replay index depends on it.
func TestBagKeyPairEquality(t *testing.T) {
	a := Member{Benchmark: "sift", Batch: 20}
	b := Member{Benchmark: "surf", Batch: 40}
	if BagKey(a, b) != BagKeyOf([]Member{a, b}) {
		t.Errorf("BagKey %q != BagKeyOf %q", BagKey(a, b), BagKeyOf([]Member{a, b}))
	}
	if got := BagKeyOf([]Member{a, b}); got != "sift/20+surf/40" {
		t.Errorf("pair key %q, want sift/20+surf/40", got)
	}
}

// TestMixedBagsKDegenerateRegistries is the satellite regression for the
// generalized mixed-batch walk: registries where the pair-specific walk
// used to spin (or that only k>2 can hit) must either terminate with the
// requested bags or fail fast with the descriptive collision error.
func TestMixedBagsKDegenerateRegistries(t *testing.T) {
	batches := []int{20, 40, 80}

	// Single benchmark: every k-member candidate is homogeneous, so no
	// mixed bag exists at any k. Must error, not hang.
	for _, k := range []int{3, 4, 8} {
		_, err := mixedBags([]string{"fast"}, batches, 2, k)
		if err == nil {
			t.Fatalf("k=%d single-benchmark walk did not error", k)
		}
		if !strings.Contains(err.Error(), "mixed-batch") ||
			!strings.Contains(err.Error(), fmt.Sprintf("k=%d", k)) {
			t.Errorf("k=%d: undescriptive error: %v", k, err)
		}
	}

	// Two benchmarks at k=3: bags must repeat a benchmark without being
	// all one benchmark, and even a huge request completes within the
	// bounded walk (duplicate bags are allowed; only single-benchmark
	// collapses are skipped).
	for _, count := range []int{2, 10_000} {
		out, err := mixedBags([]string{"fast", "hog"}, batches, count, 3)
		if err != nil {
			t.Fatalf("k=3 two-benchmark walk (count=%d) failed: %v", count, err)
		}
		if len(out) != count {
			t.Fatalf("k=3 walk produced %d bags, want %d", len(out), count)
		}
		for _, bag := range out {
			if len(bag) != 3 {
				t.Fatalf("bag %v has %d members", bag, len(bag))
			}
			allSame := true
			for _, m := range bag[1:] {
				if m.Benchmark != bag[0].Benchmark {
					allSame = false
				}
			}
			if allSame {
				t.Errorf("mixed bag %v is single-benchmark", bag)
			}
		}
	}

	// Legacy skip conditions hold at every k.
	if out, err := mixedBags([]string{"fast", "hog"}, []int{20, 40}, 3, 5); err != nil || out != nil {
		t.Errorf("two-batch registry should skip mixed bags, got %v, %v", out, err)
	}
	if out, err := mixedBags([]string{"fast", "hog"}, batches, 0, 5); err != nil || out != nil {
		t.Errorf("zero count should skip mixed bags, got %v, %v", out, err)
	}

	// End to end: a one-benchmark generator at k=3 with mixed bags
	// requested errors out of Generate instead of stalling.
	cfg := DefaultConfig()
	cfg.Benchmarks = []string{"fast"}
	cfg.BatchSizes = batches
	cfg.MixedPairs = 2
	cfg.K = 3
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(); err == nil {
		t.Fatal("k=3 Generate with an unsatisfiable mixed walk did not error")
	}
}

// TestChaosKillAndResumeK4 extends the crash-equivalence invariant to a
// 4-app corpus: a journaled run killed by an injected panic, resumed by a
// fresh generator, hashes identically to an uninterrupted run; and the
// k=4 journal refuses to resume under a pair config (fingerprint guard).
func TestChaosKillAndResumeK4(t *testing.T) {
	cfg := kConfig(4)
	cfg.Workers = 8
	ref := hashCorpusK(generateWithWorkers(t, cfg, 8))
	nBags := len(mustBags(t, cfg))
	path := journalPath(t)

	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.RandomKillPlan(1, FaultSitePoint, nBags)
	gen.SetFaultInjector(faultinject.New(plan))
	_, err = gen.Resume(context.Background(), j)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("killed k=4 run returned %v, want *parallel.PanicError", err)
	}
	// Process "death": the journal handle is abandoned un-closed.

	// A pair config must not be able to adopt the k=4 journal.
	pairCfg := smallConfig()
	if _, err := OpenJournal(path, pairCfg); err == nil {
		t.Error("k=4 journal resumed under a k=2 config; fingerprint guard missing")
	}

	c, measured := resumeToCompletion(t, cfg, path)
	if got := hashCorpusK(c); got != ref {
		t.Errorf("resumed k=4 corpus hash = %s, want uninterrupted %s", got, ref)
	}
	if measured == 0 || measured >= nBags {
		t.Errorf("resume re-measured %d of %d bags; expected a strict subset after the kill",
			measured, nBags)
	}
}
