package vision

import (
	"mapc/internal/trace"
	"mapc/internal/xrand"
)

// SVM trains a binary support-vector machine on image descriptors with a
// simplified SMO optimizer (after Platt; the role ThunderSVM plays in the
// paper's suite) and then classifies the descriptors with the trained model.
type SVM struct {
	C         float64 // box constraint
	Tol       float64 // KKT tolerance
	MaxPasses int     // SMO passes without progress before stopping
	MaxPoints int     // training-set cap per run
	hog       *HoG
}

// NewSVM returns a linear-kernel SMO trainer with conventional parameters.
func NewSVM() *SVM {
	return &SVM{C: 1.0, Tol: 1e-3, MaxPasses: 3, MaxPoints: 96, hog: NewHoG()}
}

// Name implements Benchmark.
func (s *SVM) Name() string { return "svm" }

// Scene implements Benchmark.
func (s *SVM) Scene() SceneKind { return SceneTextured }

func (s *SVM) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	// Feature extraction (instrumented inside HoG).
	var xs [][]float64
	for _, im := range images {
		xs = append(xs, s.hog.Describe(im, rec)...)
	}
	if len(xs) > s.MaxPoints {
		xs = xs[:s.MaxPoints]
	}
	// Deterministic labels: descriptors with above-median first-bin mass
	// are the positive class, giving a balanced, learnable problem.
	ys := makeLabels(xs)

	alpha, b, sv := s.train(xs, ys, rec)

	// Prediction phase over the training set (the benchmark's inference
	// half): dot products against the support vectors.
	rec.BeginPhase("svm-predict", int64(len(xs)*len(xs[0])*8), trace.PhaseOpts{
		Pattern:     trace.Random,
		Reuse:       0.35,
		Parallelism: len(xs) * maxInt(sv, 1),
		VectorWidth: simdWidth,
	})
	correct := 0
	for i, x := range xs {
		var f float64
		for j := range xs {
			if alpha[j] == 0 {
				continue
			}
			f += alpha[j] * float64(ys[j]) * Dot(x, xs[j], rec)
		}
		f += b
		if (f >= 0) == (ys[i] > 0) {
			correct++
		}
	}
	rec.FP(uint64(len(xs)) * 4)
	rec.Control(uint64(len(xs)) * uint64(len(xs)))
	rec.EndPhase()

	return map[string]float64{
		"supportVectors": float64(sv),
		"trainAccuracy":  float64(correct) / float64(len(xs)),
	}, nil
}

// makeLabels assigns ±1 by comparing a fixed projection to its median.
func makeLabels(xs [][]float64) []int {
	proj := make([]float64, len(xs))
	rng := xrand.New(0x57A715)
	w := make([]float64, len(xs[0]))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for i, x := range xs {
		for j := range x {
			proj[i] += w[j] * x[j]
		}
	}
	med := medianOf(proj)
	ys := make([]int, len(xs))
	for i := range ys {
		if proj[i] >= med {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	return ys
}

func medianOf(v []float64) float64 {
	cp := append([]float64(nil), v...)
	// insertion sort: n is small and this avoids pulling in sort for a helper
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// train runs simplified SMO and returns the multipliers, bias, and the
// number of support vectors.
func (s *SVM) train(xs [][]float64, ys []int, rec *trace.Recorder) ([]float64, float64, int) {
	n := len(xs)
	dim := len(xs[0])
	rec.BeginPhase("svm-smo-train", int64(n*dim*8+n*n/4), trace.PhaseOpts{
		Pattern: trace.Random,
		Reuse:   0.25,
		// GPU SVM solvers (ThunderSVM) evaluate kernel-matrix tiles in
		// bulk: the phase exposes n*n independent kernel evaluations.
		Parallelism: n * n,
		VectorWidth: simdWidth,
	})
	defer rec.EndPhase()

	alpha := make([]float64, n)
	var b float64
	rng := xrand.New(0x5310)

	fOf := func(i int) float64 {
		var f float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				f += alpha[j] * float64(ys[j]) * Dot(xs[i], xs[j], rec)
			}
		}
		return f + b
	}

	passes := 0
	// Hard cap on sweeps keeps the benchmark's runtime bounded even on
	// adversarial synthetic data; real SMO converges far earlier.
	for total := 0; passes < s.MaxPasses && total < 8; total++ {
		changed := 0
		for i := 0; i < n; i++ {
			ei := fOf(i) - float64(ys[i])
			rec.FP(2)
			if !((float64(ys[i])*ei < -s.Tol && alpha[i] < s.C) ||
				(float64(ys[i])*ei > s.Tol && alpha[i] > 0)) {
				rec.Control(1)
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := fOf(j) - float64(ys[j])

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if ys[i] != ys[j] {
				lo = maxF(0, aj-ai)
				hi = minF(s.C, s.C+aj-ai)
			} else {
				lo = maxF(0, ai+aj-s.C)
				hi = minF(s.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			kii := Dot(xs[i], xs[i], rec)
			kjj := Dot(xs[j], xs[j], rec)
			kij := Dot(xs[i], xs[j], rec)
			eta := 2*kij - kii - kjj
			rec.FP(6)
			if eta >= 0 {
				continue
			}
			alpha[j] = aj - float64(ys[j])*(ei-ej)/eta
			if alpha[j] > hi {
				alpha[j] = hi
			} else if alpha[j] < lo {
				alpha[j] = lo
			}
			if absF(alpha[j]-aj) < 1e-5 {
				alpha[j] = aj
				continue
			}
			alpha[i] = ai + float64(ys[i]*ys[j])*(aj-alpha[j])
			b1 := b - ei - float64(ys[i])*(alpha[i]-ai)*kii - float64(ys[j])*(alpha[j]-aj)*kij
			b2 := b - ej - float64(ys[i])*(alpha[i]-ai)*kij - float64(ys[j])*(alpha[j]-aj)*kjj
			switch {
			case alpha[i] > 0 && alpha[i] < s.C:
				b = b1
			case alpha[j] > 0 && alpha[j] < s.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			rec.FP(24)
			rec.Control(8)
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		rec.Control(uint64(n))
		rec.Stack(uint64(n)) // fOf call frames
	}

	sv := 0
	for _, a := range alpha {
		if a > 0 {
			sv++
		}
	}
	return alpha, b, sv
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absF(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
