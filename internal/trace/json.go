package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mapc/internal/isa"
)

// JSON serialization lets workloads be archived and replayed without
// re-running the instrumented benchmarks — useful for regression corpora
// and for feeding externally captured traces into the simulators.

type workloadJSON struct {
	Format        string      `json:"format"`
	Benchmark     string      `json:"benchmark"`
	BatchSize     int         `json:"batch_size"`
	TransferBytes int64       `json:"transfer_bytes,omitempty"`
	Phases        []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name           string            `json:"name"`
	Counts         map[string]uint64 `json:"counts"`
	Footprint      int64             `json:"footprint"`
	Pattern        string            `json:"pattern"`
	StrideBytes    int64             `json:"stride_bytes,omitempty"`
	Reuse          float64           `json:"reuse"`
	Parallelism    int               `json:"parallelism"`
	VectorWidth    int               `json:"vector_width"`
	BatchInvariant bool              `json:"batch_invariant,omitempty"`
	Launches       int               `json:"launches,omitempty"`
}

const workloadFormat = "mapc-workload-v1"

// MarshalJSON implements json.Marshaler with named categories and patterns
// for human-readable archives.
func (w *Workload) MarshalJSON() ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := workloadJSON{
		Format:        workloadFormat,
		Benchmark:     w.Benchmark,
		BatchSize:     w.BatchSize,
		TransferBytes: w.TransferBytes,
		Phases:        make([]phaseJSON, len(w.Phases)),
	}
	for i := range w.Phases {
		p := &w.Phases[i]
		counts := map[string]uint64{}
		for c := isa.Category(0); c < isa.NumCategories; c++ {
			if p.Counts[c] > 0 {
				counts[c.String()] = p.Counts[c]
			}
		}
		out.Phases[i] = phaseJSON{
			Name: p.Name, Counts: counts, Footprint: p.Footprint,
			Pattern: p.Pattern.String(), StrideBytes: p.StrideBytes,
			Reuse: p.Reuse, Parallelism: p.Parallelism,
			VectorWidth: p.VectorWidth, BatchInvariant: p.BatchInvariant,
			Launches: p.Launches,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating the result.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var in workloadJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("trace: decoding workload: %w", err)
	}
	if in.Format != workloadFormat {
		return fmt.Errorf("trace: unsupported workload format %q", in.Format)
	}
	out := Workload{
		Benchmark:     in.Benchmark,
		BatchSize:     in.BatchSize,
		TransferBytes: in.TransferBytes,
		Phases:        make([]Phase, len(in.Phases)),
	}
	for i, pj := range in.Phases {
		pat, err := parsePattern(pj.Pattern)
		if err != nil {
			return fmt.Errorf("trace: phase %d: %w", i, err)
		}
		p := Phase{
			Name: pj.Name, Footprint: pj.Footprint, Pattern: pat,
			StrideBytes: pj.StrideBytes, Reuse: pj.Reuse,
			Parallelism: pj.Parallelism, VectorWidth: pj.VectorWidth,
			BatchInvariant: pj.BatchInvariant, Launches: pj.Launches,
		}
		for name, n := range pj.Counts {
			c, err := isa.ParseCategory(name)
			if err != nil {
				return fmt.Errorf("trace: phase %d: %w", i, err)
			}
			p.Counts[c] = n
		}
		out.Phases[i] = p
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*w = out
	return nil
}

func parsePattern(s string) (Pattern, error) {
	for p := Pattern(0); p < numPatterns; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", s)
}

// WriteJSON streams the workload to w as indented JSON.
func (w *Workload) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// ReadJSON decodes a workload previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Workload, error) {
	var w Workload
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	return &w, nil
}
