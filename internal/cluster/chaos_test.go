package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mapc/internal/faultinject"
	"mapc/internal/serve"
)

func pairBody(a string, ab int, b string, bb int) string {
	return fmt.Sprintf(`{"a":{"benchmark":%q,"batch":%d},"b":{"benchmark":%q,"batch":%d}}`, a, ab, b, bb)
}

// fixturePairs enumerates every pair the fixture model can serve, as
// member slices (for candidate discovery) and request bodies.
func fixturePairs() (bags [][]serve.Member, bodies []string) {
	for _, a := range []string{"sift", "surf"} {
		for _, b := range []string{"sift", "surf"} {
			for _, ab := range []int{20, 40} {
				for _, bb := range []int{20, 40} {
					bags = append(bags, []serve.Member{
						{Benchmark: a, Batch: ab}, {Benchmark: b, Batch: bb}})
					bodies = append(bodies, pairBody(a, ab, b, bb))
				}
			}
		}
	}
	return bags, bodies
}

// bagRoutedFirstTo returns a request body whose canonical key routes to
// wantURL as the first candidate, so tests can deterministically aim the
// first forward at a chosen replica.
func bagRoutedFirstTo(t *testing.T, pool *Pool, wantURL string) string {
	t.Helper()
	bags, bodies := fixturePairs()
	for i, ms := range bags {
		if cands := pool.Route(serve.CanonicalKey(ms)); len(cands) > 0 && cands[0] == wantURL {
			return bodies[i]
		}
	}
	t.Fatalf("no fixture bag routes first to %s", wantURL)
	return ""
}

// TestRouterPerAttemptTimeoutFailover is the satellite-1 regression test:
// a replica that accepts connections and then never answers used to stall
// a request for the full end-to-end Timeout (60s by default) because no
// per-attempt bound existed. With AttemptTimeout the router abandons the
// black-holed forward quickly and fails over to the live candidate.
func TestRouterPerAttemptTimeoutFailover(t *testing.T) {
	_, live := newReplica(t)
	dark := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's client-disconnect watcher runs,
		// then sit dark until the router abandons the attempt (the timer is
		// only a leak guard for test teardown).
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	}))
	t.Cleanup(dark.Close)

	pool, err := NewPool(PoolConfig{Replicas: []string{live.URL, dark.URL}, FailAfter: 1, ReviveAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{
		Pool:           pool,
		Timeout:        30 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := bagRoutedFirstTo(t, pool, dark.URL)

	start := time.Now()
	rr := post(t, rt.Handler(), body)
	elapsed := time.Since(start)
	if rr.Code != http.StatusOK {
		t.Fatalf("request aimed at the dark replica answered %d: %s", rr.Code, rr.Body)
	}
	// One 300ms attempt + failover + a real simulation; nowhere near the
	// 30s end-to-end budget (and pre-fix this took the full Timeout).
	if elapsed > 10*time.Second {
		t.Fatalf("failover took %v; the per-attempt timeout is not bounding the dark forward", elapsed)
	}
	if elapsed < 300*time.Millisecond {
		t.Fatalf("request finished in %v without waiting out the dark attempt; the test routed wrong", elapsed)
	}
	// The dark replica was passively reported: FailAfter=1 ejects it.
	if got := pool.BreakerState(dark.URL); got != "open" {
		t.Errorf("dark replica breaker %q after the timed-out forward, want open", got)
	}
}

// chaosRouter builds a router over the given replica URLs whose forward
// client runs through a faultinject.Transport with the given plan.
func chaosRouter(t *testing.T, urls []string, plan faultinject.Plan, mut func(*RouterConfig)) (*Router, *faultinject.Transport) {
	t.Helper()
	pool, err := NewPool(PoolConfig{Replicas: urls, FailAfter: 3, ReviveAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := faultinject.NewTransport(nil, plan)
	cfg := RouterConfig{
		Pool:           pool,
		Client:         &http.Client{Transport: tr},
		Timeout:        30 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, tr
}

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	return strings.TrimPrefix(rawURL, "http://")
}

// TestRouterChaosBlackholedReplica black-holes every request to one of two
// replicas at the transport and drives the full fixture mix through the
// router: every request must still answer 200 (failover), the sick
// replica's breaker must open, and the retry metric must move.
func TestRouterChaosBlackholedReplica(t *testing.T) {
	_, tsA := newReplica(t)
	_, tsB := newReplica(t)
	plan := faultinject.Plan{Faults: []faultinject.Fault{{
		Site:  faultinject.NetSite(hostOf(t, tsB.URL)),
		Index: faultinject.AnyIndex,
		Kind:  faultinject.KindBlackhole,
	}}}
	rt, tr := chaosRouter(t, []string{tsA.URL, tsB.URL}, plan, nil)
	h := rt.Handler()

	_, bodies := fixturePairs()
	for i, body := range bodies {
		rr := post(t, h, body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d answered %d with one replica black-holed: %s", i, rr.Code, rr.Body)
		}
	}
	if got := rt.pool.BreakerState(tsB.URL); got != "open" {
		t.Errorf("black-holed replica breaker %q, want open", got)
	}
	if rt.metrics.retries.Load() == 0 {
		t.Error("no retries recorded despite a black-holed replica")
	}
	if tr.Requests(faultinject.NetSite(hostOf(t, tsB.URL))) == 0 {
		t.Error("chaos transport never saw traffic to the black-holed site")
	}
	// Once the breaker opened, pick() stops aiming first attempts at the
	// dark replica: a warm re-run completes without growing the retry
	// counter by more than the occasional half-open trial.
	before := rt.metrics.retries.Load()
	for _, body := range bodies {
		if rr := post(t, h, body); rr.Code != http.StatusOK {
			t.Fatalf("warm request answered %d: %s", rr.Code, rr.Body)
		}
	}
	if after := rt.metrics.retries.Load(); after-before > 2 {
		t.Errorf("retries grew %d→%d on the warm pass; the breaker is not steering traffic away", before, after)
	}
}

// TestRouterSeededChaosBitIdentity is the exactness gate under faults: a
// seeded random network plan (delays, resets, 5xx bursts, truncated
// bodies) injected into the forward path must never change an answer —
// every request still completes 200 and the bodies are bit-identical
// (modulo the cached flag) to a fault-free tier over the same replicas.
func TestRouterSeededChaosBitIdentity(t *testing.T) {
	_, tsA := newReplica(t)
	_, tsB := newReplica(t)
	urls := []string{tsA.URL, tsB.URL}

	// Fault-free baseline.
	rtClean, _ := chaosRouter(t, urls, faultinject.Plan{}, nil)
	_, bodies := fixturePairs()
	baseline := make([]string, len(bodies))
	for i, body := range bodies {
		rr := post(t, rtClean.Handler(), body)
		if rr.Code != http.StatusOK {
			t.Fatalf("baseline request %d answered %d: %s", i, rr.Code, rr.Body)
		}
		baseline[i] = normCached(rr.Body.String())
		if strings.Contains(rr.Body.String(), `"degraded": true`) {
			t.Fatalf("fault-free baseline answered degraded: %s", rr.Body)
		}
	}

	// Seeded chaos on both sites.
	var plan faultinject.Plan
	for _, u := range urls {
		p := faultinject.RandomNetworkPlan(42, faultinject.NetSite(hostOf(t, u)), 64)
		plan.Faults = append(plan.Faults, p.Faults...)
	}
	rtChaos, _ := chaosRouter(t, urls, plan, func(c *RouterConfig) {
		c.RetryBudget = 16
	})
	for i, body := range bodies {
		rr := post(t, rtChaos.Handler(), body)
		if rr.Code != http.StatusOK {
			t.Fatalf("chaos request %d answered %d: %s", i, rr.Code, rr.Body)
		}
		if got := normCached(rr.Body.String()); got != baseline[i] {
			t.Errorf("chaos request %d diverged from the fault-free answer:\nclean: %s\nchaos: %s", i, baseline[i], got)
		}
	}
}

// TestRouterRetryBudgetExhausted pins the give-up path: with every forward
// answering an injected 500 and a one-retry budget, the router fails 502
// naming the budget instead of hammering the tier, and the metric moves.
func TestRouterRetryBudgetExhausted(t *testing.T) {
	_, tsA := newReplica(t)
	_, tsB := newReplica(t)
	urls := []string{tsA.URL, tsB.URL}
	var plan faultinject.Plan
	for _, u := range urls {
		plan.Faults = append(plan.Faults, faultinject.Fault{
			Site:  faultinject.NetSite(hostOf(t, u)),
			Index: faultinject.AnyIndex,
			Kind:  faultinject.KindHTTPError,
			Code:  500,
		})
	}
	rt, _ := chaosRouter(t, urls, plan, func(c *RouterConfig) {
		c.RetryBudget = 1
	})
	rr := post(t, rt.Handler(), pairBody("sift", 20, "surf", 20))
	if rr.Code != http.StatusBadGateway {
		t.Fatalf("all-500 tier answered %d, want 502: %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), "retry budget") {
		t.Errorf("502 body %q does not name the retry budget", rr.Body)
	}
	if rt.metrics.budgetExhausted.Load() != 1 {
		t.Errorf("budgetExhausted = %d, want 1", rt.metrics.budgetExhausted.Load())
	}
}

// TestRouterInjected5xxRetriesOtherReplica pins the retryable-5xx policy:
// a non-503 5xx from one replica is replica-specific and must fail over
// (unlike a 400 or a 503, which propagate — covered by the existing
// router tests).
func TestRouterInjected5xxRetriesOtherReplica(t *testing.T) {
	_, tsA := newReplica(t)
	_, tsB := newReplica(t)
	urls := []string{tsA.URL, tsB.URL}
	// The first request to site A 500s; everything else passes.
	plan := faultinject.Plan{Faults: []faultinject.Fault{{
		Site:  faultinject.NetSite(hostOf(t, tsA.URL)),
		Index: 0,
		Kind:  faultinject.KindHTTPError,
		Code:  500,
		Once:  true,
	}}}
	rt, _ := chaosRouter(t, urls, plan, nil)
	body := bagRoutedFirstTo(t, rt.pool, tsA.URL)
	rr := post(t, rt.Handler(), body)
	if rr.Code != http.StatusOK {
		t.Fatalf("request answered %d after an injected 500, want failover to 200: %s", rr.Code, rr.Body)
	}
	if rt.metrics.retries.Load() == 0 {
		t.Error("no retries recorded; the injected 500 was not treated as retryable")
	}
}

// TestRouterHedgeWinsOnSlowReplica pins tail-latency hedging: when the
// owning replica sits on a request past HedgeDelay, the hedge to the next
// candidate answers first and the request completes far sooner than the
// slow replica would allow, counting a hedge win.
func TestRouterHedgeWinsOnSlowReplica(t *testing.T) {
	_, live := newReplica(t)
	_, slowBackend := newReplica(t)
	const stall = 3 * time.Second
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(stall):
		case <-r.Context().Done():
			return
		}
		slowBackend.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	pool, err := NewPool(PoolConfig{Replicas: []string{live.URL, slow.URL}, FailAfter: 1, ReviveAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{
		Pool:       pool,
		Timeout:    30 * time.Second,
		HedgeDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := bagRoutedFirstTo(t, pool, slow.URL)

	start := time.Now()
	rr := post(t, rt.Handler(), body)
	elapsed := time.Since(start)
	if rr.Code != http.StatusOK {
		t.Fatalf("hedged request answered %d: %s", rr.Code, rr.Body)
	}
	if elapsed >= stall {
		t.Fatalf("hedged request took %v (≥ the %v stall); the hedge never raced", elapsed, stall)
	}
	if rt.metrics.hedges.Load() == 0 || rt.metrics.hedgeWins.Load() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both ≥ 1", rt.metrics.hedges.Load(), rt.metrics.hedgeWins.Load())
	}
}
