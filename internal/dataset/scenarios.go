package dataset

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The scenario matrix: a k × share-skew grid replayed through the analytic
// fidelity tiers, each cell a full corpus generation with its own sampled
// differential oracle. This is the regime map the fractional-share and
// DRAM-contention closed forms unlock — before them, every skewed cell
// fell back to exact simulation and the grid cost hours instead of
// seconds. mapc-datagen -scenarios drives it interactively; benchjson
// records DefaultSkewScenarios into BENCH_baseline.json and CI gates the
// recorded analytic coverage and oracle bounds.

// ScenarioSpec is one cell of the matrix: a bag size and a share profile.
type ScenarioSpec struct {
	// K is the bag size (2..features.MaxApps).
	K int
	// Shares is the MPS share profile (relative weights, len == K), nil
	// for the uniform equal split.
	Shares []float64
}

// Name is the cell's canonical label, e.g. "k2:uniform" or "k4:0.7/0.15/0.1/0.05".
func (s ScenarioSpec) Name() string {
	if s.Shares == nil {
		return fmt.Sprintf("k%d:uniform", s.K)
	}
	return fmt.Sprintf("k%d:%s", s.K, sharesLabel(s.Shares))
}

// ParseScenarios parses a -scenarios flag value: semicolon-separated
// cells, each "k" or "k:uniform" for the equal split, or
// "k:w1/w2/.../wk" for an explicit share profile.
func ParseScenarios(spec string) ([]ScenarioSpec, error) {
	var out []ScenarioSpec
	for _, cell := range strings.Split(spec, ";") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		kPart, sharePart, _ := strings.Cut(cell, ":")
		k, err := strconv.Atoi(strings.TrimSpace(kPart))
		if err != nil {
			return nil, fmt.Errorf("dataset: scenario %q: bag size %q is not an integer", cell, kPart)
		}
		sc := ScenarioSpec{K: k}
		if sharePart != "" && sharePart != "uniform" {
			sc.Shares, err = ParseShares(sharePart)
			if err != nil {
				return nil, fmt.Errorf("dataset: scenario %q: %w", cell, err)
			}
			if len(sc.Shares) != k {
				return nil, fmt.Errorf("dataset: scenario %q: %d share weights for bag size %d", cell, len(sc.Shares), k)
			}
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: empty scenario list %q", spec)
	}
	return out, nil
}

// ParseShares parses a share vector flag value: weights separated by "/"
// or ",", e.g. "0.7/0.2/0.1". Validation beyond syntax (positivity,
// length against the bag size) happens in NewGenerator.
func ParseShares(spec string) ([]float64, error) {
	spec = strings.ReplaceAll(spec, ",", "/")
	parts := strings.Split(spec, "/")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: share weight %q is not a number", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: empty share vector %q", spec)
	}
	return out, nil
}

// DefaultSkewScenarios is the benchmarked k × share-skew grid recorded in
// BENCH_baseline.json (the "skew suite"): pairs and 4-bags from the
// uniform split down to a 0.05 minority share — the acceptance regime the
// fractional-share closed form must keep analytic.
func DefaultSkewScenarios() []ScenarioSpec {
	return []ScenarioSpec{
		{K: 2},
		{K: 2, Shares: []float64{0.7, 0.3}},
		{K: 2, Shares: []float64{0.95, 0.05}},
		{K: 4},
		{K: 4, Shares: []float64{0.7, 0.15, 0.1, 0.05}},
		{K: 4, Shares: []float64{0.85, 0.05, 0.05, 0.05}},
	}
}

// ScenarioResult is one generated cell.
type ScenarioResult struct {
	// Name is ScenarioSpec.Name().
	Name string `json:"name"`
	K    int    `json:"k"`
	// Shares is the profile's canonical label ("" for uniform).
	Shares string `json:"shares,omitempty"`
	// Points is the corpus size; PointsPerSec the cell's generation
	// throughput (wall clock, including its share of warm memo reuse).
	Points       int     `json:"points"`
	PointsPerSec float64 `json:"points_per_sec"`
	// AnalyticCoverage is the fraction of contended co-runs (CPU fairness
	// and GPU bag time) the closed-form model answered; fallbacks and
	// exact-by-configuration runs count against it.
	AnalyticCoverage float64 `json:"analytic_coverage"`
	// Fallback reasons, when any co-run fell back (mixed tier only).
	FallbackLowConfidence uint64 `json:"fallback_low_confidence,omitempty"`
	FallbackSubSMShare    uint64 `json:"fallback_sub_sm_share,omitempty"`
	FallbackBandwidthGate uint64 `json:"fallback_bandwidth_gate,omitempty"`
	// Oracle is the cell's sampled differential-oracle report (nil when
	// the matrix ran without oracle sampling).
	Oracle *OracleReport `json:"oracle,omitempty"`
}

// ScenarioReport is a whole matrix run.
type ScenarioReport struct {
	// Fidelity is the tier every cell generated under.
	Fidelity string `json:"fidelity"`
	// OracleFrac and OracleSeed record the sampling, 0/absent when off.
	OracleFrac float64          `json:"oracle_frac,omitempty"`
	OracleSeed uint64           `json:"oracle_seed,omitempty"`
	Scenarios  []ScenarioResult `json:"scenarios"`
}

// MinAnalyticCoverage is the matrix's worst per-cell coverage (1 for an
// empty report — nothing fell back).
func (r *ScenarioReport) MinAnalyticCoverage() float64 {
	min := 1.0
	for _, s := range r.Scenarios {
		if s.AnalyticCoverage < min {
			min = s.AnalyticCoverage
		}
	}
	return min
}

// MaxRelErrGPU is the worst sampled GPU bag-time error across cells.
func (r *ScenarioReport) MaxRelErrGPU() float64 {
	max := 0.0
	for _, s := range r.Scenarios {
		if s.Oracle != nil && s.Oracle.MaxRelErrGPU > max {
			max = s.Oracle.MaxRelErrGPU
		}
	}
	return max
}

// RunScenarios generates every cell of the matrix under base's tier
// (benchmarks, batches, workers, memo budget and fidelity all come from
// base; K and Shares come from the specs). oracleFrac > 0 re-measures
// that fraction of each cell's bags through the exact simulators
// (RunOracle) with the generation share vector threaded through. Cells
// run sequentially — each already parallelizes internally — and each gets
// a fresh generator, so per-cell coverage counters are exact.
func RunScenarios(base Config, specs []ScenarioSpec, oracleFrac float64, oracleSeed uint64) (*ScenarioReport, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("dataset: no scenarios to run")
	}
	rep := &ScenarioReport{
		Fidelity:   base.Fidelity.Effective().String(),
		OracleFrac: oracleFrac,
		OracleSeed: oracleSeed,
		Scenarios:  make([]ScenarioResult, 0, len(specs)),
	}
	for _, spec := range specs {
		cfg := base
		cfg.K = spec.K
		cfg.Shares = spec.Shares
		gen, err := NewGenerator(cfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: scenario %s: %w", spec.Name(), err)
		}
		start := time.Now()
		corpus, err := gen.Generate()
		if err != nil {
			return nil, fmt.Errorf("dataset: scenario %s: %w", spec.Name(), err)
		}
		elapsed := time.Since(start).Seconds()
		// Coverage from the generation-time counters only: RunOracle's
		// re-measurements tally into the same generator, so snapshot first.
		st := gen.FidelityStats()
		res := ScenarioResult{
			Name:                  spec.Name(),
			K:                     spec.K,
			Shares:                sharesLabel(spec.Shares),
			Points:                len(corpus.Points),
			FallbackLowConfidence: st.FallbackLowConfidence,
			FallbackSubSMShare:    st.FallbackSubSMShare,
			FallbackBandwidthGate: st.FallbackBandwidthGate,
		}
		if elapsed > 0 {
			res.PointsPerSec = float64(len(corpus.Points)) / elapsed
		}
		if total := st.AnalyticRuns + st.ExactFallbacks + st.ExactRuns; total > 0 {
			res.AnalyticCoverage = float64(st.AnalyticRuns) / float64(total)
		}
		if oracleFrac > 0 {
			orep, err := gen.RunOracle(oracleFrac, oracleSeed)
			if err != nil {
				return nil, fmt.Errorf("dataset: scenario %s oracle: %w", spec.Name(), err)
			}
			res.Oracle = &orep
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep, nil
}
