package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mapc/internal/dataset"
	"mapc/internal/simcache"
)

// Metrics is the service's stdlib-only instrumentation: request counters by
// status code, a latency histogram with quantile estimates, an in-flight
// gauge, and the shared feature cache's hit/miss counters. Everything is
// safe for concurrent use; rendering is a Prometheus-style text exposition
// so standard scrapers parse it unchanged.
type Metrics struct {
	start time.Time

	mu       sync.Mutex
	byCode   map[int]int64 // requests by HTTP status
	latency  histogram     // /v1/predict end-to-end seconds
	inFlight atomic.Int64

	predictions atomic.Int64 // bags predicted (a batched request counts each bag)
	rejected    struct {     // why requests were turned away
		saturated  atomic.Int64 // in-flight limiter full → 503
		timeout    atomic.Int64 // deadline exceeded → 504
		validation atomic.Int64 // malformed request → 4xx
	}
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// degraded counts brownout answers (served from the fast fidelity
	// tier); degradedInFlight gauges currently-admitted degraded requests.
	degraded         atomic.Int64
	degradedInFlight atomic.Int64

	// peerFill counts miss-path consultations of sibling replicas: hits
	// skipped a local simulation entirely, misses fell through to it.
	peerFillHits   atomic.Int64
	peerFillMisses atomic.Int64

	// panics counts recovered request panics (middleware + measurement
	// pool): each one answered 500 while the process kept serving.
	panics atomic.Int64

	// simStats snapshots the generator's simulation-memo counters
	// (internal/simcache) at exposition time; nil until
	// SetSimCacheSource installs one, in which case zeros are rendered.
	simStats func() simcache.Stats

	// featStats snapshots the bounded feature cache's LRU counters
	// (evictions, resident bytes/entries); nil renders zeros.
	featStats func() simcache.Stats

	// fidelityStats snapshots the generator's fidelity-tier counters
	// (analytic co-runs, mixed-tier exact fallbacks, exact co-runs); nil
	// renders zeros with an "exact" tier label.
	fidelityStats func() dataset.FidelityStats
}

// NewMetrics returns a zeroed metrics set with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), byCode: map[int]int64{}, latency: newLatencyHistogram()}
}

// ObserveRequest records one finished /v1/predict request.
func (m *Metrics) ObserveRequest(code int, d time.Duration) {
	m.mu.Lock()
	m.byCode[code]++
	m.latency.observe(d.Seconds())
	m.mu.Unlock()
}

// ObserveOther records a finished non-predict request (healthz, metrics).
func (m *Metrics) ObserveOther(code int) {
	m.mu.Lock()
	m.byCode[code]++
	m.mu.Unlock()
}

// histogram is a fixed-bucket latency histogram. Bounds are upper limits in
// seconds; counts[i] is the number of observations <= bounds[i], with a
// final overflow bucket. Quantiles are estimated by linear interpolation
// inside the bucket containing the target rank — the same estimate
// Prometheus's histogram_quantile computes server-side.
type histogram struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// newLatencyHistogram covers 1ms..60s exponentially — sub-millisecond cache
// hits land in the first bucket, cold multi-simulation requests in the top.
func newLatencyHistogram() histogram {
	var bounds []float64
	for b := 0.001; b <= 64; b *= 2 {
		bounds = append(bounds, b)
	}
	return histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// quantile estimates the q-quantile (0 < q < 1) of the observations, or 0
// when empty.
func (h *histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	var cum int64
	lo := 0.0
	for i, c := range h.counts {
		hi := lo
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			hi = lo * 2 // overflow bucket: extrapolate one doubling
		}
		if float64(cum+c) >= rank {
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
		lo = hi
	}
	return lo
}

// CacheHit / CacheMiss record feature-cache outcomes.
func (m *Metrics) CacheHit()  { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// Predictions adds n served bag predictions.
func (m *Metrics) Predictions(n int) { m.predictions.Add(int64(n)) }

// RejectSaturated / RejectTimeout / RejectValidation count refusals.
func (m *Metrics) RejectSaturated()  { m.rejected.saturated.Add(1) }
func (m *Metrics) RejectTimeout()    { m.rejected.timeout.Add(1) }
func (m *Metrics) RejectValidation() { m.rejected.validation.Add(1) }

// Degraded records one brownout answer; the gauge pair tracks admitted
// degraded requests in flight.
func (m *Metrics) Degraded()            { m.degraded.Add(1) }
func (m *Metrics) IncDegradedInFlight() { m.degradedInFlight.Add(1) }
func (m *Metrics) DecDegradedInFlight() { m.degradedInFlight.Add(-1) }

// DegradedTotal returns how many answers came from the fast tier.
func (m *Metrics) DegradedTotal() int64 { return m.degraded.Load() }

// SetSimCacheSource installs the snapshot function behind the
// mapc_simcache_* metrics (typically dataset.Generator.SimCacheStats).
// Call before serving begins; the source itself must be concurrency-safe.
func (m *Metrics) SetSimCacheSource(src func() simcache.Stats) { m.simStats = src }

// SetFeatureCacheSource installs the snapshot function behind the
// feature-cache eviction/residency metrics (featureCache.Stats). Call
// before serving begins.
func (m *Metrics) SetFeatureCacheSource(src func() simcache.Stats) { m.featStats = src }

// SetFidelitySource installs the snapshot function behind the
// mapc_fidelity_* metrics (typically dataset.Generator.FidelityStats).
// Call before serving begins; the source itself must be concurrency-safe.
func (m *Metrics) SetFidelitySource(src func() dataset.FidelityStats) { m.fidelityStats = src }

// PeerFillHit / PeerFillMiss record peer-fill outcomes on the miss path.
func (m *Metrics) PeerFillHit()  { m.peerFillHits.Add(1) }
func (m *Metrics) PeerFillMiss() { m.peerFillMisses.Add(1) }

// PeerFillHits returns the number of misses answered by a sibling replica.
func (m *Metrics) PeerFillHits() int64 { return m.peerFillHits.Load() }

// Panic records one recovered request panic (the request got a 500; the
// process survived).
func (m *Metrics) Panic() { m.panics.Add(1) }

// PanicsTotal returns the recovered-panic count.
func (m *Metrics) PanicsTotal() int64 { return m.panics.Load() }

// IncInFlight / DecInFlight move the in-flight gauge.
func (m *Metrics) IncInFlight() { m.inFlight.Add(1) }
func (m *Metrics) DecInFlight() { m.inFlight.Add(-1) }

// InFlight returns the current gauge value.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Metrics) CacheHitRate() float64 {
	h, miss := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// WriteTo renders the Prometheus-style text exposition.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	codes := make([]int, 0, len(m.byCode))
	for c := range m.byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	type codeCount struct {
		code  int
		count int64
	}
	byCode := make([]codeCount, len(codes))
	for i, c := range codes {
		byCode[i] = codeCount{c, m.byCode[c]}
	}
	q50, q90, q99 := m.latency.quantile(0.5), m.latency.quantile(0.9), m.latency.quantile(0.99)
	latSum, latN := m.latency.sum, m.latency.n
	m.mu.Unlock()

	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, cc := range byCode {
		if err := p("mapc_requests_total{code=%q} %d\n", fmt.Sprint(cc.code), cc.count); err != nil {
			return total, err
		}
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	type metricLine struct {
		name string
		val  any
	}
	lines := []metricLine{
		{"mapc_requests_inflight", m.inFlight.Load()},
		{`mapc_request_duration_seconds{quantile="0.5"}`, q50},
		{`mapc_request_duration_seconds{quantile="0.9"}`, q90},
		{`mapc_request_duration_seconds{quantile="0.99"}`, q99},
		{"mapc_request_duration_seconds_sum", latSum},
		{"mapc_request_duration_seconds_count", latN},
		{"mapc_predictions_total", m.predictions.Load()},
		{`mapc_rejected_total{reason="saturated"}`, m.rejected.saturated.Load()},
		{`mapc_rejected_total{reason="timeout"}`, m.rejected.timeout.Load()},
		{`mapc_rejected_total{reason="validation"}`, m.rejected.validation.Load()},
		{"mapc_serve_panics_total", m.panics.Load()},
		{"mapc_degraded_total", m.degraded.Load()},
		{"mapc_degraded_inflight", m.degradedInFlight.Load()},
		{"mapc_feature_cache_hits_total", hits},
		{"mapc_feature_cache_misses_total", misses},
		{"mapc_feature_cache_hit_ratio", m.CacheHitRate()},
		{"mapc_peer_fill_hits_total", m.peerFillHits.Load()},
		{"mapc_peer_fill_misses_total", m.peerFillMisses.Load()},
		{"mapc_uptime_seconds", time.Since(m.start).Seconds()},
	}
	// Bounded feature cache residency: the eviction counter is the
	// regression alarm for the formerly unbounded map (a long-tail k-bag
	// workload now trades recomputation, never memory).
	var feat simcache.Stats
	if m.featStats != nil {
		feat = m.featStats()
	}
	lines = append(lines,
		metricLine{"mapc_feature_cache_evictions_total", feat.Evictions},
		metricLine{"mapc_feature_cache_bytes", feat.Bytes},
		metricLine{"mapc_feature_cache_entries", int64(feat.Entries)},
	)
	// Simulation-memo counters (internal/simcache): totals plus the
	// resident-bytes gauge.
	var sim simcache.Stats
	if m.simStats != nil {
		sim = m.simStats()
	}
	lines = append(lines,
		metricLine{"mapc_simcache_hits_total", sim.Hits},
		metricLine{"mapc_simcache_misses_total", sim.Misses},
		metricLine{"mapc_simcache_evictions_total", sim.Evictions},
		metricLine{"mapc_simcache_bytes", sim.Bytes},
		metricLine{"mapc_simcache_hit_ratio", sim.HitRate()},
	)
	// Fidelity-tier counters: which simulator answered the contended
	// co-runs behind served features. A rising fallback count under mixed
	// fidelity is the live signal that the analytic model's confidence is
	// degrading on the traffic mix.
	fid := dataset.FidelityStats{Fidelity: "exact"}
	if m.fidelityStats != nil {
		fid = m.fidelityStats()
	}
	if err := p("mapc_fidelity_info{tier=%q} 1\n", fid.Fidelity); err != nil {
		return total, err
	}
	lines = append(lines,
		metricLine{`mapc_fidelity_runs_total{kind="analytic"}`, int64(fid.AnalyticRuns)},
		metricLine{`mapc_fidelity_runs_total{kind="exact_fallback"}`, int64(fid.ExactFallbacks)},
		metricLine{`mapc_fidelity_runs_total{kind="exact"}`, int64(fid.ExactRuns)},
		// The fallback total split by the gate that bounced each run:
		// low_confidence rises when the traffic mix strains the sketches,
		// sub_sm_share when clients request partitions under one SM, and
		// bandwidth_gate when aggregate DRAM demand leaves the model's
		// regime entirely.
		metricLine{`mapc_fidelity_fallbacks_total{reason="low_confidence"}`, int64(fid.FallbackLowConfidence)},
		metricLine{`mapc_fidelity_fallbacks_total{reason="sub_sm_share"}`, int64(fid.FallbackSubSMShare)},
		metricLine{`mapc_fidelity_fallbacks_total{reason="bandwidth_gate"}`, int64(fid.FallbackBandwidthGate)},
	)
	for _, l := range lines {
		var err error
		switch v := l.val.(type) {
		case int64:
			err = p("%s %d\n", l.name, v)
		case float64:
			err = p("%s %g\n", l.name, v)
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
