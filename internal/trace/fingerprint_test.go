package trace

import (
	"testing"

	"mapc/internal/isa"
)

// fpWorkload builds a two-phase workload covering every field the
// fingerprint must observe, with distinct non-zero values so that any
// dropped field would go unnoticed only if two perturbations collide.
func fpWorkload() *Workload {
	var c0, c1 isa.Counts
	c0[isa.MEM] = 1000
	c0[isa.ALU] = 2000
	c1[isa.MEM] = 500
	c1[isa.Control] = 300
	return &Workload{
		Benchmark:     "fp-bench",
		BatchSize:     16,
		TransferBytes: 1 << 20,
		Phases: []Phase{
			{
				Name:        "stream",
				Counts:      c0,
				Footprint:   1 << 16,
				Pattern:     Sequential,
				Reuse:       0.25,
				Parallelism: 64,
				VectorWidth: 4,
				Launches:    2,
			},
			{
				Name:           "probe",
				Counts:         c1,
				Footprint:      1 << 14,
				Pattern:        Strided,
				StrideBytes:    128,
				Reuse:          0.5,
				Parallelism:    32,
				VectorWidth:    1,
				BatchInvariant: true,
				Launches:       1,
			},
		},
	}
}

// TestFingerprintDeterministicAndCloneStable pins the two properties the
// memo keys rely on: repeated calls agree, and a Clone (the exact copy the
// read-only-contract tests compare against) fingerprints identically.
func TestFingerprintDeterministicAndCloneStable(t *testing.T) {
	w := fpWorkload()
	fp := w.Fingerprint()
	for i := 0; i < 3; i++ {
		if got := w.Fingerprint(); got != fp {
			t.Fatalf("call %d: fingerprint %x != first call %x", i, got, fp)
		}
	}
	if got := w.Clone().Fingerprint(); got != fp {
		t.Fatalf("clone fingerprint %x != original %x", got, fp)
	}
	if got := fpWorkload().Fingerprint(); got != fp {
		t.Fatalf("independently built workload fingerprint %x != %x", got, fp)
	}
}

// TestFingerprintSensitivity perturbs every field Fingerprint hashes, one
// at a time, and requires the fingerprint to move. A field the hash
// silently ignores would let two distinct workloads share a simcache key
// and corrupt memoized simulation results.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpWorkload().Fingerprint()
	seen := map[uint64]string{base: "base"}

	cases := []struct {
		name   string
		mutate func(w *Workload)
	}{
		{"benchmark", func(w *Workload) { w.Benchmark = "fp-bench2" }},
		{"batch-size", func(w *Workload) { w.BatchSize = 17 }},
		{"transfer-bytes", func(w *Workload) { w.TransferBytes++ }},
		{"phase-count", func(w *Workload) { w.Phases = w.Phases[:1] }},
		{"phase-name", func(w *Workload) { w.Phases[0].Name = "stream2" }},
		{"counts-mem", func(w *Workload) { w.Phases[0].Counts[isa.MEM]++ }},
		{"counts-other-category", func(w *Workload) { w.Phases[1].Counts[isa.ALU]++ }},
		{"footprint", func(w *Workload) { w.Phases[0].Footprint++ }},
		{"pattern", func(w *Workload) { w.Phases[0].Pattern = Random }},
		{"stride-bytes", func(w *Workload) { w.Phases[1].StrideBytes = 256 }},
		{"reuse", func(w *Workload) { w.Phases[0].Reuse = 0.26 }},
		{"parallelism", func(w *Workload) { w.Phases[0].Parallelism++ }},
		{"vector-width", func(w *Workload) { w.Phases[0].VectorWidth = 8 }},
		{"batch-invariant", func(w *Workload) { w.Phases[1].BatchInvariant = false }},
		{"launches", func(w *Workload) { w.Phases[0].Launches = 3 }},
		{"second-phase-field", func(w *Workload) { w.Phases[1].Footprint++ }},
	}
	for _, tc := range cases {
		w := fpWorkload()
		tc.mutate(w)
		fp := w.Fingerprint()
		if fp == base {
			t.Errorf("%s: perturbation did not change the fingerprint — field is not hashed", tc.name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s: fingerprint collides with %s (%x)", tc.name, prev, fp)
		}
		seen[fp] = tc.name
	}
}

// TestFingerprintStringBoundaries guards the classic concatenation bug:
// adjacent string fields must be separated so ("ab","c") and ("a","bc")
// hash differently.
func TestFingerprintStringBoundaries(t *testing.T) {
	a := fpWorkload()
	a.Benchmark = "ab"
	a.Phases[0].Name = "c"
	b := fpWorkload()
	b.Benchmark = "a"
	b.Phases[0].Name = "bc"
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("string field boundaries are not separated in the fingerprint")
	}
	// Directly adjacent in the hashed byte stream: equal-length names whose
	// concatenation with the next field's bytes could alias without a
	// terminator. The hasher writes a NUL after every string to prevent it.
	c := fpWorkload()
	c.Phases[0].Name = "xy"
	d := fpWorkload()
	d.Phases[0].Name = "x"
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("phase names of different lengths collide")
	}
}
