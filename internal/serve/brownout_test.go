package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mapc/internal/dataset"
)

// brownoutServer builds a server with brownout enabled and both fidelity
// paths stubbed: exact computes block on `block` (so tests control
// in-flight pressure), degraded computes answer immediately. Counters
// record how many times each path ran.
func brownoutServer(t *testing.T, mut func(*Config)) (s *Server, block chan struct{}, exactN, fastN *atomic.Int64) {
	t.Helper()
	s = newTestServer(t, func(c *Config) {
		c.BrownoutWatermark = 0.5
		c.Workers = 1
		if mut != nil {
			mut(c)
		}
	})
	width := s.cfg.Model.NumFeatures()
	block = make(chan struct{})
	exactN, fastN = new(atomic.Int64), new(atomic.Int64)
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		exactN.Add(1)
		<-block
		return make([]float64, width), 0.5, false, nil
	}
	s.degradedFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		fastN.Add(1)
		x := make([]float64, width)
		for i := range x {
			x[i] = 1
		}
		return x, 0.75, false, nil
	}
	return s, block, exactN, fastN
}

func brownoutBody(i int) string {
	return fmt.Sprintf(`{"a":{"benchmark":"sift","batch":%d},"b":{"benchmark":"surf","batch":%d}}`, i+1, i+1)
}

func decodePredict(t *testing.T, rr *httptest.ResponseRecorder) PredictResponse {
	t.Helper()
	var resp PredictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body %s: %v", rr.Body, err)
	}
	return resp
}

// TestBrownoutDegradesPastWatermark drives the exact pool past the
// watermark with blocked simulations and asserts fresh admissions answer
// from the fast tier with degraded=true (body and header) instead of
// queueing behind the stuck exact work — the tentpole brownout behavior.
func TestBrownoutDegradesPastWatermark(t *testing.T) {
	s, block, exactN, fastN := brownoutServer(t, func(c *Config) {
		c.MaxInFlight = 4 // watermark 0.5 -> degrade at 2 in flight
	})
	blocked := true
	defer func() {
		if blocked {
			close(block)
		}
	}()
	h := s.Handler()

	// Two slow exact requests reach the watermark.
	got := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() { got <- doJSON(t, h, http.MethodPost, "/v1/predict", brownoutBody(i)) }()
	}
	waitFor(t, func() bool { return exactN.Load() == 2 })

	// The next request must brown out, not block: a degraded 200, fast.
	start := time.Now()
	rr := doJSON(t, h, http.MethodPost, "/v1/predict", brownoutBody(7))
	if rr.Code != http.StatusOK {
		t.Fatalf("browned-out request answered %d: %s", rr.Code, rr.Body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("degraded answer took %v; it queued behind exact work", elapsed)
	}
	resp := decodePredict(t, rr)
	if !resp.Degraded {
		t.Errorf("response past the watermark has degraded=%v, want true", resp.Degraded)
	}
	if rr.Header().Get(HeaderDegraded) != "1" {
		t.Errorf("%s header = %q, want \"1\"", HeaderDegraded, rr.Header().Get(HeaderDegraded))
	}
	if fastN.Load() == 0 {
		t.Error("degraded request never reached the fast fidelity path")
	}
	if n := s.Metrics().DegradedTotal(); n != 1 {
		t.Errorf("DegradedTotal = %d, want 1", n)
	}

	// /metrics exposes the counter.
	mr := doJSON(t, h, http.MethodGet, "/metrics", "")
	if !strings.Contains(mr.Body.String(), "mapc_degraded_total 1") {
		t.Errorf("/metrics missing mapc_degraded_total 1:\n%s", mr.Body)
	}

	// Release the exact work; both blocked requests complete exact.
	close(block)
	blocked = false
	for i := 0; i < 2; i++ {
		rr := <-got
		if rr.Code != http.StatusOK {
			t.Fatalf("exact request answered %d: %s", rr.Code, rr.Body)
		}
		if resp := decodePredict(t, rr); resp.Degraded {
			t.Error("below-watermark request reported degraded=true")
		}
	}
}

// TestForcedDegradedHeader pins the client opt-in: X-Mapc-Degraded-OK on
// an idle server answers degraded immediately — the router forwards the
// header so a latency-sensitive caller can trade fidelity for speed even
// without pressure.
func TestForcedDegradedHeader(t *testing.T) {
	s, block, exactN, fastN := brownoutServer(t, nil)
	defer close(block)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(brownoutBody(0)))
	req.Header.Set(HeaderDegradedOK, "1")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("forced-degraded request answered %d: %s", rr.Code, rr.Body)
	}
	if resp := decodePredict(t, rr); !resp.Degraded {
		t.Error("forced-degraded response has degraded=false")
	}
	if exactN.Load() != 0 || fastN.Load() != 1 {
		t.Errorf("exact=%d fast=%d computes, want 0/1", exactN.Load(), fastN.Load())
	}
}

// TestBrownoutShedsOnlyWhenBothPoolsFull fills the exact pool with blocked
// work and the degraded pool with forced-degraded blocked work, then
// asserts the next request sheds 503 naming both pools — and that below
// that point degraded admissions kept succeeding.
func TestBrownoutShedsOnlyWhenBothPoolsFull(t *testing.T) {
	s, block, exactN, _ := brownoutServer(t, func(c *Config) {
		c.MaxInFlight = 2
		c.MaxDegradedInFlight = 2
		c.RequestTimeout = 30 * time.Second
		// Watermark at the full exact pool, so the two plain requests below
		// deterministically land exact and only saturation degrades.
		c.BrownoutWatermark = 1.0
	})
	defer close(block)
	// Degraded path blocks too, so degraded slots stay held.
	width := s.cfg.Model.NumFeatures()
	var fastEntered atomic.Int64
	s.degradedFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		fastEntered.Add(1)
		<-block
		return make([]float64, width), 0.75, false, nil
	}
	h := s.Handler()

	// 2 exact + 2 degraded-pool + 2 degraded-overflow-into-exact? No:
	// exact pool (2) is taken first by the two plain requests; then forced
	// degraded requests take the 2 degraded slots; the degraded overflow
	// path would take exact slots but they are full. So 4 blocked total
	// fills both pools.
	for i := 0; i < 2; i++ {
		i := i
		go func() { doJSON(t, h, http.MethodPost, "/v1/predict", brownoutBody(i)) }()
	}
	waitFor(t, func() bool { return exactN.Load() == 2 })
	for i := 2; i < 4; i++ {
		i := i
		go func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(brownoutBody(i)))
			req.Header.Set(HeaderDegradedOK, "1")
			h.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	waitFor(t, func() bool { return fastEntered.Load() == 2 })

	rr := doJSON(t, h, http.MethodPost, "/v1/predict", brownoutBody(9))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("request with both pools full answered %d, want 503: %s", rr.Code, rr.Body)
	}
	if body := rr.Body.String(); !strings.Contains(body, "degraded") {
		t.Errorf("503 body %q does not mention the degraded pool", body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
}

// TestDeadlineHeaderHonored pins deadline propagation: a tight
// X-Mapc-Deadline answers 504 at the propagated budget, not the server's
// much larger RequestTimeout; garbage and oversized values fall back to
// RequestTimeout.
func TestDeadlineHeaderHonored(t *testing.T) {
	s, block, _, _ := brownoutServer(t, func(c *Config) {
		c.RequestTimeout = 30 * time.Second
	})
	defer close(block)
	h := s.Handler()

	start := time.Now()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(brownoutBody(0)))
	req.Header.Set(HeaderDeadline, "50") // 50ms remaining
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	elapsed := time.Since(start)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("tight-deadline request answered %d, want 504: %s", rr.Code, rr.Body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; the propagated 50ms deadline was ignored", elapsed)
	}
	if !strings.Contains(rr.Body.String(), "50ms") {
		t.Errorf("504 body %q does not report the propagated deadline", rr.Body)
	}

	// A malformed header must not crash or zero the deadline: the request
	// proceeds under RequestTimeout (it blocks, so cancel via deadline is
	// not observable here — instead verify a valid fast request works).
	for _, hdr := range []string{"garbage", "-5", "0"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(brownoutBody(1)))
		req.Header.Set(HeaderDeadline, hdr)
		req.Header.Set(HeaderDegradedOK, "1") // degraded path answers instantly
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Errorf("deadline header %q: answered %d, want 200 under RequestTimeout", hdr, rr.Code)
		}
	}
}

// TestBrownoutConfigValidation pins New's brownout input checking.
func TestBrownoutConfigValidation(t *testing.T) {
	gen, mod := fixture(t)
	if _, err := New(Config{Model: mod, Generator: gen, BrownoutWatermark: 1.5}); err == nil {
		t.Error("watermark above 1 accepted")
	}
	if _, err := New(Config{Model: mod, Generator: gen, BrownoutWatermark: -0.1}); err == nil {
		t.Error("negative watermark accepted")
	}
	if _, err := New(Config{Model: mod, Generator: gen, MaxDegradedInFlight: -1}); err == nil {
		t.Error("negative degraded bound accepted")
	}
	s, err := New(Config{Model: mod, Generator: gen, BrownoutWatermark: 0.5, MaxInFlight: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.watermark != 5 {
		t.Errorf("watermark = %d, want 5", s.watermark)
	}
	if cap(s.degradedSlots) != DefaultDegradedMultiplier*10 {
		t.Errorf("degraded pool cap = %d, want %d", cap(s.degradedSlots), DefaultDegradedMultiplier*10)
	}
	// Disabled by default: zero watermark leaves brownout off.
	s, err = New(Config{Model: mod, Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	if s.degradedSlots != nil {
		t.Error("zero watermark enabled brownout; it must stay opt-in")
	}
}

// TestDegradedCacheNamespaceIsolation pins the cache split: the same bag
// served exact then degraded computes once per tier (no cross-tier
// answers), and snapshot entries carry only the exact tier.
func TestDegradedCacheNamespaceIsolation(t *testing.T) {
	var exactN, fastN atomic.Int64
	c := newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
		exactN.Add(1)
		return []float64{1, 2, 3}, 0.5, nil
	}, true, 1<<20)
	c.computeFast = func(bag []dataset.Member) ([]float64, float64, error) {
		fastN.Add(1)
		return []float64{9, 9, 9}, 0.9, nil
	}
	bag := []dataset.Member{{Benchmark: "sift", Batch: 20}, {Benchmark: "surf", Batch: 20}}

	x, _, hit, err := c.get(bag)
	if err != nil || hit || x[0] != 1 {
		t.Fatalf("exact get: x=%v hit=%v err=%v", x, hit, err)
	}
	x, _, hit, err = c.getDegraded(bag)
	if err != nil || hit || x[0] != 9 {
		t.Fatalf("degraded get answered x=%v hit=%v err=%v; it must not reuse the exact entry", x, hit, err)
	}
	if exactN.Load() != 1 || fastN.Load() != 1 {
		t.Fatalf("computes exact=%d fast=%d, want 1/1", exactN.Load(), fastN.Load())
	}
	// Second round hits each tier's own entry.
	if _, _, hit, _ := c.get(bag); !hit {
		t.Error("exact entry not cached")
	}
	if _, _, hit, _ := c.getDegraded(bag); !hit {
		t.Error("degraded entry not cached")
	}
	if exactN.Load() != 1 || fastN.Load() != 1 {
		t.Errorf("cache hit recomputed: exact=%d fast=%d", exactN.Load(), fastN.Load())
	}
	// Snapshots must exclude the degraded namespace.
	entries := c.entries()
	if len(entries) != 1 {
		t.Fatalf("%d snapshot entries, want 1 (exact only)", len(entries))
	}
	if entries[0].X[0] != 1 {
		t.Errorf("snapshot entry carries degraded features %v", entries[0].X)
	}
}

// TestDegradedFallsBackWithoutFastPath pins the stub-cache fallback: a
// cache built without a generator answers degraded requests from the
// exact compute function rather than nil-dereferencing.
func TestDegradedFallsBackWithoutFastPath(t *testing.T) {
	c := newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
		return []float64{4}, 0.5, nil
	}, true, 1<<20)
	x, _, _, err := c.getDegraded([]dataset.Member{{Benchmark: "sift", Batch: 20}})
	if err != nil || x[0] != 4 {
		t.Fatalf("fallback degraded get: x=%v err=%v", x, err)
	}
}
