package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// healthToggle is a replica stand-in whose /healthz can be flipped.
type healthToggle struct {
	down atomic.Bool
}

func (h *healthToggle) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if h.down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	return mux
}

func newTogglePool(t *testing.T, n int, mut func(*PoolConfig)) (*Pool, []*healthToggle) {
	t.Helper()
	toggles := make([]*healthToggle, n)
	urls := make([]string, n)
	for i := range toggles {
		toggles[i] = &healthToggle{}
		ts := httptest.NewServer(toggles[i].handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	cfg := PoolConfig{Replicas: urls, FailAfter: 2, ReviveAfter: 2}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, toggles
}

// TestPoolEjectionAndReadmission steps probes deterministically through
// the full membership cycle: healthy → ejected after FailAfter failures →
// re-admitted after ReviveAfter successes.
func TestPoolEjectionAndReadmission(t *testing.T) {
	p, toggles := newTogglePool(t, 2, nil)
	ctx := context.Background()

	if p.HealthyCount() != 2 {
		t.Fatalf("pool boots with %d healthy, want 2 (optimistic start)", p.HealthyCount())
	}

	toggles[1].down.Store(true)
	p.Probe(ctx)
	if p.HealthyCount() != 2 {
		t.Fatalf("one failed probe ejected a replica (FailAfter=2)")
	}
	p.Probe(ctx)
	if p.HealthyCount() != 1 {
		t.Fatalf("replica not ejected after FailAfter consecutive failures: %+v", p.Status())
	}
	if p.Ejections() != 1 {
		t.Errorf("ejections = %d, want 1", p.Ejections())
	}
	st := p.Status()
	if st[1].Healthy || st[1].LastError == "" {
		t.Errorf("ejected replica status %+v, want unhealthy with an error", st[1])
	}

	// A single healthy probe must not re-admit (ReviveAfter=2)…
	toggles[1].down.Store(false)
	p.Probe(ctx)
	if p.HealthyCount() != 1 {
		t.Fatal("one healthy probe re-admitted a replica (ReviveAfter=2)")
	}
	// …the second does.
	p.Probe(ctx)
	if p.HealthyCount() != 2 {
		t.Fatalf("replica not re-admitted after ReviveAfter consecutive successes: %+v", p.Status())
	}
	if p.Readmissions() != 1 {
		t.Errorf("readmissions = %d, want 1", p.Readmissions())
	}
}

// TestPoolPassiveFailureReporting pins request-path detection: FailAfter
// ReportFailure calls eject without any prober involvement.
func TestPoolPassiveFailureReporting(t *testing.T) {
	p, _ := newTogglePool(t, 2, nil)
	url := p.cfg.Replicas[0]
	p.ReportFailure(url, errors.New("connection refused"))
	if p.HealthyCount() != 2 {
		t.Fatal("one reported failure ejected (FailAfter=2)")
	}
	p.ReportFailure(url, errors.New("connection refused"))
	if p.HealthyCount() != 1 {
		t.Fatalf("passive reports did not eject: %+v", p.Status())
	}
	// Unknown URLs are ignored.
	p.ReportFailure("http://nosuch:1", errors.New("x"))
	if p.HealthyCount() != 1 {
		t.Fatal("unknown-URL report changed membership")
	}
}

// TestPoolRouteHealthFirst pins Route ordering: healthy candidates keep
// ring order ahead of ejected ones, and the ejected owner returns to the
// front after re-admission (its keyspace and warm cache come back).
func TestPoolRouteHealthFirst(t *testing.T) {
	p, toggles := newTogglePool(t, 3, nil)
	ctx := context.Background()

	// Find a key owned by replica 0.
	var key string
	for i := 0; ; i++ {
		k := "probe-key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if p.ring.Lookup(k) == p.cfg.Replicas[0] {
			key = k
			break
		}
	}

	before := p.Route(key)
	if before[0] != p.cfg.Replicas[0] {
		t.Fatalf("healthy owner not first: %v", before)
	}
	if len(before) != 3 {
		t.Fatalf("Route returned %d candidates, want all 3", len(before))
	}

	// Eject the owner: it must drop to the back of the candidate list,
	// but never disappear (last-resort routing when all are down).
	toggles[0].down.Store(true)
	p.Probe(ctx)
	p.Probe(ctx)
	after := p.Route(key)
	if after[0] == p.cfg.Replicas[0] {
		t.Fatalf("ejected owner still first: %v", after)
	}
	if after[len(after)-1] != p.cfg.Replicas[0] {
		t.Fatalf("ejected owner missing from candidates: %v", after)
	}

	// Re-admission restores the original shard map.
	toggles[0].down.Store(false)
	p.Probe(ctx)
	p.Probe(ctx)
	restored := p.Route(key)
	if restored[0] != p.cfg.Replicas[0] {
		t.Fatalf("re-admitted owner did not regain its keyspace: %v", restored)
	}
}

// TestPoolRejectsGarbageHealthz pins the body check: an endpoint answering
// 200 with a non-health payload (a misrouted LB page) is not a replica.
func TestPoolRejectsGarbageHealthz(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<html>totally fine</html>"))
	}))
	defer ts.Close()
	p, err := NewPool(PoolConfig{Replicas: []string{ts.URL}, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Probe(context.Background())
	if p.HealthyCount() != 0 {
		t.Fatalf("garbage healthz body kept the replica admitted: %+v", p.Status())
	}
}
