package ml

import (
	"math"
	"testing"

	"mapc/internal/xrand"
)

func TestLinearRegressionRecoversExactLine(t *testing.T) {
	// y = 3*x0 - 2*x1 + 5, noiseless.
	d := &Dataset{}
	rng := xrand.New(11)
	for i := 0; i < 40; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, 3*x0-2*x1+5)
	}
	m := NewLinearRegression()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	w, b, err := m.Coefficients()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-3) > 1e-6 || math.Abs(w[1]+2) > 1e-6 || math.Abs(b-5) > 1e-5 {
		t.Fatalf("recovered w=%v b=%v", w, b)
	}
	pred, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-6) > 1e-5 {
		t.Fatalf("f(1,1) = %v, want 6", pred)
	}
}

func TestLinearRegressionCollinearFeatures(t *testing.T) {
	// x1 = 2*x0 exactly: pure OLS is singular; the ridge jitter must
	// still produce a usable model.
	d := &Dataset{}
	rng := xrand.New(13)
	for i := 0; i < 30; i++ {
		x := rng.Float64() * 10
		d.X = append(d.X, []float64{x, 2 * x})
		d.Y = append(d.Y, 4*x+1)
	}
	m := NewLinearRegression()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-9) > 1e-3 {
		t.Fatalf("collinear prediction %v, want 9", pred)
	}
}

func TestLinearRegressionRidge(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{1}, {2}, {3}, {4}},
		Y: []float64{2, 4, 6, 8},
	}
	m := &LinearRegression{Ridge: 1000} // heavy shrinkage
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	w, _, err := m.Coefficients()
	if err != nil {
		t.Fatal(err)
	}
	if w[0] >= 2 {
		t.Fatalf("ridge did not shrink slope: %v", w[0])
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := NewLinearRegression()
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("unfitted Predict succeeded")
	}
	if _, _, err := m.Coefficients(); err == nil {
		t.Error("unfitted Coefficients succeeded")
	}
	if err := m.Fit(&Dataset{}); err == nil {
		t.Error("empty dataset accepted")
	}
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong-width vector accepted")
	}
}

func TestSolveGauss(t *testing.T) {
	// 2x + y = 5; x - y = 1  ->  x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := solveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
	// Singular system must be rejected.
	if _, err := solveGauss([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system solved")
	}
}
