// Package sched is the downstream system the paper's introduction
// motivates: an edge GPU server that receives offloaded vision jobs and
// must decide which ones to co-schedule under MPS. It drains a job queue
// through the GPU simulator under pluggable policies — serial FIFO, naive
// FIFO pairing, predictor-guided pairing (the paper's predictor deciding
// which jobs share the GPU), and an oracle that measures every candidate
// bag — and reports makespan and turnaround metrics, quantifying how much
// of the oracle's benefit the prediction recovers.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/gpusim"
	"mapc/internal/trace"
)

// Job is one offloaded application request.
type Job struct {
	// ID is the caller-assigned identifier (also the FIFO arrival order).
	ID int
	// Member names the application and batch size.
	Member dataset.Member
}

// Outcome records one job's completion in a schedule.
type Outcome struct {
	Job Job
	// Start and Finish are in seconds since the schedule began.
	Start, Finish float64
	// CoRan is the job it shared the GPU with, if any.
	CoRan *Job
}

// Schedule is the result of draining a queue under one policy.
type Schedule struct {
	Policy   string
	Outcomes []Outcome
	// Makespan is the completion time of the last job.
	Makespan float64
	// MeanTurnaround is the mean job completion time (all jobs arrive
	// at time zero).
	MeanTurnaround float64
	// Batches is the number of GPU launches (bags plus singles).
	Batches int
}

// Policy selects the next launch from the pending queue: one job index for
// a solo run or two for a co-scheduled bag. Indices refer to the pending
// slice passed in.
type Policy interface {
	Name() string
	Pick(s *Scheduler, pending []Job) ([]int, error)
}

// Scheduler drains job queues through the simulated GPU.
type Scheduler struct {
	gpu gpusim.Config
	gen *dataset.Generator
	// workloads caches each member's instrumented workload.
	workloads map[dataset.Member]*trace.Workload
	// bagTimes caches measured bag makespans for the oracle policy.
	bagTimes map[[2]dataset.Member]float64
	// predictor is set when a prediction-guided policy is used.
	predictor *core.Predictor
}

// New returns a scheduler running on the configuration's GPU, with the
// generator used for featurization (prediction-guided policies) and
// workload production.
func New(cfg dataset.Config, predictor *core.Predictor) (*Scheduler, error) {
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return &Scheduler{
		gpu:       cfg.GPU,
		gen:       gen,
		workloads: map[dataset.Member]*trace.Workload{},
		bagTimes:  map[[2]dataset.Member]float64{},
		predictor: predictor,
	}, nil
}

// workload returns the cached instrumented workload for m.
func (s *Scheduler) workload(m dataset.Member) (*trace.Workload, error) {
	if w, ok := s.workloads[m]; ok {
		return w, nil
	}
	w, err := s.gen.Workload(m)
	if err != nil {
		return nil, err
	}
	s.workloads[m] = w
	return w, nil
}

// PredictBag returns the predictor's estimate for the bag (a, b).
func (s *Scheduler) PredictBag(a, b dataset.Member) (float64, error) {
	if s.predictor == nil {
		return 0, errors.New("sched: no predictor configured")
	}
	x, _, err := s.gen.FeaturesFor(a, b)
	if err != nil {
		return 0, err
	}
	return s.predictor.PredictRaw(x)
}

// MeasureBag returns the simulated bag makespan for (a, b) — the oracle's
// information source, cached per pair.
func (s *Scheduler) MeasureBag(a, b dataset.Member) (float64, error) {
	key := [2]dataset.Member{a, b}
	if a.Benchmark > b.Benchmark || (a.Benchmark == b.Benchmark && a.Batch > b.Batch) {
		key = [2]dataset.Member{b, a}
	}
	if t, ok := s.bagTimes[key]; ok {
		return t, nil
	}
	wa, err := s.workload(a)
	if err != nil {
		return 0, err
	}
	wb, err := s.workload(b)
	if err != nil {
		return 0, err
	}
	res, err := gpusim.Run(s.gpu, []*trace.Workload{wa.Clone(), wb.Clone()})
	if err != nil {
		return 0, err
	}
	t := gpusim.BagTime(res)
	s.bagTimes[key] = t
	return t, nil
}

// Run drains the queue under the policy and returns the schedule.
func (s *Scheduler) Run(policy Policy, queue []Job) (*Schedule, error) {
	if policy == nil {
		return nil, errors.New("sched: nil policy")
	}
	if len(queue) == 0 {
		return nil, errors.New("sched: empty queue")
	}
	pending := append([]Job(nil), queue...)
	out := &Schedule{Policy: policy.Name()}
	var clock float64
	for len(pending) > 0 {
		pick, err := policy.Pick(s, pending)
		if err != nil {
			return nil, fmt.Errorf("sched: policy %s: %w", policy.Name(), err)
		}
		if len(pick) < 1 || len(pick) > 2 {
			return nil, fmt.Errorf("sched: policy %s picked %d jobs", policy.Name(), len(pick))
		}
		if len(pick) == 2 && pick[0] == pick[1] {
			return nil, fmt.Errorf("sched: policy %s picked the same job twice", policy.Name())
		}
		for _, idx := range pick {
			if idx < 0 || idx >= len(pending) {
				return nil, fmt.Errorf("sched: policy %s picked index %d of %d", policy.Name(), idx, len(pending))
			}
		}

		jobs := make([]Job, len(pick))
		ws := make([]*trace.Workload, len(pick))
		for i, idx := range pick {
			jobs[i] = pending[idx]
			w, err := s.workload(pending[idx].Member)
			if err != nil {
				return nil, err
			}
			ws[i] = w.Clone()
		}
		res, err := gpusim.Run(s.gpu, ws)
		if err != nil {
			return nil, err
		}
		for i := range jobs {
			o := Outcome{Job: jobs[i], Start: clock, Finish: clock + res[i].TimeSec}
			if len(jobs) == 2 {
				co := jobs[1-i]
				o.CoRan = &co
			}
			out.Outcomes = append(out.Outcomes, o)
		}
		clock += gpusim.BagTime(res)
		out.Batches++

		// Remove the launched jobs (descending index order).
		sorted := append([]int(nil), pick...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		for _, idx := range sorted {
			pending = append(pending[:idx], pending[idx+1:]...)
		}
	}
	out.Makespan = clock
	var sum float64
	for _, o := range out.Outcomes {
		sum += o.Finish
	}
	out.MeanTurnaround = sum / float64(len(out.Outcomes))
	return out, nil
}
