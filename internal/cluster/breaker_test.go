package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the pool's injectable now() deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// breakerPool builds a pool over fake URLs (no servers: these tests drive
// state through ReportFailure/ReportSuccess, never the prober) with a fake
// clock installed.
func breakerPool(t *testing.T, mut func(*PoolConfig)) (*Pool, *fakeClock) {
	t.Helper()
	cfg := PoolConfig{
		Replicas:        []string{"http://replica-a:1", "http://replica-b:1"},
		FailAfter:       3,
		ReviveAfter:     2,
		BreakerCooldown: 5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	p.now = clk.now
	return p, clk
}

// TestBreakerLifecycle walks the full state machine on a fake clock:
// closed → (FailAfter request failures) → open → (cooldown) → half-open
// with a single admitted trial → (trial success) → closed.
func TestBreakerLifecycle(t *testing.T) {
	p, clk := breakerPool(t, nil)
	const url = "http://replica-a:1"

	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("boot breaker state %q, want closed", got)
	}
	if !p.Allow(url) {
		t.Fatal("closed breaker rejected a request")
	}

	// FailAfter-1 failures keep it closed; the next one opens it.
	for i := 0; i < 2; i++ {
		p.ReportFailure(url, errors.New("connection refused"))
	}
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("after FailAfter-1 failures state %q, want closed", got)
	}
	p.ReportFailure(url, errors.New("connection refused"))
	if got := p.BreakerState(url); got != "open" {
		t.Fatalf("after FailAfter failures state %q, want open", got)
	}
	if p.HealthyCount() != 1 {
		t.Fatalf("HealthyCount = %d after ejection, want 1", p.HealthyCount())
	}
	if p.Ejections() != 1 {
		t.Fatalf("Ejections = %d, want 1", p.Ejections())
	}

	// Open rejects until the cooldown elapses — and counts the skips.
	if p.Allow(url) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	clk.advance(4999 * time.Millisecond)
	if p.Allow(url) {
		t.Fatal("open breaker admitted a request 1ms before the cooldown elapsed")
	}
	if p.BreakerSkips() != 2 {
		t.Fatalf("BreakerSkips = %d, want 2", p.BreakerSkips())
	}

	// Cooldown over: exactly one half-open trial is admitted.
	clk.advance(1 * time.Millisecond)
	if !p.Allow(url) {
		t.Fatal("breaker did not admit the half-open trial after the cooldown")
	}
	if got := p.BreakerState(url); got != "half-open" {
		t.Fatalf("state %q after trial admission, want half-open", got)
	}
	if p.Allow(url) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial success closes the breaker and re-admits the replica.
	p.ReportSuccess(url)
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("state %q after trial success, want closed", got)
	}
	if p.HealthyCount() != 2 {
		t.Fatalf("HealthyCount = %d after close, want 2", p.HealthyCount())
	}
	if p.Readmissions() != 1 {
		t.Fatalf("Readmissions = %d, want 1", p.Readmissions())
	}
	// A closed breaker needs a fresh FailAfter streak to reopen — the
	// failure count was reset on close.
	p.ReportFailure(url, errors.New("hiccup"))
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("one failure after close reopened the breaker (state %q)", got)
	}
}

// TestBreakerHalfOpenTrialFailureReopens pins the punishment path: a
// failed trial re-opens the breaker with a *fresh* cooldown from the
// failure, not the original opening.
func TestBreakerHalfOpenTrialFailureReopens(t *testing.T) {
	p, clk := breakerPool(t, nil)
	const url = "http://replica-a:1"
	for i := 0; i < 3; i++ {
		p.ReportFailure(url, errors.New("down"))
	}
	clk.advance(5 * time.Second)
	if !p.Allow(url) {
		t.Fatal("trial not admitted after cooldown")
	}
	p.ReportFailure(url, errors.New("still down"))
	if got := p.BreakerState(url); got != "open" {
		t.Fatalf("state %q after failed trial, want open", got)
	}
	// The fresh cooldown starts at the trial failure: 4s later it is still
	// rejecting; a full 5s admits the next trial.
	clk.advance(4 * time.Second)
	if p.Allow(url) {
		t.Fatal("re-opened breaker admitted a request before the fresh cooldown elapsed")
	}
	clk.advance(1 * time.Second)
	if !p.Allow(url) {
		t.Fatal("re-opened breaker never reached half-open again")
	}
	// This time the trial succeeds.
	p.ReportSuccess(url)
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("state %q after second trial success, want closed", got)
	}
}

// TestBreakerOpenFailuresDoNotExtendCooldown pins the dark-replica rule:
// probe failures while the breaker is open must not push openedAt forward,
// or a continuously-probed dead replica would never reach half-open.
func TestBreakerOpenFailuresDoNotExtendCooldown(t *testing.T) {
	p, clk := breakerPool(t, nil)
	const url = "http://replica-a:1"
	for i := 0; i < 3; i++ {
		p.ReportFailure(url, errors.New("down"))
	}
	// Keep failing every second while open (as the prober would).
	for i := 0; i < 4; i++ {
		clk.advance(1 * time.Second)
		p.ReportFailure(url, errors.New("probe: still down"))
	}
	clk.advance(1 * time.Second) // 5s since opening, despite constant failures
	if !p.Allow(url) {
		t.Fatal("open-state failures extended the cooldown; half-open never reached")
	}
}

// TestBreakerClosedByProbeRevival pins the probe ↔ breaker agreement: a
// replica ejected by request-path failures is re-admitted (breaker closed)
// purely by ReviveAfter healthy probe rounds — no trial request needed —
// and the half-open trial slot is cleared with it.
func TestBreakerClosedByProbeRevival(t *testing.T) {
	p, toggles := newTogglePool(t, 2, func(c *PoolConfig) {
		c.FailAfter = 2
		c.ReviveAfter = 2
	})
	clk := newFakeClock()
	p.now = clk.now
	ctx := context.Background()
	url := p.cfg.Replicas[0]

	// Eject via the request path while the replica's healthz is down.
	toggles[0].down.Store(true)
	p.ReportFailure(url, errors.New("request failed"))
	p.ReportFailure(url, errors.New("request failed"))
	if got := p.BreakerState(url); got != "open" {
		t.Fatalf("state %q after request-path ejection, want open", got)
	}

	// One failing probe round while open: stays open, stays unhealthy.
	p.Probe(ctx)
	if got := p.BreakerState(url); got != "open" {
		t.Fatalf("state %q after failing probe, want open", got)
	}

	// Replica recovers; ReviveAfter probe rounds close the breaker without
	// any trial traffic.
	toggles[0].down.Store(false)
	p.Probe(ctx)
	if got := p.BreakerState(url); got != "open" {
		t.Fatalf("state %q after one healthy probe, want still open (ReviveAfter=2)", got)
	}
	p.Probe(ctx)
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("state %q after ReviveAfter healthy probes, want closed", got)
	}
	if !p.Allow(url) {
		t.Fatal("probe-revived replica rejected a request")
	}
	st := p.Status()
	if st[0].Breaker != "closed" || !st[0].Healthy {
		t.Fatalf("Status[0] = %+v, want closed/healthy", st[0])
	}
}

// TestBreakerHalfOpenProbeInterplay pins the asymmetric-threshold corner:
// a half-open breaker whose trial is still in flight closes early when
// probes alone accumulate ReviveAfter successes — and the trial's eventual
// ReportSuccess on the now-closed breaker is a harmless no-op.
func TestBreakerHalfOpenProbeInterplay(t *testing.T) {
	p, toggles := newTogglePool(t, 2, func(c *PoolConfig) {
		c.FailAfter = 2
		c.ReviveAfter = 2
		c.BreakerCooldown = time.Second
	})
	clk := newFakeClock()
	p.now = clk.now
	ctx := context.Background()
	url := p.cfg.Replicas[0]

	p.ReportFailure(url, errors.New("down"))
	p.ReportFailure(url, errors.New("down"))
	clk.advance(time.Second)
	if !p.Allow(url) {
		t.Fatal("trial not admitted")
	}
	// While the trial is in flight, the replica answers probes again.
	toggles[0].down.Store(false)
	p.Probe(ctx)
	p.Probe(ctx)
	if got := p.BreakerState(url); got != "closed" {
		t.Fatalf("state %q after ReviveAfter probes during the trial, want closed", got)
	}
	readmitted := p.Readmissions()
	p.ReportSuccess(url) // the trial lands late: no double-count
	if p.Readmissions() != readmitted {
		t.Fatal("late trial success double-counted a re-admission")
	}
	// The trial slot must have been cleared by the close: a fresh ejection
	// and cooldown admits a new trial.
	p.ReportFailure(url, errors.New("down again"))
	p.ReportFailure(url, errors.New("down again"))
	clk.advance(time.Second)
	if !p.Allow(url) {
		t.Fatal("stale trial flag survived the close; new trial rejected")
	}
}

// TestPoolConcurrentBreakerRace hammers every public entry point from
// concurrent goroutines — request-path reports racing the prober racing
// Route/Allow/Status readers — while the replicas' health flips. Run
// under -race this pins the locking discipline; the only invariant
// asserted is that the pool ends functional (a final revive round
// re-admits everything).
func TestPoolConcurrentBreakerRace(t *testing.T) {
	p, toggles := newTogglePool(t, 3, func(c *PoolConfig) {
		c.FailAfter = 2
		c.ReviveAfter = 2
		c.BreakerCooldown = time.Millisecond
	})
	ctx := context.Background()
	urls := p.cfg.Replicas

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(f func(r *rand.Rand)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(len(urls))))
			for {
				select {
				case <-stop:
					return
				default:
					f(r)
				}
			}
		}()
	}
	// Request-path reporters: random successes and failures.
	for i := 0; i < 4; i++ {
		worker(func(r *rand.Rand) {
			u := urls[r.Intn(len(urls))]
			if p.Allow(u) && r.Intn(2) == 0 {
				p.ReportSuccess(u)
			} else {
				p.ReportFailure(u, errors.New("synthetic"))
			}
		})
	}
	// Health flippers.
	worker(func(r *rand.Rand) {
		toggles[r.Intn(len(toggles))].down.Store(r.Intn(2) == 0)
	})
	// The prober.
	worker(func(*rand.Rand) { p.Probe(ctx) })
	// Readers.
	worker(func(r *rand.Rand) {
		_ = p.Route("bag-key")
		_ = p.Status()
		_ = p.HealthyCount()
		_ = p.BreakerSkips()
		_ = p.BreakerState(urls[r.Intn(len(urls))])
	})

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The pool must still function: all replicas up, enough probe rounds
	// close every breaker.
	for _, tg := range toggles {
		tg.down.Store(false)
	}
	for i := 0; i < 3; i++ {
		p.Probe(ctx)
	}
	if p.HealthyCount() != len(urls) {
		t.Fatalf("HealthyCount = %d after full revival, want %d (status %+v)",
			p.HealthyCount(), len(urls), p.Status())
	}
	for _, u := range urls {
		if !p.Allow(u) {
			t.Errorf("replica %s still breaker-rejected after revival", u)
		}
	}
}
