package memsim

import "fmt"

// PageSize is the translation granule used by the TLB model.
const PageSize = 4096

// TLB is a fully-associative translation lookaside buffer with exact-LRU
// replacement and per-source statistics. GPUs share TLBs across MPS clients
// (Section II of the paper), so entries from different applications evict
// one another; Flush models the context-switch flushes the paper identifies
// as a major multi-application overhead.
//
// The implementation is O(1) per access: a map keyed on the packed
// (page, source) pair locates the entry, and an intrusive doubly-linked
// recency list threaded through the slot array yields the exact-LRU victim
// without scanning. It is bit-identical to the original linear-scan design
// (retained as refTLB in reference_test.go and enforced by the differential
// tests): the original picked the entry with the smallest logical clock,
// breaking ties by lowest index. Because only Flush/Reset invalidate — and
// they invalidate everything — the tied (never-touched) entries are always
// exactly the slots above nextFree, claimed in ascending order, and among
// valid entries clock values are unique, so the list head *is* the
// original's victim.
type TLB struct {
	entries  int
	nSources uint64
	slots    []tlbSlot
	index    map[uint64]int32 // packed (page, source) -> slot
	head     int32            // LRU end of the recency list (-1 when empty)
	tail     int32            // MRU end (-1 when empty)
	nextFree int              // slots[nextFree:] never used since last Flush/Reset
	stats    []CacheStats
	flushes  uint64
}

// tlbSlot is one TLB entry threaded onto the recency list.
type tlbSlot struct {
	key        uint64 // packed (page, source), see key()
	prev, next int32  // recency-list neighbours (-1 = none)
}

// NewTLB builds a TLB with the given number of entries serving nSources.
func NewTLB(entries, nSources int) (*TLB, error) {
	if entries <= 0 || nSources <= 0 {
		return nil, fmt.Errorf("memsim: invalid TLB config (entries=%d sources=%d)", entries, nSources)
	}
	return &TLB{
		entries:  entries,
		nSources: uint64(nSources),
		slots:    make([]tlbSlot, entries),
		index:    make(map[uint64]int32, entries),
		head:     -1,
		tail:     -1,
		stats:    make([]CacheStats, nSources),
	}, nil
}

// key packs (page, source) into one map key. source < nSources, so the
// packing is collision-free; pages derived from simulator addresses stay
// far below the 2^64/nSources overflow bound.
func (t *TLB) key(source int, page uint64) uint64 {
	return page*t.nSources + uint64(source)
}

// Access translates addr for source, returning true on a TLB hit.
// Different sources never share translations (separate address spaces under
// MPS), so the (source, page) pair is the lookup key.
func (t *TLB) Access(source int, addr uint64) bool {
	page := addr / PageSize
	t.stats[source].Accesses++
	key := t.key(source, page)
	if i, ok := t.index[key]; ok {
		t.touch(i)
		return true
	}
	t.stats[source].Misses++
	var i int32
	if t.nextFree < t.entries {
		// Original semantics: invalid entries all carry clock 0 and win
		// the victim scan at the lowest index — i.e. in ascending order.
		i = int32(t.nextFree)
		t.nextFree++
	} else {
		// All entries valid: evict the exact-LRU entry at the list head.
		i = t.head
		t.unlink(i)
		delete(t.index, t.slots[i].key)
	}
	t.slots[i].key = key
	t.index[key] = i
	t.pushMRU(i)
	return false
}

// touch moves slot i to the MRU end of the recency list.
func (t *TLB) touch(i int32) {
	if t.tail == i {
		return
	}
	t.unlink(i)
	t.pushMRU(i)
}

// unlink removes slot i from the recency list.
func (t *TLB) unlink(i int32) {
	s := &t.slots[i]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
}

// pushMRU appends slot i at the MRU end of the recency list.
func (t *TLB) pushMRU(i int32) {
	s := &t.slots[i]
	s.prev = t.tail
	s.next = -1
	if t.tail >= 0 {
		t.slots[t.tail].next = i
	} else {
		t.head = i
	}
	t.tail = i
}

// Flush invalidates every entry, modelling a full TLB shootdown at an MPS
// context boundary, and counts the event.
func (t *TLB) Flush() {
	clear(t.index)
	t.head, t.tail = -1, -1
	t.nextFree = 0
	t.flushes++
}

// Stats returns per-source access statistics.
func (t *TLB) Stats(source int) CacheStats { return t.stats[source] }

// Flushes returns how many full flushes occurred.
func (t *TLB) Flushes() uint64 { return t.flushes }

// Entries returns the TLB capacity in entries.
func (t *TLB) Entries() int { return t.entries }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	clear(t.index)
	t.head, t.tail = -1, -1
	t.nextFree = 0
	for i := range t.stats {
		t.stats[i] = CacheStats{}
	}
	t.flushes = 0
}
