package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("content %q", b)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content after replace %q", b)
	}
}

// TestWriteFilePartialWriteLeavesOriginal is the crash-safety contract: a
// write callback that produces half its output and then fails (the
// in-process analogue of dying mid-save) must leave the previous complete
// file untouched and no temp litter behind.
func TestWriteFilePartialWriteLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, []byte("intact-old-model"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full halfway")
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, `{"format":"mapc-predictor-v1","truncat`); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped callback failure", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "intact-old-model" {
		t.Fatalf("destination corrupted by failed write: %q", b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the original", len(entries))
	}
}

func TestWriteFileNoPartialOnFreshPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	err := WriteFile(path, func(w io.Writer) error {
		_, _ = io.WriteString(w, "part")
		return errors.New("fail before commit")
	})
	if err == nil {
		t.Fatal("callback failure swallowed")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("failed write materialized the destination: %v", statErr)
	}
}

func TestWriteFileBadDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("missing directory accepted")
	}
}
