package experiments

import (
	"fmt"

	"mapc/internal/core"
)

// Figure10 reproduces Figure 10: the percentage of LOOCV test points whose
// decision path uses each feature kind at least once.
func Figure10(e *Env) (*Table, error) {
	stats, err := e.pathStats()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure10",
		Title:  "Percentage of test points containing a feature in their decision path",
		Header: []string{"feature", "presence %"},
		Notes: []string{
			"paper shape: GPU time appears in 100% of decision paths, fairness in ~65%, the mix features far less",
		},
	}
	for _, k := range stats.KindNames {
		t.Rows = append(t.Rows, []string{k, fmt.Sprintf("%.1f", stats.Presence[k])})
	}
	return t, nil
}

// maxPathUses caps the use-count histogram of Figure 11.
const maxPathUses = 6

// Figure11 reproduces Figure 11's radar data: for each feature kind, the
// distribution of per-test-point decision-path use counts.
func Figure11(e *Env) (*Table, error) {
	stats, err := e.pathStats()
	if err != nil {
		return nil, err
	}
	header := []string{"feature", "mean uses"}
	for u := 0; u <= maxPathUses; u++ {
		label := fmt.Sprintf("=%d", u)
		if u == maxPathUses {
			label = fmt.Sprintf(">=%d", u)
		}
		header = append(header, label)
	}
	t := &Table{
		ID:     "figure11",
		Title:  "Frequency of each feature on per-test-point decision paths (radar data, % of test points)",
		Header: header,
		Notes: []string{
			"paper shape: GPU time is consulted ~5-6 times per path, fairness 1-3 times on most paths, other features 0-2 times",
		},
	}
	n := float64(len(stats.PerPoint))
	for _, k := range stats.KindNames {
		hist := make([]int, maxPathUses+1)
		for _, counts := range stats.PerPoint {
			u := counts[k]
			if u > maxPathUses {
				u = maxPathUses
			}
			hist[u]++
		}
		row := []string{k, fmt.Sprintf("%.2f", stats.MeanUses[k])}
		for _, h := range hist {
			row = append(row, fmt.Sprintf("%.0f", float64(h)/n*100))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// heatmapPoints is the number of sample test points shown in Figure 12's
// snapshot (the paper shows 26).
const heatmapPoints = 26

// Figure12 reproduces Figure 12: a per-test-point heatmap of how many times
// each feature kind was used on the point's decision path.
func Figure12(e *Env) (*Table, error) {
	stats, err := e.pathStats()
	if err != nil {
		return nil, err
	}
	header := []string{"test point"}
	header = append(header, stats.KindNames...)
	t := &Table{
		ID:     "figure12",
		Title:  "Snapshot of per-test-point feature use counts on decision paths",
		Header: header,
		Notes: []string{
			"paper shape: the GPU-time column dominates every row; fairness contributes 1-3 uses on most rows; CPU time appears on few nodes yet those splits are load-bearing",
		},
	}
	limit := heatmapPoints
	if limit > len(stats.PerPoint) {
		limit = len(stats.PerPoint)
	}
	for i := 0; i < limit; i++ {
		row := []string{fmt.Sprintf("t%d", i+1)}
		for _, k := range stats.KindNames {
			row = append(row, fmt.Sprintf("%d", stats.PerPoint[i][k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// pathStats computes (and does not cache — the underlying LOOCV is cached)
// the decision-path statistics shared by Figures 10-12.
func (e *Env) pathStats() (*core.PathStats, error) {
	res, err := e.LOOCV()
	if err != nil {
		return nil, err
	}
	return core.AnalyzePaths(res)
}
