package cpusim

import (
	"mapc/internal/memsim"
	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// This file is the CPU side of the fast fidelity tier (see
// internal/phasesum): the contended co-run — the shared-LLC interleave
// that RunMemo replays reference-by-reference for every bag — is replaced
// by a closed-form capacity-sharing model over memoized per-phase reuse
// sketches of each app's LLC-bound stream. Isolated runs stay exact: they
// are both the summaries' source and the delta-correction anchors, so a
// fast-tier result degrades gracefully toward the exact one as contention
// vanishes.

// memoDomainSum caches the reuse sketch of one app's LLC-bound stream.
// Keyed by (config, workload, slot): the bound stream is the L2 miss
// stream, so it depends on the private cache geometry and the prefetcher.
const memoDomainSum = "cpusim/sum"

// summaryEntry is the memoized sketch; immutable once published.
type summaryEntry struct{ sum phasesum.Summary }

// privResultFor returns app w's private replay for slot ai — through the
// memo when available (the same "cpusim/priv" entries the exact shared
// path uses), cold otherwise.
func privResultFor(cfg Config, memo *simcache.Cache, w *trace.Workload, ai int) (privResult, error) {
	compute := func() (privResult, error) {
		l1, err := memsim.NewCache("l1", cfg.L1Bytes, cfg.L1Ways, 1)
		if err != nil {
			return privResult{}, err
		}
		l2, err := memsim.NewCache("l2", cfg.L2Bytes, cfg.L2Ways, 1)
		if err != nil {
			return privResult{}, err
		}
		count, maxPhase := 0, 0
		for pi := range w.Phases {
			if refs := w.Phases[pi].MemRefs(); refs > 0 {
				k := memsim.SampleRefs(refs)
				count += k
				if k > maxPhase {
					maxPhase = k
				}
			}
		}
		return privateReplay(cfg, w, ai, l1, l2, make([]uint64, maxPhase), make([]uint64, 0, count))
	}
	if memo == nil {
		return compute()
	}
	key := simcache.Key{Domain: memoDomainPriv, Config: configKey(cfg), Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		pr, err := compute()
		if err != nil {
			return nil, 0, err
		}
		return pr, pr.bytes(), nil
	})
	if err != nil {
		return privResult{}, err
	}
	return v.(privResult), nil
}

// boundSummaryFor returns the memoized reuse sketch of app w's LLC-bound
// stream at slot ai. pr must be the matching privResult (its bound/ends
// are only read on a memo miss or when memo is nil).
func boundSummaryFor(cfg Config, memo *simcache.Cache, w *trace.Workload, ai int, pr privResult) (phasesum.Summary, error) {
	if memo == nil {
		return phasesum.Summarize(pr.bound, pr.ends), nil
	}
	key := simcache.Key{Domain: memoDomainSum, Config: configKey(cfg), Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		sum := phasesum.Summarize(pr.bound, pr.ends)
		return summaryEntry{sum: sum}, sum.Bytes(), nil
	})
	if err != nil {
		return phasesum.Summary{}, err
	}
	return v.(summaryEntry).sum, nil
}

// runSteadyAnalytic is the analytic counterpart of runSteady: exact
// private phases (memo hits), closed-form shared-LLC miss estimates, then
// the identical timing tail. Returns the model's combined confidence; an
// isolated app is computed exactly (confidence 1).
func runSteadyAnalytic(cfg Config, memo *simcache.Cache, apps []App) ([]Result, float64, error) {
	if len(apps) == 1 {
		res, err := runSteady(cfg, memo, apps)
		return res, 1, err
	}
	n := len(apps)
	mem := make([][]phaseMem, n)
	sums := make([][]phasesum.PhaseSum, n)
	rates := make([]int, n)
	privs := make([]privResult, n)
	isoMems := make([][]phaseMem, n)
	for ai := range apps {
		w := apps[ai].Workload
		pr, err := privResultFor(cfg, memo, w, ai)
		if err != nil {
			return nil, 0, err
		}
		privs[ai] = pr
		sum, err := boundSummaryFor(cfg, memo, w, ai, pr)
		if err != nil {
			return nil, 0, err
		}
		sums[ai] = sum.Line
		rates[ai] = sum.TotalRefs
		// Exact isolated anchor (memoized whole-run iso, slot 0): the
		// model predicts contention's *delta* on top of it. Slot-0
		// streams differ from slot-ai ones only in seed/base, so the
		// anchor transfers; the residual is what the oracle bounds.
		isoMem, _, err := simulateMemory(cfg, memo, []App{{Workload: w, Threads: apps[ai].Threads}})
		if err != nil {
			return nil, 0, err
		}
		isoMems[ai] = isoMem[0]
	}

	shCfg := phasesum.SharedConfig{Capacity: float64(cfg.LLCytes) / memsim.LineSize}
	shared := phasesum.SharedMiss(sums, rates, shCfg)
	conf := phasesum.CombineConfidence(shared, sums)

	llcRates := make([]float64, n)
	for ai := range apps {
		iso := phasesum.SharedMiss([][]phasesum.PhaseSum{sums[ai]}, []int{rates[ai]}, shCfg)
		pm := make([]phaseMem, len(privs[ai].mem))
		var missSum, boundSum float64
		for pi := range pm {
			l2 := privs[ai].mem[pi].l2Miss
			pm[pi].l1Miss = privs[ai].mem[pi].l1Miss
			pm[pi].l2Miss = l2
			if l2 <= 0 {
				continue
			}
			// Anchor in bound-stream space: exact isolated LLC misses
			// per LLC access, shifted by the model's contention delta,
			// clamped into [0,1] (LLC misses are a subset of L2 misses).
			anchor := 0.0
			if isoL2 := isoMems[ai][pi].l2Miss; isoL2 > 0 {
				anchor = isoMems[ai][pi].llcMiss / isoL2
			}
			m := phasesum.Clamp01(anchor + shared[ai][pi].Miss - iso[0][pi].Miss)
			pm[pi].llcMiss = m * l2
			bound := float64(sums[ai][pi].Refs)
			missSum += m * bound
			boundSum += bound
		}
		mem[ai] = pm
		if boundSum > 0 {
			llcRates[ai] = missSum / boundSum
		}
	}
	return steadyFromMem(cfg, apps, mem, llcRates), conf, nil
}

// RunMemoFidelity is RunMemo with a fidelity tier. Exact fidelity (and
// every single-app run) delegates to RunMemo unchanged — bit-identical to
// the legacy path. Fast estimates every contended co-run analytically;
// mixed does so only while the model's self-reported confidence clears
// phasesum.DefaultMinConfidence, falling back to exact simulation below
// it. The returned RunKind reports which simulator answered; the CPU
// model has no share partitioning or DRAM gate, so its only fallback
// reason is low confidence.
func RunMemoFidelity(cfg Config, memo *simcache.Cache, apps []App, fid phasesum.Fidelity) ([]Result, phasesum.RunKind, error) {
	fid = fid.Effective()
	if !fid.Analytic() || len(apps) == 1 {
		res, err := RunMemo(cfg, memo, apps)
		return res, phasesum.RunKind{UsedExact: true}, err
	}
	if err := validateApps(cfg, apps); err != nil {
		return nil, phasesum.RunKind{}, err
	}
	// Evaluate the full-contention steady state once: it is both the
	// schedule's first step and the confidence the mixed tier gates on
	// (the full client set is the most contended, so its confidence is
	// the run's worst case).
	steady, conf, err := runSteadyAnalytic(cfg, memo, apps)
	if err != nil {
		return nil, phasesum.RunKind{}, err
	}
	if fid == phasesum.Mixed && conf < phasesum.DefaultMinConfidence {
		res, err := RunMemo(cfg, memo, apps)
		return res, phasesum.RunKind{UsedExact: true, Fallback: phasesum.FallbackLowConfidence}, err
	}
	first := true
	res, err := runPhased(cfg, apps, func(sub []App) ([]Result, error) {
		if first && len(sub) == len(apps) {
			first = false
			return steady, nil
		}
		r, _, err := runSteadyAnalytic(cfg, memo, sub)
		return r, err
	})
	return res, phasesum.RunKind{}, err
}
