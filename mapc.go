// Package mapc predicts the performance of multi-application bags of tasks
// on a GPU, reproducing "Performance Prediction for Multi-Application
// Concurrency on GPUs" (Moolchandani et al., ISPASS 2020).
//
// The library bundles everything the paper's pipeline needs, implemented
// from scratch: the nine Table-II computer-vision benchmarks under
// instrumentation, a multicore-CPU simulator and an MPS-capable GPU
// simulator as the measurement substrate, a MICA-style instruction-mix
// analyzer, the fairness metric, a CART regression tree (plus OLS and SVR
// baselines), and the full evaluation harness for Figures 1-12.
//
// Quick start:
//
//	corpus, err := mapc.GenerateCorpus()              // the 91-run dataset
//	p, err := mapc.Train(corpus, mapc.SchemeFull)     // decision-tree model
//	gen, _ := mapc.NewGenerator(mapc.DefaultConfig())
//	x, _, _ := gen.FeaturesFor(
//	    mapc.Member{Benchmark: "sift", Batch: 40},
//	    mapc.Member{Benchmark: "knn", Batch: 20})
//	seconds, err := p.PredictRaw(x)                   // predicted bag time
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package mapc

import (
	"io"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/experiments"
)

// Re-exported types: aliases keep the internal packages private while
// letting callers hold and pass the library's values.
type (
	// Config controls corpus generation: simulated machines, batch
	// sizes, thread counts, and seeds.
	Config = dataset.Config
	// Generator produces measurements and corpora.
	Generator = dataset.Generator
	// Corpus is the generated training dataset (Section V-B).
	Corpus = dataset.Corpus
	// Point is one measured bag data point (2..8 applications).
	Point = dataset.Point
	// Member identifies a (benchmark, batch) application instance.
	Member = dataset.Member
	// Predictor is the trained decision-tree model (the paper's
	// contribution).
	Predictor = core.Predictor
	// Scheme is a named feature subset (the Figure-5 bars).
	Scheme = core.Scheme
	// TreeParams are the decision-tree hyper-parameters.
	TreeParams = core.TreeParams
	// Protocol selects the LOOCV hold-out semantics.
	Protocol = core.Protocol
	// LOOCVResult is one fold of Figure-4 cross-validation.
	LOOCVResult = core.LOOCVResult
	// PathStats aggregates decision-path usage (Figures 10-12).
	PathStats = core.PathStats
	// Env caches state across experiment regenerations.
	Env = experiments.Env
	// Table is a rendered experiment artifact.
	Table = experiments.Table
)

// The Figure-5 feature schemes and LOOCV protocols.
var (
	SchemeInsmix        = core.SchemeInsmix
	SchemeInsmixCPU     = core.SchemeInsmixCPU
	SchemeInsmixCPUFair = core.SchemeInsmixCPUFair
	SchemeFull          = core.SchemeFull
)

// LOOCV protocols (see core.Protocol).
const (
	HoldOutOwn        = core.HoldOutOwn
	HoldOutContaining = core.HoldOutContaining
)

// DefaultConfig returns the paper-equivalent configuration: the Table-III
// machines, batch sizes {20,40,80,160,320}, the fixed dataset seed, and a
// measurement worker pool of runtime.NumCPU() goroutines. Set
// Config.Workers to 1 for the exact legacy serial path; outputs are
// bit-for-bit identical for every worker count.
func DefaultConfig() Config { return dataset.DefaultConfig() }

// DefaultWorkers resolves a Config.Workers value the way the measurement
// engine does: values <= 0 select runtime.NumCPU().
func DefaultWorkers(workers int) int { return Config{Workers: workers}.EffectiveWorkers() }

// NewGenerator returns a measurement/corpus generator.
func NewGenerator(cfg Config) (*Generator, error) { return dataset.NewGenerator(cfg) }

// GenerateCorpus builds the paper's 91-run corpus with default settings.
func GenerateCorpus() (*Corpus, error) {
	gen, err := dataset.NewGenerator(dataset.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return gen.Generate()
}

// DefaultTreeParams returns the tree hyper-parameters used in the paper's
// experiments.
func DefaultTreeParams() TreeParams { return core.DefaultTreeParams() }

// Train fits the decision-tree predictor on the corpus with the scheme and
// default tree parameters.
func Train(c *Corpus, scheme Scheme) (*Predictor, error) {
	return core.Train(c, scheme, core.DefaultTreeParams())
}

// TrainWithParams fits with explicit tree hyper-parameters.
func TrainWithParams(c *Corpus, scheme Scheme, params TreeParams) (*Predictor, error) {
	return core.Train(c, scheme, params)
}

// LOOCV runs the Figure-4 leave-one-benchmark-out protocol, training folds
// on the default worker pool (runtime.NumCPU()).
func LOOCV(c *Corpus, scheme Scheme, params TreeParams, protocol Protocol) ([]LOOCVResult, error) {
	return core.LOOCV(c, scheme, params, protocol)
}

// LOOCVWorkers is LOOCV with an explicit fold-level worker bound
// (0 = runtime.NumCPU(), 1 = serial). Fold results are bit-for-bit
// identical for every worker count.
func LOOCVWorkers(c *Corpus, scheme Scheme, params TreeParams, protocol Protocol, workers int) ([]LOOCVResult, error) {
	return core.LOOCVWorkers(c, scheme, params, protocol, workers)
}

// MeanLOOCVError averages the per-benchmark LOOCV errors (the paper's
// headline metric).
func MeanLOOCVError(results []LOOCVResult) float64 { return core.MeanLOOCVError(results) }

// AnalyzePaths reduces LOOCV results to decision-path statistics.
func AnalyzePaths(results []LOOCVResult) (*PathStats, error) { return core.AnalyzePaths(results) }

// NewScheme builds a custom feature scheme from feature kinds; see
// FeatureKinds for the vocabulary.
func NewScheme(name string, kinds ...string) (Scheme, error) { return core.NewScheme(name, kinds...) }

// LoadPredictor reads a predictor saved with Predictor.Save.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.Load(r) }

// LoadPredictorFile reads a predictor saved with Predictor.SaveFile.
func LoadPredictorFile(path string) (*Predictor, error) { return core.LoadFile(path) }

// Benchmarks returns the canonical benchmark names (Table II).
func Benchmarks() []string { return benchmarkNames() }

// NewEnv returns an experiment environment for regenerating paper figures.
func NewEnv(cfg Config) *Env { return experiments.NewEnv(cfg) }

// DefaultEnv returns an experiment environment with default configuration.
func DefaultEnv() *Env { return experiments.DefaultEnv() }

// RunExperiment regenerates one paper artifact (e.g. "figure5").
func RunExperiment(e *Env, id string) (*Table, error) { return experiments.Run(e, id) }

// AllExperiments regenerates every paper artifact in order.
func AllExperiments(e *Env) ([]*Table, error) { return experiments.All(e) }
