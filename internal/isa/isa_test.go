package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		SSE: "sse", ALU: "alu", MEM: "mem", FP: "fp",
		Stack: "stack", String: "string", Shift: "shift", Control: "control",
	}
	for cat, want := range cases {
		if got := cat.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(cat), got, want)
		}
	}
	if got := Category(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseCategoryRoundTrip(t *testing.T) {
	for _, c := range Categories() {
		got, err := ParseCategory(c.String())
		if err != nil {
			t.Fatalf("ParseCategory(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("ParseCategory(bogus) succeeded")
	}
	// Case-insensitive.
	if got, err := ParseCategory(" ALU "); err != nil || got != ALU {
		t.Errorf("ParseCategory(\" ALU \") = %v, %v", got, err)
	}
}

func TestCategoriesOrder(t *testing.T) {
	cats := Categories()
	if len(cats) != int(NumCategories) {
		t.Fatalf("Categories() returned %d entries", len(cats))
	}
	for i, c := range cats {
		if int(c) != i {
			t.Errorf("Categories()[%d] = %v", i, c)
		}
	}
}

func TestCountsAddTotal(t *testing.T) {
	var k Counts
	k.Add(ALU, 10)
	k.Add(MEM, 5)
	k.Add(ALU, 2)
	if k[ALU] != 12 || k[MEM] != 5 {
		t.Fatalf("counts = %v", k)
	}
	if k.Total() != 17 {
		t.Fatalf("Total() = %d, want 17", k.Total())
	}
}

func TestAddCounts(t *testing.T) {
	var a, b Counts
	a.Add(FP, 3)
	b.Add(FP, 4)
	b.Add(Shift, 1)
	a.AddCounts(b)
	if a[FP] != 7 || a[Shift] != 1 {
		t.Fatalf("AddCounts result %v", a)
	}
}

func TestScale(t *testing.T) {
	var k Counts
	k.Add(ALU, 100)
	k.Add(MEM, 7)
	s := k.Scale(2.5)
	if s[ALU] != 250 {
		t.Errorf("scaled ALU = %d, want 250", s[ALU])
	}
	if s[MEM] != 17 { // 17.5 truncates toward zero
		t.Errorf("scaled MEM = %d, want 17", s[MEM])
	}
	if k[ALU] != 100 {
		t.Error("Scale mutated the receiver")
	}
}

func TestMixEmpty(t *testing.T) {
	var k Counts
	mix := k.Mix()
	for i, v := range mix {
		if v != 0 {
			t.Errorf("empty mix[%d] = %v", i, v)
		}
	}
}

func TestMixSumsToOne(t *testing.T) {
	if err := quick.Check(func(vals [NumCategories]uint16) bool {
		var k Counts
		total := uint64(0)
		for i, v := range vals {
			k.Add(Category(i), uint64(v))
			total += uint64(v)
		}
		if total == 0 {
			return true
		}
		var sum float64
		for _, f := range k.Mix() {
			if f < 0 || f > 1 {
				return false
			}
			sum += f
		}
		return math.Abs(sum-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountsString(t *testing.T) {
	var k Counts
	k.Add(SSE, 1)
	s := k.String()
	if !strings.Contains(s, "sse=1") || !strings.Contains(s, "control=0") {
		t.Errorf("String() = %q", s)
	}
}
