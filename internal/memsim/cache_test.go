package memsim

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, bytes int64, ways, sources int) *Cache {
	t.Helper()
	c, err := NewCache("test", bytes, ways, sources)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigErrors(t *testing.T) {
	cases := []struct {
		bytes         int64
		ways, sources int
	}{
		{0, 1, 1}, {-64, 1, 1}, {1024, 0, 1}, {1024, 1, 0}, {64, 4, 1},
	}
	for _, c := range cases {
		if _, err := NewCache("bad", c.bytes, c.ways, c.sources); err == nil {
			t.Errorf("NewCache(%d,%d,%d) accepted", c.bytes, c.ways, c.sources)
		}
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	c := mustCache(t, 4096, 4, 1)
	if c.Access(0, 0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, 0x1000) {
		t.Fatal("repeat access missed")
	}
	if !c.Access(0, 0x1000+LineSize-1) {
		t.Fatal("same-line access missed")
	}
	st := c.Stats(0)
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	// 8 lines total, 2 ways -> 4 sets. Touch 16 distinct lines, then
	// re-touch the first: it must have been evicted.
	c := mustCache(t, 8*LineSize, 2, 1)
	for i := uint64(0); i < 16; i++ {
		c.Access(0, i*LineSize)
	}
	if c.Access(0, 0) {
		t.Fatal("line survived capacity pressure beyond associativity")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Two-way set: A, B fill it; touching A again then adding C must
	// evict B, not A.
	c := mustCache(t, 2*LineSize, 2, 1)
	sets := uint64(c.Sets()) // 1 set expected
	if sets != 1 {
		t.Fatalf("expected 1 set, got %d", sets)
	}
	a, b, cc := uint64(0), uint64(LineSize), uint64(2*LineSize)
	c.Access(0, a)
	c.Access(0, b)
	c.Access(0, a)  // A is now MRU
	c.Access(0, cc) // evicts B
	if !c.Access(0, a) {
		t.Error("LRU evicted the MRU line")
	}
	if c.Access(0, b) {
		t.Error("LRU kept the LRU line")
	}
}

func TestCacheCrossEvictions(t *testing.T) {
	c := mustCache(t, 2*LineSize, 2, 2)
	c.Access(0, 0)
	c.Access(0, LineSize)
	// Source 1 floods the set.
	c.Access(1, 2*LineSize)
	c.Access(1, 3*LineSize)
	if got := c.CrossEvictions(0); got != 2 {
		t.Fatalf("CrossEvictions(0) = %d, want 2", got)
	}
	if got := c.CrossEvictions(1); got != 0 {
		t.Fatalf("CrossEvictions(1) = %d, want 0", got)
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, 4096, 4, 1)
	c.Access(0, 0)
	c.Reset()
	if st := c.Stats(0); st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset %+v", st)
	}
	if c.Access(0, 0) {
		t.Fatal("line survived Reset")
	}
}

func TestCacheMissesNeverExceedAccesses(t *testing.T) {
	if err := quick.Check(func(seed uint64, addrs []uint16) bool {
		c, err := NewCache("q", 2048, 2, 1)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(0, uint64(a))
		}
		st := c.Stats(0)
		return st.Misses <= st.Accesses && st.Accesses == uint64(len(addrs))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCapacityRounding(t *testing.T) {
	// 3000 bytes with 64B lines and 4 ways: sets rounded down to a
	// power of two.
	c := mustCache(t, 3000, 4, 1)
	if c.Sets()&(c.Sets()-1) != 0 {
		t.Fatalf("sets %d not a power of two", c.Sets())
	}
	if c.CapacityBytes() > 3000 {
		t.Fatalf("capacity %d exceeds request", c.CapacityBytes())
	}
}

func TestMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Error("idle MissRate != 0")
	}
	s = CacheStats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v", got)
	}
}
