// Package benchio is the shared schema and storage for serving-tier
// benchmark results (BENCH_serve.json): cmd/mapc-loadgen appends entries,
// scripts/benchjson gates CI on them, and the committed file documents the
// serving tier's measured latency/throughput/shed profile for the repo's
// reference machine.
//
// The file is a single JSON document — machine metadata plus an append-only
// entry list — replaced atomically on every append via internal/fsatomic,
// so a crashed or interrupted loadgen run never leaves a truncated file.
package benchio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"mapc/internal/fsatomic"
)

// ServeEntry is one recorded load-generation run against a replica or the
// router. Latencies cover successful (200) responses only, measured after
// the warmup window; shed rate is the fraction of sent requests answered
// 503 (admission control) over the same window.
type ServeEntry struct {
	Label       string  `json:"label"`
	Date        string  `json:"date"`     // RFC 3339, UTC
	Target      string  `json:"target"`   // "replica" or "router"
	Replicas    int     `json:"replicas"` // serving processes behind the target
	K           int     `json:"k"`        // bag size replayed
	QPS         float64 `json:"offered_qps"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"` // measured window, warmup excluded

	Requests     int64            `json:"requests"` // sent during the measured window
	StatusCounts map[string]int64 `json:"status_counts"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	ThroughputRPS     float64 `json:"throughput_rps"`          // 200s per second
	ThroughputPerCore float64 `json:"throughput_rps_per_core"` // ThroughputRPS / cores
	ShedRate          float64 `json:"shed_rate"`               // 503s / Requests
}

// ServeBench is the schema of BENCH_serve.json.
type ServeBench struct {
	Machine string       `json:"machine"`
	Cores   int          `json:"cores"`
	Entries []ServeEntry `json:"entries"`
}

// Load reads a ServeBench file. A missing file is not an error: it returns
// an empty document, ready to append to.
func Load(path string) (*ServeBench, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &ServeBench{}, nil
	}
	if err != nil {
		return nil, err
	}
	var sb ServeBench
	if err := json.Unmarshal(b, &sb); err != nil {
		return nil, fmt.Errorf("benchio: parsing %s: %w", path, err)
	}
	return &sb, nil
}

// Append adds entry to the file at path, creating it with the given
// machine/cores metadata when absent, and replaces the file atomically.
// Existing machine metadata wins over the arguments, matching benchjson's
// BENCH_baseline.json convention: the file describes one reference machine.
func Append(path, machine string, cores int, entry ServeEntry) error {
	sb, err := Load(path)
	if err != nil {
		return err
	}
	if sb.Machine == "" {
		sb.Machine = machine
	}
	if sb.Cores == 0 {
		sb.Cores = cores
	}
	sb.Entries = append(sb.Entries, entry)
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sb)
	})
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted ascending
// samples using linear interpolation between closest ranks — the same
// estimate for p50 whether n is odd or even, and a defined p999 even for
// small n. Returns NaN for an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles sorts samples in place and returns the p50, p99 and p999
// estimates in one pass. Returns NaNs for an empty slice.
func Quantiles(samples []float64) (p50, p99, p999 float64) {
	sort.Float64s(samples)
	return Quantile(samples, 0.50), Quantile(samples, 0.99), Quantile(samples, 0.999)
}
