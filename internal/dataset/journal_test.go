package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mapc/internal/faultinject"
)

// syntheticPoint builds a recognizable fake point for journal I/O tests
// (no simulation required).
func syntheticPoint(i int) Point {
	return Point{
		Members: []Member{
			{Benchmark: "sift", Batch: 20 * (i + 1)},
			{Benchmark: "surf", Batch: 20 * (i + 1)},
		},
		X:        []float64{float64(i), 1.5 * float64(i), 0.125},
		Y:        0.001 * float64(i+1),
		Fairness: 0.5,
		CPUTimes: []float64{1, 2},
		GPUTimes: []float64{3, 4},
	}
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "corpus.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := map[string]Point{}
	for i := 0; i < 3; i++ {
		p := syntheticPoint(i)
		key := BagKey(p.Members[0], p.Members[1])
		if err := j.Append(key, p); err != nil {
			t.Fatal(err)
		}
		pts[key] = p
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Appends after Close fail loudly.
	if err := j.Append("x", syntheticPoint(9)); err == nil {
		t.Fatal("append to closed journal succeeded")
	}

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 || j2.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want 3/0", j2.Len(), j2.Dropped())
	}
	for key, want := range pts {
		got, ok := j2.Lookup(key)
		if !ok {
			t.Fatalf("key %s missing after reopen", key)
		}
		if got.Y != want.Y || BagKeyOf(got.Members) != BagKeyOf(want.Members) || len(got.X) != len(want.X) {
			t.Fatalf("key %s: %+v != %+v", key, got, want)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("key %s: X[%d] = %v, want %v", key, i, got.X[i], want.X[i])
			}
		}
	}
}

func TestCreateJournalRefusesExisting(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := CreateJournal(path, cfg); err == nil {
		t.Fatal("CreateJournal clobbered an existing journal")
	} else if !strings.Contains(err.Error(), "resume") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestOpenJournalCreatesWhenMissing(t *testing.T) {
	cfg := smallConfig()
	j, err := OpenJournal(journalPath(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Fatalf("fresh journal Len = %d", j.Len())
	}
}

func TestOpenJournalRejectsConfigMismatch(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("k", syntheticPoint(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := cfg
	other.Seed = cfg.Seed + 1
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal resumed under a different configuration")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("undescriptive mismatch error: %v", err)
	}

	// Worker count must NOT invalidate a journal (outputs are
	// worker-invariant by construction).
	sameButParallel := cfg
	sameButParallel.Workers = 8
	j2, err := OpenJournal(path, sameButParallel)
	if err != nil {
		t.Fatalf("worker count invalidated the journal: %v", err)
	}
	j2.Close()
}

func TestFingerprintSensitivity(t *testing.T) {
	cfg := smallConfig()
	base := cfg.Fingerprint()
	if cfgW := cfg; true {
		cfgW.Workers = 5
		if cfgW.Fingerprint() != base {
			t.Error("Workers changed the fingerprint")
		}
	}
	for name, mut := range map[string]func(*Config){
		"seed":    func(c *Config) { c.Seed++ },
		"threads": func(c *Config) { c.Threads++ },
		"batches": func(c *Config) { c.BatchSizes = []int{20, 40} },
		"bench":   func(c *Config) { c.Benchmarks = []string{"fast", "hog"} },
		"cpu":     func(c *Config) { c.CPU.PrefetchDegree = 2 },
		"gpu":     func(c *Config) { c.GPU.SMs++ },
		"mixed":   func(c *Config) { c.MixedPairs++ },
	} {
		c := smallConfig()
		mut(&c)
		if c.Fingerprint() == base {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}
}

// TestJournalTornTailTolerated is the loader half of the torn-write
// contract: a file whose final line is a partial record (crash between
// write and fsync) loads cleanly minus the torn record, and the
// resume-open compacts the file back to a fully parsable state.
func TestJournalTornTailTolerated(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("good", syntheticPoint(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the file by hand: append a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","point":{"Members"`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if j2.Len() != 1 || j2.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 1/1", j2.Len(), j2.Dropped())
	}
	if _, ok := j2.Lookup("good"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := j2.Lookup("torn"); ok {
		t.Fatal("torn record resurrected")
	}
	j2.Close()

	// The resume-open compacted the file: a third open sees zero drops.
	j3, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Dropped() != 0 || j3.Len() != 1 {
		t.Fatalf("compaction did not heal the tear: Len=%d Dropped=%d", j3.Len(), j3.Dropped())
	}
	j3.Close()
}

// TestJournalCorruptMiddleTruncates: WAL semantics — everything at and
// after the first unparsable record is discarded, even when later lines
// parse.
func TestJournalCorruptMiddleTruncates(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", syntheticPoint(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt line followed by a well-formed one.
	if _, err := f.WriteString("NOT JSON\n{\"key\":\"b\",\"point\":{}}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 || j2.Dropped() != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 1 kept and 2 dropped", j2.Len(), j2.Dropped())
	}
	if _, ok := j2.Lookup("b"); ok {
		t.Fatal("record after corruption trusted")
	}
}

func TestJournalRejectsForeignHeader(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	if err := os.WriteFile(path, []byte(`{"format":"mapc-journal-v999","config_sha256":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, cfg); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("foreign format accepted: %v", err)
	}
	if err := os.WriteFile(path, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, cfg); err == nil {
		t.Fatal("headerless journal accepted")
	}
}

// TestJournalKeepsRawValues pins the aliasing contract: corpus
// normalization scales Point.X in place after generation, and neither
// direction of sharing may leak scaled values into the journal.
func TestJournalKeepsRawValues(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := syntheticPoint(1)
	raw := append([]float64(nil), p.X...)
	if err := j.Append("k", p); err != nil {
		t.Fatal(err)
	}

	// Caller-side mutation (what normalize() does) must not reach the
	// journal...
	for i := range p.X {
		p.X[i] *= 1e6
	}
	// ...nor must mutating a looked-up copy.
	got, _ := j.Lookup("k")
	for i := range got.X {
		got.X[i] = -1
	}
	if err := j.Close(); err != nil { // Close commits the compacted file
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reread, ok := j2.Lookup("k")
	if !ok {
		t.Fatal("record lost")
	}
	for i := range raw {
		if reread.X[i] != raw[i] {
			t.Fatalf("journal leaked mutated X[%d]=%v, want raw %v", i, reread.X[i], raw[i])
		}
	}
}

// TestJournalTornWriteFaultInjection drives the writer half of the torn
// write through the faultinject hook: the injected fault must leave a
// genuinely torn file that the next open heals.
func TestJournalTornWriteFaultInjection(t *testing.T) {
	cfg := smallConfig()
	path := journalPath(t)
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.SetFaultInjector(faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Site: FaultSiteJournalAppend, Index: 1, Kind: faultinject.KindTornWrite, KeepBytes: 10, Once: true},
	}}))

	if err := j.Append("a", syntheticPoint(0)); err != nil {
		t.Fatal(err)
	}
	err = j.Append("b", syntheticPoint(1))
	var tw *faultinject.TornWrite
	if !errors.As(err, &tw) {
		t.Fatalf("append under torn-write fault returned %v", err)
	}
	if _, ok := j.Lookup("b"); ok {
		t.Fatal("torn record entered the in-memory journal")
	}
	// Abandon j without Close: the process "died" here. The on-disk file
	// now ends in a 10-byte partial record.
	j3, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatalf("open after simulated torn write: %v", err)
	}
	defer j3.Close()
	if j3.Len() != 1 || j3.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d after torn write, want 1/1", j3.Len(), j3.Dropped())
	}
}
