package dataset

import (
	"math"
	"reflect"
	"testing"

	"mapc/internal/phasesum"
)

// fidelityConfig is smallConfig at the requested tier, serial for
// deterministic counter assertions.
func fidelityConfig(fid phasesum.Fidelity) Config {
	cfg := smallConfig()
	cfg.Fidelity = fid
	cfg.Workers = 1
	return cfg
}

func TestFidelityValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Fidelity = "approximate"
	if _, err := NewGenerator(cfg); err == nil {
		t.Fatal("NewGenerator accepted an unknown fidelity")
	}
}

// TestFidelityFingerprint pins the journal-compat contract: exact (and the
// zero value) keep the legacy fingerprint, analytic tiers change it, and
// no two tiers share one.
func TestFidelityFingerprint(t *testing.T) {
	base := smallConfig()
	fps := map[phasesum.Fidelity]string{}
	for _, fid := range []phasesum.Fidelity{"", phasesum.Exact, phasesum.Mixed, phasesum.Fast} {
		cfg := base
		cfg.Fidelity = fid
		fps[fid] = cfg.Fingerprint()
	}
	if fps[""] != fps[phasesum.Exact] {
		t.Error("zero-value fidelity must fingerprint like exact (legacy journals)")
	}
	if fps[phasesum.Fast] == fps[phasesum.Exact] || fps[phasesum.Mixed] == fps[phasesum.Exact] ||
		fps[phasesum.Fast] == fps[phasesum.Mixed] {
		t.Error("analytic tiers must not share fingerprints with each other or with exact")
	}
}

// TestFidelityExactMatchesLegacy: explicitly configured exact fidelity is
// byte-identical to the zero value (the golden-hash-pinned legacy path).
func TestFidelityExactMatchesLegacy(t *testing.T) {
	legacy := generateWithWorkers(t, smallConfig(), 1)
	exact := generateWithWorkers(t, fidelityConfig(phasesum.Exact), 1)
	if hashCorpus(legacy) != hashCorpus(exact) {
		t.Fatal("exact fidelity diverged from the legacy zero-value path")
	}
}

// TestFidelityFastCorpus: the fast tier generates a complete, finite,
// plausibly-scaled corpus without ever invoking the exact shared replay.
func TestFidelityFastCorpus(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Fast))
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	exact := generateWithWorkers(t, fidelityConfig(phasesum.Exact), 1)
	if len(c.Points) != len(exact.Points) {
		t.Fatalf("fast corpus has %d points, exact %d", len(c.Points), len(exact.Points))
	}
	for i := range c.Points {
		p, e := &c.Points[i], &exact.Points[i]
		if p.Y <= 0 || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			t.Fatalf("point %d: non-finite or non-positive bag time %v", i, p.Y)
		}
		if p.Fairness <= 0 || p.Fairness > 1 {
			t.Fatalf("point %d: fairness %v outside (0,1]", i, p.Fairness)
		}
		// The analytic label must stay in the exact label's ballpark; the
		// tight bound is the oracle's job, this catches unit-scale bugs.
		if r := p.Y / e.Y; r < 0.5 || r > 2 {
			t.Fatalf("point %d (%v): fast bag time %v vs exact %v (ratio %.2f)", i, p.Members, p.Y, e.Y, r)
		}
		// Isolated measurements are exact in every tier.
		if !reflect.DeepEqual(p.CPUTimes, e.CPUTimes) || !reflect.DeepEqual(p.GPUTimes, e.GPUTimes) {
			t.Fatalf("point %d: isolated times diverged under fast fidelity", i)
		}
	}
	st := gen.FidelityStats()
	if st.Fidelity != "fast" {
		t.Fatalf("stats fidelity %q, want fast", st.Fidelity)
	}
	if st.AnalyticRuns == 0 {
		t.Fatal("fast generation reported zero analytic runs")
	}
	if st.ExactRuns != 0 || st.ExactFallbacks != 0 {
		t.Fatalf("fast generation ran exact co-runs: %+v", st)
	}
}

// TestFidelityMixedCounters: the mixed tier routes every contended co-run
// either through the model or through the exact fallback, never through
// the unconditional-exact counter.
func TestFidelityMixedCounters(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Mixed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(); err != nil {
		t.Fatal(err)
	}
	st := gen.FidelityStats()
	if st.AnalyticRuns+st.ExactFallbacks == 0 {
		t.Fatal("mixed generation recorded no co-runs at all")
	}
	if st.ExactRuns != 0 {
		t.Fatalf("mixed generation used the unconditional-exact counter: %+v", st)
	}
	t.Logf("mixed stats: %+v", st)
}

// TestFidelityExactCounters: exact-by-configuration co-runs land in
// ExactRuns only.
func TestFidelityExactCounters(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Exact))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(); err != nil {
		t.Fatal(err)
	}
	st := gen.FidelityStats()
	if st.ExactRuns == 0 || st.AnalyticRuns != 0 || st.ExactFallbacks != 0 {
		t.Fatalf("exact generation mis-tallied: %+v", st)
	}
}

func TestOracleDeterministicAndBounded(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Fast))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gen.RunOracle(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fast oracle: %+v", rep)
	if rep.Sampled < 1 || rep.Sampled > rep.Total {
		t.Fatalf("sampled %d of %d", rep.Sampled, rep.Total)
	}
	for _, v := range []float64{rep.MaxRelErrCPU, rep.MeanRelErrCPU, rep.MaxRelErrGPU, rep.MeanRelErrGPU} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("non-finite oracle error in %+v", rep)
		}
	}
	if rep.MeanRelErrCPU > rep.MaxRelErrCPU || rep.MeanRelErrGPU > rep.MaxRelErrGPU {
		t.Fatalf("mean above max in %+v", rep)
	}
	rep2, err := gen.RunOracle(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep != rep2 {
		t.Fatalf("oracle not deterministic: %+v vs %+v", rep, rep2)
	}
	other, err := gen.RunOracle(0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.Sampled != rep.Sampled {
		t.Fatalf("same fraction sampled %d vs %d bags", other.Sampled, rep.Sampled)
	}
}

func TestOracleExactFidelityIsZeroError(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Exact))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gen.RunOracle(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRelErrCPU != 0 || rep.MaxRelErrGPU != 0 {
		t.Fatalf("exact-vs-exact oracle reported nonzero error: %+v", rep)
	}
	if !rep.Within(0) {
		t.Fatal("Within(0) must hold for a zero-error report")
	}
}

func TestOracleRejectsBadFraction(t *testing.T) {
	gen, err := NewGenerator(fidelityConfig(phasesum.Fast))
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := gen.RunOracle(frac, 1); err == nil {
			t.Errorf("RunOracle accepted fraction %v", frac)
		}
	}
}

// BenchmarkFidelityCorpus measures bag-measurement throughput per tier in
// the member-warm regime: isolated measurements (identical across tiers,
// memoized) are paid once outside the timer, then every iteration
// re-measures all bags through the per-iteration shared co-runs. This
// isolates the cost the fidelity tier actually changes — the contended
// co-run — and is the points/sec figure recorded in BENCH_baseline.json
// ("phase-replay" entry) and gated by scripts/benchjson.
func BenchmarkFidelityCorpus(b *testing.B) {
	for _, fid := range []phasesum.Fidelity{phasesum.Exact, phasesum.Mixed, phasesum.Fast} {
		b.Run(string(fid), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Fidelity = fid
			cfg.Workers = 1
			gen, err := NewGenerator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bags, err := gen.Bags()
			if err != nil {
				b.Fatal(err)
			}
			// Warm the member measurements and memoized prefixes.
			if _, err := gen.Generate(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, bag := range bags {
					if _, err := gen.MeasureBag(bag); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			pts := float64(len(bags)) * float64(b.N)
			b.ReportMetric(pts/b.Elapsed().Seconds(), "points/sec")
		})
	}
}
