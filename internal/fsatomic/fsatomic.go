// Package fsatomic provides crash-safe file replacement: write the new
// contents to a temporary file in the destination's directory, fsync it,
// and rename it over the destination. A crash at any point leaves either
// the old complete file or the new complete file — never a truncated mix —
// which is the invariant both the model store (core.Predictor.SaveFile)
// and the measurement journal (dataset.Journal) build on.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
//
// The temporary file is created in path's own directory (rename(2) is only
// atomic within a filesystem), synced to disk before the rename, and
// removed on any failure, so an aborted save neither corrupts the
// destination nor litters partial files. After a successful rename the
// directory is synced too, making the new name durable.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsatomic: creating temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName) // best effort; the temp never shadows path
		}
	}()

	if err = write(tmp); err != nil {
		return fmt.Errorf("fsatomic: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsatomic: syncing %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsatomic: closing %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsatomic: committing %s: %w", path, err)
	}
	syncDir(dir) // durability of the rename itself; best effort
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Errors are ignored: some filesystems (and all of Windows) refuse
// directory fsync, and the rename has already happened atomically.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
