package mapc

import (
	"strings"
	"sync"
	"testing"
)

var (
	corpusOnce sync.Once
	corpus     *Corpus
	corpusErr  error
)

func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.BatchSizes = []int{20, 40}
		cfg.MixedPairs = 0
		gen, err := NewGenerator(cfg)
		if err != nil {
			corpusErr = err
			return
		}
		corpus, corpusErr = gen.Generate()
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestFacadeEndToEnd(t *testing.T) {
	c := sharedCorpus(t)
	if len(c.Points) == 0 {
		t.Fatal("empty corpus")
	}

	p, err := Train(c, SchemeFull)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.PredictPoint(&c.Points[0])
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("prediction %v", pred)
	}

	res, err := LOOCV(c, SchemeFull, DefaultTreeParams(), HoldOutOwn)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 {
		t.Fatalf("%d folds", len(res))
	}
	if MeanLOOCVError(res) <= 0 {
		t.Error("zero LOOCV error")
	}
	stats, err := AnalyzePaths(res)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Presence["gpu_time"] <= 0 {
		t.Error("gpu_time absent from all paths")
	}
}

func TestFacadePredictRaw(t *testing.T) {
	c := sharedCorpus(t)
	p, err := TrainWithParams(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BatchSizes = []int{20, 40}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, fairness, err := gen.FeaturesFor(
		Member{Benchmark: "sift", Batch: 20},
		Member{Benchmark: "surf", Batch: 20})
	if err != nil {
		t.Fatal(err)
	}
	if fairness <= 0 || fairness > 1 {
		t.Fatalf("fairness %v", fairness)
	}
	pred, err := p.PredictRaw(x)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("prediction %v", pred)
	}
}

func TestFacadeVocabulary(t *testing.T) {
	if got := Benchmarks(); len(got) != 9 {
		t.Fatalf("Benchmarks() = %v", got)
	}
	kinds := FeatureKinds()
	if len(kinds) != 11 {
		t.Fatalf("FeatureKinds() = %v", kinds)
	}
	names, err := FeatureNames(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 21 {
		t.Fatalf("FeatureNames(2) has %d entries", len(names))
	}
	s, err := NewScheme("custom", "gpu_time", "fairness")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" {
		t.Errorf("scheme name %q", s.Name)
	}
	if _, err := NewScheme("bad", "bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	// Don't regenerate figures here (covered by internal/experiments);
	// just check ID resolution fails loudly for unknown artifacts.
	env := DefaultEnv()
	if _, err := RunExperiment(env, "figure0"); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Errorf("unexpected error for unknown artifact: %v", err)
	}
}

func TestFacadeScheduler(t *testing.T) {
	c := sharedCorpus(t)
	p, err := Train(c, SchemeFull)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BatchSizes = []int{20, 40}
	s, err := NewScheduler(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	queue := []Job{
		{ID: 0, Member: Member{Benchmark: "sift", Batch: 20}},
		{ID: 1, Member: Member{Benchmark: "fast", Batch: 40}},
		{ID: 2, Member: Member{Benchmark: "hog", Batch: 20}},
		{ID: 3, Member: Member{Benchmark: "surf", Batch: 20}},
	}
	serial, err := s.Run(PolicySerialFIFO, queue)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := s.Run(PolicyPredictedPairing, queue)
	if err != nil {
		t.Fatal(err)
	}
	if smart.Makespan >= serial.Makespan {
		t.Errorf("predicted pairing (%v) not faster than serial (%v)",
			smart.Makespan, serial.Makespan)
	}
}
