// Package trace is the instrumentation substrate of the reproduction: the
// stand-in for PIN. Vision benchmarks are written against instrumented
// primitives that report their dynamic behaviour to a Recorder, which
// assembles a Workload — an architecture-neutral description of the program
// as a sequence of Phases. Each phase carries the dynamic instruction counts
// by ISA category, the bytes it touches, its dominant memory-access pattern,
// and how much data parallelism it exposes.
//
// The CPU and GPU simulators consume Workloads; the MICA-equivalent analyzer
// reduces them to instruction-mix percentages. Because the counts come from
// running the real algorithms, different benchmarks produce genuinely
// different mixes and footprints, exactly as PIN+MICA observed for the
// paper's OpenCV suite.
package trace

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"mapc/internal/isa"
)

// Pattern classifies the dominant memory-access behaviour of a phase. The
// cache and TLB simulators synthesize address streams from it.
type Pattern int

const (
	// Sequential phases stream linearly through their footprint
	// (e.g. image row scans, integral-image passes).
	Sequential Pattern = iota
	// Strided phases walk the footprint with a fixed stride larger than
	// one element (e.g. column passes, downsampling).
	Strided
	// Windowed phases access small 2D neighbourhoods that slide across the
	// footprint (e.g. convolution, census windows); high short-range reuse.
	Windowed
	// Random phases touch the footprint with little locality
	// (e.g. feature matching, hash probes, SVM cache misses).
	Random
	numPatterns
)

var patternNames = [numPatterns]string{"sequential", "strided", "windowed", "random"}

// String returns the lower-case name of the pattern.
func (p Pattern) String() string {
	if p < 0 || p >= numPatterns {
		return fmt.Sprintf("trace.Pattern(%d)", int(p))
	}
	return patternNames[p]
}

// Phase is one homogeneous region of execution.
type Phase struct {
	// Name identifies the phase for debugging and reports
	// (e.g. "gaussian-pyramid", "brief-descriptors").
	Name string
	// Counts holds dynamic instruction counts by category.
	Counts isa.Counts
	// Footprint is the number of distinct bytes the phase touches.
	Footprint int64
	// Pattern is the dominant access pattern of the phase.
	Pattern Pattern
	// StrideBytes is the stride for Strided phases (ignored otherwise).
	StrideBytes int64
	// Reuse in [0,1] is the fraction of memory references that re-touch
	// recently used lines (temporal locality beyond the pattern itself).
	Reuse float64
	// Parallelism is the number of independent work items the phase
	// exposes (pixels, windows, keypoints, training pairs...). It bounds
	// how many CPU threads or GPU threads can be productively used.
	Parallelism int
	// VectorWidth is the SIMD width (elements) the phase's inner loop
	// admits; 1 means purely scalar.
	VectorWidth int
	// BatchInvariant marks phases whose cost does not grow with the
	// input batch (e.g. one-time model training); sampled-run
	// extrapolation leaves them unscaled.
	BatchInvariant bool
	// Launches is the number of kernel launches (GPU) or parallel-region
	// entries (CPU) the phase performs — per-image phases extrapolated
	// to a full batch launch once per image. Zero means one.
	Launches int
}

// LaunchCount returns Launches, treating zero as one.
func (p *Phase) LaunchCount() int {
	if p.Launches < 1 {
		return 1
	}
	return p.Launches
}

// Validate reports whether the phase is internally consistent.
func (p *Phase) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("trace: phase has empty name")
	case p.Footprint < 0:
		return fmt.Errorf("trace: phase %q has negative footprint", p.Name)
	case p.Reuse < 0 || p.Reuse > 1:
		return fmt.Errorf("trace: phase %q reuse %v outside [0,1]", p.Name, p.Reuse)
	case p.Parallelism <= 0:
		return fmt.Errorf("trace: phase %q has non-positive parallelism", p.Name)
	case p.VectorWidth <= 0:
		return fmt.Errorf("trace: phase %q has non-positive vector width", p.Name)
	case p.Pattern < 0 || p.Pattern >= numPatterns:
		return fmt.Errorf("trace: phase %q has invalid pattern", p.Name)
	case p.Pattern == Strided && p.StrideBytes <= 0:
		return fmt.Errorf("trace: strided phase %q needs positive stride", p.Name)
	}
	return nil
}

// MemRefs returns the number of memory-reference instructions in the phase.
func (p *Phase) MemRefs() uint64 { return p.Counts[isa.MEM] }

// Workload is the complete instrumented description of one benchmark run.
type Workload struct {
	// Benchmark is the benchmark identifier (e.g. "sift").
	Benchmark string
	// BatchSize is the number of input images processed.
	BatchSize int
	// TransferBytes is the host-to-device input volume (the image batch)
	// a GPU execution must move over PCIe before the kernels run.
	TransferBytes int64
	// Phases lists the execution phases in program order.
	Phases []Phase
}

// Validate checks the workload and every phase in it.
func (w *Workload) Validate() error {
	if w.Benchmark == "" {
		return errors.New("trace: workload has empty benchmark name")
	}
	if w.BatchSize <= 0 {
		return fmt.Errorf("trace: workload %q has non-positive batch size", w.Benchmark)
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("trace: workload %q has no phases", w.Benchmark)
	}
	for i := range w.Phases {
		if err := w.Phases[i].Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// TotalCounts sums the instruction counts across all phases.
func (w *Workload) TotalCounts() isa.Counts {
	var total isa.Counts
	for i := range w.Phases {
		total.AddCounts(w.Phases[i].Counts)
	}
	return total
}

// Instructions returns the total dynamic instruction count.
func (w *Workload) Instructions() uint64 { return w.TotalCounts().Total() }

// MaxFootprint returns the largest single-phase footprint in bytes; a proxy
// for the working-set pressure the workload puts on shared caches.
func (w *Workload) MaxFootprint() int64 {
	var max int64
	for i := range w.Phases {
		if w.Phases[i].Footprint > max {
			max = w.Phases[i].Footprint
		}
	}
	return max
}

// Clone returns a deep copy of the workload.
func (w *Workload) Clone() *Workload {
	out := *w
	out.Phases = append([]Phase(nil), w.Phases...)
	return &out
}

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters; the hash is
// written out by hand so Fingerprint is allocation-free on hot paths.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// fnvHash is a zero-allocation incremental FNV-1a 64-bit hasher.
type fnvHash uint64

func (h *fnvHash) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnv64Prime
	}
	// NUL separator so adjacent strings cannot alias ("ab","c" vs "a","bc").
	x ^= 0
	x *= fnv64Prime
	*h = fnvHash(x)
}

func (h *fnvHash) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnv64Prime
		v >>= 8
	}
	*h = fnvHash(x)
}

func (h *fnvHash) i64(v int64) { h.u64(uint64(v)) }

func (h *fnvHash) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *fnvHash) bool(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// Fingerprint returns a 64-bit FNV-1a digest over every field of the
// workload: benchmark identity, batch size, transfer volume, and the full
// content of each phase (name, per-category instruction counts, footprint,
// pattern, stride, reuse, parallelism, vector width, batch invariance,
// launches) in phase order.
//
// Two call sites rely on it:
//
//   - the simulators' memo layer (internal/simcache) keys cached pure
//     prefixes by it, so any change to any field — including ones a given
//     prefix does not read — forces a recompute rather than a stale hit;
//   - the read-only-contract tests deep-hash workloads before and after
//     simulator runs to prove the simulators never mutate their inputs.
//
// The hash is deterministic across processes and allocation-free.
func (w *Workload) Fingerprint() uint64 {
	h := fnvHash(fnv64Offset)
	h.str(w.Benchmark)
	h.i64(int64(w.BatchSize))
	h.i64(w.TransferBytes)
	h.i64(int64(len(w.Phases)))
	for i := range w.Phases {
		p := &w.Phases[i]
		h.str(p.Name)
		for _, c := range p.Counts {
			h.u64(c)
		}
		h.i64(p.Footprint)
		h.i64(int64(p.Pattern))
		h.i64(p.StrideBytes)
		h.f64(p.Reuse)
		h.i64(int64(p.Parallelism))
		h.i64(int64(p.VectorWidth))
		h.bool(p.BatchInvariant)
		h.i64(int64(p.Launches))
	}
	return uint64(h)
}

// String summarises the workload for logs.
func (w *Workload) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(batch=%d, phases=%d, instr=%d)",
		w.Benchmark, w.BatchSize, len(w.Phases), w.Instructions())
	return b.String()
}

// Recorder accumulates phases as instrumented code runs. It is the PIN
// analogue: primitives call the counting methods, and benchmark drivers
// bracket regions with BeginPhase/EndPhase. The zero value is ready to use.
type Recorder struct {
	benchmark string
	batchSize int
	phases    []Phase
	cur       *Phase
	err       error
}

// NewRecorder returns a recorder for one run of the named benchmark.
func NewRecorder(benchmark string, batchSize int) *Recorder {
	return &Recorder{benchmark: benchmark, batchSize: batchSize}
}

// PhaseOpts carries the phase-level metadata that counting alone cannot
// observe: locality, parallel structure, vectorizability.
type PhaseOpts struct {
	Pattern        Pattern
	StrideBytes    int64
	Reuse          float64
	Parallelism    int
	VectorWidth    int
	BatchInvariant bool
}

// BeginPhase opens a new phase; counts recorded until EndPhase belong to it.
// Nested phases are an instrumentation bug and are recorded as an error.
// A nil recorder ignores all instrumentation calls, so instrumented code can
// also run un-instrumented.
func (r *Recorder) BeginPhase(name string, footprint int64, opts PhaseOpts) {
	if r == nil {
		return
	}
	if r.cur != nil {
		r.fail(fmt.Errorf("trace: BeginPhase(%q) while phase %q open", name, r.cur.Name))
		return
	}
	vw := opts.VectorWidth
	if vw == 0 {
		vw = 1
	}
	par := opts.Parallelism
	if par == 0 {
		par = 1
	}
	r.cur = &Phase{
		Name:           name,
		Footprint:      footprint,
		Pattern:        opts.Pattern,
		StrideBytes:    opts.StrideBytes,
		Reuse:          opts.Reuse,
		Parallelism:    par,
		VectorWidth:    vw,
		BatchInvariant: opts.BatchInvariant,
	}
}

// EndPhase closes the current phase and appends it to the workload.
func (r *Recorder) EndPhase() {
	if r == nil {
		return
	}
	if r.cur == nil {
		r.fail(errors.New("trace: EndPhase with no open phase"))
		return
	}
	if err := r.cur.Validate(); err != nil {
		r.fail(err)
		r.cur = nil
		return
	}
	r.phases = append(r.phases, *r.cur)
	r.cur = nil
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Count records n dynamic instructions of category c in the current phase.
// Counts outside any phase indicate an instrumentation bug and are dropped
// with a recorded error.
func (r *Recorder) Count(c isa.Category, n uint64) {
	if r == nil {
		return
	}
	if r.cur == nil {
		r.fail(fmt.Errorf("trace: Count(%v) outside any phase", c))
		return
	}
	r.cur.Counts.Add(c, n)
}

// Convenience counters used pervasively by the vision primitives.

// ALU records n scalar integer operations.
func (r *Recorder) ALU(n uint64) { r.Count(isa.ALU, n) }

// FP records n scalar floating-point operations.
func (r *Recorder) FP(n uint64) { r.Count(isa.FP, n) }

// SSE records n packed/vector operations.
func (r *Recorder) SSE(n uint64) { r.Count(isa.SSE, n) }

// Mem records n memory references (loads plus stores).
func (r *Recorder) Mem(n uint64) { r.Count(isa.MEM, n) }

// Shift records n shift or multiply operations.
func (r *Recorder) Shift(n uint64) { r.Count(isa.Shift, n) }

// Stack records n stack push/pop operations.
func (r *Recorder) Stack(n uint64) { r.Count(isa.Stack, n) }

// Str records n string/byte-block operations.
func (r *Recorder) Str(n uint64) { r.Count(isa.String, n) }

// Control records n branch/call/return operations.
func (r *Recorder) Control(n uint64) { r.Count(isa.Control, n) }

// Workload finalizes the recording. It returns an error if instrumentation
// was inconsistent (unbalanced phases, counts outside phases, invalid phase
// metadata) or if nothing was recorded.
func (r *Recorder) Workload() (*Workload, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.cur != nil {
		return nil, fmt.Errorf("trace: workload finalized with phase %q still open", r.cur.Name)
	}
	w := &Workload{Benchmark: r.benchmark, BatchSize: r.batchSize, Phases: r.phases}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
