package memsim

import "testing"

func TestPrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(2)
	if got := p.OnMiss(0); got != nil {
		t.Fatalf("first miss prefetched %v", got)
	}
	if got := p.OnMiss(2 * LineSize); got != nil {
		t.Fatalf("stride not yet confident, prefetched %v", got)
	}
	got := p.OnMiss(4 * LineSize) // second identical stride: confident
	if len(got) != 2 {
		t.Fatalf("confident miss prefetched %v", got)
	}
	if got[0] != 6*LineSize || got[1] != 8*LineSize {
		t.Fatalf("prefetch targets %v", got)
	}
	if p.Issued() != 2 {
		t.Fatalf("Issued() = %d", p.Issued())
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := NewStridePrefetcher(1)
	p.OnMiss(10 * LineSize)
	p.OnMiss(8 * LineSize)
	got := p.OnMiss(6 * LineSize)
	if len(got) != 1 || got[0] != 4*LineSize {
		t.Fatalf("descending prefetch %v", got)
	}
	// Near zero the prefetcher must not wrap.
	p2 := NewStridePrefetcher(4)
	p2.OnMiss(2 * LineSize)
	p2.OnMiss(1 * LineSize)
	got = p2.OnMiss(0)
	if len(got) != 0 {
		t.Fatalf("wrapped prefetch below zero: %v", got)
	}
}

func TestPrefetcherResetsOnStrideChange(t *testing.T) {
	p := NewStridePrefetcher(2)
	p.OnMiss(0)
	p.OnMiss(LineSize)
	if got := p.OnMiss(10 * LineSize); got != nil {
		t.Fatalf("stride change still prefetched %v", got)
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	p := NewStridePrefetcher(0)
	for i := uint64(0); i < 10; i++ {
		if got := p.OnMiss(i * LineSize); got != nil {
			t.Fatalf("disabled prefetcher emitted %v", got)
		}
	}
	if NewStridePrefetcher(-3).degree != 0 {
		t.Error("negative degree not clamped")
	}
}

func TestInstallMakesLineResident(t *testing.T) {
	c := mustCache(t, 4096, 4, 1)
	c.Install(0, 0x2000)
	if !c.Access(0, 0x2000) {
		t.Fatal("installed line missed")
	}
	// Install must not count as a demand access.
	st := c.Stats(0)
	if st.Accesses != 1 || st.Misses != 0 {
		t.Fatalf("stats after install+hit: %+v", st)
	}
	// Installing a resident line refreshes recency without duplicating.
	c.Install(0, 0x2000)
	if !c.Access(0, 0x2000) {
		t.Fatal("re-install broke residency")
	}
}

func TestPrefetchingReducesStreamMisses(t *testing.T) {
	// A strided demand stream through a small cache: with prefetching
	// the demand miss rate must drop substantially.
	run := func(degree int) float64 {
		c, err := NewCache("c", 8<<10, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		pf := NewStridePrefetcher(degree)
		for i := uint64(0); i < 4096; i++ {
			a := i * 2 * LineSize // stride of two lines: every access a new line
			if !c.Access(0, a) {
				for _, pa := range pf.OnMiss(a) {
					c.Install(0, pa)
				}
			}
		}
		return c.Stats(0).MissRate()
	}
	off, on := run(0), run(4)
	if on >= off/2 {
		t.Fatalf("prefetching did not halve misses: %.3f -> %.3f", off, on)
	}
}
