// Package faultinject is the deterministic chaos-testing harness for the
// measurement pipeline: a seed-driven fault plan (panic-at-index,
// error-at-index, delay, torn journal write) threaded behind one narrow
// interface so production builds pay zero cost.
//
// Call sites name themselves with a stable site string (e.g.
// "dataset.point", "dataset.journal.append") and fire the hook through
// Fire, which is nil-safe: production code never constructs an Injector,
// the hook field stays nil, and the only cost is a nil check. Chaos tests
// build a Plan — by hand or from RandomKillPlan's seeded RNG — wrap it in
// New, and install it with the pipeline's Set*FaultInjector setters.
//
// Faults are matched by (site, index) and are deterministic: the same plan
// against the same pipeline fires the same faults, so every chaos failure
// reproduces from its seed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Injector is the narrow hook the pipeline threads through. At is called
// with the site's name and a call index (bag index for measurement sites,
// append ordinal for journal sites); it may return an injected error (or a
// *TornWrite for writer sites), panic with a *Panic, or sleep, per the
// plan. Implementations must be safe for concurrent use: the measurement
// pool fires hooks from many goroutines.
type Injector interface {
	At(site string, index int) error
}

// Fire fires hook h at (site, index). It is the nil-safe entry point call
// sites use: a nil injector — the production configuration — is a no-op.
func Fire(h Injector, site string, index int) error {
	if h == nil {
		return nil
	}
	return h.At(site, index)
}

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindError makes At return an *Error: the task fails like any
	// simulator error would.
	KindError Kind = iota
	// KindPanic makes At panic with a *Panic: the task dies mid-flight,
	// simulating a crash inside fn(i).
	KindPanic
	// KindDelay makes At sleep for Fault.Delay before continuing to match
	// further faults: widens race windows in chaos tests.
	KindDelay
	// KindTornWrite makes At return a *TornWrite carrying KeepBytes:
	// writer sites (the dataset journal) truncate the record mid-write and
	// abort, simulating a crash between write and fsync.
	KindTornWrite
	// KindBlackhole makes a network site hang until the request context is
	// cancelled: no bytes, no RST, exactly like a silently dropped route.
	// Only meaningful on Transport sites.
	KindBlackhole
	// KindHTTPError makes a Transport site answer with a synthesized HTTP
	// error response (status Fault.Code, default 500) without forwarding.
	KindHTTPError
	// KindTruncateBody makes a Transport site forward the request but cut
	// the response body off after Fault.KeepBytes bytes, so the client sees
	// an unexpected EOF mid-decode.
	KindTruncateBody
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindTornWrite:
		return "torn-write"
	case KindBlackhole:
		return "blackhole"
	case KindHTTPError:
		return "http-error"
	case KindTruncateBody:
		return "truncate-body"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AnyIndex as a Fault.Index matches every call index at the fault's site.
const AnyIndex = -1

// Fault is one planned fault: fire Kind at (Site, Index).
type Fault struct {
	// Site names the call site, e.g. "dataset.point".
	Site string
	// Index is the call index to fire at; AnyIndex matches all.
	Index int
	// From narrows an AnyIndex fault to indices >= From: "from call N
	// onward", the shape of a replica that goes dark mid-run. Zero keeps
	// the historical match-everything behavior; From is ignored when Index
	// names a single call.
	From int
	// Kind selects the fault class.
	Kind Kind
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// KeepBytes is, for KindTornWrite, how many bytes of the record the
	// writer keeps before "crashing" (0 tears the record off entirely).
	// For KindTruncateBody it is how many response-body bytes survive.
	KeepBytes int
	// Code is the status for KindHTTPError responses (0 means 500).
	Code int
	// Once limits the fault to its first match; false fires on every
	// matching call (useful with AnyIndex delays).
	Once bool
}

// matches reports whether the fault covers call index at site.
func (f Fault) matches(site string, index int) bool {
	if f.Site != site {
		return false
	}
	if f.Index != AnyIndex {
		return f.Index == index
	}
	return index >= f.From
}

func (f Fault) String() string {
	if f.Index == AnyIndex && f.From > 0 {
		return fmt.Sprintf("%s@%s[%d+]", f.Kind, f.Site, f.From)
	}
	return fmt.Sprintf("%s@%s[%d]", f.Kind, f.Site, f.Index)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	Faults []Fault
}

// Error is an injected task failure.
type Error struct {
	Site  string
	Index int
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s[%d]", e.Site, e.Index)
}

// Panic is the value a KindPanic fault panics with; recovery layers (e.g.
// parallel.PanicError.Value) surface it so tests can assert the panic was
// the injected one.
type Panic struct {
	Site  string
	Index int
}

func (p *Panic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s[%d]", p.Site, p.Index)
}

// TornWrite instructs a writer site to keep only KeepBytes of the record
// it was about to commit and then fail, simulating a torn write (process
// death between write(2) and fsync). It is an error so non-writer sites
// that receive one fail loudly instead of ignoring it.
type TornWrite struct {
	Site      string
	Index     int
	KeepBytes int
}

func (t *TornWrite) Error() string {
	return fmt.Sprintf("faultinject: injected torn write at %s[%d] (keeping %d bytes)", t.Site, t.Index, t.KeepBytes)
}

// matcher is the shared plan state: faults plus fired-once bookkeeping.
// Both the standard injector and the chaos Transport resolve (site, index)
// through it; the caller acts on the returned faults outside the lock.
type matcher struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool
}

func newMatcher(plan Plan) *matcher {
	return &matcher{
		faults: append([]Fault(nil), plan.Faults...),
		fired:  make([]bool, len(plan.Faults)),
	}
}

// match scans the plan in order, collecting every matching delay and the
// first matching terminal fault. The returned *Fault aliases the matcher's
// copy and must be treated as read-only.
func (m *matcher) match(site string, index int) (terminal *Fault, delays []time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.faults {
		f := &m.faults[i]
		if !f.matches(site, index) {
			continue
		}
		if f.Once && m.fired[i] {
			continue
		}
		if f.Kind == KindDelay {
			m.fired[i] = true
			delays = append(delays, f.Delay)
			continue
		}
		m.fired[i] = true
		return f, delays
	}
	return nil, delays
}

// injector is the standard Injector: a Plan plus fired-once bookkeeping.
type injector struct {
	plan *matcher
}

// New returns an Injector executing plan. The plan is copied; mutating it
// afterwards does not affect the injector.
func New(plan Plan) Injector {
	return &injector{plan: newMatcher(plan)}
}

// At implements Injector: scan the plan in order, apply every matching
// delay, and return/panic on the first matching terminal fault.
func (in *injector) At(site string, index int) error {
	// Matches are collected under the matcher's lock and acted on here:
	// KindDelay sleeps and KindPanic unwinds, neither of which may hold it.
	terminal, delays := in.plan.match(site, index)
	for _, d := range delays {
		time.Sleep(d)
	}
	if terminal == nil {
		return nil
	}
	switch terminal.Kind {
	case KindError:
		return &Error{Site: site, Index: index}
	case KindPanic:
		panic(&Panic{Site: site, Index: index})
	case KindTornWrite:
		return &TornWrite{Site: site, Index: index, KeepBytes: terminal.KeepBytes}
	}
	return nil
}

// RandomKillPlan derives a one-shot KindPanic fault at a uniformly random
// index in [0, n) at the given site, from seed. The same (seed, site, n)
// always yields the same plan, so a chaos failure's seed reproduces it
// exactly.
func RandomKillPlan(seed uint64, site string, n int) Plan {
	if n <= 0 {
		return Plan{}
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	return Plan{Faults: []Fault{{
		Site:  site,
		Index: rng.Intn(n),
		Kind:  KindPanic,
		Once:  true,
	}}}
}

// RandomTearPlan derives a one-shot KindTornWrite fault at a uniformly
// random index in [0, n) at the given (writer) site, keeping a random
// prefix of up to maxKeep bytes. Deterministic in (seed, site, n, maxKeep).
func RandomTearPlan(seed uint64, site string, n, maxKeep int) Plan {
	if n <= 0 {
		return Plan{}
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	keep := 0
	if maxKeep > 0 {
		keep = rng.Intn(maxKeep + 1)
	}
	return Plan{Faults: []Fault{{
		Site:      site,
		Index:     rng.Intn(n),
		Kind:      KindTornWrite,
		KeepBytes: keep,
		Once:      true,
	}}}
}
