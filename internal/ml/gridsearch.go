package ml

import (
	"errors"
	"fmt"
)

// GridPoint is one hyper-parameter candidate: a label plus a factory that
// builds the corresponding model.
type GridPoint struct {
	Label   string
	Factory ModelFactory
}

// GridResult reports one candidate's cross-validated error.
type GridResult struct {
	Label string
	// MeanRelErr is the mean over folds of the fold mean relative error.
	MeanRelErr float64
	// PerFold holds the per-fold errors.
	PerFold []float64
}

// GridSearchKFold evaluates every candidate with k-fold cross-validation on
// d and returns the results in candidate order plus the index of the best
// (lowest mean error) candidate. The same fold split (seed) is used for all
// candidates so the comparison is paired.
func GridSearchKFold(d *Dataset, k int, seed uint64, grid []GridPoint) ([]GridResult, int, error) {
	if len(grid) == 0 {
		return nil, -1, errors.New("ml: empty hyper-parameter grid")
	}
	out := make([]GridResult, len(grid))
	best := -1
	for i, g := range grid {
		if g.Factory == nil {
			return nil, -1, fmt.Errorf("ml: grid point %q has nil factory", g.Label)
		}
		perFold, err := KFold(d, k, seed, g.Factory)
		if err != nil {
			return nil, -1, fmt.Errorf("ml: grid point %q: %w", g.Label, err)
		}
		out[i] = GridResult{Label: g.Label, MeanRelErr: Mean(perFold), PerFold: perFold}
		if best < 0 || out[i].MeanRelErr < out[best].MeanRelErr {
			best = i
		}
	}
	return out, best, nil
}

// TreeDepthGrid builds a grid over tree depth bounds (0 = unbounded), the
// hyper-parameter Section II-B3 singles out.
func TreeDepthGrid(depths ...int) []GridPoint {
	grid := make([]GridPoint, len(depths))
	for i, d := range depths {
		d := d
		label := fmt.Sprintf("depth=%d", d)
		if d == 0 {
			label = "depth=unbounded"
		}
		grid[i] = GridPoint{
			Label: label,
			Factory: func() Regressor {
				t := NewTreeRegressor()
				t.MaxDepth = d
				return t
			},
		}
	}
	return grid
}
