package experiments

import (
	"fmt"

	"mapc/internal/core"
	"mapc/internal/cpusim"
	"mapc/internal/dataset"
	"mapc/internal/gpusim"
	"mapc/internal/ml"
	"mapc/internal/sched"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

// The Extra* experiments go beyond the paper's figures: the Section V-D
// model-choice claim (the tree beats SVR by ~10x), the Section VII open
// problem of bags larger than two, and the ablation of this reproduction's
// own design choices (canonical member ordering, LOOCV protocol).

// ExtraGenerators lists the extension artifacts, addressable from
// cmd/mapc-experiments via -only.
func ExtraGenerators() []struct {
	ID  string
	Fn  func(*Env) (*Table, error)
	Doc string
} {
	return []struct {
		ID  string
		Fn  func(*Env) (*Table, error)
		Doc string
	}{
		{"models", ExtraModelComparison, "decision tree vs. SVR vs. OLS (Section V-D)"},
		{"bagsize", ExtraBagSize, "GPU slowdown for bags of 2-4 applications (Section VII)"},
		{"protocols", ExtraProtocols, "LOOCV protocol sensitivity (hold-out-own vs. containing)"},
		{"ordering", ExtraOrdering, "canonical vs. arbitrary bag-member ordering"},
		{"microarch", ExtraMicroarch, "effect of the opt-in prefetcher and coalescing models"},
		{"depthsweep", ExtraDepthSweep, "tree-depth hyper-parameter sweep (Section II-B3)"},
		{"scheduling", ExtraScheduling, "predictor-guided co-scheduling vs. serial/naive/oracle"},
	}
}

// ExtraScheduling runs the introduction's use case end-to-end: an edge
// server drains a queue of offloaded vision jobs under four policies, and
// the predictor-guided one is compared against serial execution, naive
// MPS pairing, and the measurement oracle.
func ExtraScheduling(e *Env) (*Table, error) {
	corpus, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	predictor, err := core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(e.Cfg, predictor)
	if err != nil {
		return nil, err
	}
	queue := []sched.Job{
		{ID: 0, Member: dataset.Member{Benchmark: "sift", Batch: 80}},
		{ID: 1, Member: dataset.Member{Benchmark: "fast", Batch: 40}},
		{ID: 2, Member: dataset.Member{Benchmark: "knn", Batch: 20}},
		{ID: 3, Member: dataset.Member{Benchmark: "hog", Batch: 160}},
		{ID: 4, Member: dataset.Member{Benchmark: "surf", Batch: 20}},
		{ID: 5, Member: dataset.Member{Benchmark: "facedet", Batch: 80}},
		{ID: 6, Member: dataset.Member{Benchmark: "svm", Batch: 40}},
		{ID: 7, Member: dataset.Member{Benchmark: "orb", Batch: 40}},
	}
	t := &Table{
		ID:     "scheduling",
		Title:  "Draining an 8-job queue under four policies (the introduction's edge-server scenario)",
		Header: []string{"policy", "makespan ms", "vs serial", "mean turnaround ms", "batches"},
		Notes: []string{
			"predictor-guided pairing should recover most of the oracle's gain over serial execution; naive pairing can land anywhere in between",
		},
	}
	var serialMakespan float64
	for _, p := range []sched.Policy{
		sched.SerialFIFO{}, sched.PairFIFO{},
		sched.PredictedPairing{}, sched.OraclePairing{},
	} {
		res, err := scheduler.Run(p, queue)
		if err != nil {
			return nil, err
		}
		if serialMakespan == 0 {
			serialMakespan = res.Makespan
		}
		t.Rows = append(t.Rows, []string{
			res.Policy,
			fmt.Sprintf("%.2f", res.Makespan*1e3),
			fmt.Sprintf("%.2fx", res.Makespan/serialMakespan),
			fmt.Sprintf("%.2f", res.MeanTurnaround*1e3),
			fmt.Sprintf("%d", res.Batches),
		})
	}
	return t, nil
}

// ExtraDepthSweep cross-validates the tree-depth bound — the
// hyper-parameter the paper's Section II-B3 calls out — over the full
// feature matrix.
func ExtraDepthSweep(e *Env) (*Table, error) {
	corpus, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	d := corpus.Dataset()
	results, best, err := ml.GridSearchKFold(d, 5, 17, ml.TreeDepthGrid(2, 3, 4, 6, 8, 0))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "depthsweep",
		Title:  "Tree depth bound vs. 5-fold CV error (full feature set)",
		Header: []string{"depth", "mean rel. error %", "best"},
		Notes: []string{
			"shallow trees underfit badly; past a moderate depth the error plateaus, which is why the paper can leave the depth unbounded",
		},
	}
	for i, r := range results {
		mark := ""
		if i == best {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{r.Label, fmt.Sprintf("%.2f", r.MeanRelErr), mark})
	}
	return t, nil
}

// ExtraMicroarch quantifies the opt-in microarchitectural refinements: the
// CPU stride prefetcher (Config.PrefetchDegree) and GPU access-pattern
// coalescing (Config.PatternCoalescing), per benchmark at the standard
// batch. Both default off because the calibrated baseline folds their
// average effect into the port/MLP parameters.
func ExtraMicroarch(e *Env) (*Table, error) {
	t := &Table{
		ID:     "microarch",
		Title:  "Opt-in microarchitecture models: isolated time ratios vs. the calibrated baseline (batch 20)",
		Header: []string{"benchmark", "cpu prefetch(4)/base", "gpu coalescing/base"},
		Notes: []string{
			"ratios below 1 mean the refinement speeds the benchmark; streaming kernels benefit, random-access ones do not",
		},
	}
	cpuPF := e.Cfg.CPU
	cpuPF.PrefetchDegree = 4
	gpuCo := e.Cfg.GPU
	gpuCo.PatternCoalescing = true
	for _, b := range vision.All() {
		res, err := vision.Run(b, scalingBatch, e.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		w := res.Workload
		cBase, err := cpusim.Run(e.Cfg.CPU, []cpusim.App{{Workload: w.Clone(), Threads: e.Cfg.Threads}})
		if err != nil {
			return nil, err
		}
		cPF, err := cpusim.Run(cpuPF, []cpusim.App{{Workload: w.Clone(), Threads: e.Cfg.Threads}})
		if err != nil {
			return nil, err
		}
		gBase, err := gpusim.Run(e.Cfg.GPU, []*trace.Workload{w.Clone()})
		if err != nil {
			return nil, err
		}
		gCo, err := gpusim.Run(gpuCo, []*trace.Workload{w.Clone()})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			b.Name(),
			fmt.Sprintf("%.3f", cPF[0].TimeSec/cBase[0].TimeSec),
			fmt.Sprintf("%.3f", gCo[0].TimeSec/gBase[0].TimeSec),
		})
	}
	return t, nil
}

// ExtraModelComparison reproduces the Section V-D model choice: the same
// full feature matrix fitted with the tree, epsilon-SVR, and OLS, compared
// by held-out relative error. The paper reports the SVR error at ~10x the
// tree's because the sparse data cannot pin down a unique hyperplane.
func ExtraModelComparison(e *Env) (*Table, error) {
	corpus, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	d := corpus.Dataset()
	t := &Table{
		ID:     "models",
		Title:  "Model comparison on the full feature set (80/20 holdout, mean over 10 splits)",
		Header: []string{"model", "mean rel. error %"},
		Notes: []string{
			"paper shape: the decision tree's error is roughly an order of magnitude below SVR's (Section V-D)",
		},
	}
	models := []struct {
		name string
		mk   ml.ModelFactory
	}{
		{"decision tree", func() ml.Regressor { return ml.NewTreeRegressor() }},
		{"svr (rbf)", func() ml.Regressor { return ml.NewSVR() }},
		{"linear regression", func() ml.Regressor { return ml.NewLinearRegression() }},
		{"random forest", func() ml.Regressor {
			f := ml.NewForestRegressor()
			f.Trees = 60
			f.FeatureFraction = 0.5
			return f
		}},
	}
	const splits = 10
	for _, m := range models {
		var sum float64
		for s := 0; s < splits; s++ {
			v, err := ml.HoldOut(d, 0.2, uint64(s)*13+1, m.mk)
			if err != nil {
				return nil, fmt.Errorf("%s split %d: %w", m.name, s, err)
			}
			sum += v
		}
		t.Rows = append(t.Rows, []string{m.name, fmt.Sprintf("%.2f", sum/splits)})
	}
	return t, nil
}

// ExtraBagSize extends the evaluation to the open problem of Section VII:
// homogeneous bags of 2, 3 and 4 applications, reporting the measured GPU
// bag time relative to the single-instance time.
func ExtraBagSize(e *Env) (*Table, error) {
	t := &Table{
		ID:     "bagsize",
		Title:  "Measured GPU bag makespan relative to one instance, bags of 1-4 (batch 20)",
		Header: []string{"benchmark", "1", "2", "3", "4"},
		Notes: []string{
			"the paper stops at 2 concurrent applications; this sweep exercises the simulator's n-way MPS support",
		},
	}
	for _, b := range vision.All() {
		res, err := vision.Run(b, scalingBatch, e.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		w := res.Workload
		row := []string{b.Name()}
		var base float64
		for n := 1; n <= 4; n++ {
			ws := make([]*trace.Workload, n)
			for i := range ws {
				ws[i] = w.Clone()
			}
			rr, err := gpusim.Run(e.Cfg.GPU, ws)
			if err != nil {
				return nil, err
			}
			bag := gpusim.BagTime(rr)
			if n == 1 {
				base = bag
			}
			row = append(row, fmt.Sprintf("%.2f", bag/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ExtraProtocols contrasts the two defensible readings of the paper's
// LOOCV protocol on the full feature set.
func ExtraProtocols(e *Env) (*Table, error) {
	corpus, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "protocols",
		Title:  "LOOCV protocol sensitivity (full feature set)",
		Header: []string{"protocol", "mean rel. error %"},
		Notes: []string{
			"hold-out-own leaves heterogeneous bags containing the benchmark in training; hold-out-containing removes every bag with it",
		},
	}
	for _, proto := range []core.Protocol{core.HoldOutOwn, core.HoldOutContaining} {
		v, err := core.EvaluateScheme(corpus, core.SchemeFull, core.DefaultTreeParams(), proto)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{proto.String(), fmt.Sprintf("%.2f", v)})
	}
	return t, nil
}

// ExtraOrdering ablates this reproduction's canonical heavier-first member
// ordering against the paper's arbitrary replication order.
func ExtraOrdering(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ordering",
		Title:  "Bag-member ordering ablation (full feature set, hold-out-own LOOCV)",
		Header: []string{"ordering", "mean rel. error %"},
		Notes: []string{
			"canonical ordering makes the replicated feature blocks comparable across data points, which helps the axis-aligned tree",
		},
	}
	for _, canonical := range []bool{true, false} {
		cfg := e.Cfg
		cfg.CanonicalOrder = canonical
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			return nil, err
		}
		corpus, err := gen.Generate()
		if err != nil {
			return nil, err
		}
		v, err := core.EvaluateScheme(corpus, core.SchemeFull, core.DefaultTreeParams(), core.HoldOutOwn)
		if err != nil {
			return nil, err
		}
		label := "canonical (heavier first)"
		if !canonical {
			label = "arbitrary (paper)"
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%.2f", v)})
	}
	return t, nil
}
