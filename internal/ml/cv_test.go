package ml

import (
	"testing"

	"mapc/internal/xrand"
)

// cvDataset builds a grouped dataset where y is a clean function of x so
// cross-validated models generalize.
func cvDataset() *Dataset {
	d := &Dataset{FeatureNames: []string{"x"}}
	rng := xrand.New(23)
	groups := []string{"g1", "g2", "g3", "g4"}
	for i := 0; i < 80; i++ {
		x := rng.Float64() * 10
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 5+2*x)
		d.Groups = append(d.Groups, groups[i%len(groups)])
	}
	return d
}

func treeFactory() Regressor { return NewTreeRegressor() }

func TestLeaveOneGroupOut(t *testing.T) {
	d := cvDataset()
	results, err := LeaveOneGroupOut(d, treeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d folds, want 4", len(results))
	}
	for _, r := range results {
		if len(r.PerPoint) != 20 {
			t.Errorf("fold %q has %d points", r.Group, len(r.PerPoint))
		}
		if r.MeanRelErr > 25 {
			t.Errorf("fold %q error %v%% on a clean linear target", r.Group, r.MeanRelErr)
		}
		if len(r.Truth) != len(r.Pred) {
			t.Errorf("fold %q truth/pred mismatch", r.Group)
		}
	}
	if m := MeanOverGroups(results); m <= 0 {
		t.Errorf("mean over groups %v", m)
	}
	if MeanOverGroups(nil) != 0 {
		t.Error("MeanOverGroups(nil) != 0")
	}
}

func TestLeaveOneGroupOutRequiresGroups(t *testing.T) {
	d := cvDataset()
	d.Groups = nil
	if _, err := LeaveOneGroupOut(d, treeFactory); err == nil {
		t.Fatal("ungrouped dataset accepted")
	}
}

func TestKFold(t *testing.T) {
	d := cvDataset()
	errs, err := KFold(d, 5, 3, treeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 5 {
		t.Fatalf("%d folds", len(errs))
	}
	for i, e := range errs {
		if e < 0 || e > 30 {
			t.Errorf("fold %d error %v", i, e)
		}
	}
	if _, err := KFold(d, 1, 1, treeFactory); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFold(d, d.Len()+1, 1, treeFactory); err == nil {
		t.Error("k > n accepted")
	}
}

func TestHoldOut(t *testing.T) {
	d := cvDataset()
	e1, err := HoldOut(d, 0.2, 9, treeFactory)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := HoldOut(d, 0.2, 9, treeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same-seed holdout differs")
	}
	if e1 > 25 {
		t.Errorf("holdout error %v%% on clean data", e1)
	}
}

func TestCVModelsComparable(t *testing.T) {
	// Sanity across the three model families on the same clean problem:
	// all must achieve low error; this guards the shared Regressor
	// interface semantics.
	d := cvDataset()
	for _, f := range []struct {
		name string
		mk   ModelFactory
	}{
		{"tree", func() Regressor { return NewTreeRegressor() }},
		{"ols", func() Regressor { return NewLinearRegression() }},
		{"svr", func() Regressor {
			m := NewSVR()
			m.Kernel = LinearKernel{}
			m.C = 100
			return m
		}},
	} {
		e, err := HoldOut(d, 0.25, 5, f.mk)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if e > 30 {
			t.Errorf("%s holdout error %v%%", f.name, e)
		}
	}
}

func TestGridSearchKFold(t *testing.T) {
	d := cvDataset()
	grid := TreeDepthGrid(1, 0)
	results, best, err := GridSearchKFold(d, 4, 11, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	// On a clean linear target the unbounded tree must beat depth 1.
	if results[1].MeanRelErr >= results[0].MeanRelErr {
		t.Errorf("unbounded tree (%v%%) not better than depth-1 (%v%%)",
			results[1].MeanRelErr, results[0].MeanRelErr)
	}
	if best != 1 {
		t.Errorf("best index %d", best)
	}
	if results[0].Label != "depth=1" || results[1].Label != "depth=unbounded" {
		t.Errorf("labels %q %q", results[0].Label, results[1].Label)
	}
	if _, _, err := GridSearchKFold(d, 4, 1, nil); err == nil {
		t.Error("empty grid accepted")
	}
	if _, _, err := GridSearchKFold(d, 4, 1, []GridPoint{{Label: "nil"}}); err == nil {
		t.Error("nil factory accepted")
	}
}
