package serve

import (
	"sync"

	"mapc/internal/dataset"
)

// featureCache memoizes raw feature vectors per bag across requests. It
// reuses the measurement engine's singleflight idiom (dataset.Generator's
// per-member memo): each bag gets one entry whose sync.Once guarantees the
// shared-CPU fairness simulation runs exactly once no matter how many
// concurrent requests ask for the same bag. The generator underneath
// additionally memoizes each member's isolated runs, so even a cache miss
// on a new pairing of known members only pays for the shared run.
type featureCache struct {
	compute func(a, b dataset.Member) ([]float64, float64, error)
	// canonical collapses (a,b)/(b,a) into one entry. Only safe when the
	// generator's CanonicalOrder sorts members itself, making FeaturesFor
	// symmetric.
	canonical bool

	mu      sync.Mutex // guards entries map structure only
	entries map[[2]dataset.Member]*featureEntry
}

type featureEntry struct {
	once     sync.Once
	x        []float64
	fairness float64
	err      error
}

func newFeatureCache(gen *dataset.Generator) *featureCache {
	return &featureCache{
		compute:   gen.FeaturesFor,
		canonical: gen.Config().CanonicalOrder,
		entries:   map[[2]dataset.Member]*featureEntry{},
	}
}

// key canonicalizes the bag when member order is irrelevant.
func (c *featureCache) key(a, b dataset.Member) [2]dataset.Member {
	if c.canonical && (b.Benchmark < a.Benchmark || (b.Benchmark == a.Benchmark && b.Batch < a.Batch)) {
		a, b = b, a
	}
	return [2]dataset.Member{a, b}
}

// get returns the bag's raw feature vector and fairness, computing them at
// most once. hit reports whether an entry already existed (the request
// skipped re-simulation, modulo waiting for an in-progress first computation).
// The returned slice is shared across requests — callers must not mutate it
// (core.Predictor.PredictRaw copies before scaling).
func (c *featureCache) get(a, b dataset.Member) (x []float64, fairness float64, hit bool, err error) {
	k := c.key(a, b)
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &featureEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.x, e.fairness, e.err = c.compute(k[0], k[1]) })
	return e.x, e.fairness, ok, e.err
}

// Len returns the number of cached bags (including in-progress entries).
func (c *featureCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
