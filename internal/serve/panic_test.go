package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mapc/internal/dataset"
)

const predictBody = `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`

// TestPredictTaskPanicReturns500AndProcessSurvives is the acceptance
// check: a panic injected into one measurement task answers HTTP 500,
// increments mapc_serve_panics_total, and the server keeps serving — the
// next (healthy) request succeeds.
func TestPredictTaskPanicReturns500AndProcessSurvives(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	var panicOnce sync.Once
	real := s.featuresFn
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		var fired bool
		panicOnce.Do(func() { fired = true })
		if fired {
			panic(fmt.Sprintf("injected measurement crash for %s", dataset.BagKeyOf(bag)))
		}
		return real(bag)
	}

	rr := doJSON(t, h, http.MethodPost, "/v1/predict", predictBody)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking bag answered %d, want 500 (body %s)", rr.Code, rr.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatalf("non-JSON 500 body: %v", err)
	}
	if strings.Contains(er.Error, "goroutine") {
		t.Errorf("stack leaked to the client: %q", er.Error)
	}
	if got := s.Metrics().PanicsTotal(); got != 1 {
		t.Fatalf("mapc_serve_panics_total = %d after one panic, want 1", got)
	}

	// The process is still serving: the same bag now computes cleanly.
	rr = doJSON(t, h, http.MethodPost, "/v1/predict", predictBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("request after recovered panic answered %d: %s", rr.Code, rr.Body)
	}
	if got := s.Metrics().PanicsTotal(); got != 1 {
		t.Errorf("panic counter moved to %d on a healthy request", got)
	}

	// And the counter is exposed under the canonical metric name.
	rr = doJSON(t, h, http.MethodGet, "/metrics", "")
	if !strings.Contains(rr.Body.String(), "mapc_serve_panics_total 1") {
		t.Errorf("/metrics missing mapc_serve_panics_total 1:\n%s", rr.Body)
	}
}

// TestFeatureCachePanicIsNotPoisoned is the singleflight regression: a
// panicking compute must not mark the bag's cache entry done-with-zeroes
// (which would answer nil features forever). The panicking request errors
// once; the retry computes fresh and succeeds.
func TestFeatureCachePanicIsNotPoisoned(t *testing.T) {
	gen, _ := fixture(t)
	c := newFeatureCache(gen, 0)
	calls := 0
	c.compute = func(bag []dataset.Member) ([]float64, float64, error) {
		calls++
		if calls == 1 {
			panic("first compute dies")
		}
		return []float64{1, 2, 3}, 0.5, nil
	}
	bag := []dataset.Member{
		{Benchmark: "sift", Batch: 20},
		{Benchmark: "surf", Batch: 20},
	}

	_, _, _, err := c.get(bag)
	var rp *recoveredPanic
	if !errors.As(err, &rp) {
		t.Fatalf("first get returned %v, want *recoveredPanic", err)
	}
	if got := fmt.Sprint(rp.Value); got != "first compute dies" {
		t.Errorf("panic value %q", got)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("panicked entry still cached (Len=%d): cache poisoned", n)
	}

	x, fairness, hit, err := c.get(bag)
	if err != nil {
		t.Fatalf("retry after panic failed: %v", err)
	}
	if hit {
		t.Error("retry reported a cache hit; it must have computed fresh")
	}
	if len(x) != 3 || fairness != 0.5 {
		t.Fatalf("retry got x=%v fairness=%v", x, fairness)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (once panicking, once fresh)", calls)
	}

	// Third get is a plain hit — the healthy entry stays cached.
	if _, _, hit, err := c.get(bag); err != nil || !hit {
		t.Fatalf("third get hit=%v err=%v, want cached success", hit, err)
	}
	if calls != 2 {
		t.Fatalf("cached hit recomputed (calls=%d)", calls)
	}
}

// TestFullHandlerCachePanicComputesFreshOnRetry runs the poisoning
// regression end-to-end through the HTTP handler and the real shared
// cache: a panicking bag returns 500 once, and the retry serves a fresh
// (uncached) successful prediction.
func TestFullHandlerCachePanicComputesFreshOnRetry(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	realCompute := s.cache.compute
	calls := 0
	s.cache.compute = func(bag []dataset.Member) ([]float64, float64, error) {
		calls++
		if calls == 1 {
			panic("cache compute crash")
		}
		return realCompute(bag)
	}

	rr := doJSON(t, h, http.MethodPost, "/v1/predict", predictBody)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking compute answered %d: %s", rr.Code, rr.Body)
	}
	if got := s.Metrics().PanicsTotal(); got != 1 {
		t.Fatalf("panics total = %d, want 1", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("poisoned entry cached after panic (Len=%d)", n)
	}

	rr = doJSON(t, h, http.MethodPost, "/v1/predict", predictBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("retry answered %d: %s", rr.Code, rr.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Cached {
		t.Fatalf("retry result %+v, want one fresh (uncached) prediction", resp.Results)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want exactly 2", calls)
	}
}

// TestRecoverPanicsMiddleware covers the outer containment layer for
// panics outside the worker pool (decoding, handlers, metrics rendering):
// 500 JSON, counter bumped, no crash.
func TestRecoverPanicsMiddleware(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	rr := doJSON(t, h, http.MethodGet, "/anything", "")
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("middleware answered %d, want 500", rr.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatalf("non-JSON recovery body %q: %v", rr.Body, err)
	}
	if got := s.Metrics().PanicsTotal(); got != 1 {
		t.Errorf("panics total = %d, want 1", got)
	}

	// A panic after the response has started cannot rewrite the status;
	// the middleware must still swallow it and count it.
	h = s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late panic")
	}))
	rr = doJSON(t, h, http.MethodGet, "/late", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("late-panic status rewritten to %d", rr.Code)
	}
	if got := s.Metrics().PanicsTotal(); got != 2 {
		t.Errorf("panics total = %d, want 2", got)
	}
}
