// Command mapc-loadgen replays k-application bag mixes against a
// mapc-serve replica or the mapc-router at a configured open-loop QPS and
// records latency quantiles, throughput and shed rate into BENCH_serve.json
// (shared schema: internal/benchio).
//
// The request stream is a seeded hot-set/long-tail mix: a fraction of
// requests (-hot-frac) replays one of -hot-set recurring bags — these hit
// the replicas' feature caches after the first occurrence — while the rest
// draw fresh random bags that force real simulation work. Permutations of
// the same bag are replayed in random member order, exercising the
// canonical-key path end to end.
//
// Open loop means requests are launched on a fixed clock regardless of
// completions, up to -concurrency in flight; ticks that find every slot
// busy are counted as client-side drops, not silently stretched — so the
// recorded quantiles describe the offered load, not a self-throttled one.
//
// Usage:
//
//	mapc-loadgen -target http://127.0.0.1:8080 -qps 200 -duration 30s
//	mapc-loadgen -target http://127.0.0.1:8080 -kind router -replicas 3 \
//	    -label tier3 -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mapc/internal/benchio"
	"mapc/internal/serve"
)

func main() {
	target := flag.String("target", "", "base URL of the replica or router to load (required)")
	kind := flag.String("kind", "replica", "what -target is: replica or router (recorded metadata)")
	replicas := flag.Int("replicas", 1, "serving processes behind the target (recorded metadata)")
	label := flag.String("label", "", "entry label; empty = derived from kind/replicas/qps")
	out := flag.String("out", "", "append the entry to this BENCH_serve.json (empty = print only)")
	qps := flag.Float64("qps", 100, "offered requests per second (open loop)")
	concurrency := flag.Int("concurrency", 64, "max in-flight requests; saturated ticks count as drops")
	duration := flag.Duration("duration", 30*time.Second, "measured window")
	warmup := flag.Duration("warmup", 5*time.Second, "initial window excluded from every statistic")
	k := flag.Int("k", 2, "bag size; must match the serving model")
	benchmarks := flag.String("benchmarks", "sift,surf", "comma-separated benchmarks the target serves")
	batches := flag.String("batches", "20,40", "comma-separated batch sizes the target serves")
	hotFrac := flag.Float64("hot-frac", 0.8, "fraction of requests drawn from the recurring hot set")
	hotSet := flag.Int("hot-set", 8, "number of distinct recurring bags in the hot set")
	seed := flag.Int64("seed", 1, "mix RNG seed; same seed = same request stream")
	degradedOK := flag.Bool("degraded-ok", false, "send X-Mapc-Degraded-OK so the target may answer from the fast fidelity tier")
	expectNoDegraded := flag.Bool("expect-no-degraded", false, "fail when any response was served degraded (no-fault consistency runs)")
	checkConsistent := flag.Bool("check-consistent", false, "fail when repeated exact-tier answers for the same bag disagree")
	flag.Parse()

	if *target == "" {
		fatal(fmt.Errorf("-target is required"))
	}
	if *kind != "replica" && *kind != "router" {
		fatal(fmt.Errorf("-kind must be replica or router, got %q", *kind))
	}
	benchList := splitList(*benchmarks)
	batchList, err := parseInts(*batches)
	if err != nil {
		fatal(fmt.Errorf("parsing -batches: %w", err))
	}
	if len(benchList) == 0 || len(batchList) == 0 || *k <= 0 {
		fatal(fmt.Errorf("need at least one benchmark, one batch size and k >= 1"))
	}
	if *label == "" {
		*label = fmt.Sprintf("%s-r%d-q%g", *kind, *replicas, *qps)
	}

	mix := newMix(benchList, batchList, *k, *hotSet, *hotFrac, *seed)
	res := run(*target, mix, *qps, *concurrency, *warmup, *duration, runOpts{
		degradedOK:      *degradedOK,
		checkConsistent: *checkConsistent,
	})

	cores := runtime.NumCPU()
	measured := *duration
	lat := res.latencies
	p50, p99, p999 := benchio.Quantiles(lat)
	entry := benchio.ServeEntry{
		Label:        *label,
		Date:         time.Now().UTC().Format(time.RFC3339),
		Target:       *kind,
		Replicas:     *replicas,
		K:            *k,
		QPS:          *qps,
		Concurrency:  *concurrency,
		DurationSec:  measured.Seconds(),
		Requests:     res.sent,
		StatusCounts: res.statusCounts(),
		P50Ms:        round3(p50),
		P99Ms:        round3(p99),
		P999Ms:       round3(p999),
	}
	if n := res.byStatus[200]; n > 0 && measured > 0 {
		entry.ThroughputRPS = round3(float64(n) / measured.Seconds())
		entry.ThroughputPerCore = round3(entry.ThroughputRPS / float64(cores))
	}
	if res.sent > 0 {
		entry.ShedRate = round3(float64(res.byStatus[503]) / float64(res.sent))
		entry.DegradedRate = round3(float64(res.degraded) / float64(res.sent))
	}
	entry.Degraded = res.degraded
	// Error rate and availability come from the status counts — the same
	// derivation benchjson gates on, so the printed figures and the gate
	// can never disagree.
	entry.ErrorRate = round3(entry.ComputedErrorRate())
	entry.Availability = round3(entry.ComputedAvailability())

	fmt.Fprintf(os.Stderr,
		"mapc-loadgen: %s: sent %d (dropped %d), 200s %d (degraded %d), errors %d (rate %.4f, avail %.4f), shed %.3f; p50 %.2fms p99 %.2fms p999 %.2fms; %.1f rps (%.2f/core)\n",
		entry.Label, res.sent, res.dropped, res.byStatus[200], res.degraded,
		res.errorCount(), entry.ErrorRate, entry.Availability, entry.ShedRate,
		entry.P50Ms, entry.P99Ms, entry.P999Ms, entry.ThroughputRPS, entry.ThroughputPerCore)

	if *out != "" {
		if err := benchio.Append(*out, machine(), cores, entry); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mapc-loadgen: appended entry %q to %s\n", entry.Label, *out)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entry); err != nil {
		fatal(err)
	}
	if res.byStatus[200] == 0 {
		fatal(fmt.Errorf("no successful responses in the measured window"))
	}
	if *expectNoDegraded && res.degraded > 0 {
		fatal(fmt.Errorf("%d responses were served degraded with -expect-no-degraded set", res.degraded))
	}
	if *checkConsistent && res.inconsistent > 0 {
		fatal(fmt.Errorf("%d exact-tier answers disagreed with an earlier answer for the same bag", res.inconsistent))
	}
	if *checkConsistent {
		fmt.Fprintf(os.Stderr, "mapc-loadgen: consistency: %d distinct bags, every repeat answer identical\n", len(res.answers))
	}
}

// mix generates the seeded request stream.
type mix struct {
	rng        *rand.Rand
	hot        [][]serve.Member // recurring bags
	frac       float64
	benchmarks []string
	batches    []int
	k          int
}

func newMix(benchmarks []string, batches []int, k, hotSet int, hotFrac float64, seed int64) *mix {
	m := &mix{
		rng:        rand.New(rand.NewSource(seed)),
		frac:       hotFrac,
		benchmarks: benchmarks,
		batches:    batches,
		k:          k,
	}
	seen := map[string]bool{}
	space := 1
	for i := 0; i < k && space <= hotSet; i++ {
		space *= len(benchmarks) * len(batches)
	}
	if hotSet > space {
		hotSet = space // tiny spaces: the whole space is the hot set
	}
	for len(m.hot) < hotSet {
		bag := m.randomBag()
		key := serve.CanonicalKey(bag)
		if !seen[key] {
			seen[key] = true
			m.hot = append(m.hot, bag)
		}
	}
	return m
}

func (m *mix) randomBag() []serve.Member {
	bag := make([]serve.Member, m.k)
	for i := range bag {
		bag[i] = serve.Member{
			Benchmark: m.benchmarks[m.rng.Intn(len(m.benchmarks))],
			Batch:     m.batches[m.rng.Intn(len(m.batches))],
		}
	}
	return bag
}

// next returns the next request's bag in a fresh random member order, so
// recurring bags arrive as varying permutations of the same multiset.
func (m *mix) next() []serve.Member {
	var bag []serve.Member
	if len(m.hot) > 0 && m.rng.Float64() < m.frac {
		bag = m.hot[m.rng.Intn(len(m.hot))]
	} else {
		bag = m.randomBag()
	}
	out := append([]serve.Member(nil), bag...)
	m.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// result accumulates the measured window's outcomes.
type result struct {
	mu        sync.Mutex
	sent      int64
	dropped   int64
	byStatus  map[int]int64
	latencies []float64 // ms, 200s only
	degraded  int64     // 200s answered from the fast fidelity tier
	// answers maps canonical bag key → the first exact-tier answer's
	// prediction fingerprint; inconsistent counts later disagreements.
	answers      map[string]string
	inconsistent int64
}

func (r *result) statusCounts() map[string]int64 {
	out := make(map[string]int64, len(r.byStatus)+1)
	for code, n := range r.byStatus {
		out[strconv.Itoa(code)] = n
	}
	if r.dropped > 0 {
		out["dropped"] = r.dropped
	}
	return out
}

// errorCount mirrors benchio's hard-failure classification: transport
// errors plus every 5xx except the 503 shed signal.
func (r *result) errorCount() int64 {
	var n int64
	for code, c := range r.byStatus {
		if code == 0 || (code >= 500 && code != 503) {
			n += c
		}
	}
	return n
}

// runOpts carries the request-shaping knobs into the load loop.
type runOpts struct {
	degradedOK      bool // ask for fast-tier answers via X-Mapc-Degraded-OK
	checkConsistent bool // fingerprint exact-tier answers per bag
}

func run(target string, m *mix, qps float64, concurrency int, warmup, duration time.Duration, opts runOpts) *result {
	if qps <= 0 {
		fatal(fmt.Errorf("-qps must be positive"))
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	url := strings.TrimRight(target, "/") + "/v1/predict"

	res := &result{byStatus: map[int]int64{}, answers: map[string]string{}}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup

	// Bags are drawn on the launch clock (the mix RNG is not goroutine
	// safe); the HTTP round trip runs concurrently.
	fire := func(bag []serve.Member, measured bool) {
		select {
		case sem <- struct{}{}:
		default:
			if measured {
				res.mu.Lock()
				res.dropped++
				res.mu.Unlock()
			}
			return
		}
		if measured {
			res.mu.Lock()
			res.sent++
			res.mu.Unlock()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := post(client, url, bag, opts)
			if !measured {
				return
			}
			res.mu.Lock()
			res.byStatus[o.status]++
			if o.status == 200 {
				res.latencies = append(res.latencies, float64(o.elapsed)/float64(time.Millisecond))
				if o.degraded {
					res.degraded++
				} else if opts.checkConsistent && o.fingerprint != "" {
					// Exact-tier answers for one bag must never disagree —
					// degraded answers are a different fidelity tier and are
					// excluded (the no-fault gate forbids them separately).
					key := serve.CanonicalKey(bag)
					if prev, ok := res.answers[key]; !ok {
						res.answers[key] = o.fingerprint
					} else if prev != o.fingerprint {
						res.inconsistent++
					}
				}
			}
			res.mu.Unlock()
		}()
	}

	start := time.Now()
	warmEnd := start.Add(warmup)
	end := warmEnd.Add(duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for now := range tick.C {
		if now.After(end) {
			break
		}
		fire(m.next(), now.After(warmEnd))
	}
	wg.Wait()
	sort.Float64s(res.latencies)
	return res
}

// postOutcome is one request's observed result.
type postOutcome struct {
	status   int // 0 on transport error
	elapsed  time.Duration
	degraded bool
	// fingerprint condenses a 200 answer's predictions for the consistency
	// check; empty when the body was unreadable or not requested.
	fingerprint string
}

// post sends one bag and classifies the outcome. Transport errors report
// status 0 — the hard-failure class the availability gate counts.
func post(client *http.Client, url string, bag []serve.Member, opts runOpts) postOutcome {
	body, err := json.Marshal(serve.PredictRequest{Bags: []serve.Bag{{Members: bag}}})
	if err != nil {
		fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.degradedOK {
		req.Header.Set(serve.HeaderDegradedOK, "1")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(t0)
	if err != nil {
		return postOutcome{status: 0, elapsed: elapsed}
	}
	defer resp.Body.Close()
	o := postOutcome{
		status:   resp.StatusCode,
		elapsed:  elapsed,
		degraded: resp.Header.Get(serve.HeaderDegraded) != "",
	}
	if resp.StatusCode == 200 && opts.checkConsistent {
		var pr serve.PredictResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pr); err == nil {
			// The degraded body flag backs up the header (a proxy could
			// strip headers; the JSON field cannot disappear).
			o.degraded = o.degraded || pr.Degraded
			var sb strings.Builder
			for _, r := range pr.Results {
				fmt.Fprintf(&sb, "%.17g|%.17g;", r.PredictedSec, r.Fairness)
			}
			o.fingerprint = sb.String()
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return o
}

func machine() string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%s/%s %s (%d cores)", runtime.GOOS, runtime.GOARCH, host, runtime.NumCPU())
}

func round3(v float64) float64 {
	if v != v { // NaN (no samples) must not poison the JSON
		return 0
	}
	return float64(int64(v*1000+0.5)) / 1000
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-loadgen:", err)
	os.Exit(1)
}
