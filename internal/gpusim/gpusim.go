// Package gpusim models the paper's GPU (Table III: NVIDIA Tesla T4,
// Turing, 2560 CUDA cores across 40 SMs) executing trace.Workloads as
// sequences of SIMT kernels, alone or concurrently under MPS-style spatial
// multiplexing.
//
// The model captures the mechanisms Section II of the paper identifies as
// the sources of multi-application slowdown:
//
//   - SM partitioning: concurrent clients receive disjoint SM subsets, so
//     per-app compute throughput shrinks with the client count;
//   - shared L2: all clients' miss streams interleave into one cache, so
//     footprints evict each other (destructive interference);
//   - shared TLB: translations from different address spaces compete for
//     entries, and client interleaving periodically flushes the TLB;
//   - shared DRAM bandwidth, apportioned by demand;
//   - warp divergence: branchy kernels pay a throughput penalty that grows
//     with their control-instruction fraction — the reason the FAST/ORB
//     style workloads underperform on GPUs in Figure 3;
//   - occupancy: kernels whose exposed parallelism cannot fill the SM
//     partition leave compute lanes idle.
package gpusim

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"mapc/internal/isa"
	"mapc/internal/memsim"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// Config describes the simulated GPU. DefaultConfig mirrors the Tesla T4.
type Config struct {
	SMs             int     // streaming multiprocessors
	WarpSize        int     // threads per warp
	MaxThreadsPerSM int     // resident thread capacity per SM
	FreqGHz         float64 // SM clock

	// Throughput is per-SM operations per cycle for each category.
	Throughput [isa.NumCategories]float64

	L2Bytes int64 // device-wide shared L2
	L2Ways  int

	TLBEntries    int     // shared TLB entries (all MPS clients)
	TLBMissCycles float64 // page-walk latency
	// TLBFlushPeriod is the number of references between full TLB
	// flushes when more than one client shares the GPU (MPS context
	// interleaving); 0 disables flushing.
	TLBFlushPeriod int

	L2LatencyCycles float64 // L1/SM miss, L2 hit (beyond pipeline)
	DRAMLatency     float64 // L2 miss, in cycles
	DRAMBandwidth   float64 // bytes/second
	MLP             float64 // overlapped outstanding misses per SM partition

	KernelLaunchCycles float64 // per-phase launch + driver overhead

	// PCIeBandwidth and PCIeLatencySec model the host-to-device transfer
	// of the input batch before the kernels run; the transfer volume
	// comes from the workload's TransferBytes. PCIe bandwidth is shared
	// among concurrent clients by max-min fairness.
	PCIeBandwidth  float64 // bytes/second
	PCIeLatencySec float64 // fixed per-direction setup latency
	// SchedulerOverhead is the extra per-kernel cost factor per
	// additional concurrent client (thread scheduling across apps,
	// Section II issue 5).
	SchedulerOverhead float64

	// DivergencePenalty scales the throughput loss of branchy kernels:
	// effective compute cycles are multiplied by
	// (1 + DivergencePenalty * controlFraction).
	DivergencePenalty float64

	// FullUtilThreads is the resident-thread count needed to saturate one
	// SM's pipelines (latency hiding); occupancy below this scales
	// throughput down.
	FullUtilThreads int

	// PatternCoalescing, when true, scales LSU pressure by each phase's
	// access pattern (sequential warps coalesce into fewer transactions).
	// Off by default: the calibrated LSU throughput already reflects the
	// suite's average coalescing; the explicit model is an opt-in
	// refinement studied by the ablations.
	PatternCoalescing bool
}

// DefaultConfig returns the Tesla-T4-equivalent device.
func DefaultConfig() Config {
	var tput [isa.NumCategories]float64
	tput[isa.SSE] = 64     // FP32 lanes consume packed work directly
	tput[isa.ALU] = 64     // INT32 lanes
	tput[isa.MEM] = 16     // LSU width
	tput[isa.FP] = 64      // FP32 lanes
	tput[isa.Stack] = 16   // local-memory traffic
	tput[isa.String] = 8   // byte-wise ops serialize
	tput[isa.Shift] = 32   // half-rate integer multiply/shift
	tput[isa.Control] = 16 // branch resolution
	return Config{
		SMs:                40,
		WarpSize:           32,
		MaxThreadsPerSM:    1024,
		FreqGHz:            1.59,
		Throughput:         tput,
		L2Bytes:            4 << 20,
		L2Ways:             16,
		TLBEntries:         512,
		TLBMissCycles:      300,
		TLBFlushPeriod:     12000,
		L2LatencyCycles:    160,
		DRAMLatency:        400,
		DRAMBandwidth:      320e9,
		MLP:                24,
		KernelLaunchCycles: 8000,
		PCIeBandwidth:      7e9,
		PCIeLatencySec:     25e-6,
		SchedulerOverhead:  0.06,
		DivergencePenalty:  4.0,
		FullUtilThreads:    128,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.SMs <= 0 || c.WarpSize <= 0 || c.MaxThreadsPerSM <= 0:
		return errors.New("gpusim: SM geometry must be positive")
	case c.FreqGHz <= 0:
		return errors.New("gpusim: frequency must be positive")
	case c.L2Bytes <= 0:
		return errors.New("gpusim: L2 capacity must be positive")
	case c.TLBEntries <= 0:
		return errors.New("gpusim: TLB entries must be positive")
	case c.DRAMBandwidth <= 0:
		return errors.New("gpusim: DRAM bandwidth must be positive")
	case c.PCIeBandwidth <= 0:
		return errors.New("gpusim: PCIe bandwidth must be positive")
	case c.PCIeLatencySec < 0:
		return errors.New("gpusim: PCIe latency must be non-negative")
	case c.MLP <= 0:
		return errors.New("gpusim: MLP must be positive")
	case c.FullUtilThreads <= 0:
		return errors.New("gpusim: FullUtilThreads must be positive")
	}
	for cat, t := range c.Throughput {
		if t <= 0 {
			return fmt.Errorf("gpusim: throughput for %v must be positive", isa.Category(cat))
		}
	}
	return nil
}

// Result reports one application's simulated GPU execution.
type Result struct {
	TimeSec      float64
	Cycles       float64
	Instructions uint64
	// IPC is aggregate instructions per device cycle.
	IPC float64
	// L2MissRate is the app's L2 miss ratio.
	L2MissRate float64
	// TLBMissRate is the app's TLB miss ratio.
	TLBMissRate float64
	// DRAMBytes is total memory traffic.
	DRAMBytes float64
	// SMShare is the number of SMs the app's MPS partition received.
	SMShare float64
}

// Performance returns 1/time, the paper's definition of performance.
func (r Result) Performance() float64 {
	if r.TimeSec <= 0 {
		return 0
	}
	return 1 / r.TimeSec
}

type phaseMem struct {
	l2Miss  float64 // per reference
	tlbMiss float64 // per reference
}

// Run simulates apps launched together under MPS and returns each app's
// completion time. The execution is *phased*: all clients contend while
// co-resident, and as each one finishes, the survivors are re-simulated with
// the smaller client set (more SMs, less cache/TLB/bandwidth interference).
// This matches real MPS behaviour, where a short job's exit releases its SM
// partition to the remaining clients. A single-element slice is an isolated
// run.
//
// Read-only contract: Run (and RunMemo) never mutate the workloads — they
// may be shared across concurrent calls and reused afterwards without
// cloning. TestRunTreatsWorkloadsAsReadOnly enforces this with a
// full-field fingerprint before/after.
func Run(cfg Config, workloads []*trace.Workload) ([]Result, error) {
	return RunMemo(cfg, nil, workloads)
}

// RunMemo is Run with a cross-call simulation memo. A non-nil memo caches
// the pure prefixes of the memory simulation — the materialized per-slot
// reference streams ("gpusim/stream", config-independent) and entire
// single-client simulations ("gpusim/iso") — so repeated runs over the
// same workloads replay only the genuinely shared TLB/L2 interleave.
// Outputs are bit-identical to Run at every memo budget, including nil:
// cached values are exactly the bytes the cold path produces, and entries
// are immutable once published.
func RunMemo(cfg Config, memo *simcache.Cache, workloads []*trace.Workload) ([]Result, error) {
	return RunMemoShares(cfg, memo, workloads, nil)
}

// RunMemoShares is RunMemo with asymmetric SM partition shares: shares[i]
// is client i's relative weight of the SM pool (an MPS active-thread
// percentage). Shares are normalized internally, so {1,1} and {50,50} are
// the same split. A nil shares slice selects the default equal MPS split
// and is bit-identical to RunMemo — the equal path evaluates the exact
// legacy SMs/n expression. When a client finishes, the survivors keep
// their relative weights over the freed partition (renormalized over the
// active set), mirroring how the equal split re-divides among survivors.
func RunMemoShares(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64) ([]Result, error) {
	if err := validateRun(cfg, workloads, shares); err != nil {
		return nil, err
	}
	return runPhased(cfg, workloads, shares, func(sub []*trace.Workload, subShares []float64) ([]Result, error) {
		return runSteady(cfg, memo, sub, subShares)
	})
}

// validateRun checks the configuration, the workloads and the optional
// partition shares before any simulation work starts.
func validateRun(cfg Config, workloads []*trace.Workload, shares []float64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(workloads) == 0 {
		return errors.New("gpusim: no workloads")
	}
	for i, w := range workloads {
		if w == nil {
			return fmt.Errorf("gpusim: workload %d is nil", i)
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("gpusim: workload %d: %w", i, err)
		}
	}
	if shares != nil {
		if len(shares) != len(workloads) {
			return fmt.Errorf("gpusim: %d partition shares for %d workloads", len(shares), len(workloads))
		}
		for i, s := range shares {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("gpusim: partition share %d is %v; shares are positive finite weights", i, s)
			}
		}
	}
	return nil
}

// runPhased executes the phased completion schedule over steady-state
// rates: progress every active client proportionally to its current rate;
// when the earliest finisher completes, re-evaluate the survivors (with
// their shares renormalized over the active set) as a smaller client set.
// Shared by the exact path (RunMemoShares) and the analytic fidelity tier
// (RunMemoSharesFidelity) — same schedule, different steady evaluators.
func runPhased(cfg Config, workloads []*trace.Workload, shares []float64, steadyFn func(sub []*trace.Workload, subShares []float64) ([]Result, error)) ([]Result, error) {
	// Steady-state results for the full client set: the per-app rates and
	// statistics while everyone is resident.
	steady, err := steadyFn(workloads, shares)
	if err != nil {
		return nil, err
	}
	if len(workloads) == 1 {
		return steady, nil
	}

	// Phased schedule: progress every active app proportionally to its
	// current steady-state rate; when the earliest finisher completes,
	// re-evaluate the survivors as a smaller client set.
	n := len(workloads)
	remaining := make([]float64, n) // fraction of work left
	finish := make([]float64, n)    // completion time (seconds)
	active := make([]int, n)
	for i := range active {
		active[i] = i
		remaining[i] = 1
	}
	cur := steady
	var clock float64
	for len(active) > 0 {
		// Earliest completion among active apps at current rates.
		best := -1
		bestDT := 0.0
		for k, ai := range active {
			dt := remaining[ai] * cur[k].TimeSec
			if best < 0 || dt < bestDT {
				best, bestDT = k, dt
			}
		}
		for k, ai := range active {
			if cur[k].TimeSec > 0 {
				remaining[ai] -= bestDT / cur[k].TimeSec
			} else {
				remaining[ai] = 0
			}
		}
		clock += bestDT
		done := active[best]
		finish[done] = clock
		remaining[done] = 0
		active = append(active[:best], active[best+1:]...)
		if len(active) == 0 {
			break
		}
		sub := make([]*trace.Workload, len(active))
		var subShares []float64
		if shares != nil {
			subShares = make([]float64, len(active))
		}
		for k, ai := range active {
			sub[k] = workloads[ai]
			if shares != nil {
				subShares[k] = shares[ai]
			}
		}
		cur, err = steadyFn(sub, subShares)
		if err != nil {
			return nil, err
		}
	}

	// Report: completion times from the phased schedule; rates and memory
	// statistics from the full-contention period (the shared-run counters
	// a profiler attached to the co-run window would read).
	out := make([]Result, n)
	for i := range workloads {
		out[i] = steady[i]
		out[i].TimeSec = finish[i]
		out[i].Cycles = finish[i] * cfg.FreqGHz * 1e9
		if out[i].Cycles > 0 {
			out[i].IPC = float64(out[i].Instructions) / out[i].Cycles
		}
	}
	return out, nil
}

// runSteady computes per-app execution times assuming the full client set
// stays resident for the whole run. A nil shares slice is the equal MPS
// split (the exact legacy SMs/n computation); otherwise each client gets
// SMs scaled by its normalized weight.
func runSteady(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64) ([]Result, error) {
	mem, l2Stats, tlbStats, err := simulateMemory(cfg, memo, workloads)
	if err != nil {
		return nil, err
	}
	l2Rates := make([]float64, len(workloads))
	tlbRates := make([]float64, len(workloads))
	for i := range workloads {
		l2Rates[i] = l2Stats[i].MissRate()
		tlbRates[i] = tlbStats[i].MissRate()
	}
	return steadyFromMem(cfg, workloads, shares, mem, l2Rates, tlbRates), nil
}

// steadyFromMem is the timing tail of runSteady: SM partitioning, PCIe
// sharing, the two-pass bandwidth apportioning, and result assembly, given
// the per-phase memory behaviour (exact or analytic) and the per-app
// L2/TLB miss ratios to report. Shared by the exact and analytic steady
// evaluators.
func steadyFromMem(cfg Config, workloads []*trace.Workload, shares []float64, mem [][]phaseMem, l2Rates, tlbRates []float64) []Result {
	n := len(workloads)
	smShares := make([]float64, n) // MPS spatial partitioning
	if shares == nil {
		equal := float64(cfg.SMs) / float64(n)
		for i := range smShares {
			smShares[i] = equal
		}
	} else {
		var sum float64
		for _, s := range shares {
			sum += s
		}
		for i, s := range shares {
			smShares[i] = float64(cfg.SMs) * (s / sum)
		}
	}

	results := make([]Result, n)
	traffic := make([]float64, n)
	for i, w := range workloads {
		cycles, bytes := appCycles(cfg, w, mem[i], smShares[i], n, 0)
		results[i].Cycles = cycles
		traffic[i] = bytes
	}
	// PCIe: each client first ships its input batch; concurrent clients
	// split the link evenly while their transfers overlap.
	transferring := 0
	for _, w := range workloads {
		if w.TransferBytes > 0 {
			transferring++
		}
	}
	pcieShare := cfg.PCIeBandwidth
	if transferring > 1 {
		pcieShare /= float64(transferring)
	}

	share := bandwidthShares(cfg, results, traffic)
	for i, w := range workloads {
		cycles, bytes := appCycles(cfg, w, mem[i], smShares[i], n, share[i])
		if w.TransferBytes > 0 {
			xfer := cfg.PCIeLatencySec + float64(w.TransferBytes)/pcieShare
			cycles += xfer * cfg.FreqGHz * 1e9
		}
		results[i] = Result{
			TimeSec:      cycles / (cfg.FreqGHz * 1e9),
			Cycles:       cycles,
			Instructions: w.Instructions(),
			DRAMBytes:    bytes,
			L2MissRate:   l2Rates[i],
			TLBMissRate:  tlbRates[i],
			SMShare:      smShares[i],
		}
		if cycles > 0 {
			results[i].IPC = float64(w.Instructions()) / cycles
		}
	}
	return results
}

// BagTime returns the makespan of a concurrent run: the paper's prediction
// target for a bag of tasks.
func BagTime(results []Result) float64 {
	var max float64
	for _, r := range results {
		if r.TimeSec > max {
			max = r.TimeSec
		}
	}
	return max
}

// bandwidthShares apportions device DRAM bandwidth among MPS clients with
// max-min fairness (see memsim.Waterfill).
func bandwidthShares(cfg Config, prelim []Result, traffic []float64) []float64 {
	demand := make([]float64, len(prelim))
	for i := range prelim {
		t := prelim[i].Cycles / (cfg.FreqGHz * 1e9)
		if t > 0 {
			demand[i] = traffic[i] / t
		}
	}
	return memsim.Waterfill(cfg.DRAMBandwidth, demand)
}

// PhaseTiming reports one kernel's simulated timing decomposition.
type PhaseTiming struct {
	Name          string
	ComputeCycles float64 // pipe-roofline bound including divergence
	StallCycles   float64 // memory-latency bound
	TotalCycles   float64 // binding bound plus scheduling tax and launch
	Occupancy     float64
	L2MissRate    float64
	TLBMissRate   float64
}

// PhaseBreakdown retraces one client of a Run configuration and returns its
// per-kernel timing decomposition — the explainability hook used by the
// examples and ablation benches. workloads must match the Run call being
// explained; client selects the member to decompose.
func PhaseBreakdown(cfg Config, workloads []*trace.Workload, client int) ([]PhaseTiming, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if client < 0 || client >= len(workloads) {
		return nil, fmt.Errorf("gpusim: client %d out of range", client)
	}
	for i, w := range workloads {
		if w == nil {
			return nil, fmt.Errorf("gpusim: workload %d is nil", i)
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("gpusim: workload %d: %w", i, err)
		}
	}
	mem, _, _, err := simulateMemory(cfg, nil, workloads)
	if err != nil {
		return nil, err
	}
	smShare := float64(cfg.SMs) / float64(len(workloads))
	var out []PhaseTiming
	appCyclesTraced(cfg, workloads[client], mem[client], smShare, len(workloads), 0, &out)
	return out, nil
}

// appCycles times one app's kernels on its SM partition.
func appCycles(cfg Config, w *trace.Workload, mem []phaseMem, smShare float64, clients int, bwShare float64) (float64, float64) {
	return appCyclesTraced(cfg, w, mem, smShare, clients, bwShare, nil)
}

func appCyclesTraced(cfg Config, w *trace.Workload, mem []phaseMem, smShare float64, clients int, bwShare float64, timings *[]PhaseTiming) (float64, float64) {
	var cycles, bytes float64
	schedTax := 1 + cfg.SchedulerOverhead*float64(clients-1)
	for pi := range w.Phases {
		p := &w.Phases[pi]
		m := mem[pi]

		// Occupancy: threads resident on the partition vs. what latency
		// hiding needs.
		maxResident := smShare * float64(cfg.MaxThreadsPerSM)
		threads := float64(p.Parallelism)
		if threads > maxResident {
			threads = maxResident
		}
		occupancy := threads / (smShare * float64(cfg.FullUtilThreads))
		if occupancy > 1 {
			occupancy = 1
		}
		if occupancy <= 0 {
			occupancy = 1e-6
		}

		// Compute bound: per-category pipe roofline on the partition.
		var portMax float64
		var totalOps float64
		for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
			nOps := float64(p.Counts[cat])
			totalOps += nOps
			if cat == isa.MEM && cfg.PatternCoalescing {
				// Coalescing: warps accessing consecutive addresses
				// issue one transaction per several threads.
				nOps /= coalesceFactor(p.Pattern)
			}
			if c := nOps / (cfg.Throughput[cat] * smShare * occupancy); c > portMax {
				portMax = c
			}
		}
		// Divergence: branch-heavy kernels serialize warp lanes.
		ctrlFrac := 0.0
		if totalOps > 0 {
			ctrlFrac = float64(p.Counts[isa.Control]) / totalOps
		}
		compute := portMax * (1 + cfg.DivergencePenalty*ctrlFrac)

		// Memory bound: L2/TLB/DRAM latency, overlapped by MLP across
		// the partition's warps.
		// MLP scales with the partition size: fewer SMs sustain fewer
		// outstanding misses.
		refs := float64(p.MemRefs())
		if cfg.PatternCoalescing {
			// Coalesced warps issue fewer memory transactions, so the
			// latency-bound path sees proportionally fewer stalls.
			refs /= coalesceFactor(p.Pattern)
		}
		stall := refs * (m.l2Miss*cfg.DRAMLatency +
			(1-m.l2Miss)*cfg.L2LatencyCycles*0.25 + // L2 hits partially hidden
			m.tlbMiss*cfg.TLBMissCycles) / (cfg.MLP * smShare)
		stall /= occupancyScale(occupancy)

		phaseCycles := compute
		if stall > phaseCycles {
			phaseCycles = stall // latency-bound kernel
		}
		phaseCycles = phaseCycles*schedTax + cfg.KernelLaunchCycles*float64(p.LaunchCount())

		phaseBytes := refs * m.l2Miss * memsim.LineSize
		bytes += phaseBytes
		if bwShare > 0 {
			bwCycles := phaseBytes / bwShare * cfg.FreqGHz * 1e9
			if bwCycles > phaseCycles {
				phaseCycles = bwCycles
			}
		}
		cycles += phaseCycles
		if timings != nil {
			*timings = append(*timings, PhaseTiming{
				Name:          p.Name,
				ComputeCycles: compute,
				StallCycles:   stall,
				TotalCycles:   phaseCycles,
				Occupancy:     occupancy,
				L2MissRate:    m.l2Miss,
				TLBMissRate:   m.tlbMiss,
			})
		}
	}
	return cycles, bytes
}

// coalesceFactor returns how many same-warp accesses merge into one memory
// transaction for each access pattern.
func coalesceFactor(pat trace.Pattern) float64 {
	switch pat {
	case trace.Sequential:
		return 8 // a 64B line serves eight 8B lanes
	case trace.Windowed:
		return 4
	case trace.Strided:
		return 2
	default:
		return 1 // scattered accesses do not coalesce
	}
}

// occupancyScale converts occupancy into latency-hiding ability: fully
// occupied SMs overlap misses well; sparse kernels expose raw latency.
func occupancyScale(occ float64) float64 {
	if occ > 1 {
		return 1
	}
	if occ < 0.02 {
		return 0.02
	}
	return occ
}

// simScratch holds the cold-path stream arena simulateMemory reuses across
// calls: all clients' sampled reference addresses, partitioned by exact
// precomputed size. Pooled because corpus generation calls simulateMemory
// thousands of times, potentially from concurrent measurement workers.
type simScratch struct {
	addrs []uint64
}

// grow sizes the arena, reusing prior capacity, and returns it with length
// total.
func (s *simScratch) grow(total int) []uint64 {
	if cap(s.addrs) < total {
		s.addrs = make([]uint64, total)
	}
	return s.addrs[:cap(s.addrs)][:total]
}

var scratchPool = sync.Pool{New: func() any { return new(simScratch) }}

// Memo key domains (simcache.Key.Domain) for the two cached prefixes.
const (
	memoDomainStream = "gpusim/stream" // materialized per-slot reference stream
	memoDomainIso    = "gpusim/iso"    // entire single-client memory simulation
)

// configKey renders cfg exactly for memo keys: two configurations share a
// cache entry only when every field of the simulated device is identical.
func configKey(cfg Config) string { return fmt.Sprintf("%+v", cfg) }

// streamEntry is the memoized reference stream of one (workload, slot):
// the sampled addresses of every phase, phase-contiguous, with ends[pi]
// the first index past phase pi. Stream generation is a pure function of
// the workload and the slot alone — seeds hash (benchmark, phase, batch,
// slot) and the address-space base is slot-derived — so stream entries are
// keyed with an empty Config and shared across device configurations.
// Cached entries are immutable: the interleave only reads them.
type streamEntry struct {
	addrs []uint64
	ends  []int
}

// bytes reports the entry's approximate resident size for LRU accounting.
func (se streamEntry) bytes() int64 {
	return int64(cap(se.addrs))*8 + int64(len(se.ends))*8 + 64
}

// isoResult is the memoized outcome of a whole single-client simulateMemory
// call: with one client the TLB never flushes (n > 1 gate) and nothing is
// shared, so the per-phase miss behaviour and L2/TLB statistics are pure
// in (cfg, workload). Immutable.
type isoResult struct {
	mem      [][]phaseMem
	l2Stats  []memsim.CacheStats
	tlbStats []memsim.CacheStats
}

func (ir isoResult) bytes() int64 {
	var n int64 = 128
	for _, m := range ir.mem {
		n += int64(len(m)) * 16
	}
	n += int64(len(ir.l2Stats)+len(ir.tlbStats)) * 16
	return n
}

// materializeStream fills addrs (length = the workload's exact sample
// count) with every phase's sampled reference stream and returns the
// phase-contiguous streamEntry over it. Pure in (w, ai).
func materializeStream(w *trace.Workload, ai int, addrs []uint64) (streamEntry, error) {
	base := uint64(ai+1) << 40
	// Seed strings are per-slot constants; strconv.Itoa produces exactly
	// the bytes fmt.Sprint emitted here before, without the interface
	// boxing per phase.
	batchStr := strconv.Itoa(w.BatchSize)
	slotStr := strconv.Itoa(ai)
	ends := make([]int, len(w.Phases))
	pos := 0
	for pi := range w.Phases {
		p := &w.Phases[pi]
		refs := p.MemRefs()
		if refs == 0 {
			ends[pi] = pos
			continue
		}
		seed := memsim.StreamSeed("gpu", w.Benchmark, p.Name, batchStr, slotStr)
		st, err := memsim.NewStream(p, base+uint64(pi)<<32, seed)
		if err != nil {
			return streamEntry{}, err
		}
		k := memsim.SampleRefs(refs)
		st.Fill(addrs[pos : pos+k])
		pos += k
		ends[pi] = pos
	}
	return streamEntry{addrs: addrs[:pos], ends: ends}, nil
}

// simulateMemory interleaves every client's sampled reference stream into
// the shared L2 and shared TLB, with periodic TLB flushes when more than
// one client is resident.
//
// The hot path is allocation-free: per-client sample counts are exact
// functions of the workload (SampleRefs is pure), so the stream arena is
// sized once up front from a pooled scratch buffer and each phase's
// references are generated through one batched Stream.Fill directly into
// its arena segment.
//
// With a non-nil memo, single-client calls are answered entirely from the
// isolated-run memo and multi-client calls reuse memoized streams,
// replaying only the genuinely shared TLB/L2 interleave. Outputs are
// bit-identical to the cold path at every budget.
func simulateMemory(cfg Config, memo *simcache.Cache, workloads []*trace.Workload) ([][]phaseMem, []memsim.CacheStats, []memsim.CacheStats, error) {
	if memo != nil && len(workloads) == 1 {
		key := simcache.Key{
			Domain:   memoDomainIso,
			Config:   configKey(cfg),
			Workload: workloads[0].Fingerprint(),
			Slot:     0,
		}
		v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
			mem, l2s, tlbs, err := simulateMemoryShared(cfg, memo, workloads)
			if err != nil {
				return nil, 0, err
			}
			ir := isoResult{mem: mem, l2Stats: l2s, tlbStats: tlbs}
			return ir, ir.bytes(), nil
		})
		if err != nil {
			return nil, nil, nil, err
		}
		ir := v.(isoResult)
		return ir.mem, ir.l2Stats, ir.tlbStats, nil
	}
	return simulateMemoryShared(cfg, memo, workloads)
}

// simulateMemoryShared is the full memory simulation: stream
// materialization (memo hits or cold fills) followed by the shared TLB/L2
// interleave.
func simulateMemoryShared(cfg Config, memo *simcache.Cache, workloads []*trace.Workload) ([][]phaseMem, []memsim.CacheStats, []memsim.CacheStats, error) {
	n := len(workloads)
	l2, err := memsim.NewCache("gpul2", cfg.L2Bytes, cfg.L2Ways, n)
	if err != nil {
		return nil, nil, nil, err
	}
	tlb, err := memsim.NewTLB(cfg.TLBEntries, n)
	if err != nil {
		return nil, nil, nil, err
	}

	mem := make([][]phaseMem, n)
	counts := make([]int, n)
	total := 0
	for ai, w := range workloads {
		mem[ai] = make([]phaseMem, len(w.Phases))
		for pi := range w.Phases {
			if refs := w.Phases[pi].MemRefs(); refs > 0 {
				counts[ai] += memsim.SampleRefs(refs)
			}
		}
		total += counts[ai]
	}

	// Pooled arena, acquired lazily: an all-hit memoized run never touches
	// it.
	var scratch *simScratch
	var arena []uint64
	defer func() {
		if scratch != nil {
			scratchPool.Put(scratch)
		}
	}()
	off := 0
	streams := make([][]uint64, n)
	ends := make([][]int, n)
	for ai, w := range workloads {
		if memo != nil {
			w, ai := w, ai // capture per-iteration for the compute closure
			key := simcache.Key{Domain: memoDomainStream, Workload: w.Fingerprint(), Slot: ai}
			v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
				// Exact-capacity heap slice: the entry outlives this
				// call, so it cannot live in the pooled arena.
				se, err := materializeStream(w, ai, make([]uint64, counts[ai]))
				if err != nil {
					return nil, 0, err
				}
				return se, se.bytes(), nil
			})
			if err != nil {
				return nil, nil, nil, err
			}
			se := v.(streamEntry)
			streams[ai], ends[ai] = se.addrs, se.ends
			continue
		}
		if scratch == nil {
			scratch = scratchPool.Get().(*simScratch)
			arena = scratch.grow(total)
		}
		se, err := materializeStream(w, ai, arena[off:off+counts[ai]])
		if err != nil {
			return nil, nil, nil, err
		}
		off += counts[ai]
		streams[ai], ends[ai] = se.addrs, se.ends
	}

	// Interleave all clients proportionally; every reference consults the
	// shared TLB then the shared L2. Phase attribution follows the cursor
	// through the phase-contiguous stream (ends[ai][p] is the first index
	// past phase p), replacing the per-reference phase tag.
	idx := make([]int, n)
	ph := make([]int, n)
	maxLen := 0
	for ai := range streams {
		if len(streams[ai]) > maxLen {
			maxLen = len(streams[ai])
		}
	}
	phaseAcc := make([][]struct{ acc, l2m, tlbm uint64 }, n)
	for ai, w := range workloads {
		phaseAcc[ai] = make([]struct{ acc, l2m, tlbm uint64 }, len(w.Phases))
	}
	// Each client issues quota(step) = floor(len*(step+1)/maxLen) -
	// floor(len*step/maxLen) references per step; len <= maxLen makes that
	// 0 or 1, so a Bresenham error accumulator replays the identical
	// schedule without two integer divisions per client per step. The TLB
	// flush on every TLBFlushPeriod-th issued reference likewise becomes a
	// countdown instead of a modulo. Both are pinned bit-identical by the
	// golden corpus hashes and the memoized-vs-cold differential tests.
	er := make([]int, n)
	flushEvery := n > 1 && cfg.TLBFlushPeriod > 0
	flushIn := cfg.TLBFlushPeriod
	for step := 0; step < maxLen; step++ {
		for ai := range streams {
			er[ai] += len(streams[ai])
			if er[ai] >= maxLen {
				er[ai] -= maxLen
				for idx[ai] >= ends[ai][ph[ai]] {
					ph[ai]++
				}
				addr := streams[ai][idx[ai]]
				idx[ai]++
				if flushEvery {
					flushIn--
					if flushIn == 0 {
						tlb.Flush()
						flushIn = cfg.TLBFlushPeriod
					}
				}
				pa := &phaseAcc[ai][ph[ai]]
				pa.acc++
				if !tlb.Access(ai, addr) {
					pa.tlbm++
				}
				if !l2.Access(ai, addr) {
					pa.l2m++
				}
			}
		}
	}

	for ai, w := range workloads {
		for pi := range w.Phases {
			pa := phaseAcc[ai][pi]
			if pa.acc == 0 {
				continue
			}
			mem[ai][pi].l2Miss = float64(pa.l2m) / float64(pa.acc)
			mem[ai][pi].tlbMiss = float64(pa.tlbm) / float64(pa.acc)
		}
	}

	l2Stats := make([]memsim.CacheStats, n)
	tlbStats := make([]memsim.CacheStats, n)
	for ai := 0; ai < n; ai++ {
		l2Stats[ai] = l2.Stats(ai)
		tlbStats[ai] = tlb.Stats(ai)
	}
	return mem, l2Stats, tlbStats, nil
}
