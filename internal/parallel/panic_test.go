package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// panicAt returns an fn that panics at index p with a recognizable value
// and optionally errors at index e.
func panicAt(p int, e int, eErr error) func(int) error {
	return func(i int) error {
		if i == p {
			panic(fmt.Sprintf("boom-%d", i))
		}
		if eErr != nil && i == e {
			return eErr
		}
		return nil
	}
}

// TestForEachPanicBecomesPanicError: a panic in one task must surface as a
// *PanicError with the right index, not kill the process, for both the
// serial and pooled paths — and both paths must report the same index.
func TestForEachPanicBecomesPanicError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			err := ForEach(workers, 64, panicAt(5, -1, nil))
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %T (%v), want *PanicError", err, err)
			}
			if pe.Index != 5 {
				t.Errorf("PanicError.Index = %d, want 5", pe.Index)
			}
			if got := fmt.Sprint(pe.Value); got != "boom-5" {
				t.Errorf("PanicError.Value = %q, want boom-5", got)
			}
			if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic_test.go") {
				t.Errorf("stack not preserved:\n%s", pe.Stack)
			}
			// The message embeds value and stack for log-level debuggability.
			if msg := pe.Error(); !strings.Contains(msg, "task 5") || !strings.Contains(msg, "boom-5") {
				t.Errorf("Error() = %q", msg)
			}
		})
	}
}

// TestForEachPanicLowestIndexWins: the lowest-index failure wins whether it
// is a panic or an error, preserving serial-equivalent semantics.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	errHigh := errors.New("later error")
	for _, workers := range []int{1, 2, 8} {
		// Panic at 7 beats error at 40.
		err := ForEach(workers, 64, panicAt(7, 40, errHigh))
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 7 {
			t.Errorf("workers=%d: got %v, want PanicError at 7", workers, err)
		}
		// Error at 3 beats panic at 9.
		errLow := errors.New("early error")
		err = ForEach(workers, 64, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 9:
				panic("late panic")
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want the index-3 error", workers, err)
		}
	}
}

// TestForEachPanicStopsClaiming: a panic sets the failed flag like an
// error, so the pool stops claiming new indices.
func TestForEachPanicStopsClaiming(t *testing.T) {
	var calls atomic.Int64
	err := ForEach(2, 10_000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			panic("die early")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic swallowed: %v", err)
	}
	if c := calls.Load(); c > 1000 {
		t.Errorf("%d calls claimed after early panic", c)
	}
}

// TestForEachSerialPanicStopsImmediately mirrors the serial first-error
// contract for panics.
func TestForEachSerialPanicStopsImmediately(t *testing.T) {
	var calls int
	err := ForEach(1, 100, func(i int) error {
		calls++
		if i == 3 {
			panic("stop")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 3 || calls != 4 {
		t.Fatalf("serial panic path: calls=%d err=%v, want 4 calls and PanicError at 3", calls, err)
	}
}

// TestPanicErrorUnwrap: error panic values unwrap so errors.Is sees through
// the recovery; non-error values unwrap to nil.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEach(2, 8, func(i int) error {
		if i == 2 {
			panic(sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is through PanicError failed: %v", err)
	}
	pe := &PanicError{Index: 0, Value: "not an error"}
	if pe.Unwrap() != nil {
		t.Error("string panic value unwrapped to non-nil")
	}
}

// TestForEachPanicDoesNotPerturbSuccess: a fully successful run with the
// recovery in place still writes every slot (bit-identity of the success
// path).
func TestForEachPanicDoesNotPerturbSuccess(t *testing.T) {
	const n = 97
	for _, workers := range []int{1, 4} {
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = i + 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d slot %d holds %d", workers, i, v)
			}
		}
	}
}
