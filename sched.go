package mapc

import (
	"mapc/internal/sched"
)

// Scheduling facade: the edge-server co-scheduling layer built on top of
// the predictor (the use case the paper's introduction motivates).
type (
	// Scheduler drains job queues through the simulated GPU under a
	// pluggable policy.
	Scheduler = sched.Scheduler
	// Job is one offloaded application request.
	Job = sched.Job
	// SchedOutcome records one job's completion.
	SchedOutcome = sched.Outcome
	// ScheduleResult is the outcome of draining a queue.
	ScheduleResult = sched.Schedule
	// SchedPolicy selects which jobs share the GPU next.
	SchedPolicy = sched.Policy
)

// The shipped scheduling policies.
var (
	// PolicySerialFIFO runs one job at a time in arrival order.
	PolicySerialFIFO SchedPolicy = sched.SerialFIFO{}
	// PolicyPairFIFO naively co-schedules adjacent arrivals.
	PolicyPairFIFO SchedPolicy = sched.PairFIFO{}
	// PolicyPredictedPairing pairs jobs by predicted bag time.
	PolicyPredictedPairing SchedPolicy = sched.PredictedPairing{}
	// PolicyOraclePairing pairs jobs by measured bag time.
	PolicyOraclePairing SchedPolicy = sched.OraclePairing{}
)

// NewScheduler returns a scheduler on the configuration's GPU. The
// predictor may be nil if only predictor-free policies are used.
func NewScheduler(cfg Config, predictor *Predictor) (*Scheduler, error) {
	return sched.New(cfg, predictor)
}
