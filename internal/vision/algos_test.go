package vision

import (
	"math"
	"testing"
)

// These tests exercise the vision algorithms' functional behaviour — the
// detectors must respond to the structures they are designed to find and
// stay silent otherwise.

func TestFASTFindsCornerOfSquare(t *testing.T) {
	im := constantImage(40, 40, 50)
	fillRect(im, 10, 10, 15, 15, 200) // high-contrast square: 4 corners
	kps := NewFAST().detect(im, nil)
	if len(kps) == 0 {
		t.Fatal("no corners on a high-contrast square")
	}
	// At least one detection near a true corner.
	corners := [][2]int{{10, 10}, {24, 10}, {10, 24}, {24, 24}}
	found := false
	for _, kp := range kps {
		for _, c := range corners {
			if absInt(kp.X-c[0]) <= 2 && absInt(kp.Y-c[1]) <= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no detection near square corners; got %v", kps)
	}
}

func TestFASTSilentOnFlatImage(t *testing.T) {
	if kps := NewFAST().detect(constantImage(40, 40, 128), nil); len(kps) != 0 {
		t.Fatalf("detected %d corners on a flat image", len(kps))
	}
}

func TestFASTBrightnessOffsetInvariance(t *testing.T) {
	im := SynthesizeImage(SceneTextured, 64, 64, 5)
	kps1 := NewFAST().detect(im, nil)
	shifted := im.Clone()
	for i := range shifted.Pix {
		shifted.Pix[i] += 10 // uniform brightness offset
	}
	kps2 := NewFAST().detect(shifted, nil)
	if len(kps1) != len(kps2) {
		t.Fatalf("corner count changed under brightness offset: %d -> %d", len(kps1), len(kps2))
	}
	for i := range kps1 {
		if kps1[i].X != kps2[i].X || kps1[i].Y != kps2[i].Y {
			t.Fatalf("corner %d moved under brightness offset", i)
		}
	}
}

func TestArcLen(t *testing.T) {
	cases := []struct {
		bits []bool
		want int
	}{
		{make([]bool, 16), 0},
		{[]bool{true, true, false, true}, 3}, // wraps: [3],[0],[1]
		{[]bool{true, true, true, true}, 4},
	}
	for i, c := range cases {
		if got := arcLen(c.bits); got != c.want {
			t.Errorf("case %d: arcLen = %d, want %d", i, got, c.want)
		}
	}
}

func TestHoGDescriptorShape(t *testing.T) {
	h := NewHoG()
	im := SynthesizeImage(SceneTextured, 96, 96, 3)
	desc := h.Describe(im, nil)
	cells := 96 / h.CellSize
	wantBlocks := (cells - h.Block + 1) * (cells - h.Block + 1)
	if len(desc) != wantBlocks {
		t.Fatalf("blocks = %d, want %d", len(desc), wantBlocks)
	}
	for i, d := range desc {
		if len(d) != h.Block*h.Block*h.Bins {
			t.Fatalf("block %d has %d dims", i, len(d))
		}
		var ss float64
		for _, v := range d {
			ss += v * v
		}
		if ss > 1+1e-6 {
			t.Fatalf("block %d norm² %v > 1 after L2 normalization", i, ss)
		}
	}
}

func TestSIFTFindsBlobs(t *testing.T) {
	im := constantImage(96, 96, 100)
	drawBlob(im, 30, 30, 4, 120)
	drawBlob(im, 64, 60, 5, -90)
	kps, descs := NewSIFT().DetectAndDescribe(im, nil)
	if len(kps) == 0 {
		t.Fatal("no keypoints on blob image")
	}
	if len(descs) != len(kps) {
		t.Fatalf("%d descriptors for %d keypoints", len(descs), len(kps))
	}
	for i, d := range descs {
		if len(d) != 128 {
			t.Fatalf("descriptor %d has %d dims, want 128", i, len(d))
		}
	}
}

func TestSURFFindsBlobs(t *testing.T) {
	im := constantImage(96, 96, 100)
	drawBlob(im, 48, 48, 6, 150)
	kps, descs := NewSURF().DetectAndDescribe(im, nil)
	if len(kps) == 0 {
		t.Fatal("no SURF keypoints on blob image")
	}
	for i, d := range descs {
		if len(d) != 64 {
			t.Fatalf("descriptor %d has %d dims, want 64", i, len(d))
		}
	}
}

func TestORBDescriptors(t *testing.T) {
	im := SynthesizeImage(SceneTextured, 96, 96, 11)
	kps, descs := NewORB().DetectAndDescribe(im, nil)
	if len(kps) == 0 {
		t.Fatal("ORB found no keypoints on textured scene")
	}
	if len(descs) != len(kps) {
		t.Fatalf("%d descriptors for %d keypoints", len(descs), len(kps))
	}
	for i, d := range descs {
		if len(d) != 4 {
			t.Fatalf("descriptor %d has %d words, want 4 (256 bits)", i, len(d))
		}
	}
	// Orientation must be a valid angle.
	for i, kp := range kps {
		if math.IsNaN(kp.Orientation) || kp.Orientation < -math.Pi || kp.Orientation > math.Pi {
			t.Fatalf("keypoint %d orientation %v", i, kp.Orientation)
		}
	}
}

func TestFaceDetRespondsToFaces(t *testing.T) {
	f := NewFaceDet()
	faces := SynthesizeImage(SceneFaces, 96, 96, 21)
	flat := constantImage(96, 96, 128)
	nFaces := len(f.Detect(faces, nil))
	nFlat := len(f.Detect(flat, nil))
	if nFaces <= nFlat {
		t.Fatalf("cascade fired %d times on faces but %d on flat image", nFaces, nFlat)
	}
}

func TestSVMTrainsAboveChance(t *testing.T) {
	s := NewSVM()
	images := []*Image{
		SynthesizeImage(SceneTextured, 96, 96, 31),
		SynthesizeImage(SceneTextured, 96, 96, 32),
	}
	summary, err := s.run(images, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := summary["trainAccuracy"]; acc <= 0.6 {
		t.Fatalf("training accuracy %v at or below chance", acc)
	}
	if sv := summary["supportVectors"]; sv <= 0 {
		t.Fatalf("no support vectors (%v)", sv)
	}
}

func TestKNNClassifiesAllQueries(t *testing.T) {
	k := NewKNN()
	images := []*Image{SynthesizeImage(SceneObjects, 96, 96, 41)}
	summary, err := k.run(images, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := summary["queries"]; q <= 0 {
		t.Fatalf("no queries classified (%v)", q)
	}
}

func TestObjRecMatches(t *testing.T) {
	o := NewObjRec()
	images := []*Image{SynthesizeImage(SceneObjects, 96, 96, 51)}
	summary, err := o.run(images, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := summary["matches"]; !ok {
		t.Fatal("no match statistics reported")
	}
}

func TestSynthesizeImageDeterministic(t *testing.T) {
	a := SynthesizeImage(SceneTextured, 32, 32, 9)
	b := SynthesizeImage(SceneTextured, 32, 32, 9)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := SynthesizeImage(SceneTextured, 32, 32, 10)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthesizeImagePixelRange(t *testing.T) {
	for _, kind := range []SceneKind{SceneTextured, SceneFaces, SceneObjects} {
		im := SynthesizeImage(kind, 48, 48, 77)
		for i, v := range im.Pix {
			if v < 0 || v > 255 {
				t.Fatalf("kind %v pixel %d = %v outside [0,255]", kind, i, v)
			}
		}
	}
}

func TestImageAtClamped(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 1)
	im.Set(3, 3, 9)
	if im.AtClamped(-5, -5) != 1 {
		t.Error("negative coordinates not clamped to origin")
	}
	if im.AtClamped(100, 100) != 9 {
		t.Error("overflow coordinates not clamped to corner")
	}
}
