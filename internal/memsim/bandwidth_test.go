package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWaterfillUncongested(t *testing.T) {
	shares := Waterfill(100, []float64{10, 20, 30})
	for i, s := range shares {
		if s != 100 {
			t.Errorf("share[%d] = %v, want full pipe", i, s)
		}
	}
}

func TestWaterfillEqualSplitWhenAllHeavy(t *testing.T) {
	shares := Waterfill(90, []float64{100, 100, 100})
	for i, s := range shares {
		if math.Abs(s-30) > 1e-9 {
			t.Errorf("share[%d] = %v, want 30", i, s)
		}
	}
}

func TestWaterfillLightDemandSatisfied(t *testing.T) {
	// Light client (5) keeps its demand; the two heavy ones split the rest.
	shares := Waterfill(65, []float64{5, 100, 100})
	if shares[0] != 5 {
		t.Errorf("light share = %v, want 5", shares[0])
	}
	if math.Abs(shares[1]-30) > 1e-9 || math.Abs(shares[2]-30) > 1e-9 {
		t.Errorf("heavy shares = %v, %v, want 30 each", shares[1], shares[2])
	}
}

func TestWaterfillZeroDemand(t *testing.T) {
	shares := Waterfill(10, []float64{0, 100})
	if shares[0] != 10 {
		t.Errorf("zero-demand client share = %v, want full pipe", shares[0])
	}
	if shares[1] != 10 {
		t.Errorf("sole consumer share = %v, want 10", shares[1])
	}
}

func TestWaterfillDegenerate(t *testing.T) {
	if s := Waterfill(0, []float64{1}); s[0] != 0 {
		t.Error("zero total should allocate nothing")
	}
	if s := Waterfill(10, nil); len(s) != 0 {
		t.Error("empty demand should return empty shares")
	}
}

func TestWaterfillConservation(t *testing.T) {
	// Property: consumed bandwidth (min of share and demand) never
	// exceeds the pipe when congested, and light clients are never
	// squeezed below heavier ones' allocations.
	if err := quick.Check(func(totalRaw uint16, demandRaw []uint16) bool {
		if len(demandRaw) == 0 {
			return true
		}
		total := float64(totalRaw%1000) + 1
		demand := make([]float64, len(demandRaw))
		var sum float64
		for i, d := range demandRaw {
			demand[i] = float64(d % 500)
			sum += demand[i]
		}
		shares := Waterfill(total, demand)
		var consumed float64
		for i := range shares {
			c := math.Min(shares[i], demand[i])
			consumed += c
		}
		if sum <= total {
			return math.Abs(consumed-sum) < 1e-6
		}
		return consumed <= total*(1+1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
