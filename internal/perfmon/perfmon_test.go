package perfmon

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlowdown(t *testing.T) {
	s, err := AppPerf{IPCAlone: 2, IPCShared: 1}.Slowdown()
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.5 {
		t.Fatalf("slowdown %v", s)
	}
	if _, err := (AppPerf{IPCAlone: 0, IPCShared: 1}).Slowdown(); err == nil {
		t.Error("zero isolated IPC accepted")
	}
	if _, err := (AppPerf{IPCAlone: 1, IPCShared: 0}).Slowdown(); err == nil {
		t.Error("zero shared IPC accepted")
	}
}

func TestFairnessEquation(t *testing.T) {
	// Two tasks slowing to 0.5 and 0.8: fairness = 0.5/0.8.
	f, err := Fairness([]AppPerf{
		{IPCAlone: 2, IPCShared: 1}, // slowdown 0.5
		{IPCAlone: 5, IPCShared: 4}, // slowdown 0.8
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.625) > 1e-12 {
		t.Fatalf("fairness %v, want 0.625", f)
	}
}

func TestFairnessEqualSlowdownsIsOne(t *testing.T) {
	f, err := Fairness([]AppPerf{
		{IPCAlone: 4, IPCShared: 2},
		{IPCAlone: 10, IPCShared: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("fairness %v, want 1", f)
	}
}

func TestFairnessSingleTask(t *testing.T) {
	f, err := Fairness([]AppPerf{{IPCAlone: 3, IPCShared: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("single-task fairness %v", f)
	}
}

func TestFairnessErrors(t *testing.T) {
	if _, err := Fairness(nil); err == nil {
		t.Error("empty bag accepted")
	}
	if _, err := Fairness([]AppPerf{{IPCAlone: 0, IPCShared: 1}}); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestFairnessBounds(t *testing.T) {
	// Property: for any valid bag, fairness lies in (0, 1].
	if err := quick.Check(func(raw [][2]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		bag := make([]AppPerf, 0, len(raw))
		for _, r := range raw {
			alone := float64(r[0]%1000) + 1
			shared := float64(r[1]%1000) + 1
			bag = append(bag, AppPerf{IPCAlone: alone, IPCShared: shared})
		}
		f, err := Fairness(bag)
		if err != nil {
			return false
		}
		return f > 0 && f <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]AppPerf{
		{IPCAlone: 2, IPCShared: 1}, // 0.5
		{IPCAlone: 4, IPCShared: 3}, // 0.75
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1.25) > 1e-12 {
		t.Fatalf("weighted speedup %v", ws)
	}
	if _, err := WeightedSpeedup(nil); err == nil {
		t.Error("empty bag accepted")
	}
	if _, err := WeightedSpeedup([]AppPerf{{}}); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestANTT(t *testing.T) {
	v, err := ANTT([]AppPerf{
		{IPCAlone: 2, IPCShared: 1}, // slowdown 0.5 -> NTT 2
		{IPCAlone: 3, IPCShared: 3}, // slowdown 1.0 -> NTT 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.5) > 1e-12 {
		t.Fatalf("ANTT %v", v)
	}
	if _, err := ANTT(nil); err == nil {
		t.Error("empty bag accepted")
	}
}
