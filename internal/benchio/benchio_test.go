package benchio

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendAndLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")

	// Missing file loads as an empty document.
	sb, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Machine != "" || len(sb.Entries) != 0 {
		t.Fatalf("missing file loaded as %+v, want empty", sb)
	}

	e1 := ServeEntry{
		Label: "solo", Date: "2026-08-08T00:00:00Z", Target: "replica",
		Replicas: 1, K: 2, QPS: 200, Concurrency: 32, DurationSec: 10,
		Requests:     2000,
		StatusCounts: map[string]int64{"200": 1990, "503": 10},
		P50Ms:        1.2, P99Ms: 4.5, P999Ms: 9.1,
		ThroughputRPS: 199, ThroughputPerCore: 24.9, ShedRate: 0.005,
	}
	if err := Append(path, "test-machine", 8, e1); err != nil {
		t.Fatal(err)
	}
	// Second append must keep the first entry and the original metadata,
	// even when called with different machine/cores arguments.
	e2 := e1
	e2.Label = "tier3"
	e2.Target = "router"
	e2.Replicas = 3
	if err := Append(path, "other-machine", 99, e2); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != "test-machine" || got.Cores != 8 {
		t.Errorf("metadata = %q/%d, want test-machine/8 (first writer wins)", got.Machine, got.Cores)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(got.Entries))
	}
	if got.Entries[0].Label != "solo" || got.Entries[1].Label != "tier3" {
		t.Errorf("entry order = %q,%q, want solo,tier3", got.Entries[0].Label, got.Entries[1].Label)
	}
	if got.Entries[0].StatusCounts["503"] != 10 {
		t.Errorf("status counts lost in round trip: %+v", got.Entries[0].StatusCounts)
	}

	// The file must be valid indented JSON ending in a newline (it gets
	// committed and diffed).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "{\n  \"machine\"") || !strings.HasSuffix(string(raw), "\n") {
		t.Errorf("file is not indented JSON with trailing newline:\n%s", raw)
	}
}

func TestComputedErrorRateAndAvailability(t *testing.T) {
	cases := []struct {
		name     string
		counts   map[string]int64
		wantRate float64
	}{
		{"all-ok", map[string]int64{"200": 100}, 0},
		// 503 is deliberate backpressure, not a hard failure: it gates
		// via ShedRate, never via the availability bar.
		{"shed-only", map[string]int64{"200": 90, "503": 10}, 0},
		{"client-errors", map[string]int64{"200": 90, "400": 10}, 0},
		{"transport", map[string]int64{"200": 90, "0": 10}, 0.1},
		{"server-5xx", map[string]int64{"200": 95, "500": 3, "502": 2}, 0.05},
		// Client-side drops never left the loadgen; they are excluded
		// from both numerator and denominator.
		{"drops-excluded", map[string]int64{"200": 99, "0": 1, "dropped": 900}, 0.01},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		e := ServeEntry{StatusCounts: c.counts}
		if got := e.ComputedErrorRate(); math.Abs(got-c.wantRate) > 1e-12 {
			t.Errorf("%s: error rate = %v, want %v", c.name, got, c.wantRate)
		}
		if got := e.ComputedAvailability(); math.Abs(got-(1-c.wantRate)) > 1e-12 {
			t.Errorf("%s: availability = %v, want %v", c.name, got, 1-c.wantRate)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestQuantile(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty slice quantile is not NaN")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample p99 = %v, want 7", got)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.99, 9.91},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// Quantiles sorts in place and agrees with Quantile on sorted input.
	samples := []float64{9, 1, 5, 3, 7, 2, 8, 4, 10, 6}
	p50, p99, p999 := Quantiles(samples)
	if p50 != 5.5 {
		t.Errorf("Quantiles p50 = %v, want 5.5", p50)
	}
	if math.Abs(p99-9.91) > 1e-9 || p999 <= p99-1e-9 {
		t.Errorf("Quantiles p99/p999 = %v/%v", p99, p999)
	}
	if !sort_IsSorted(samples) {
		t.Error("Quantiles did not sort its input")
	}
}

func sort_IsSorted(s []float64) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
