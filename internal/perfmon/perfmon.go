// Package perfmon derives the runtime metrics the paper collects with Linux
// perf: per-application IPC in isolated and shared executions, slowdowns,
// and the fairness metric of Equation 2 that quantifies how evenly a bag of
// co-running tasks degrades on the multicore server.
package perfmon

import (
	"errors"
	"fmt"
)

// AppPerf holds one application's IPC measured alone and in the shared run.
type AppPerf struct {
	IPCAlone  float64
	IPCShared float64
}

// Slowdown returns IPCshared/IPCalone — 1.0 means unaffected, smaller means
// the app lost performance to contention.
func (a AppPerf) Slowdown() (float64, error) {
	if a.IPCAlone <= 0 {
		return 0, errors.New("perfmon: non-positive isolated IPC")
	}
	if a.IPCShared <= 0 {
		return 0, errors.New("perfmon: non-positive shared IPC")
	}
	return a.IPCShared / a.IPCAlone, nil
}

// Fairness implements Equation 2 of the paper for a bag of tasks:
//
//	fairness_T = min over task pairs (i, j) of (slowdown_i / slowdown_j)
//
// i.e. the minimum slowdown divided by the maximum slowdown. It is 1 when
// every task degrades equally and approaches 0 when contention is lopsided.
// A single-task bag has fairness 1 by definition.
func Fairness(apps []AppPerf) (float64, error) {
	if len(apps) == 0 {
		return 0, errors.New("perfmon: empty bag")
	}
	minS, maxS := 0.0, 0.0
	for i, a := range apps {
		s, err := a.Slowdown()
		if err != nil {
			return 0, fmt.Errorf("perfmon: task %d: %w", i, err)
		}
		if i == 0 || s < minS {
			minS = s
		}
		if i == 0 || s > maxS {
			maxS = s
		}
	}
	if maxS == 0 {
		return 0, errors.New("perfmon: zero maximum slowdown")
	}
	return minS / maxS, nil
}

// WeightedSpeedup returns the sum of per-task slowdowns (a.k.a. system
// throughput, STP): n means no interference at all, values below n measure
// lost throughput. A standard companion metric to fairness in the
// multi-application scheduling literature.
func WeightedSpeedup(apps []AppPerf) (float64, error) {
	if len(apps) == 0 {
		return 0, errors.New("perfmon: empty bag")
	}
	var sum float64
	for i, a := range apps {
		s, err := a.Slowdown()
		if err != nil {
			return 0, fmt.Errorf("perfmon: task %d: %w", i, err)
		}
		sum += s
	}
	return sum, nil
}

// ANTT returns the average normalized turnaround time: the mean of inverse
// slowdowns. 1 means no interference; larger is worse.
func ANTT(apps []AppPerf) (float64, error) {
	if len(apps) == 0 {
		return 0, errors.New("perfmon: empty bag")
	}
	var sum float64
	for i, a := range apps {
		s, err := a.Slowdown()
		if err != nil {
			return 0, fmt.Errorf("perfmon: task %d: %w", i, err)
		}
		sum += 1 / s
	}
	return sum / float64(len(apps)), nil
}
