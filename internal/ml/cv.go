package ml

import (
	"fmt"

	"mapc/internal/xrand"
)

// ModelFactory builds a fresh, unfitted model for each cross-validation
// fold, so folds never leak state through a shared model.
type ModelFactory func() Regressor

// GroupResult is the outcome of evaluating one held-out group.
type GroupResult struct {
	// Group is the held-out label (a benchmark name in Figure 4).
	Group string
	// MeanRelErr is the mean relative error (%) over the group's points.
	MeanRelErr float64
	// PerPoint holds the individual relative errors (%).
	PerPoint []float64
	// Truth and Pred hold the raw target/prediction pairs.
	Truth, Pred []float64
}

// LeaveOneGroupOut runs the paper's Figure-4 protocol: for every distinct
// group (benchmark), train on all other groups and test on the held-out
// one. It returns per-group results in first-appearance order.
func LeaveOneGroupOut(d *Dataset, factory ModelFactory) ([]GroupResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Groups == nil {
		return nil, fmt.Errorf("ml: LOOCV requires group labels")
	}
	var out []GroupResult
	for _, g := range d.GroupNames() {
		train, test, err := d.SplitByGroup(g)
		if err != nil {
			return nil, err
		}
		model := factory()
		if err := model.Fit(train); err != nil {
			return nil, fmt.Errorf("ml: group %q: %w", g, err)
		}
		pred, err := model.PredictAll(test.X)
		if err != nil {
			return nil, fmt.Errorf("ml: group %q: %w", g, err)
		}
		perPoint, err := RelativeErrors(test.Y, pred)
		if err != nil {
			return nil, fmt.Errorf("ml: group %q: %w", g, err)
		}
		out = append(out, GroupResult{
			Group:      g,
			MeanRelErr: Mean(perPoint),
			PerPoint:   perPoint,
			Truth:      test.Y,
			Pred:       pred,
		})
	}
	return out, nil
}

// MeanOverGroups returns the mean of the per-group mean relative errors —
// the "9%" summary statistic of Figure 4.
func MeanOverGroups(results []GroupResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var s float64
	for _, r := range results {
		s += r.MeanRelErr
	}
	return s / float64(len(results))
}

// KFold evaluates the model with k-fold cross-validation (shuffled
// deterministically by seed) and returns the per-fold mean relative errors.
func KFold(d *Dataset, k int, seed uint64, factory ModelFactory) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || k > d.Len() {
		return nil, fmt.Errorf("ml: k=%d folds invalid for %d points", k, d.Len())
	}
	perm := xrand.New(seed).Perm(d.Len())
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	out := make([]float64, k)
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		model := factory()
		if err := model.Fit(d.Subset(trainIdx)); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		test := d.Subset(folds[f])
		pred, err := model.PredictAll(test.X)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		mre, err := MeanRelativeError(test.Y, pred)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		out[f] = mre
	}
	return out, nil
}

// HoldOut trains on an (1-testFraction) share and evaluates on the rest —
// the 80/20 protocol of Section V-D2. It returns the test mean relative
// error.
func HoldOut(d *Dataset, testFraction float64, seed uint64, factory ModelFactory) (float64, error) {
	train, test, err := d.Split(testFraction, seed)
	if err != nil {
		return 0, err
	}
	model := factory()
	if err := model.Fit(train); err != nil {
		return 0, err
	}
	pred, err := model.PredictAll(test.X)
	if err != nil {
		return 0, err
	}
	return MeanRelativeError(test.Y, pred)
}
