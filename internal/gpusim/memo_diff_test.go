package gpusim

import (
	"math/rand"
	"reflect"
	"testing"

	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// TestMemoizedRunsAreBitIdentical is the differential oracle for the
// simulation memo on the GPU side: randomized sequences of isolated and
// shared MPS runs over a shared workload pool produce byte-identical
// []Result with the memo off, at an ample budget, and at a tiny budget
// that forces constant eviction and recomputation. Shared runs exercise
// the memoized-stream path (TLB flushes and cross-client L2 interference
// replayed over cached streams); isolated runs exercise the whole-run
// memo.
func TestMemoizedRunsAreBitIdentical(t *testing.T) {
	cfg := DefaultConfig()

	pool := []*trace.Workload{
		memKernel("a"),
		computeKernel("b"),
		memKernel("c"),
	}

	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"ample", 64 << 20},
		{"eviction-pressure", 1 << 14},
	} {
		t.Run(tc.name, func(t *testing.T) {
			memo := simcache.MustNew(tc.budget)
			rng := rand.New(rand.NewSource(11))
			for bag := 0; bag < 40; bag++ {
				var ws []*trace.Workload
				for _, wi := range rng.Perm(len(pool))[:1+rng.Intn(2)] {
					ws = append(ws, pool[wi])
				}
				cold, err := Run(cfg, ws)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := RunMemo(cfg, memo, ws)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cold, warm) {
					t.Fatalf("bag %d (%d clients): memoized results diverge from cold run\ncold: %+v\nwarm: %+v",
						bag, len(ws), cold, warm)
				}
			}
			st := memo.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("memo never exercised: %+v", st)
			}
			if tc.name == "eviction-pressure" && st.Evictions == 0 {
				t.Fatalf("eviction-pressure budget produced no evictions: %+v", st)
			}
		})
	}
}
