// Package xrand provides a small, fast, deterministic PRNG (xorshift64*)
// shared by every stochastic component in the repository. Using one seeded
// generator type everywhere keeps all simulations, image synthesis, and
// dataset shuffles bit-for-bit reproducible across runs and platforms.
package xrand

// Rand is a xorshift64* generator. The zero value is not valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal variate using the sum
// of twelve uniforms (Irwin-Hall). The approximation is more than adequate
// for synthetic workload noise and keeps the generator allocation-free.
func (r *Rand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
