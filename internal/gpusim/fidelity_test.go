package gpusim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// Fidelity-tier tests for RunMemoSharesFidelity, centred on the satellite
// requirement: under extreme share skew the mixed tier must degrade to
// exact simulation (bit-identical results) rather than emit out-of-bound
// analytic estimates.

func TestFidelityExactDelegatesBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{computeKernel("a"), memKernel("b")}
	want, err := RunMemoShares(cfg, nil, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range []phasesum.Fidelity{"", phasesum.Exact} {
		got, kind, err := RunMemoSharesFidelity(cfg, nil, ws, nil, fid)
		if err != nil {
			t.Fatal(err)
		}
		if !kind.UsedExact {
			t.Fatalf("fidelity %q did not report the exact simulator", fid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fidelity %q diverged from RunMemoShares", fid)
		}
	}
}

func TestFidelitySingleClientAlwaysExact(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{memKernel("solo")}
	want, err := RunMemoShares(cfg, nil, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range []phasesum.Fidelity{phasesum.Mixed, phasesum.Fast} {
		got, kind, err := RunMemoSharesFidelity(cfg, nil, ws, nil, fid)
		if err != nil {
			t.Fatal(err)
		}
		if !kind.UsedExact || !reflect.DeepEqual(got, want) {
			t.Fatalf("fidelity %q: isolated run must be the exact path", fid)
		}
	}
}

// TestFidelityMixedDegradesUnderShareSkew: a 0.99/0.01 split leaves the
// minority client 0.4 of an SM — outside the analytic model's regime — so
// mixed must fall back to exact simulation, bit-identically.
func TestFidelityMixedDegradesUnderShareSkew(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(64 << 20)
	ws := []*trace.Workload{computeKernel("big"), memKernel("small")}
	shares := []float64{0.99, 0.01}

	want, err := RunMemoShares(cfg, memo, ws, shares)
	if err != nil {
		t.Fatal(err)
	}
	got, kind, err := RunMemoSharesFidelity(cfg, memo, ws, shares, phasesum.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !kind.UsedExact {
		t.Fatal("mixed fidelity trusted the model on a sub-SM partition")
	}
	if kind.Fallback != phasesum.FallbackSubSMShare {
		t.Fatalf("fallback reason %q, want %q", kind.Fallback, phasesum.FallbackSubSMShare)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed fallback diverged from the exact simulator")
	}
}

// checkSane asserts every per-app result is finite, positive and with miss
// ratios inside [0,1] — the "no out-of-bound estimates" half of the
// satellite, applied to the tiers that do use the model.
func checkSane(t *testing.T, results []Result, exact []Result) {
	t.Helper()
	for i, r := range results {
		if r.TimeSec <= 0 || math.IsNaN(r.TimeSec) || math.IsInf(r.TimeSec, 0) {
			t.Fatalf("app %d: bad time %v", i, r.TimeSec)
		}
		if r.L2MissRate < 0 || r.L2MissRate > 1 || r.TLBMissRate < 0 || r.TLBMissRate > 1 {
			t.Fatalf("app %d: miss rates out of [0,1]: l2=%v tlb=%v", i, r.L2MissRate, r.TLBMissRate)
		}
		if ratio := r.TimeSec / exact[i].TimeSec; ratio < 0.5 || ratio > 2 {
			t.Fatalf("app %d: analytic time %v vs exact %v (ratio %.2f)", i, r.TimeSec, exact[i].TimeSec, ratio)
		}
		if r.SMShare != exact[i].SMShare {
			t.Fatalf("app %d: SMShare %v vs exact %v", i, r.SMShare, exact[i].SMShare)
		}
	}
}

func TestFidelityFastBoundedUnderShareSkew(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(64 << 20)
	ws := []*trace.Workload{computeKernel("big"), memKernel("small")}
	shares := []float64{0.99, 0.01}

	exact, err := RunMemoShares(cfg, memo, ws, shares)
	if err != nil {
		t.Fatal(err)
	}
	fast, kind, err := RunMemoSharesFidelity(cfg, memo, ws, shares, phasesum.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if kind.UsedExact {
		t.Fatal("fast fidelity must not fall back to exact")
	}
	checkSane(t, fast, exact)
}

// TestFidelityK8Uniform: eight uniform clients (5 SMs each — inside the
// model's regime). Whichever way the confidence gate resolves, mixed must
// either be bit-identical to exact (fallback) or sane-and-bounded
// (trusted model); fast must be sane-and-bounded.
func TestFidelityK8Uniform(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(256 << 20)
	ws := make([]*trace.Workload, 8)
	for i := range ws {
		if i%2 == 0 {
			ws[i] = computeKernel(fmt.Sprintf("c%d", i))
		} else {
			ws[i] = memKernel(fmt.Sprintf("m%d", i))
		}
	}

	exact, err := RunMemoShares(cfg, memo, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	mixed, kind, err := RunMemoSharesFidelity(cfg, memo, ws, nil, phasesum.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if kind.UsedExact {
		if !reflect.DeepEqual(mixed, exact) {
			t.Fatal("mixed fallback diverged from the exact simulator at k=8")
		}
	} else {
		checkSane(t, mixed, exact)
	}
	fast, kind, err := RunMemoSharesFidelity(cfg, memo, ws, nil, phasesum.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if kind.UsedExact {
		t.Fatal("fast fidelity must not fall back to exact")
	}
	checkSane(t, fast, exact)
}

func TestFidelityValidatesLikeExact(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{computeKernel("a"), memKernel("b")}
	if _, _, err := RunMemoSharesFidelity(cfg, nil, ws, []float64{1}, phasesum.Fast); err == nil {
		t.Error("share-length mismatch accepted")
	}
	if _, _, err := RunMemoSharesFidelity(cfg, nil, ws, []float64{1, math.NaN()}, phasesum.Fast); err == nil {
		t.Error("NaN share accepted")
	}
	if _, _, err := RunMemoSharesFidelity(cfg, nil, nil, nil, phasesum.Fast); err == nil {
		t.Error("empty workload list accepted")
	}
}
