// Package parallel provides the bounded worker pool underlying the
// measurement engine: deterministic, index-addressed fan-out used by corpus
// generation (internal/dataset), LOOCV fold training (internal/core), and
// the per-benchmark scaling sweeps (internal/experiments).
//
// The pool preserves serial semantics exactly: results are written by
// index, so output order never depends on goroutine scheduling, and the
// error returned is the one a serial loop would have returned (the error at
// the lowest index). Callers can therefore flip between workers=1 and
// workers=N and observe bit-for-bit identical outputs.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered inside a ForEach task, converted into an
// ordinary error so one crashing measurement cannot tear down the whole
// process (the corpus generator, an HTTP server, ...). It records which
// index panicked, the recovered value, and the goroutine stack captured at
// the recovery point, so the failure is as debuggable as the raw panic
// would have been.
type PanicError struct {
	// Index is the ForEach index whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured inside the
	// deferred recover (it includes the frames that led to the panic).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it is itself an error (e.g. a
// faultinject.*Panic or a runtime error), so errors.Is/As see through the
// recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// call invokes fn(i), converting a panic into a *PanicError. This is the
// single recovery point for both the serial and pooled paths, so the two
// return identical errors for the same panic.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Resolve maps a configured worker count to an effective one: values <= 0
// select runtime.NumCPU() (the default), anything else is returned as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of workers.
//
// Semantics:
//   - workers <= 0 selects runtime.NumCPU(); workers == 1 runs the exact
//     serial loop on the calling goroutine (the legacy path: no goroutines,
//     no synchronization).
//   - Indices are claimed in ascending order, so if fn(e) fails, every
//     index < e has already been claimed; combined with returning the
//     lowest-index error, the error value matches what the serial loop
//     would have produced for deterministic fn.
//   - After the first failure no new indices are claimed (in-flight calls
//     finish), so a failing run does not pay for the whole sweep.
//   - A panic inside fn(i) is contained: it is recovered into a
//     *PanicError carrying the index, value and stack, and participates in
//     the lowest-index-error rule exactly like a returned error. The pool
//     never lets one crashing task kill the process. Non-panicking runs are
//     bit-identical to the pre-recovery implementation (the recovery is a
//     deferred no-op on the success path).
//
// fn must be safe for concurrent invocation when workers > 1; writes to
// shared results must be disjoint per index.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Legacy serial path: identical to the pre-engine loops,
		// including stopping at the first error (a recovered panic counts
		// as that index's error).
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := call(fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
