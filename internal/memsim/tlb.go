package memsim

import "fmt"

// PageSize is the translation granule used by the TLB model.
const PageSize = 4096

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement and per-source statistics. GPUs share TLBs across MPS clients
// (Section II of the paper), so entries from different applications evict
// one another; Flush models the context-switch flushes the paper identifies
// as a major multi-application overhead.
type TLB struct {
	entries int
	pages   []uint64
	srcs    []int
	valid   []bool
	lru     []uint64
	clock   uint64
	stats   []CacheStats
	flushes uint64
}

// NewTLB builds a TLB with the given number of entries serving nSources.
func NewTLB(entries, nSources int) (*TLB, error) {
	if entries <= 0 || nSources <= 0 {
		return nil, fmt.Errorf("memsim: invalid TLB config (entries=%d sources=%d)", entries, nSources)
	}
	return &TLB{
		entries: entries,
		pages:   make([]uint64, entries),
		srcs:    make([]int, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
		stats:   make([]CacheStats, nSources),
	}, nil
}

// Access translates addr for source, returning true on a TLB hit.
// Different sources never share translations (separate address spaces under
// MPS), so the (source, page) pair is the lookup key.
func (t *TLB) Access(source int, addr uint64) bool {
	page := addr / PageSize
	t.clock++
	t.stats[source].Accesses++
	lruIdx, lruClock := 0, ^uint64(0)
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page && t.srcs[i] == source {
			t.lru[i] = t.clock
			return true
		}
		if t.lru[i] < lruClock {
			lruClock = t.lru[i]
			lruIdx = i
		}
	}
	t.stats[source].Misses++
	t.pages[lruIdx] = page
	t.srcs[lruIdx] = source
	t.valid[lruIdx] = true
	t.lru[lruIdx] = t.clock
	return false
}

// Flush invalidates every entry, modelling a full TLB shootdown at an MPS
// context boundary, and counts the event.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
		t.lru[i] = 0
	}
	t.flushes++
}

// Stats returns per-source access statistics.
func (t *TLB) Stats(source int) CacheStats { return t.stats[source] }

// Flushes returns how many full flushes occurred.
func (t *TLB) Flushes() uint64 { return t.flushes }

// Entries returns the TLB capacity in entries.
func (t *TLB) Entries() int { return t.entries }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.lru[i] = 0
	}
	for i := range t.stats {
		t.stats[i] = CacheStats{}
	}
	t.clock = 0
	t.flushes = 0
}
