package serve

import (
	"fmt"
	"runtime/debug"
	"sort"

	"mapc/internal/dataset"
	"mapc/internal/phasesum"
	"mapc/internal/simcache"
)

// DefaultFeatureCacheMB bounds the cross-request feature cache. A cached
// bag costs ~(8*width + key) bytes, so even at k=8 (85 features, ~100-byte
// keys) 64 MiB holds ~80k distinct bags — far past any realistic hot set,
// while long-tail k-bag traffic (the keyspace is combinatorial in the
// benchmark registry) can no longer grow the map without bound.
const DefaultFeatureCacheMB = 64

// featureDomain namespaces feature-cache keys inside the shared
// simcache.Key space. degradedDomain holds the brownout fast-tier
// entries: a separate namespace so an analytic answer can never be
// returned to (or snapshotted for) an exact-tier request.
const (
	featureDomain  = "serve/features"
	degradedDomain = "serve/features/fast"
)

// recoveredPanic is a panic caught inside the feature cache's compute
// path, converted to an error so a crashing measurement answers one 500
// instead of killing the server — and so the entry is never published
// rather than poisoned (see featureCache.get).
type recoveredPanic struct {
	Value any
	Stack []byte
}

func (p *recoveredPanic) Error() string {
	return fmt.Sprintf("serve: feature computation panicked: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes error panic values to errors.Is/As (mirrors
// parallel.PanicError).
func (p *recoveredPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// featureValue is one cached bag: its raw feature vector and fairness.
// Immutable once published (the simcache contract); PredictRaw copies
// before scaling, so sharing the slice across requests is safe.
type featureValue struct {
	x        []float64
	fairness float64
}

// sizeBytes is the caller-reported resident size charged against the LRU
// budget: the vector, the key string, and a fixed allowance for the entry
// bookkeeping (simcache entry + map cell + list links).
func (v *featureValue) sizeBytes(key string) int64 {
	return int64(8*len(v.x)) + int64(len(key)) + 128
}

// featureCache memoizes raw feature vectors per bag across requests, built
// on internal/simcache: a byte-bounded, LRU-evicting singleflight memo.
// Each bag's shared-CPU fairness simulation runs exactly once no matter
// how many concurrent requests ask for the same bag; when the resident
// bytes exceed the budget the least-recently-used bags are evicted (they
// cost re-simulation on next sight, never a wrong answer). The generator
// underneath additionally memoizes each member's isolated runs, so even a
// miss on a new combination of known members only pays for the shared run.
type featureCache struct {
	compute func(bag []dataset.Member) ([]float64, float64, error)
	// computeFast is the brownout miss path: the generator's fast
	// analytic fidelity tier. Nil when the cache was built without a
	// generator (stub tests); getDegraded then falls back to compute.
	computeFast func(bag []dataset.Member) ([]float64, float64, error)
	// canonical collapses every permutation of a bag's members into one
	// entry. Only safe when the generator's CanonicalOrder sorts members
	// itself, making BagFeatures permutation-invariant.
	canonical bool
	// fill, when set, is consulted on a miss before simulating: the peer
	// fill hook returns a bit-exact vector computed by another replica
	// (JSON float64 round-trips exactly), or ok=false to fall through to
	// the local simulation. It runs inside the singleflight slot, so
	// concurrent misses on one bag cost one peer probe.
	fill func(key string) (x []float64, fairness float64, ok bool)
	// shares qualifies every key with the generator's MPS share profile
	// (dataset Config.SharesLabel; "" for the equal split). Features are
	// share-independent today, but the share vector is generator state
	// that changes measured co-runs, so two profiles must never share a
	// cache namespace — the same reasoning that keeps degraded entries
	// out of the exact domain.
	shares string

	lru *simcache.Cache
}

// newFeatureCache builds the cache over gen with a budget of budgetMB MiB
// (0 means DefaultFeatureCacheMB; New validates negatives before here).
func newFeatureCache(gen *dataset.Generator, budgetMB int) *featureCache {
	if budgetMB <= 0 {
		budgetMB = DefaultFeatureCacheMB
	}
	return &featureCache{
		compute: gen.BagFeatures,
		computeFast: func(bag []dataset.Member) ([]float64, float64, error) {
			return gen.BagFeaturesFidelity(bag, phasesum.Fast)
		},
		canonical: gen.Config().CanonicalOrder,
		shares:    gen.Config().SharesLabel(),
		lru:       simcache.MustNew(int64(budgetMB) << 20),
	}
}

// newStubFeatureCache is the test constructor: an arbitrary compute
// function and an explicit byte budget, no generator required.
func newStubFeatureCache(compute func(bag []dataset.Member) ([]float64, float64, error), canonical bool, budgetBytes int64) *featureCache {
	return &featureCache{compute: compute, canonical: canonical, lru: simcache.MustNew(budgetBytes)}
}

// key canonicalizes the bag when member order is irrelevant, returning the
// cache key and the member sequence to compute with.
func (c *featureCache) key(bag []dataset.Member) (string, []dataset.Member) {
	if c.canonical {
		s := append([]dataset.Member(nil), bag...)
		sort.Slice(s, func(i, j int) bool {
			if s[i].Benchmark != s[j].Benchmark {
				return s[i].Benchmark < s[j].Benchmark
			}
			return s[i].Batch < s[j].Batch
		})
		bag = s
	}
	return dataset.BagKeyOf(bag), bag
}

// shareDomain qualifies a cache domain with the share profile. The equal
// split keeps the bare domain, identical to the pre-shares key shape, so
// existing deployments see unchanged keys; any explicit profile gets its
// own namespace by exact string append — no hashing, so distinct profiles
// can never collide.
func shareDomain(base, shares string) string {
	if shares == "" {
		return base
	}
	return base + "?shares=" + shares
}

// cacheKey maps the canonical bag key into the simcache key space: the
// share-qualified domain plus the bag key in the Config field.
func (c *featureCache) cacheKey(bagKey string) simcache.Key {
	return simcache.Key{Domain: shareDomain(featureDomain, c.shares), Config: bagKey}
}

// degradedKey is cacheKey in the fast-tier namespace.
func (c *featureCache) degradedKey(bagKey string) simcache.Key {
	return simcache.Key{Domain: shareDomain(degradedDomain, c.shares), Config: bagKey}
}

// get returns the bag's raw feature vector and fairness, computing them at
// most once per resident generation. hit reports whether a *published*
// entry answered immediately: a request that joined an in-progress first
// computation waited out a full simulation and must not claim "cached"
// (the pre-fix cache reported hit=true for those waiters). The returned
// slice is shared across requests — callers must not mutate it
// (core.Predictor.PredictRaw copies before scaling).
//
// A compute that panics must not poison the singleflight slot: the panic
// is recovered into a *recoveredPanic error, simcache never publishes
// errored entries, and the next request for the same bag computes fresh —
// the panicking bag costs exactly one 500 (plus the same error for any
// waiter that shared the slot).
func (c *featureCache) get(bag []dataset.Member) (x []float64, fairness float64, hit bool, err error) {
	return c.lookup(bag, false)
}

// getDegraded is get for the brownout fast tier: same singleflight and LRU
// discipline, separate key namespace, no peer fill (peers publish only
// exact entries), analytic compute path.
func (c *featureCache) getDegraded(bag []dataset.Member) (x []float64, fairness float64, hit bool, err error) {
	return c.lookup(bag, true)
}

func (c *featureCache) lookup(bag []dataset.Member, degraded bool) (x []float64, fairness float64, hit bool, err error) {
	k, canon := c.key(bag)
	key := c.cacheKey(k)
	if degraded {
		key = c.degradedKey(k)
	}
	v, outcome, err := c.lru.Lookup(key, func() (any, int64, error) {
		fv, err := c.computeValue(k, canon, degraded)
		if err != nil {
			return nil, 0, err
		}
		return fv, fv.sizeBytes(k), nil
	})
	if err != nil {
		return nil, 0, false, err
	}
	fv := v.(*featureValue)
	return fv.x, fv.fairness, outcome == simcache.OutcomeHit, nil
}

// computeValue runs the miss path — peer fill first (exact tier only),
// local simulation as the fallback — with panics recovered into
// *recoveredPanic.
func (c *featureCache) computeValue(key string, canon []dataset.Member, degraded bool) (fv *featureValue, err error) {
	defer func() {
		if r := recover(); r != nil {
			fv, err = nil, &recoveredPanic{Value: r, Stack: debug.Stack()}
		}
	}()
	compute := c.compute
	if degraded {
		if c.computeFast != nil {
			compute = c.computeFast
		}
	} else if c.fill != nil {
		if x, fairness, ok := c.fill(key); ok {
			return &featureValue{x: x, fairness: fairness}, nil
		}
	}
	x, fairness, err := compute(canon)
	if err != nil {
		return nil, err
	}
	return &featureValue{x: x, fairness: fairness}, nil
}

// peek returns the published entry for a canonical bag key without
// waiting, computing, or touching recency — the peer-fill serving side.
func (c *featureCache) peek(bagKey string) (*featureValue, bool) {
	v, ok := c.lru.Peek(c.cacheKey(bagKey))
	if !ok {
		return nil, false
	}
	return v.(*featureValue), true
}

// seed publishes a precomputed entry (warm start); a live resident entry
// wins. Reports whether this call inserted a still-resident entry.
func (c *featureCache) seed(bagKey string, x []float64, fairness float64) bool {
	fv := &featureValue{x: x, fairness: fairness}
	return c.lru.Seed(c.cacheKey(bagKey), fv, fv.sizeBytes(bagKey))
}

// entries lists the published exact-tier entries MRU-first (the snapshot
// body). Degraded fast-tier entries are deliberately excluded: snapshots
// and peer fills must only ever carry exact features.
func (c *featureCache) entries() []SnapshotEntry {
	var out []SnapshotEntry
	c.lru.Items(func(key simcache.Key, val any, _ int64) bool {
		if key.Domain != shareDomain(featureDomain, c.shares) {
			return true
		}
		if fv, ok := val.(*featureValue); ok {
			out = append(out, SnapshotEntry{Key: key.Config, X: fv.x, Fairness: fv.fairness})
		}
		return true
	})
	return out
}

// Stats exposes the LRU counters (hits/misses/evictions/bytes/entries).
func (c *featureCache) Stats() simcache.Stats { return c.lru.Stats() }

// Len returns the number of cached bags (including in-flight entries).
func (c *featureCache) Len() int {
	return c.lru.Len()
}
