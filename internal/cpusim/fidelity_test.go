package cpusim

import (
	"math"
	"reflect"
	"testing"

	"mapc/internal/phasesum"
	"mapc/internal/simcache"
)

func TestFidelityExactDelegatesBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	apps := []App{
		{Workload: computeBound("a"), Threads: 8},
		{Workload: memoryBound("b"), Threads: 8},
	}
	want, err := RunMemo(cfg, nil, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range []phasesum.Fidelity{"", phasesum.Exact} {
		got, kind, err := RunMemoFidelity(cfg, nil, apps, fid)
		if err != nil {
			t.Fatal(err)
		}
		if !kind.UsedExact {
			t.Fatalf("fidelity %q did not report the exact simulator", fid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fidelity %q diverged from RunMemo", fid)
		}
	}
}

func TestFidelitySingleAppAlwaysExact(t *testing.T) {
	cfg := DefaultConfig()
	apps := []App{{Workload: memoryBound("solo"), Threads: 8}}
	want, err := RunMemo(cfg, nil, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range []phasesum.Fidelity{phasesum.Mixed, phasesum.Fast} {
		got, kind, err := RunMemoFidelity(cfg, nil, apps, fid)
		if err != nil {
			t.Fatal(err)
		}
		if !kind.UsedExact || !reflect.DeepEqual(got, want) {
			t.Fatalf("fidelity %q: isolated run must be the exact path", fid)
		}
	}
}

// TestFidelityFastBounded: the analytic co-run stays finite, in-range and
// within a sanity factor of the exact simulation for compute- and
// memory-bound mixes alike.
func TestFidelityFastBounded(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(128 << 20)
	apps := []App{
		{Workload: computeBound("a"), Threads: 8},
		{Workload: memoryBound("b"), Threads: 8},
		{Workload: memoryBound("c"), Threads: 8},
	}
	exact, err := RunMemo(cfg, memo, apps)
	if err != nil {
		t.Fatal(err)
	}
	fast, kind, err := RunMemoFidelity(cfg, memo, apps, phasesum.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if kind.UsedExact {
		t.Fatal("fast fidelity must not fall back to exact")
	}
	for i, r := range fast {
		if r.TimeSec <= 0 || math.IsNaN(r.TimeSec) || math.IsInf(r.TimeSec, 0) {
			t.Fatalf("app %d: bad time %v", i, r.TimeSec)
		}
		if r.LLCMissRate < 0 || r.LLCMissRate > 1 {
			t.Fatalf("app %d: LLC miss rate %v out of [0,1]", i, r.LLCMissRate)
		}
		if ratio := r.TimeSec / exact[i].TimeSec; ratio < 0.5 || ratio > 2 {
			t.Fatalf("app %d: analytic time %v vs exact %v (ratio %.2f)", i, r.TimeSec, exact[i].TimeSec, ratio)
		}
		if r.Instructions != exact[i].Instructions {
			t.Fatalf("app %d: instruction count changed under the analytic tier", i)
		}
	}
}

// TestFidelityMixedFallsBackOrMatches: mixed either trusts the model (then
// it must agree with fast) or falls back (then it must agree with exact) —
// never a third behaviour.
func TestFidelityMixedFallsBackOrMatches(t *testing.T) {
	cfg := DefaultConfig()
	memo := simcache.MustNew(128 << 20)
	apps := []App{
		{Workload: memoryBound("x"), Threads: 8},
		{Workload: memoryBound("y"), Threads: 8},
	}
	exact, err := RunMemo(cfg, memo, apps)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := RunMemoFidelity(cfg, memo, apps, phasesum.Fast)
	if err != nil {
		t.Fatal(err)
	}
	mixed, kind, err := RunMemoFidelity(cfg, memo, apps, phasesum.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if kind.UsedExact {
		if !reflect.DeepEqual(mixed, exact) {
			t.Fatal("mixed fallback diverged from the exact simulator")
		}
	} else if !reflect.DeepEqual(mixed, fast) {
		t.Fatal("mixed trusted the model but diverged from fast")
	}
}

func TestFidelityValidatesLikeExact(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, err := RunMemoFidelity(cfg, nil, nil, phasesum.Fast); err == nil {
		t.Error("empty app list accepted")
	}
	apps := []App{{Workload: computeBound("a"), Threads: 0}, {Workload: memoryBound("b"), Threads: 8}}
	if _, _, err := RunMemoFidelity(cfg, nil, apps, phasesum.Fast); err == nil {
		t.Error("non-positive thread count accepted")
	}
}
