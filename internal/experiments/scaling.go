package experiments

import (
	"fmt"

	"mapc/internal/cpusim"
	"mapc/internal/gpusim"
	"mapc/internal/parallel"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

// MaxInstances is the largest homogeneous instance count Figures 1-3 sweep.
const MaxInstances = 4

// scalingBatch is the input size for the motivation figures (the standard
// 20-image batch of Section V-B).
const scalingBatch = 20

// scalingPerf measures, for every benchmark, the normalized performance
// (1/time, relative to one instance) of n = 1..MaxInstances homogeneous
// instances on both platforms. Results are cached in the Env.
func (e *Env) scalingPerf() (cpu, gpu map[string][]float64, err error) {
	e.scalingOnce.Do(func() {
		e.scalingCPU, e.scalingGPU, e.scalingErr = e.computeScaling()
	})
	return e.scalingCPU, e.scalingGPU, e.scalingErr
}

// computeScaling sweeps every configured benchmark's 1..MaxInstances
// homogeneous concurrency on both simulated platforms. Benchmarks fan out
// over the measurement engine's worker pool (Config.Workers); each worker
// simulates private workload clones and writes its results by benchmark
// index, so the cached maps are identical for every worker count.
func (e *Env) computeScaling() (cpu, gpu map[string][]float64, err error) {
	names := e.Cfg.BenchmarkNames()
	cpuRows := make([][]float64, len(names))
	gpuRows := make([][]float64, len(names))
	err = parallel.ForEach(e.Cfg.Workers, len(names), func(bi int) error {
		b, err := vision.ByName(names[bi])
		if err != nil {
			return err
		}
		res, err := vision.Run(b, scalingBatch, e.Cfg.Seed)
		if err != nil {
			return err
		}
		w := res.Workload
		cpuPerf := make([]float64, MaxInstances)
		gpuPerf := make([]float64, MaxInstances)
		for n := 1; n <= MaxInstances; n++ {
			apps := make([]cpusim.App, n)
			gws := make([]*trace.Workload, n)
			for i := 0; i < n; i++ {
				apps[i] = cpusim.App{Workload: w.Clone(), Threads: e.Cfg.Threads}
				gws[i] = w.Clone()
			}
			cr, err := cpusim.Run(e.Cfg.CPU, apps)
			if err != nil {
				return err
			}
			gr, err := gpusim.Run(e.Cfg.GPU, gws)
			if err != nil {
				return err
			}
			// The paper plots each instance's performance; with a
			// homogeneous bag all instances are statistically
			// identical, so the first is representative.
			cpuPerf[n-1] = cr[0].Performance()
			gpuPerf[n-1] = gr[0].Performance()
		}
		cpuRows[bi] = normalizeTo1(cpuPerf)
		gpuRows[bi] = normalizeTo1(gpuPerf)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	cpu = make(map[string][]float64, len(names))
	gpu = make(map[string][]float64, len(names))
	for bi, name := range names {
		cpu[name] = cpuRows[bi]
		gpu[name] = gpuRows[bi]
	}
	return cpu, gpu, nil
}

func normalizeTo1(perf []float64) []float64 {
	out := make([]float64, len(perf))
	if perf[0] == 0 {
		return out
	}
	for i, p := range perf {
		out[i] = p / perf[0]
	}
	return out
}

func scalingHeader() []string {
	h := []string{"benchmark"}
	for n := 1; n <= MaxInstances; n++ {
		h = append(h, fmt.Sprintf("%d inst", n))
	}
	return h
}

// Figure1 reproduces the CPU performance scaling of Figure 1: per
// benchmark, the performance of n homogeneous instances normalized to one
// instance.
func Figure1(e *Env) (*Table, error) {
	cpu, _, err := e.scalingPerf()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure1",
		Title:  "CPU performance with multi-application concurrency (normalized to 1 instance)",
		Header: scalingHeader(),
		Notes: []string{
			"paper shape: CPU degradation is mild and benchmark-dependent; far gentler than the GPU's",
		},
	}
	for _, name := range e.Cfg.BenchmarkNames() {
		row := []string{name}
		for _, v := range cpu[name] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure2 reproduces the GPU scaling of Figure 2 under MPS.
func Figure2(e *Env) (*Table, error) {
	_, gpu, err := e.scalingPerf()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure2",
		Title:  "GPU performance with multi-application concurrency under MPS (normalized to 1 instance)",
		Header: scalingHeader(),
		Notes: []string{
			"paper shape: GPU performance degrades steadily with instance count; cross-benchmark ordering stays roughly stable",
		},
	}
	for _, name := range e.Cfg.BenchmarkNames() {
		row := []string{name}
		for _, v := range gpu[name] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure3 reproduces the GPU/CPU performance ratio of Figure 3.
func Figure3(e *Env) (*Table, error) {
	cpu, gpu, err := e.scalingPerf()
	if err != nil {
		return nil, err
	}
	// Ratios need absolute performance, not normalized: recompute from
	// 1-instance absolute times via the workload cache.
	t := &Table{
		ID:     "figure3",
		Title:  "GPU/CPU performance ratio with multi-application concurrency",
		Header: scalingHeader(),
		Notes: []string{
			"paper shape: GPU beats CPU for most single-instance benchmarks with a few exceptions (branchy or poorly-parallel kernels), and the advantage shrinks as instances are added",
		},
	}
	for _, name := range e.Cfg.BenchmarkNames() {
		b, err := vision.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := vision.Run(b, scalingBatch, e.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		cr, err := cpusim.Run(e.Cfg.CPU, []cpusim.App{{Workload: res.Workload, Threads: e.Cfg.Threads}})
		if err != nil {
			return nil, err
		}
		gr, err := gpusim.Run(e.Cfg.GPU, []*trace.Workload{res.Workload})
		if err != nil {
			return nil, err
		}
		base := cr[0].TimeSec / gr[0].TimeSec // GPU/CPU perf at 1 instance
		row := []string{b.Name()}
		for n := 0; n < MaxInstances; n++ {
			// ratio(n) = base * (gpuNorm(n) / cpuNorm(n))
			ratio := 0.0
			if cpu[b.Name()][n] > 0 {
				ratio = base * gpu[b.Name()][n] / cpu[b.Name()][n]
			}
			row = append(row, fmt.Sprintf("%.3f", ratio))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
