package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Scheme().Name != p.Scheme().Name {
		t.Errorf("scheme %q after load", loaded.Scheme().Name)
	}
	if loaded.TimeDivisor() != p.TimeDivisor() {
		t.Errorf("divisor %v after load", loaded.TimeDivisor())
	}
	for i := range c.Points {
		a, err := p.PredictPoint(&c.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictPoint(&c.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("point %d predictions diverge after round trip: %v vs %v", i, a, b)
		}
	}
	// Decision-path introspection works on loaded models too.
	path, err := loaded.PathVector(c.Points[0].X)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Error("empty path from loaded model")
	}
}

func TestPredictorSaveLoadFile(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeInsmixCPU, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.PredictVector(c.Points[3].X)
	b, _ := loaded.PredictVector(c.Points[3].X)
	if a != b {
		t.Fatalf("file round trip diverges: %v vs %v", a, b)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestPersistSchemeRoundTripMismatch proves a saved model carries its
// scheme + feature contract and that both load-time and predict-time
// mismatches are refused loudly instead of silently mispredicting.
func TestPersistSchemeRoundTripMismatch(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeInsmixCPU, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	loaded, err := Load(strings.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.NumFeatures(); got != len(c.FeatureNames) {
		t.Errorf("NumFeatures = %d, want corpus width %d", got, len(c.FeatureNames))
	}
	if !loaded.Scheme().Equal(SchemeInsmixCPU) {
		t.Errorf("loaded scheme %q does not equal training scheme", loaded.Scheme().Name)
	}

	// A caller expecting the full scheme must get a scheme-mismatch error.
	err = loaded.RequireScheme(SchemeFull)
	if err == nil {
		t.Fatal("RequireScheme(SchemeFull) accepted an insmix+cputime model")
	}
	if !strings.Contains(err.Error(), "scheme mismatch") {
		t.Errorf("error %q does not mention scheme mismatch", err)
	}
	if err := loaded.RequireScheme(SchemeInsmixCPU); err != nil {
		t.Errorf("matching scheme rejected: %v", err)
	}

	// Wrong-width raw vectors are refused with a descriptive error.
	if _, err := loaded.PredictRaw(make([]float64, 3)); err == nil {
		t.Error("PredictRaw accepted a 3-wide vector")
	} else if !strings.Contains(err.Error(), "expects") {
		t.Errorf("width error %q not descriptive", err)
	}

	// Tampered files whose scheme disagrees with the stored columns are
	// refused at load time: drop the scheme's cpu_time kind so the kinds
	// resolve to a different column set than the file stores.
	var doc map[string]any
	if err := json.Unmarshal([]byte(saved), &doc); err != nil {
		t.Fatal(err)
	}
	kinds := doc["scheme_kinds"].([]any)
	doc["scheme_kinds"] = kinds[:len(kinds)-1] // cpu_time is the last kind
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(tampered)); err == nil {
		t.Error("load accepted a model whose scheme disagrees with its columns")
	}

	// An unknown feature kind is refused too.
	doc["scheme_kinds"] = append(kinds[:len(kinds)-1:len(kinds)-1], "bogus_kind")
	tampered, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(tampered)); err == nil {
		t.Error("load accepted a model with an unknown feature kind")
	}

	// A declared feature count that disagrees with the names is refused.
	bad := strings.Replace(saved, `"num_features": `+fmt.Sprint(len(c.FeatureNames)), `"num_features": 7`, 1)
	if bad == saved {
		t.Fatal("num_features substitution failed")
	}
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("load accepted num_features disagreeing with feature names")
	}
}

// TestSaveFileAtomicAgainstPartialWrite is the crash-safety regression for
// model persistence: a save that dies partway (simulated by truncating the
// serialized model mid-JSON, the state a non-atomic writer would leave)
// must never be what LoadFile sees. With the atomic temp+fsync+rename
// SaveFile, a prior good model survives a failed save bit-for-bit; and if
// a partial file does appear by other means, Load refuses it loudly.
func TestSaveFileAtomicAgainstPartialWrite(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A simulated partial write of a *new* model onto the same path: write
	// only half the bytes, as a crash mid-os.Create-then-Write would have.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	partial := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(path, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a truncated model")
	}

	// The atomic SaveFile repairs it in one commit, and the repaired file
	// is byte-identical to the original save (deterministic encoder).
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, repaired) {
		t.Error("atomic re-save is not byte-identical to the first save")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("repaired model does not load: %v", err)
	}

	// No temp litter: SaveFile's temp files never outlive the commit.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory holds %v, want only model.json", names)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"format":"wrong"}`,
		`{"format":"mapc-predictor-v1"}`,
		`{"format":"mapc-predictor-v1","time_divisor":1,"columns":[0],"column_names":["a"],"all_feature_names":["a"]}`,
		`{"format":"mapc-predictor-v1","time_divisor":1,"columns":[9],"column_names":["a"],"all_feature_names":["a"],
		  "tree":{"format":"mapc-tree-v1","n_features":1,"nodes":[{"feature":-1,"value":1}]}}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("garbage case %d loaded", i)
		}
	}
}
