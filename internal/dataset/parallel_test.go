package dataset

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"mapc/internal/ml"
)

// smallConfig is a reduced corpus configuration exercising all three
// generation loops (homogeneous, heterogeneous equal-batch, mixed-batch)
// while staying fast enough to regenerate several times per test.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Benchmarks = []string{"fast", "hog", "knn"}
	cfg.BatchSizes = []int{20, 40, 80}
	cfg.MixedPairs = 2
	return cfg
}

func generateWithWorkers(t *testing.T, cfg Config, workers int) *Corpus {
	t.Helper()
	cfg.Workers = workers
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGenerateGoldenAcrossWorkerCounts is the determinism golden test: the
// corpus must be bit-for-bit identical (points, ordering, features,
// targets, fairness, normalization constant) whether generated serially or
// on any worker pool, and a tree trained on each must predict identically.
func TestGenerateGoldenAcrossWorkerCounts(t *testing.T) {
	cfg := smallConfig()
	golden := generateWithWorkers(t, cfg, 1) // exact legacy serial path

	workerCounts := []int{4, runtime.NumCPU()}
	corpora := []*Corpus{golden}
	for _, w := range workerCounts {
		c := generateWithWorkers(t, cfg, w)
		corpora = append(corpora, c)
		if len(c.Points) != len(golden.Points) {
			t.Fatalf("workers=%d: %d points, serial %d", w, len(c.Points), len(golden.Points))
		}
		if c.CPUTimeDivisor != golden.CPUTimeDivisor {
			t.Errorf("workers=%d: divisor %v, serial %v", w, c.CPUTimeDivisor, golden.CPUTimeDivisor)
		}
		if !reflect.DeepEqual(c.FeatureNames, golden.FeatureNames) {
			t.Errorf("workers=%d: feature names differ", w)
		}
		for i := range golden.Points {
			gp, pp := &golden.Points[i], &c.Points[i]
			if !reflect.DeepEqual(gp.Members, pp.Members) {
				t.Fatalf("workers=%d point %d: members %v vs serial %v (ordering broken)",
					w, i, pp.Members, gp.Members)
			}
			if !reflect.DeepEqual(gp.X, pp.X) {
				t.Fatalf("workers=%d point %d: X differs", w, i)
			}
			if gp.Y != pp.Y || gp.Fairness != pp.Fairness {
				t.Fatalf("workers=%d point %d: Y/Fairness %v/%v vs serial %v/%v",
					w, i, pp.Y, pp.Fairness, gp.Y, gp.Fairness)
			}
			if !reflect.DeepEqual(gp.CPUTimes, pp.CPUTimes) || !reflect.DeepEqual(gp.GPUTimes, pp.GPUTimes) {
				t.Fatalf("workers=%d point %d: isolated times differ", w, i)
			}
			if gp.Homogeneous != pp.Homogeneous {
				t.Fatalf("workers=%d point %d: homogeneous flag differs", w, i)
			}
		}
	}

	// Trees trained on each corpus must predict identically on a probe
	// set (every corpus point doubles as a probe).
	var goldenPred []float64
	for ci, c := range corpora {
		tree := ml.NewTreeRegressor()
		if err := tree.Fit(c.Dataset()); err != nil {
			t.Fatal(err)
		}
		preds, err := tree.PredictAll(golden.Dataset().X)
		if err != nil {
			t.Fatal(err)
		}
		if ci == 0 {
			goldenPred = preds
			continue
		}
		if !reflect.DeepEqual(preds, goldenPred) {
			t.Errorf("corpus %d: trained tree predicts differently from serial tree", ci)
		}
	}
}

// TestBagsOrderIsCanonical pins the corpus ordering contract the parallel
// engine relies on: bag i of Bags() is point i of Generate().
func TestBagsOrderIsCanonical(t *testing.T) {
	cfg := smallConfig()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bags, err := gen.Bags()
	if err != nil {
		t.Fatal(err)
	}
	// 3 benchmarks x 3 batches homogeneous + C(3,2) hetero + 2 mixed.
	if want := 9 + 3 + 2; len(bags) != want {
		t.Fatalf("bags %d, want %d", len(bags), want)
	}
	c := generateWithWorkers(t, cfg, 2)
	sortedKey := func(ms []Member) string {
		s := append([]Member(nil), ms...)
		sort.Slice(s, func(i, j int) bool {
			if s[i].Benchmark != s[j].Benchmark {
				return s[i].Benchmark < s[j].Benchmark
			}
			return s[i].Batch < s[j].Batch
		})
		return BagKeyOf(s)
	}
	for i, bag := range bags {
		members := c.Points[i].Members
		// MeasureBag may canonically reorder members; compare as multisets.
		if sortedKey(members) != sortedKey(bag) {
			t.Errorf("point %d members %v, bag %v", i, members, bag)
		}
	}
}

// TestMixedBagsBoundedWalk is the regression test for the silent-stall
// hazard: the legacy mixed-batch loop never terminated when every (i,j)
// candidate collided (e.g. a single-benchmark registry). It must now fail
// fast with a descriptive error.
func TestMixedBagsBoundedWalk(t *testing.T) {
	batches := []int{20, 40, 80}

	// Single benchmark: every candidate pair collides — legacy infinite loop.
	if _, err := mixedBags([]string{"fast"}, batches, 2, 2); err == nil {
		t.Fatal("single-benchmark mixed walk did not error")
	} else if !strings.Contains(err.Error(), "mixed-batch") {
		t.Errorf("undescriptive error: %v", err)
	}

	// Empty registry.
	if _, err := mixedBags(nil, batches, 1, 2); err == nil {
		t.Fatal("empty-registry mixed walk did not error")
	}

	// Feasible registries still produce exactly the requested count.
	out, err := mixedBags([]string{"fast", "hog", "knn"}, batches, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d mixed pairs, want 5", len(out))
	}
	for _, bag := range out {
		if bag[0].Benchmark == bag[1].Benchmark {
			t.Errorf("mixed pair is homogeneous: %v", bag)
		}
		if bag[0].Batch == 20 || bag[1].Batch == 20 {
			t.Errorf("mixed pair uses the base batch: %v", bag)
		}
	}

	// Legacy skip conditions: too few batch sizes or no requested pairs.
	if out, err := mixedBags([]string{"fast"}, []int{20, 40}, 3, 2); err != nil || out != nil {
		t.Errorf("two-batch config should skip mixed pairs, got %v, %v", out, err)
	}
	if out, err := mixedBags([]string{"fast", "hog"}, batches, 0, 2); err != nil || out != nil {
		t.Errorf("zero count should skip mixed pairs, got %v, %v", out, err)
	}
}

// TestGenerateSingleBenchmarkErrors covers the end-to-end stall fix: a
// generator restricted to one benchmark with mixed pairs requested must
// return an error instead of hanging Generate forever.
func TestGenerateSingleBenchmarkErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Benchmarks = []string{"fast"}
	cfg.BatchSizes = []int{20, 40, 80}
	cfg.MixedPairs = 2
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(); err == nil {
		t.Fatal("Generate with an unsatisfiable mixed-pair walk did not error")
	}
}

func TestConfigValidationParallelKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("negative worker count accepted")
	}
	cfg = DefaultConfig()
	cfg.Benchmarks = []string{"not-a-benchmark"}
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("unknown benchmark subset accepted")
	}
	if got := (Config{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Errorf("EffectiveWorkers(3) = %d", got)
	}
	if got := (Config{}).EffectiveWorkers(); got != runtime.NumCPU() {
		t.Errorf("EffectiveWorkers(0) = %d, want NumCPU", got)
	}
	if got := DefaultConfig().BenchmarkNames(); len(got) != 9 {
		t.Errorf("default benchmark list %v", got)
	}
}

// TestMeasureCacheSingleflight hammers the memoized measure() cache from
// concurrent goroutines: every caller must observe the same *measurement
// (the member's workload was computed exactly once), with no data races
// (run under -race in CI).
func TestMeasureCacheSingleflight(t *testing.T) {
	cfg := smallConfig()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	members := []Member{
		{Benchmark: "fast", Batch: 20},
		{Benchmark: "hog", Batch: 20},
		{Benchmark: "knn", Batch: 40},
	}
	const goroutines = 16
	got := make([][]*measurement, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for _, m := range members {
				mm, err := gen.measure(m)
				if err != nil {
					t.Error(err)
					return
				}
				got[gi] = append(got[gi], mm)
				// The read-side accessors share the same memo.
				if _, _, err := gen.IsolatedTimes(m); err != nil {
					t.Error(err)
					return
				}
				if _, err := gen.Workload(m); err != nil {
					t.Error(err)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for gi := 1; gi < goroutines; gi++ {
		for mi := range members {
			if got[gi][mi] != got[0][mi] {
				t.Fatalf("goroutine %d observed a different measurement for %v: singleflight broken",
					gi, members[mi])
			}
		}
	}
}

// TestConcurrentMeasurePoint hammers MeasurePoint itself on overlapping
// bags (shared members) and checks every goroutine computes the same
// points a serial generator does.
func TestConcurrentMeasurePoint(t *testing.T) {
	cfg := smallConfig()
	bags := [][2]Member{
		{{Benchmark: "fast", Batch: 20}, {Benchmark: "hog", Batch: 20}},
		{{Benchmark: "fast", Batch: 20}, {Benchmark: "knn", Batch: 20}},
		{{Benchmark: "hog", Batch: 20}, {Benchmark: "knn", Batch: 20}},
		{{Benchmark: "fast", Batch: 20}, {Benchmark: "fast", Batch: 20}},
	}

	serialGen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Point, len(bags))
	for i, bag := range bags {
		want[i], err = serialGen.MeasurePoint(bag[0], bag[1])
		if err != nil {
			t.Fatal(err)
		}
	}

	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const repeat = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(bags)*repeat)
	for r := 0; r < repeat; r++ {
		for i, bag := range bags {
			wg.Add(1)
			go func(i int, bag [2]Member) {
				defer wg.Done()
				p, err := gen.MeasurePoint(bag[0], bag[1])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(p, want[i]) {
					errs <- fmt.Errorf("bag %d: concurrent point differs from serial", i)
				}
			}(i, bag)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
