package vision

import (
	"mapc/internal/trace"
)

// ObjRec is the object-recognition pipeline of Table II: SIFT feature
// extraction on the query image, descriptor matching against a gallery of
// object models with Lowe's ratio test, and nearest-model voting. It chains
// feature extraction and classification, giving it the suite's most mixed
// instruction profile.
type ObjRec struct {
	Models    int     // number of reference object models
	Ratio     float64 // Lowe ratio-test threshold
	sift      *SIFT
	modelDesc [][][]float64 // per-model descriptor sets, built lazily
}

// NewObjRec returns a 4-model recognizer.
func NewObjRec() *ObjRec {
	return &ObjRec{Models: 4, Ratio: 0.85, sift: NewSIFT()}
}

// Name implements Benchmark.
func (o *ObjRec) Name() string { return "objrec" }

// Scene implements Benchmark.
func (o *ObjRec) Scene() SceneKind { return SceneObjects }

func (o *ObjRec) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	// Build the model gallery once per run, uninstrumented: the original
	// benchmark loads precomputed models from disk, so model construction
	// is not part of the measured kernel.
	if o.modelDesc == nil {
		o.modelDesc = make([][][]float64, o.Models)
		for m := 0; m < o.Models; m++ {
			ref := SynthesizeImage(SceneObjects, DefaultImageSize, DefaultImageSize,
				0x0B1EC7+uint64(m)*0x1111)
			_, descs := o.sift.DetectAndDescribe(ref, nil)
			o.modelDesc[m] = descs
		}
	}

	var matched, votesWinner int
	for _, im := range images {
		// Query feature extraction (instrumented inside SIFT).
		_, q := o.sift.DetectAndDescribe(im, rec)

		// Matching + voting phase: dense distance computations against
		// every model — big random-access footprint, vectorizable FP.
		var galleryDescs int
		for _, md := range o.modelDesc {
			galleryDescs += len(md)
		}
		rec.BeginPhase("objrec-matching", int64((galleryDescs+len(q))*128*8), trace.PhaseOpts{
			Pattern:     trace.Random,
			Reuse:       0.2,
			Parallelism: maxInt(len(q)*galleryDescs, 1),
			VectorWidth: simdWidth,
		})
		votes := make([]int, o.Models)
		for _, qd := range q {
			model, ok := o.matchOne(qd, rec)
			if ok {
				votes[model]++
				matched++
			}
		}
		best := 0
		for m := 1; m < o.Models; m++ {
			if votes[m] > votes[best] {
				best = m
			}
		}
		votesWinner += best
		rec.ALU(uint64(o.Models) * 2)
		rec.Control(uint64(o.Models))
		rec.EndPhase()
	}
	n := float64(len(images))
	return map[string]float64{
		"matches":   float64(matched) / n,
		"voteCheck": float64(votesWinner),
	}, nil
}

// matchOne finds the model owning the globally nearest descriptor, accepting
// the match only if it passes the ratio test against the second-nearest.
func (o *ObjRec) matchOne(q []float64, rec *trace.Recorder) (int, bool) {
	best, second := 1e18, 1e18
	bestModel := -1
	for m, md := range o.modelDesc {
		for _, d := range md {
			dist := Dist2(q, d, rec)
			if dist < best {
				second = best
				best = dist
				bestModel = m
			} else if dist < second {
				second = dist
			}
		}
	}
	rec.Control(8)
	rec.FP(4)
	if bestModel < 0 || second <= 0 {
		return 0, false
	}
	return bestModel, best < o.Ratio*o.Ratio*second
}
