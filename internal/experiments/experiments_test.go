package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"mapc/internal/dataset"
	"mapc/internal/vision"
)

var (
	envOnce sync.Once
	env     *Env
)

// testEnv shares one default environment (and thus one corpus) across all
// figure tests in this package.
func testEnv() *Env {
	envOnce.Do(func() { env = DefaultEnv() })
	return env
}

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestFigure1And2Shapes(t *testing.T) {
	e := testEnv()
	f1, err := Figure1(e)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Figure2(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*Table{f1, f2} {
		if len(tb.Rows) != 9 {
			t.Fatalf("%s has %d rows", tb.ID, len(tb.Rows))
		}
		for r := range tb.Rows {
			// Normalized to 1 at one instance.
			if got := cell(t, tb, r, 1); got != 1 {
				t.Errorf("%s row %d 1-inst perf %v", tb.ID, r, got)
			}
			// Performance never improves with added instances.
			for c := 2; c <= MaxInstances; c++ {
				if cell(t, tb, r, c) > cell(t, tb, r, c-1)+1e-9 {
					t.Errorf("%s %s perf rose from %d to %d instances",
						tb.ID, tb.Rows[r][0], c-1, c)
				}
			}
		}
	}
	// Paper headline: GPU degradation at 4 instances exceeds the CPU's
	// on average.
	var cpuSum, gpuSum float64
	for r := range f1.Rows {
		cpuSum += cell(t, f1, r, MaxInstances)
		gpuSum += cell(t, f2, r, MaxInstances)
	}
	if gpuSum >= cpuSum {
		t.Errorf("mean GPU 4-instance perf %.3f not worse than CPU %.3f",
			gpuSum/9, cpuSum/9)
	}
}

func TestFigure3Shape(t *testing.T) {
	tb, err := Figure3(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("figure3 rows %d", len(tb.Rows))
	}
	// Paper: GPU beats CPU for most single-instance benchmarks, with
	// some exceptions.
	wins, losses := 0, 0
	for r := range tb.Rows {
		if cell(t, tb, r, 1) > 1 {
			wins++
		} else {
			losses++
		}
	}
	if wins < 5 {
		t.Errorf("GPU wins only %d/9 single-instance comparisons", wins)
	}
	if losses == 0 {
		t.Error("no exceptions: paper found benchmarks where the CPU wins")
	}
}

func TestFigure4Shape(t *testing.T) {
	tb, err := Figure4(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 { // 9 benchmarks + MEAN
		t.Fatalf("figure4 rows %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "MEAN" {
		t.Fatalf("last row %v", last)
	}
	mean, err := strconv.ParseFloat(last[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The reproduction's headline: low-tens mean error (paper: 9%).
	if mean <= 0 || mean > 40 {
		t.Errorf("LOOCV mean %v%% outside the credible band", mean)
	}
	benches := map[string]bool{}
	for _, n := range vision.Names() {
		benches[n] = true
	}
	for _, row := range tb.Rows[:9] {
		if !benches[row[0]] {
			t.Errorf("unknown benchmark row %q", row[0])
		}
	}
}

func TestFigure5Ordering(t *testing.T) {
	tb, err := Figure5(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("figure5 rows %d", len(tb.Rows))
	}
	insmix := cell(t, tb, 0, 1)
	insmixCPU := cell(t, tb, 1, 1)
	full := cell(t, tb, 3, 1)
	// The paper's central comparison.
	if insmix < insmixCPU*3 {
		t.Errorf("insmix %v not clearly worse than +cputime %v", insmix, insmixCPU)
	}
	if full >= insmixCPU {
		t.Errorf("full %v not better than insmix+cputime %v", full, insmixCPU)
	}
	if insmix < 100 {
		t.Errorf("insmix-only error %v%% — paper reports >140%%", insmix)
	}
}

func TestSensitivityFigures(t *testing.T) {
	e := testEnv()
	for _, fn := range []func(*Env) (*Table, error){Figure6, Figure7, Figure8, Figure9} {
		tb, err := fn(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) < 4 {
			t.Errorf("%s rows %d", tb.ID, len(tb.Rows))
		}
		for r := range tb.Rows {
			without := cell(t, tb, r, 1)
			with := cell(t, tb, r, 2)
			if without <= 0 || with <= 0 {
				t.Errorf("%s row %d non-positive errors", tb.ID, r)
			}
		}
	}
	// Figure 6/7 headline: adding CPU/GPU time always helps.
	for _, fn := range []func(*Env) (*Table, error){Figure6, Figure7} {
		tb, _ := fn(e)
		for r := range tb.Rows {
			if cell(t, tb, r, 2) >= cell(t, tb, r, 1) {
				t.Errorf("%s: adding the time feature did not reduce error for %q",
					tb.ID, tb.Rows[r][0])
			}
		}
	}
}

func TestPathFigures(t *testing.T) {
	e := testEnv()
	f10, err := Figure10(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 11 { // Table-IV kinds
		t.Fatalf("figure10 rows %d", len(f10.Rows))
	}
	presence := map[string]float64{}
	for r := range f10.Rows {
		presence[f10.Rows[r][0]] = cell(t, f10, r, 1)
	}
	// Paper: GPU time in 100% of decision paths.
	if presence["gpu_time"] < 99 {
		t.Errorf("gpu_time presence %v%%", presence["gpu_time"])
	}

	f11, err := Figure11(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Rows) != 11 {
		t.Fatalf("figure11 rows %d", len(f11.Rows))
	}
	// Histogram columns must sum to ~100% per feature.
	for r := range f11.Rows {
		var sum float64
		for c := 2; c < len(f11.Header); c++ {
			sum += cell(t, f11, r, c)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("figure11 row %q histogram sums to %v", f11.Rows[r][0], sum)
		}
	}

	f12, err := Figure12(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) == 0 || len(f12.Rows) > heatmapPoints {
		t.Fatalf("figure12 rows %d", len(f12.Rows))
	}
	if len(f12.Header) != 12 { // label + 11 kinds
		t.Fatalf("figure12 header %v", f12.Header)
	}
}

func TestGeneratorsAndRun(t *testing.T) {
	gens := Generators()
	if len(gens) != 15 { // Tables II-IV + Figures 1-12
		t.Fatalf("%d generators", len(gens))
	}
	for i, g := range gens[:3] {
		want := "table" + strconv.Itoa(i+2)
		if g.ID != want {
			t.Errorf("generator %d id %q, want %q", i, g.ID, want)
		}
	}
	for i, g := range gens[3:] {
		want := "figure" + strconv.Itoa(i+1)
		if g.ID != want {
			t.Errorf("generator %d id %q, want %q", i+3, g.ID, want)
		}
	}
	if _, err := Run(testEnv(), "figure999"); err == nil {
		t.Error("unknown artifact accepted")
	}
	tb, err := Run(testEnv(), "figure10")
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "figure10" {
		t.Errorf("Run returned %q", tb.ID)
	}
}

func TestDescriptiveTables(t *testing.T) {
	e := testEnv()
	t2, err := TableII(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 9 {
		t.Fatalf("Table II rows %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row[1] == "" {
			t.Errorf("benchmark %q has empty description", row[0])
		}
	}
	t3, err := TableIII(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) < 10 {
		t.Fatalf("Table III rows %d", len(t3.Rows))
	}
	t4, err := TableIV(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 11 {
		t.Fatalf("Table IV rows %d, want the 11 feature kinds", len(t4.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yy", "22"}},
		Notes:  []string{"hello"},
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "long-header", "yy", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEnvBadConfig(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Threads = 0
	e := NewEnv(cfg)
	if _, err := e.Corpus(); err == nil {
		t.Error("invalid config corpus succeeded")
	}
	if _, err := Figure4(e); err == nil {
		t.Error("figure on invalid env succeeded")
	}
}

func TestExtraExperiments(t *testing.T) {
	e := testEnv()
	// Fast extras only — ordering regenerates a second corpus and the
	// model comparison runs 40 holdout fits; both are covered by the
	// benchmark harness instead.
	for _, id := range []string{"bagsize", "protocols", "microarch"} {
		tb, err := Run(e, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
	// bagsize: makespan ratios must be non-decreasing in bag size.
	tb, err := Run(e, "bagsize")
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		for c := 2; c < len(tb.Header); c++ {
			if cell(t, tb, r, c) < cell(t, tb, r, c-1)-1e-9 {
				t.Errorf("bagsize %s shrank from col %d to %d", tb.Rows[r][0], c-1, c)
			}
		}
	}
	if len(ExtraGenerators()) != 7 {
		t.Errorf("%d extra generators", len(ExtraGenerators()))
	}
}

func TestExtraSchedulingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling extra trains a predictor and drains four schedules")
	}
	tb, err := Run(testEnv(), "scheduling")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d policy rows", len(tb.Rows))
	}
	makespan := map[string]float64{}
	for r := range tb.Rows {
		makespan[tb.Rows[r][0]] = cell(t, tb, r, 1)
	}
	// The oracle can never lose to serial execution, and the predictor
	// must realize a real gain over serial too.
	if makespan["oracle-pairing"] > makespan["serial-fifo"]*(1+1e-9) {
		t.Errorf("oracle (%v) worse than serial (%v)",
			makespan["oracle-pairing"], makespan["serial-fifo"])
	}
	if makespan["predicted-pairing"] >= makespan["serial-fifo"] {
		t.Errorf("predicted pairing (%v) not better than serial (%v)",
			makespan["predicted-pairing"], makespan["serial-fifo"])
	}
}
