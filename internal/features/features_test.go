package features

import (
	"math"
	"reflect"
	"testing"

	"mapc/internal/isa"
	"mapc/internal/mica"
	"mapc/internal/ml"
)

func TestNames(t *testing.T) {
	names, err := Names(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2*PerApp+1 {
		t.Fatalf("len = %d, want %d", len(names), 2*PerApp+1)
	}
	if names[0] != "cpu_time_a" || names[1] != "gpu_time_a" {
		t.Errorf("first columns %v", names[:2])
	}
	if names[PerApp] != "cpu_time_b" {
		t.Errorf("second block starts with %q", names[PerApp])
	}
	if names[len(names)-1] != "fairness" {
		t.Errorf("last column %q", names[len(names)-1])
	}
	if _, err := Names(0); err == nil {
		t.Error("bag size 0 accepted")
	}
	if _, err := Names(9); err == nil {
		t.Error("oversized bag accepted")
	}
}

func TestKind(t *testing.T) {
	cases := map[string]string{
		"cpu_time_a": KindCPUTime,
		"gpu_time_b": KindGPUTime,
		"sse_a":      "sse",
		"control_b":  "control",
		"fairness":   KindFairness,
	}
	for in, want := range cases {
		if got := Kind(in); got != want {
			t.Errorf("Kind(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKindNames(t *testing.T) {
	kinds := KindNames()
	if len(kinds) != int(isa.NumCategories)+3 {
		t.Fatalf("kind count %d", len(kinds))
	}
	if kinds[0] != KindCPUTime || kinds[len(kinds)-1] != KindFairness {
		t.Errorf("kind order %v", kinds)
	}
}

func sampleApp(cpu, gpu float64) App {
	var c isa.Counts
	c.Add(isa.ALU, 60)
	c.Add(isa.MEM, 40)
	mix, _ := mica.Mix{}, error(nil)
	_ = mix
	m := mica.Mix(c.Mix())
	return App{CPUTimeSec: cpu, GPUTimeSec: gpu, Mix: m}
}

func TestBagVectorLayout(t *testing.T) {
	a := sampleApp(1.0, 0.5)
	b := sampleApp(2.0, 0.25)
	x, err := BagVector([]App{a, b}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := Names(2)
	if len(x) != len(names) {
		t.Fatalf("vector width %d, names %d", len(x), len(names))
	}
	if x[0] != 1.0 || x[1] != 0.5 {
		t.Errorf("app a times %v %v", x[0], x[1])
	}
	if x[PerApp] != 2.0 || x[PerApp+1] != 0.25 {
		t.Errorf("app b times %v %v", x[PerApp], x[PerApp+1])
	}
	// Mix entries are percentages.
	if math.Abs(x[2+int(isa.ALU)]-60) > 1e-9 {
		t.Errorf("ALU percent %v", x[2+int(isa.ALU)])
	}
	if x[len(x)-1] != 0.8 {
		t.Errorf("fairness %v", x[len(x)-1])
	}
}

func TestBagVectorErrors(t *testing.T) {
	a := sampleApp(1, 1)
	if _, err := BagVector(nil, 0.5); err == nil {
		t.Error("empty bag accepted")
	}
	if _, err := BagVector([]App{a}, 0); err == nil {
		t.Error("zero fairness accepted")
	}
	if _, err := BagVector([]App{a}, 1.2); err == nil {
		t.Error("fairness > 1 accepted")
	}
	if _, err := BagVector(make([]App, 9), 0.5); err == nil {
		t.Error("oversized bag accepted")
	}
}

func TestNormalizeTimes(t *testing.T) {
	names, _ := Names(2)
	mk := func(cpuA, gpuA, cpuB, gpuB float64) []float64 {
		x, err := BagVector([]App{sampleApp(cpuA, gpuA), sampleApp(cpuB, gpuB)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	d := &ml.Dataset{
		FeatureNames: names,
		X: [][]float64{
			mk(1, 0.5, 2, 0.25),
			mk(5, 2.0, 3, 1.0),
		},
		Y: []float64{1, 2},
	}
	div, err := NormalizeTimes(d)
	if err != nil {
		t.Fatal(err)
	}
	if div != 4 { // cpu_time_a range: 5 - 1
		t.Fatalf("divisor %v, want 4", div)
	}
	if d.X[0][0] != 0.25 || d.X[0][1] != 0.125 {
		t.Errorf("normalized times %v %v", d.X[0][0], d.X[0][1])
	}
	// Mix columns untouched.
	if math.Abs(d.X[0][2+int(isa.ALU)]-60) > 1e-9 {
		t.Errorf("mix column rescaled: %v", d.X[0][2+int(isa.ALU)])
	}
}

func TestNormalizeTimesDegenerate(t *testing.T) {
	names, _ := Names(1)
	d := &ml.Dataset{
		FeatureNames: names,
		X:            [][]float64{{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1}, {1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1}},
		Y:            []float64{1, 2},
	}
	if _, err := NormalizeTimes(d); err == nil {
		t.Error("zero cpu_time range accepted")
	}
}

func TestScaleTimes(t *testing.T) {
	names, _ := Names(1)
	x := make([]float64, len(names))
	x[0], x[1] = 8, 4 // cpu, gpu
	x[2] = 50         // mix percent must not change
	orig := append([]float64(nil), x...)
	if err := ScaleTimes(names, x, 4); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 1 || x[2] != 50 {
		t.Fatalf("scaled vector %v from %v", x, orig)
	}
	if err := ScaleTimes(names, x, 0); err == nil {
		t.Error("zero divisor accepted")
	}
	if err := ScaleTimes(names[:2], x, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNamesAreStable(t *testing.T) {
	a, _ := Names(2)
	b, _ := Names(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Names not deterministic")
	}
}
