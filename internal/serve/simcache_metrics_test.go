package serve

import (
	"net/http"
	"regexp"
	"strconv"
	"testing"

	"mapc/internal/dataset"
)

// metricValue extracts the value of a plain (unlabelled) metric from a
// Prometheus-style exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from exposition:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestSimCacheMetricsAndMemoParity pins the acceptance criteria for the
// simulation memo on the serving path: /v1/predict answers are identical
// with the memo enabled (the fixture generator runs at the default
// budget) and disabled, and /metrics reports nonzero simcache hits after
// repeated identical requests.
func TestSimCacheMetricsAndMemoParity(t *testing.T) {
	gen, _ := fixture(t)
	s := newTestServer(t, nil)
	h := s.Handler()

	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":40}}`
	for i := 0; i < 3; i++ {
		if rr := doJSON(t, h, http.MethodPost, "/v1/predict", body); rr.Code != http.StatusOK {
			t.Fatalf("request %d: code %d body %s", i, rr.Code, rr.Body)
		}
	}

	rr := doJSON(t, h, http.MethodGet, "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics code %d", rr.Code)
	}
	exp := rr.Body.String()
	if hits := metricValue(t, exp, "mapc_simcache_hits_total"); hits == 0 {
		t.Errorf("mapc_simcache_hits_total = 0 after repeated predictions; the memo is not wired into serving")
	}
	if misses := metricValue(t, exp, "mapc_simcache_misses_total"); misses == 0 {
		t.Errorf("mapc_simcache_misses_total = 0; cold prefixes were never computed")
	}
	if bytes := metricValue(t, exp, "mapc_simcache_bytes"); bytes <= 0 {
		t.Errorf("mapc_simcache_bytes = %v; no resident entries", bytes)
	}
	metricValue(t, exp, "mapc_simcache_evictions_total") // present, any value

	// Parity: a memo-disabled generator over the same config produces the
	// exact feature vector and fairness the serving (memo-on) generator
	// computed — the bit-identity guarantee observed end to end.
	cfg := gen.Config()
	cfg.SimCacheMB = 0
	coldGen, err := dataset.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := dataset.Member{Benchmark: "sift", Batch: 20}
	b := dataset.Member{Benchmark: "surf", Batch: 40}
	warmX, warmF, err := gen.FeaturesFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	coldX, coldF, err := coldGen.FeaturesFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if warmF != coldF {
		t.Errorf("fairness diverges: memo-on %v, memo-off %v", warmF, coldF)
	}
	if len(warmX) != len(coldX) {
		t.Fatalf("feature width diverges: %d vs %d", len(warmX), len(coldX))
	}
	for i := range warmX {
		if warmX[i] != coldX[i] {
			t.Errorf("feature %d diverges: memo-on %v, memo-off %v", i, warmX[i], coldX[i])
		}
	}
}
