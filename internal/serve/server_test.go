package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mapc/internal/core"
	"mapc/internal/dataset"
)

var (
	fixOnce sync.Once
	fixGen  *dataset.Generator
	fixMod  *core.Predictor
	fixErr  error
)

// fixture trains a tiny full-scheme model (sift+surf, 2 batch sizes) once
// per package: big enough to serve, fast enough for CI.
func fixture(t *testing.T) (*dataset.Generator, *core.Predictor) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Benchmarks = []string{"sift", "surf"}
		cfg.BatchSizes = []int{20, 40}
		cfg.MixedPairs = 0
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			fixErr = err
			return
		}
		corpus, err := gen.Generate()
		if err != nil {
			fixErr = err
			return
		}
		fixMod, fixErr = core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
		fixGen = gen
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixGen, fixMod
}

func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	gen, mod := fixture(t)
	cfg := Config{Model: mod, Generator: gen, Workers: 2}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestNewValidation(t *testing.T) {
	gen, mod := fixture(t)
	if _, err := New(Config{Generator: gen}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Model: mod}); err == nil {
		t.Error("nil generator accepted")
	}
	s, err := New(Config{Model: mod, Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.MaxInFlight != DefaultMaxInFlight || s.cfg.MaxBatch != DefaultMaxBatch ||
		s.cfg.RequestTimeout != DefaultRequestTimeout {
		t.Errorf("zero-value defaults not applied: %+v", s.cfg)
	}
}

func TestPredictHandlerTable(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	h := s.Handler()
	bag := func(a string, ab int, b string, bb int) string {
		return fmt.Sprintf(`{"a":{"benchmark":%q,"batch":%d},"b":{"benchmark":%q,"batch":%d}}`, a, ab, b, bb)
	}
	cases := []struct {
		name       string
		method     string
		body       string
		wantCode   int
		wantSubstr string
	}{
		{"get rejected", http.MethodGet, "", http.StatusMethodNotAllowed, "POST"},
		{"invalid json", http.MethodPost, `{`, http.StatusBadRequest, "decoding"},
		{"unknown field", http.MethodPost, `{"bagz":[]}`, http.StatusBadRequest, "unknown field"},
		{"no bags", http.MethodPost, `{}`, http.StatusBadRequest, "no bags"},
		{"half a bag", http.MethodPost, `{"a":{"benchmark":"sift","batch":20}}`, http.StatusBadRequest, "both"},
		{"unknown benchmark", http.MethodPost, bag("nosuch", 20, "surf", 20), http.StatusBadRequest, "bag 0"},
		{"empty benchmark", http.MethodPost, bag("", 20, "surf", 20), http.StatusBadRequest, "empty benchmark"},
		{"zero batch", http.MethodPost, bag("sift", 0, "surf", 20), http.StatusBadRequest, "non-positive batch"},
		{"negative batch", http.MethodPost, bag("sift", 20, "surf", -4), http.StatusBadRequest, "non-positive batch"},
		{"oversized batch list", http.MethodPost,
			fmt.Sprintf(`{"bags":[%s,%s,%s]}`, bag("sift", 20, "surf", 20), bag("sift", 20, "surf", 40), bag("sift", 40, "surf", 40)),
			http.StatusBadRequest, "exceeds the limit of 2"},
		{"ok single", http.MethodPost, bag("sift", 20, "surf", 20), http.StatusOK, "predicted_gpu_bag_time_sec"},
		{"ok batch", http.MethodPost,
			fmt.Sprintf(`{"bags":[%s,%s]}`, bag("sift", 20, "surf", 20), bag("sift", 20, "sift", 20)),
			http.StatusOK, "predicted_gpu_bag_time_sec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, h, tc.method, "/v1/predict", tc.body)
			if rr.Code != tc.wantCode {
				t.Fatalf("code %d, want %d; body %s", rr.Code, tc.wantCode, rr.Body)
			}
			if !strings.Contains(rr.Body.String(), tc.wantSubstr) {
				t.Errorf("body %q does not contain %q", rr.Body, tc.wantSubstr)
			}
		})
	}
}

// TestPredictParityAndCache proves the served value is exactly what the
// offline predict path (mapc-predict: Generator.FeaturesFor → PredictRaw)
// computes, and that a repeated bag is answered from the feature cache.
func TestPredictParityAndCache(t *testing.T) {
	gen, mod := fixture(t)
	s := newTestServer(t, nil)
	h := s.Handler()

	a := dataset.Member{Benchmark: "sift", Batch: 20}
	b := dataset.Member{Benchmark: "surf", Batch: 20}
	x, fairness, err := gen.FeaturesFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mod.PredictRaw(x)
	if err != nil {
		t.Fatal(err)
	}

	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`
	var lastCached bool
	for i := 0; i < 2; i++ {
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: code %d body %s", i, rr.Code, rr.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ModelScheme != "full" {
			t.Errorf("model_scheme %q", resp.ModelScheme)
		}
		if len(resp.Results) != 1 {
			t.Fatalf("%d results", len(resp.Results))
		}
		got := resp.Results[0]
		if got.PredictedSec != want {
			t.Errorf("request %d: served %v, offline path computed %v", i, got.PredictedSec, want)
		}
		if got.Fairness != fairness {
			t.Errorf("request %d: fairness %v, want %v", i, got.Fairness, fairness)
		}
		lastCached = got.Cached
	}
	if !lastCached {
		t.Error("second identical request was not served from the feature cache")
	}
	if s.Metrics().CacheHitRate() == 0 {
		t.Error("cache hit rate still zero after a repeated bag")
	}
	// Reversed member order hits the same canonical cache entry.
	rev := `{"a":{"benchmark":"surf","batch":20},"b":{"benchmark":"sift","batch":20}}`
	rr := doJSON(t, h, http.MethodPost, "/v1/predict", rev)
	var resp PredictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Results[0].Cached || resp.Results[0].PredictedSec != want {
		t.Errorf("reversed bag: cached=%v pred=%v, want cached hit of %v",
			resp.Results[0].Cached, resp.Results[0].PredictedSec, want)
	}
}

func TestPredictTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 30 * time.Millisecond })
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		time.Sleep(500 * time.Millisecond)
		return nil, 0, false, context.DeadlineExceeded
	}
	rr := doJSON(t, s.Handler(), http.MethodPost, "/v1/predict",
		`{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504; body %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), "deadline") {
		t.Errorf("body %q does not mention the deadline", rr.Body)
	}
}

func TestPredictSaturation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	release := make(chan struct{})
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		<-release
		return nil, 0, false, fmt.Errorf("released")
	}
	h := s.Handler()
	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`

	firstDone := make(chan int, 1)
	go func() {
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
		firstDone <- rr.Code
	}()
	waitFor(t, func() bool { return s.Metrics().InFlight() == 1 })

	rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request got %d, want 503; body %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(release)
	if code := <-firstDone; code != http.StatusInternalServerError {
		t.Errorf("first request finished with %d", code)
	}
	if s.Metrics().InFlight() != 0 {
		t.Errorf("in-flight gauge %d after drain", s.Metrics().InFlight())
	}
}

// TestShutdownDrainsInFlight starts a real listener, parks a request inside
// the handler, shuts the server down, and asserts the parked request still
// completes with 200 while new connections are refused.
func TestShutdownDrainsInFlight(t *testing.T) {
	gen, mod := fixture(t)
	s := newTestServer(t, nil)
	inHandler := make(chan struct{}, 1)
	release := make(chan struct{})
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		inHandler <- struct{}{}
		<-release
		// Real features so the response is a genuine 200.
		x, fairness, err := gen.BagFeatures(bag)
		return x, fairness, false, err
	}
	_ = mod

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/predict", "application/json",
			strings.NewReader(`{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`))
		if err != nil {
			reqDone <- -1
			return
		}
		defer resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-inHandler // the request is inside the handler

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()

	// The listener closes promptly; in-flight work keeps running.
	waitFor(t, func() bool {
		_, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		return err != nil
	})
	select {
	case code := <-reqDone:
		t.Fatalf("in-flight request finished with %d before release; shutdown did not wait", code)
	default:
	}

	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("drained request finished with %d, want 200", code)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("shutdown error: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	rr := doJSON(t, h, http.MethodGet, "/healthz", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz code %d", rr.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.ModelScheme != "full" || hr.ModelFeatures != 21 || hr.TrainedOnPoints == 0 {
		t.Errorf("healthz %+v", hr)
	}
	if rr := doJSON(t, h, http.MethodPost, "/healthz", "{}"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz got %d", rr.Code)
	}

	// One served prediction, then metrics must be non-empty and carry the
	// request + cache series.
	doJSON(t, h, http.MethodPost, "/v1/predict",
		`{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"sift","batch":20}}`)
	rr = doJSON(t, h, http.MethodGet, "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics code %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`mapc_requests_total{code="200"}`,
		"mapc_requests_inflight 0",
		`mapc_request_duration_seconds{quantile="0.5"}`,
		"mapc_request_duration_seconds_count",
		"mapc_predictions_total",
		"mapc_feature_cache_misses_total",
		"mapc_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	if rr := doJSON(t, h, http.MethodPost, "/metrics", "{}"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics got %d", rr.Code)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
