// Package mica reduces instrumented workloads to architecture-independent
// instruction-mix percentages — the role MICA 1.0 plays on top of PIN in the
// paper's feature-collection pipeline (Section V-C). The eight percentages
// correspond to rows 3-10 of Table IV.
package mica

import (
	"fmt"

	"mapc/internal/isa"
	"mapc/internal/trace"
)

// Mix is the instruction-mix report for one workload: the fraction (0..1)
// of dynamic instructions in each ISA category. Fractions sum to 1 for a
// non-empty workload.
type Mix [isa.NumCategories]float64

// Analyze computes the mix of a workload.
func Analyze(w *trace.Workload) (Mix, error) {
	if w == nil {
		return Mix{}, fmt.Errorf("mica: nil workload")
	}
	if err := w.Validate(); err != nil {
		return Mix{}, fmt.Errorf("mica: %w", err)
	}
	counts := w.TotalCounts()
	if counts.Total() == 0 {
		return Mix{}, fmt.Errorf("mica: workload %q has no instructions", w.Benchmark)
	}
	return Mix(counts.Mix()), nil
}

// Fraction returns the fraction for one category.
func (m Mix) Fraction(c isa.Category) float64 { return m[c] }

// Percent returns the percentage (0..100) for one category, the unit used
// in the paper's Table IV.
func (m Mix) Percent(c isa.Category) float64 { return m[c] * 100 }

// String renders the mix as "cat=pp.p%" pairs.
func (m Mix) String() string {
	out := ""
	for c := isa.Category(0); c < isa.NumCategories; c++ {
		if c > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.1f%%", c, m.Percent(c))
	}
	return out
}
