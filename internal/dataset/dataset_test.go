package dataset

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mapc/internal/features"
)

var (
	corpusOnce sync.Once
	corpus     *Corpus
	corpusErr  error
)

// sharedCorpus generates the default 91-run corpus once for the package.
func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		gen, err := NewGenerator(DefaultConfig())
		if err != nil {
			corpusErr = err
			return
		}
		corpus, corpusErr = gen.Generate()
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestGeneratorConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSizes = nil
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("empty batch sizes accepted")
	}
	cfg = DefaultConfig()
	cfg.Threads = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("zero threads accepted")
	}
	cfg = DefaultConfig()
	cfg.CPU.Cores = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("invalid CPU config accepted")
	}
	cfg = DefaultConfig()
	cfg.GPU.SMs = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("invalid GPU config accepted")
	}
	cfg = DefaultConfig()
	cfg.Workers = -3
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("negative worker count accepted")
	} else if !strings.Contains(err.Error(), "-3") {
		t.Errorf("negative-workers error %q does not name the value", err)
	}
}

func TestGeneratorBenchmarksValidation(t *testing.T) {
	cases := []struct {
		name       string
		benchmarks []string
		wantSubstr string
	}{
		{"empty entry", []string{"sift", ""}, "Benchmarks[1] is empty"},
		{"whitespace entry", []string{"  ", "surf"}, "Benchmarks[0] is empty"},
		{"unknown entry", []string{"sift", "nosuchbench"}, "Benchmarks[1]"},
		{"duplicate entry", []string{"sift", "surf", "sift"}, "duplicates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Benchmarks = tc.benchmarks
			_, err := NewGenerator(cfg)
			if err == nil {
				t.Fatalf("Benchmarks %v accepted", tc.benchmarks)
			}
			if !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Errorf("error %q does not contain %q", err, tc.wantSubstr)
			}
		})
	}
	// The happy path still works with an explicit subset.
	cfg := DefaultConfig()
	cfg.Benchmarks = []string{"sift", "surf"}
	if _, err := NewGenerator(cfg); err != nil {
		t.Errorf("valid subset rejected: %v", err)
	}
}

func TestCorpusShape(t *testing.T) {
	c := sharedCorpus(t)
	if len(c.Points) != 91 {
		t.Fatalf("corpus has %d points, want the paper's 91", len(c.Points))
	}
	homo, hetero := 0, 0
	for i := range c.Points {
		if c.Points[i].Homogeneous {
			homo++
		} else {
			hetero++
		}
	}
	if homo != 45 {
		t.Errorf("homogeneous points %d, want 45 (9 benchmarks x 5 batches)", homo)
	}
	if hetero != 46 {
		t.Errorf("heterogeneous points %d, want 46", hetero)
	}
	wantNames, err := features.Names(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.FeatureNames, wantNames) {
		t.Errorf("feature names %v", c.FeatureNames)
	}
	if c.CPUTimeDivisor <= 0 {
		t.Errorf("divisor %v", c.CPUTimeDivisor)
	}
}

func TestCorpusPointInvariants(t *testing.T) {
	c := sharedCorpus(t)
	for i := range c.Points {
		p := &c.Points[i]
		if len(p.X) != len(c.FeatureNames) {
			t.Fatalf("point %d width %d", i, len(p.X))
		}
		if p.Y <= 0 {
			t.Errorf("point %d target %v", i, p.Y)
		}
		if p.Fairness <= 0 || p.Fairness > 1 {
			t.Errorf("point %d fairness %v", i, p.Fairness)
		}
		for j := 0; j < 2; j++ {
			if p.CPUTimes[j] <= 0 || p.GPUTimes[j] <= 0 {
				t.Errorf("point %d member %d times %v %v", i, j, p.CPUTimes[j], p.GPUTimes[j])
			}
		}
		// The bag can't finish before its slowest member's isolated run.
		slowest := math.Max(p.GPUTimes[0], p.GPUTimes[1])
		if p.Y < slowest*0.999 {
			t.Errorf("point %d bag time %v below isolated max %v", i, p.Y, slowest)
		}
		if p.Homogeneous && p.Members[0] != p.Members[1] {
			t.Errorf("point %d flagged homogeneous with members %v", i, p.Members)
		}
	}
}

func TestCanonicalOrdering(t *testing.T) {
	c := sharedCorpus(t)
	// With CanonicalOrder, member a is always the CPU-heavier one.
	for i := range c.Points {
		p := &c.Points[i]
		if p.CPUTimes[0] < p.CPUTimes[1] {
			t.Errorf("point %d members not canonical: cpu %v < %v",
				i, p.CPUTimes[0], p.CPUTimes[1])
		}
	}
}

func TestDatasetView(t *testing.T) {
	c := sharedCorpus(t)
	d := c.Dataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(c.Points) {
		t.Fatalf("dataset rows %d", d.Len())
	}
	// The view shares storage: normalization already applied to points.
	if d.X[0][0] != c.Points[0].X[0] {
		t.Error("dataset does not share point storage")
	}
}

func TestBenchmarkNamesAndContains(t *testing.T) {
	c := sharedCorpus(t)
	names := c.BenchmarkNames()
	if len(names) != 9 {
		t.Fatalf("benchmark names %v", names)
	}
	for i := range c.Points {
		p := &c.Points[i]
		if !c.ContainsBenchmark(i, p.Members[0].Benchmark) {
			t.Errorf("point %d does not contain its own member", i)
		}
		if c.ContainsBenchmark(i, "not-a-benchmark") {
			t.Errorf("point %d contains a phantom benchmark", i)
		}
	}
}

func TestMeasurePointDeterministic(t *testing.T) {
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := Member{Benchmark: "fast", Batch: 20}
	b := Member{Benchmark: "hog", Batch: 20}
	p1, err := gen.MeasurePoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gen.MeasurePoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("MeasurePoint not deterministic")
	}
	// Canonical ordering makes the pair order-insensitive.
	p3, err := gen.MeasurePoint(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p3) {
		t.Fatal("MeasurePoint depends on argument order despite canonicalization")
	}
}

func TestFeaturesForMatchesMeasurePoint(t *testing.T) {
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := Member{Benchmark: "sift", Batch: 20}
	b := Member{Benchmark: "knn", Batch: 20}
	x, fairness, err := gen.FeaturesFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.MeasurePoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fairness-p.Fairness) > 1e-12 {
		t.Errorf("fairness %v vs point %v", fairness, p.Fairness)
	}
	// FeaturesFor is raw; the point was normalized by the corpus divisor
	// only during Generate (not in MeasurePoint alone), so the raw
	// vectors must agree directly here.
	if len(x) != len(p.X) {
		t.Fatalf("widths differ: %d vs %d", len(x), len(p.X))
	}
	for j := range x {
		if math.Abs(x[j]-p.X[j]) > 1e-9 {
			t.Errorf("column %d: %v vs %v", j, x[j], p.X[j])
		}
	}
}

func TestMeasurePointUnknownBenchmark(t *testing.T) {
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.MeasurePoint(Member{Benchmark: "nope", Batch: 20},
		Member{Benchmark: "fast", Batch: 20}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	// Full double-generation is expensive; compare a fingerprint of the
	// shared corpus against a freshly generated one.
	c1 := sharedCorpus(t)
	gen, err := NewGenerator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Points) != len(c2.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(c1.Points), len(c2.Points))
	}
	for i := range c1.Points {
		if c1.Points[i].Y != c2.Points[i].Y {
			t.Fatalf("point %d target differs across generations", i)
		}
		if !reflect.DeepEqual(c1.Points[i].X, c2.Points[i].X) {
			t.Fatalf("point %d features differ across generations", i)
		}
	}
}
