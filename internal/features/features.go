// Package features assembles the Table-IV feature vectors the predictor
// consumes: per application, the CPU execution time, the single-instance
// GPU execution time and the eight instruction-mix percentages; per bag,
// the fairness metric. Heterogeneous bags replicate the per-application
// block once per member (Section V-A1), and time-valued features are
// normalized by the range of the CPU-time feature over the training data
// (Section V-C).
package features

import (
	"errors"
	"fmt"
	"strings"

	"mapc/internal/isa"
	"mapc/internal/mica"
	"mapc/internal/ml"
)

// PerApp is the number of per-application features: CPU time, GPU time and
// the eight mix percentages.
const PerApp = 2 + int(isa.NumCategories)

// Kinds of features, used to aggregate replicated columns in the decision
// path analyses (Figures 10-12).
const (
	KindCPUTime  = "cpu_time"
	KindGPUTime  = "gpu_time"
	KindFairness = "fairness"
)

// appSuffixes label the per-application blocks of the replicated vector.
var appSuffixes = []string{"_a", "_b", "_c", "_d", "_e", "_f", "_g", "_h"}

// MaxApps is the largest bag size the replicated-vector scheme supports
// (one suffix per member).
var MaxApps = len(appSuffixes)

// Names returns the feature-column names for a bag of nApps applications:
// the per-app block repeated with _a/_b/... suffixes, then "fairness".
func Names(nApps int) ([]string, error) {
	if nApps < 1 || nApps > len(appSuffixes) {
		return nil, fmt.Errorf("features: unsupported bag size %d", nApps)
	}
	var out []string
	for a := 0; a < nApps; a++ {
		sfx := appSuffixes[a]
		out = append(out, KindCPUTime+sfx, KindGPUTime+sfx)
		for c := isa.Category(0); c < isa.NumCategories; c++ {
			out = append(out, c.String()+sfx)
		}
	}
	return append(out, KindFairness), nil
}

// BagSizeForWidth inverts Names: given a full-width raw feature vector
// length (nApps*PerApp + 1 for the trailing fairness column), it returns
// the bag size the vector was built for. This is how a consumer of a
// persisted model (mapc-serve) recovers the bag shape the model was
// trained on without any side-channel metadata.
func BagSizeForWidth(width int) (int, error) {
	n := width - 1 // fairness column
	if n <= 0 || n%PerApp != 0 {
		return 0, fmt.Errorf("features: width %d is not a replicated bag vector (want nApps*%d+1)", width, PerApp)
	}
	nApps := n / PerApp
	if nApps > MaxApps {
		return 0, fmt.Errorf("features: width %d implies a %d-app bag, beyond the supported maximum of %d", width, nApps, MaxApps)
	}
	return nApps, nil
}

// Kind strips the application suffix from a feature name, mapping e.g.
// "cpu_time_b" to "cpu_time" and "fairness" to itself.
func Kind(name string) string {
	for _, sfx := range appSuffixes {
		if cut, ok := strings.CutSuffix(name, sfx); ok {
			return cut
		}
	}
	return name
}

// KindNames returns the distinct feature kinds in canonical order: the
// Table-IV rows.
func KindNames() []string {
	out := []string{KindCPUTime, KindGPUTime}
	for c := isa.Category(0); c < isa.NumCategories; c++ {
		out = append(out, c.String())
	}
	return append(out, KindFairness)
}

// App is one application's measured per-app features.
type App struct {
	// CPUTimeSec is the isolated multicore execution time.
	CPUTimeSec float64
	// GPUTimeSec is the isolated single-instance GPU execution time.
	GPUTimeSec float64
	// Mix is the MICA instruction mix.
	Mix mica.Mix
}

// vector renders the app's per-app feature block. Mix features are stored
// as percentages, matching Table IV.
func (a *App) vector() []float64 {
	out := make([]float64, 0, PerApp)
	out = append(out, a.CPUTimeSec, a.GPUTimeSec)
	for c := isa.Category(0); c < isa.NumCategories; c++ {
		out = append(out, a.Mix.Percent(c))
	}
	return out
}

// BagVector builds the full feature vector for a bag: replicated per-app
// blocks followed by the fairness value. Bags carry at least two members
// (a single application has no co-runners, hence no fairness to report)
// and at most MaxApps.
func BagVector(apps []App, fairness float64) ([]float64, error) {
	if len(apps) == 0 {
		return nil, errors.New("features: empty bag")
	}
	if len(apps) == 1 {
		return nil, errors.New("features: single-member bag has no co-runners; bags carry at least 2 applications")
	}
	if len(apps) > len(appSuffixes) {
		return nil, fmt.Errorf("features: unsupported bag size %d (max %d)", len(apps), MaxApps)
	}
	if fairness <= 0 || fairness > 1 {
		return nil, fmt.Errorf("features: fairness %v outside (0,1]", fairness)
	}
	var out []float64
	for i := range apps {
		out = append(out, apps[i].vector()...)
	}
	return append(out, fairness), nil
}

// ScaleTimes divides the time-valued entries of a single feature vector by
// divisor — the transform a trained predictor applies to fresh inputs using
// the divisor captured from its training corpus.
func ScaleTimes(names []string, x []float64, divisor float64) error {
	if len(names) != len(x) {
		return fmt.Errorf("features: %d names for %d values", len(names), len(x))
	}
	if divisor <= 0 {
		return errors.New("features: non-positive time divisor")
	}
	for j, n := range names {
		switch Kind(n) {
		case KindCPUTime, KindGPUTime:
			x[j] /= divisor
		}
	}
	return nil
}

// NormalizeTimes rescales every time-valued column of the dataset by the
// range (max-min) of the first CPU-time column, the normalization of
// Section V-C. It mutates the dataset's rows in place and returns the
// divisor used. Trees are invariant to this monotone rescaling; it matters
// for the SVR/linear baselines.
func NormalizeTimes(d *ml.Dataset) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	cpuCol := -1
	var timeCols []int
	for j, n := range d.FeatureNames {
		switch Kind(n) {
		case KindCPUTime:
			if cpuCol < 0 {
				cpuCol = j
			}
			timeCols = append(timeCols, j)
		case KindGPUTime:
			timeCols = append(timeCols, j)
		}
	}
	if cpuCol < 0 {
		return 0, errors.New("features: dataset has no cpu_time column")
	}
	min, max := d.X[0][cpuCol], d.X[0][cpuCol]
	for _, row := range d.X {
		v := row[cpuCol]
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	div := max - min
	if div <= 0 {
		return 0, errors.New("features: degenerate cpu_time range")
	}
	for _, row := range d.X {
		for _, j := range timeCols {
			row[j] /= div
		}
	}
	return div, nil
}
