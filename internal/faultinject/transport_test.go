package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newEchoServer(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, NetSite(srv.URL)
}

func TestNetSite(t *testing.T) {
	cases := map[string]string{
		"http://127.0.0.1:8080":  "net.127.0.0.1:8080",
		"http://127.0.0.1:8080/": "net.127.0.0.1:8080",
		"127.0.0.1:9090":         "net.127.0.0.1:9090",
	}
	for in, want := range cases {
		if got := NetSite(in); got != want {
			t.Errorf("NetSite(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTransportPassthrough(t *testing.T) {
	srv, _ := newEchoServer(t, "hello")
	client := &http.Client{Transport: NewTransport(nil, Plan{})}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("passthrough GET: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "hello" {
		t.Fatalf("body = %q, want hello", b)
	}
}

func TestTransportConnectionReset(t *testing.T) {
	srv, site := newEchoServer(t, "hello")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: 1, Kind: KindError}}})
	client := &http.Client{Transport: tr}

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("request 0 should pass: %v", err)
	}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("request 1 should fail with injected reset")
	}
	var inj *Error
	if !errors.As(err, &inj) || inj.Site != site || inj.Index != 1 {
		t.Fatalf("want *Error at %s[1], got %v", site, err)
	}
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("request 2 should pass: %v", err)
	}
	if got := tr.Requests(site); got != 3 {
		t.Fatalf("Requests(%s) = %d, want 3", site, got)
	}
}

func TestTransportBlackholeUntilContextDone(t *testing.T) {
	srv, site := newEchoServer(t, "hello")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: AnyIndex, Kind: KindBlackhole}}})
	client := &http.Client{Transport: tr}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("black-holed request should fail")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("black-hole returned after %v, before the context deadline", elapsed)
	}
}

func TestTransportHTTPError(t *testing.T) {
	srv, site := newEchoServer(t, "hello")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: 0, Kind: KindHTTPError, Code: 502}}})
	client := &http.Client{Transport: tr}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("injected 5xx should be a response, not a transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "faultinject") {
		t.Fatalf("body %q should name the injection", b)
	}
}

func TestTransportTruncateBody(t *testing.T) {
	long := strings.Repeat("x", 4096)
	srv, site := newEchoServer(t, long)
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: 0, Kind: KindTruncateBody, KeepBytes: 100}}})
	client := &http.Client{Transport: tr}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncated response should still connect: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("reading a truncated body should fail")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
	if len(b) > 100 {
		t.Fatalf("read %d bytes, want <= 100", len(b))
	}
}

func TestTransportTruncateKeepLargerThanBody(t *testing.T) {
	srv, site := newEchoServer(t, "tiny")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: 0, Kind: KindTruncateBody, KeepBytes: 1 << 20}}})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "tiny" {
		t.Fatalf("keep window larger than body should read cleanly; got %q, %v", b, err)
	}
}

func TestTransportDelayThenForward(t *testing.T) {
	srv, site := newEchoServer(t, "slow")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: 0, Kind: KindDelay, Delay: 30 * time.Millisecond}}})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 30ms", elapsed)
	}
}

func TestTransportFromWindow(t *testing.T) {
	srv, site := newEchoServer(t, "ok")
	tr := NewTransport(nil, Plan{Faults: []Fault{{Site: site, Index: AnyIndex, From: 3, Kind: KindError}}})
	client := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		if _, err := client.Get(srv.URL); err != nil {
			t.Fatalf("request %d before the window should pass: %v", i, err)
		}
	}
	for i := 3; i < 6; i++ {
		if _, err := client.Get(srv.URL); err == nil {
			t.Fatalf("request %d inside the window should fail", i)
		}
	}
}

func TestInjectorFromWindow(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: AnyIndex, From: 2, Kind: KindError}}})
	for i := 0; i < 2; i++ {
		if err := Fire(in, "s", i); err != nil {
			t.Fatalf("index %d before the window: %v", i, err)
		}
	}
	if err := Fire(in, "s", 2); err == nil {
		t.Fatal("index 2 should fire")
	}
}

func TestTransportConcurrentUse(t *testing.T) {
	srv, site := newEchoServer(t, "ok")
	tr := NewTransport(nil, RandomNetworkPlan(42, site, 64))
	client := &http.Client{Transport: tr}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				resp, err := client.Get(srv.URL)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := tr.Requests(site); got != 128 {
		t.Fatalf("Requests = %d, want 128", got)
	}
}

func TestRandomNetworkPlanDeterministic(t *testing.T) {
	a := RandomNetworkPlan(7, "net.x:1", 256)
	b := RandomNetworkPlan(7, "net.x:1", 256)
	if len(a.Faults) == 0 {
		t.Fatal("plan should contain faults")
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	c := RandomNetworkPlan(8, "net.x:1", 256)
	same := len(a.Faults) == len(c.Faults)
	if same {
		for i := range a.Faults {
			if a.Faults[i] != c.Faults[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should yield different plans")
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("blackhole|net.127.0.0.1:18081|200+, http-error|net.a:1|*|code=502;once, delay|net.b:2|5|delay=15ms, truncate-body|net.c:3|0|keep=32")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	want := []Fault{
		{Site: "net.127.0.0.1:18081", Index: AnyIndex, From: 200, Kind: KindBlackhole},
		{Site: "net.a:1", Index: AnyIndex, Kind: KindHTTPError, Code: 502, Once: true},
		{Site: "net.b:2", Index: 5, Kind: KindDelay, Delay: 15 * time.Millisecond},
		{Site: "net.c:3", Index: 0, Kind: KindTruncateBody, KeepBytes: 32},
	}
	if len(plan.Faults) != len(want) {
		t.Fatalf("got %d faults, want %d", len(plan.Faults), len(want))
	}
	for i := range want {
		if plan.Faults[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, plan.Faults[i], want[i])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus|net.a:1|0",
		"error|net.a:1",
		"error||0",
		"error|net.a:1|-1",
		"error|net.a:1|x+",
		"http-error|net.a:1|0|code=99",
		"delay|net.a:1|0|delay=notadur",
		"truncate-body|net.a:1|0|keep=-3",
		"error|net.a:1|0|wat=1",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) should fail", spec)
		}
	}
}

func TestFaultStringFromWindow(t *testing.T) {
	f := Fault{Site: "net.a:1", Index: AnyIndex, From: 200, Kind: KindBlackhole}
	if got := f.String(); got != "blackhole@net.a:1[200+]" {
		t.Fatalf("String = %q", got)
	}
}
