package vision

import (
	"math"
	"sort"

	"mapc/internal/trace"
	"mapc/internal/xrand"
)

// ORB implements Oriented-FAST and Rotated-BRIEF (Rublee et al.): FAST
// corners over an image pyramid, orientation by the intensity centroid, and
// 256-bit steered BRIEF binary descriptors.
type ORB struct {
	Levels      int // pyramid levels
	MaxFeatures int // features retained per image (score-ranked)
	fast        *FAST
	pattern     [256][4]int // (x1,y1,x2,y2) BRIEF test pairs
}

// NewORB returns a 3-level, 256-feature ORB.
func NewORB() *ORB {
	o := &ORB{Levels: 3, MaxFeatures: 256, fast: NewFAST()}
	// The BRIEF sampling pattern: deterministic Gaussian-distributed test
	// pairs inside a 31x31 patch, as in the reference implementation.
	rng := xrand.New(0x0B21EF)
	for i := range o.pattern {
		for j := 0; j < 4; j++ {
			v := int(rng.NormFloat64() * 6)
			if v > 14 {
				v = 14
			} else if v < -14 {
				v = -14
			}
			o.pattern[i][j] = v
		}
	}
	return o
}

// Name implements Benchmark.
func (o *ORB) Name() string { return "orb" }

// Scene implements Benchmark.
func (o *ORB) Scene() SceneKind { return SceneTextured }

func (o *ORB) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var kpTotal int
	var hammingCheck int
	var prev [][]uint64
	for _, im := range images {
		kps, descs := o.DetectAndDescribe(im, rec)
		kpTotal += len(kps)
		// Match consecutive frames — the tracking use-case ORB serves.
		if prev != nil && len(descs) > 0 {
			rec.BeginPhase("orb-matching", int64(len(prev)+len(descs))*32, trace.PhaseOpts{
				Pattern:     trace.Random,
				Reuse:       0.3,
				Parallelism: maxInt(len(prev)*len(descs), 1),
				VectorWidth: 1,
			})
			hammingCheck += o.match(prev, descs, rec)
			rec.EndPhase()
		}
		prev = descs
	}
	n := float64(len(images))
	return map[string]float64{
		"keypoints": float64(kpTotal) / n,
		"matches":   float64(hammingCheck) / n,
	}, nil
}

// DetectAndDescribe extracts oriented FAST keypoints and BRIEF descriptors.
func (o *ORB) DetectAndDescribe(im *Image, rec *trace.Recorder) ([]Keypoint, [][]uint64) {
	// Phase 1: pyramid construction.
	rec.BeginPhase("orb-pyramid", im.Bytes()*2, trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.7,
		Parallelism: im.W * im.H,
		VectorWidth: simdWidth,
	})
	levels := make([]*Image, o.Levels)
	levels[0] = ConvolveSeparable(im, GaussianKernel1D(1.0), rec)
	for l := 1; l < o.Levels; l++ {
		levels[l] = Downsample2x(levels[l-1], rec)
	}
	rec.EndPhase()

	// Phase 2: FAST per level (instrumented inside detect).
	var all []Keypoint
	for l, lim := range levels {
		kps := o.fast.detect(lim, rec)
		for i := range kps {
			kps[i].Octave = l
		}
		all = append(all, kps...)
	}

	// Phase 3: retain the strongest features, assign orientations by the
	// intensity centroid, and build steered BRIEF descriptors. Random
	// patch gathers: branch/ALU heavy with bit packing (shift/string).
	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	if len(all) > o.MaxFeatures {
		all = all[:o.MaxFeatures]
	}
	// Footprint: the patches all overlap the pyramid level, so the phase
	// touches the image plus the descriptor output and the test pattern.
	// Parallelism: GPU BRIEF kernels assign a thread per descriptor word
	// pair, 64 threads per keypoint.
	rec.BeginPhase("orb-brief", im.Bytes()+int64(len(all))*32+256*16, trace.PhaseOpts{
		Pattern:     trace.Random,
		Reuse:       0.55,
		Parallelism: maxInt(len(all)*64, 1),
		VectorWidth: 1,
	})
	descs := make([][]uint64, len(all))
	for i := range all {
		lim := levels[all[i].Octave]
		all[i].Orientation = intensityCentroidAngle(lim, all[i].X, all[i].Y, rec)
		descs[i] = o.brief(lim, all[i], rec)
	}
	rec.EndPhase()
	return all, descs
}

// intensityCentroidAngle returns atan2(m01, m10) of the patch moments — the
// ORB orientation operator.
func intensityCentroidAngle(im *Image, x, y int, rec *trace.Recorder) float64 {
	var m01, m10 float64
	for dy := -7; dy <= 7; dy++ {
		for dx := -7; dx <= 7; dx++ {
			v := im.AtClamped(x+dx, y+dy)
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	const px = 225
	rec.Mem(px)
	rec.FP(px * 4)
	rec.Control(px)
	rec.ALU(px * 2)
	return math.Atan2(m01, m10)
}

// brief computes the 256-bit steered BRIEF descriptor as 4 uint64 words.
func (o *ORB) brief(im *Image, kp Keypoint, rec *trace.Recorder) []uint64 {
	desc := make([]uint64, 4)
	cos, sin := math.Cos(kp.Orientation), math.Sin(kp.Orientation)
	for i, p := range o.pattern {
		// Rotate both test points by the keypoint orientation.
		x1 := kp.X + int(cos*float64(p[0])-sin*float64(p[1]))
		y1 := kp.Y + int(sin*float64(p[0])+cos*float64(p[1]))
		x2 := kp.X + int(cos*float64(p[2])-sin*float64(p[3]))
		y2 := kp.Y + int(sin*float64(p[2])+cos*float64(p[3]))
		if im.AtClamped(x1, y1) < im.AtClamped(x2, y2) {
			desc[i/64] |= 1 << uint(i%64)
		}
	}
	rec.Mem(256 * 2)
	rec.FP(256 * 8) // rotations
	rec.ALU(256 * 2)
	rec.Shift(256) // bit packing
	rec.Str(256 / 8)
	rec.Control(256)
	return desc
}

// match counts cross-frame descriptor matches below a Hamming threshold.
func (o *ORB) match(a, b [][]uint64, rec *trace.Recorder) int {
	const maxDist = 64
	matches := 0
	for _, da := range a {
		best := 257
		for _, db := range b {
			if d := HammingDistance(da, db, rec); d < best {
				best = d
			}
		}
		if best <= maxDist {
			matches++
		}
	}
	rec.Control(uint64(len(a) * len(b)))
	rec.ALU(uint64(len(a) * len(b)))
	return matches
}
