package serve

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"mapc/internal/dataset"
)

// recoveredPanic is a panic caught inside the feature cache's compute
// path, converted to an error so a crashing measurement answers one 500
// instead of killing the server — and so the entry can be evicted rather
// than poisoned (see featureCache.get).
type recoveredPanic struct {
	Value any
	Stack []byte
}

func (p *recoveredPanic) Error() string {
	return fmt.Sprintf("serve: feature computation panicked: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes error panic values to errors.Is/As (mirrors
// parallel.PanicError).
func (p *recoveredPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// featureCache memoizes raw feature vectors per bag across requests. It
// reuses the measurement engine's singleflight idiom (dataset.Generator's
// per-member memo): each bag gets one entry whose sync.Once guarantees the
// shared-CPU fairness simulation runs exactly once no matter how many
// concurrent requests ask for the same bag. The generator underneath
// additionally memoizes each member's isolated runs, so even a cache miss
// on a new combination of known members only pays for the shared run.
type featureCache struct {
	compute func(bag []dataset.Member) ([]float64, float64, error)
	// canonical collapses every permutation of a bag's members into one
	// entry. Only safe when the generator's CanonicalOrder sorts members
	// itself, making BagFeatures permutation-invariant.
	canonical bool

	mu      sync.Mutex // guards entries map structure only
	entries map[string]*featureEntry
}

type featureEntry struct {
	once     sync.Once
	x        []float64
	fairness float64
	err      error
}

func newFeatureCache(gen *dataset.Generator) *featureCache {
	return &featureCache{
		compute:   gen.BagFeatures,
		canonical: gen.Config().CanonicalOrder,
		entries:   map[string]*featureEntry{},
	}
}

// key canonicalizes the bag when member order is irrelevant, returning the
// cache key and the member sequence to compute with.
func (c *featureCache) key(bag []dataset.Member) (string, []dataset.Member) {
	if c.canonical {
		s := append([]dataset.Member(nil), bag...)
		sort.Slice(s, func(i, j int) bool {
			if s[i].Benchmark != s[j].Benchmark {
				return s[i].Benchmark < s[j].Benchmark
			}
			return s[i].Batch < s[j].Batch
		})
		bag = s
	}
	return dataset.BagKeyOf(bag), bag
}

// get returns the bag's raw feature vector and fairness, computing them at
// most once. hit reports whether an entry already existed (the request
// skipped re-simulation, modulo waiting for an in-progress first computation).
// The returned slice is shared across requests — callers must not mutate it
// (core.Predictor.PredictRaw copies before scaling).
//
// A compute that panics must not poison the singleflight slot: without
// recovery, sync.Once would mark the entry done with zero values and every
// future request for the bag would get nil features forever. Instead the
// panic is recovered into a *recoveredPanic error, the entry is evicted,
// and the next request for the same bag computes fresh — the panicking bag
// costs exactly one 500.
func (c *featureCache) get(bag []dataset.Member) (x []float64, fairness float64, hit bool, err error) {
	k, canon := c.key(bag)
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &featureEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = &recoveredPanic{Value: r, Stack: debug.Stack()}
			}
		}()
		e.x, e.fairness, e.err = c.compute(canon)
	})
	if _, panicked := e.err.(*recoveredPanic); panicked {
		// Evict so a retry recomputes; every waiter that shared this
		// once.Do (and only those) observes the panic error. Guard the
		// delete against a racing retry that already installed a fresh
		// entry.
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	return e.x, e.fairness, ok, e.err
}

// Len returns the number of cached bags (including in-progress entries).
func (c *featureCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
