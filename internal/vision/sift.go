package vision

import (
	"math"

	"mapc/internal/trace"
)

// SIFT implements the scale-invariant feature transform (Lowe): a Gaussian
// scale-space pyramid, difference-of-Gaussians extrema detection across
// scale, dominant-orientation assignment, and 128-dimensional gradient
// histogram descriptors (4x4 spatial cells x 8 orientation bins).
type SIFT struct {
	Octaves    int
	Scales     int     // Gaussian images per octave (DoG has Scales-1)
	Sigma0     float64 // base blur
	PeakThresh float64 // |DoG| threshold for extrema
}

// NewSIFT returns a 3-octave, 5-scale configuration.
func NewSIFT() *SIFT {
	return &SIFT{Octaves: 3, Scales: 5, Sigma0: 1.6, PeakThresh: 2.0}
}

// Name implements Benchmark.
func (s *SIFT) Name() string { return "sift" }

// Scene implements Benchmark.
func (s *SIFT) Scene() SceneKind { return SceneTextured }

func (s *SIFT) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var kpTotal, descTotal int
	for _, im := range images {
		kps, descs := s.DetectAndDescribe(im, rec)
		kpTotal += len(kps)
		descTotal += len(descs)
	}
	n := float64(len(images))
	return map[string]float64{
		"keypoints":   float64(kpTotal) / n,
		"descriptors": float64(descTotal) / n,
	}, nil
}

// DetectAndDescribe runs the full SIFT pipeline on one image.
func (s *SIFT) DetectAndDescribe(im *Image, rec *trace.Recorder) ([]Keypoint, [][]float64) {
	// Phase 1: Gaussian pyramid. Dominated by separable convolutions —
	// the classic SSE/FP-heavy windowed streaming profile.
	pyrBytes := im.Bytes() * 2 // geometric series of octaves
	rec.BeginPhase("sift-gaussian-pyramid", pyrBytes*int64(s.Scales), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.75,
		Parallelism: im.W * im.H,
		VectorWidth: simdWidth,
	})
	pyr := make([][]*Image, s.Octaves)
	base := im
	kFactor := math.Pow(2, 1/float64(s.Scales-2))
	for o := 0; o < s.Octaves; o++ {
		pyr[o] = make([]*Image, s.Scales)
		cur := base
		for sc := 0; sc < s.Scales; sc++ {
			sigma := s.Sigma0 * math.Pow(kFactor, float64(sc))
			pyr[o][sc] = ConvolveSeparable(cur, GaussianKernel1D(sigma), rec)
			cur = pyr[o][sc]
		}
		if o+1 < s.Octaves {
			base = Downsample2x(pyr[o][s.Scales-2], rec)
		}
	}
	rec.EndPhase()

	// Phase 2: DoG + 3x3x3 extrema detection.
	rec.BeginPhase("sift-dog-extrema", pyrBytes*int64(s.Scales-1), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.7,
		Parallelism: im.W * im.H,
		VectorWidth: 1,
	})
	var kps []Keypoint
	for o := 0; o < s.Octaves; o++ {
		dogs := make([]*Image, s.Scales-1)
		for i := 0; i+1 < s.Scales; i++ {
			dogs[i] = Subtract(pyr[o][i+1], pyr[o][i], rec)
		}
		for sc := 1; sc+1 < len(dogs); sc++ {
			kps = append(kps, s.findExtrema(dogs, sc, o, rec)...)
		}
	}
	rec.EndPhase()

	// Phase 3: orientation assignment + descriptors. Gather accesses in
	// 16x16 neighbourhoods around sparse keypoints.
	rec.BeginPhase("sift-descriptors", int64(len(kps))*128*8+im.Bytes(), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.5,
		Parallelism: maxInt(len(kps), 1),
		VectorWidth: 1,
	})
	descs := make([][]float64, 0, len(kps))
	for i := range kps {
		g := pyr[kps[i].Octave][1]
		kps[i].Orientation = dominantOrientation(g, kps[i].X, kps[i].Y, rec)
		descs = append(descs, siftDescriptor(g, kps[i], rec))
	}
	rec.EndPhase()
	return kps, descs
}

// findExtrema locates pixels that are strict maxima or minima of their
// 3x3x3 scale-space neighbourhood with magnitude above the peak threshold.
func (s *SIFT) findExtrema(dogs []*Image, sc, octave int, rec *trace.Recorder) []Keypoint {
	d := dogs[sc]
	var out []Keypoint
	var probes uint64
	for y := 1; y < d.H-1; y++ {
		for x := 1; x < d.W-1; x++ {
			v := d.At(x, y)
			if v < s.PeakThresh && v > -s.PeakThresh {
				probes++
				continue
			}
			isMax, isMin := true, true
			for ds := -1; ds <= 1 && (isMax || isMin); ds++ {
				layer := dogs[sc+ds]
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if ds == 0 && dx == 0 && dy == 0 {
							continue
						}
						nv := layer.At(x+dx, y+dy)
						if nv >= v {
							isMax = false
						}
						if nv <= v {
							isMin = false
						}
					}
				}
			}
			probes += 27
			if isMax || isMin {
				scaleUp := 1 << octave
				out = append(out, Keypoint{
					X: x * scaleUp, Y: y * scaleUp,
					Score:  math.Abs(v),
					Octave: octave,
				})
			}
		}
	}
	rec.Mem(probes)
	rec.FP(probes * 2)
	rec.Control(probes * 2)
	rec.ALU(probes)
	return out
}

// dominantOrientation returns the peak of a 36-bin gradient-orientation
// histogram in a 9x9 Gaussian-weighted neighbourhood.
func dominantOrientation(g *Image, x, y int, rec *trace.Recorder) float64 {
	// Keypoint coordinates are in base-image space; clamp to this level.
	if x >= g.W {
		x = g.W - 1
	}
	if y >= g.H {
		y = g.H - 1
	}
	const bins = 36
	var hist [bins]float64
	for dy := -4; dy <= 4; dy++ {
		for dx := -4; dx <= 4; dx++ {
			gx := g.AtClamped(x+dx+1, y+dy) - g.AtClamped(x+dx-1, y+dy)
			gy := g.AtClamped(x+dx, y+dy+1) - g.AtClamped(x+dx, y+dy-1)
			mag := math.Sqrt(gx*gx + gy*gy)
			ang := math.Atan2(gy, gx) + math.Pi
			b := int(ang/(2*math.Pi)*bins) % bins
			w := math.Exp(-float64(dx*dx+dy*dy) / 32)
			hist[b] += mag * w
		}
	}
	best := 0
	for i := 1; i < bins; i++ {
		if hist[i] > hist[best] {
			best = i
		}
	}
	const px = 81
	rec.FP(px * 14)
	rec.Mem(px * 5)
	rec.Control(px + bins)
	rec.ALU(px * 2)
	return float64(best)/bins*2*math.Pi - math.Pi
}

// siftDescriptor builds the 128-d descriptor: 4x4 spatial cells over a 16x16
// window, 8 orientation bins each, rotated by the keypoint orientation and
// L2-normalized.
func siftDescriptor(g *Image, kp Keypoint, rec *trace.Recorder) []float64 {
	desc := make([]float64, 128)
	cos, sin := math.Cos(-kp.Orientation), math.Sin(-kp.Orientation)
	x0, y0 := kp.X, kp.Y
	if x0 >= g.W {
		x0 = g.W - 1
	}
	if y0 >= g.H {
		y0 = g.H - 1
	}
	for dy := -8; dy < 8; dy++ {
		for dx := -8; dx < 8; dx++ {
			// Rotate the sample offset into the keypoint frame.
			rx := cos*float64(dx) - sin*float64(dy)
			ry := sin*float64(dx) + cos*float64(dy)
			cellX := int((rx + 8) / 4)
			cellY := int((ry + 8) / 4)
			if cellX < 0 || cellX > 3 || cellY < 0 || cellY > 3 {
				continue
			}
			gx := g.AtClamped(x0+dx+1, y0+dy) - g.AtClamped(x0+dx-1, y0+dy)
			gy := g.AtClamped(x0+dx, y0+dy+1) - g.AtClamped(x0+dx, y0+dy-1)
			mag := math.Sqrt(gx*gx + gy*gy)
			ang := math.Atan2(gy, gx) - kp.Orientation
			for ang < 0 {
				ang += 2 * math.Pi
			}
			bin := int(ang/(2*math.Pi)*8) % 8
			desc[(cellY*4+cellX)*8+bin] += mag
		}
	}
	L2Normalize(desc, rec)
	const px = 256
	rec.FP(px * 16)
	rec.Mem(px * 5)
	rec.Control(px * 2)
	rec.ALU(px * 3)
	rec.Shift(px)
	return desc
}
