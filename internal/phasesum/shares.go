// Fractional-share and DRAM-bandwidth extensions of the contention model.
//
// # Fractional SM shares
//
// SharedMiss itself is share-independent by design: the exact simulators
// interleave reference streams in proportion to stream length regardless
// of how SMs are partitioned (an MPS partition changes *when* references
// issue, not *which* lines and pages they touch), so the closed-form miss
// thresholds must not depend on the share vector either — folding share
// weights into the interleave rates would move the estimates away from
// the exact co-run the oracle scores them against. What a partition does
// change is the timing model's regime: occupancy head-room, in-flight
// miss slots, and the divergence penalty all scale with the partition,
// and below roughly one SM's worth of resources they are dominated by
// granularity effects the reuse sketches cannot see. The old tier
// expressed that as a hard refusal (confidence zero below one SM), which
// cliff-rejected every skewed share vector. ShareConfidence replaces the
// cliff with a continuous effective-capacity deflation: each client's
// confidence factor falls linearly with its SM partition below one SM,
// and the thinnest client bounds the bag, because errors in its phase
// times dominate the phased schedule's makespan.
//
// # DRAM-bandwidth contention
//
// Aggregate miss traffic beyond the device bandwidth slows every client
// by the same saturation factor (the proportional interleave admits
// references in fixed ratio, so a uniform slowdown leaves each client's
// share r_i/R of the global stream — and hence every DeltaMax threshold —
// invariant). The timing tail already carries the saturated bytes/BW
// floor per phase; what saturation changes for the *model* is the
// sensitivity of the answer to miss error: a bandwidth-bound phase's time
// is pinned by bytes over bandwidth, deflating the anchored isolated
// issue rate until it saturates at the device bandwidth, so the
// threshold-straddling reuse mass that drives confidence down stops
// mattering. BandwidthConfidence therefore blends confidence toward 1 by
// the bandwidth-bound fraction. Far outside saturation the anchored
// isolated rates themselves stop ordering the phased schedule reliably;
// BandwidthGateRatio bounds that regime with a hard fallback.
package phasesum

// ShareConfidence converts a bag's SM partitioning (absolute shares, in
// SMs) into a confidence factor in [0,1]: 1 while every client holds at
// least one full SM, deflating linearly with the thinnest client's
// partition below that. Multiplied into the run confidence, it replaces
// the former sub-SM hard refusal — near-integer partitions now pass the
// mixed gate, while extreme skew (well under one SM) still demotes the
// run to exact simulation.
func ShareConfidence(smShares []float64) float64 {
	conf := 1.0
	for _, s := range smShares {
		if s <= 0 {
			return 0
		}
		if s < conf {
			conf = s
		}
	}
	return conf
}

// BandwidthDemand is one client's modelled DRAM pressure: Bytes of miss
// traffic (per-phase sampled refs x modelled L2 miss x line size, summed)
// spread over Sec, the anchored model time the traffic is issued in.
type BandwidthDemand struct {
	Bytes float64
	Sec   float64
}

// BandwidthBoundFrac returns the bag's bandwidth-bound fraction: the
// share of the aggregate demanded DRAM rate that exceeds the device
// bandwidth bw, i.e. 1 - bw/D for total demand D > bw and 0 when the bag
// fits. It is the degree to which phase times are pinned by bytes over
// bandwidth rather than by per-miss latency.
func BandwidthBoundFrac(bw float64, demands []BandwidthDemand) float64 {
	total := TotalBandwidthDemand(demands)
	if bw <= 0 || total <= bw {
		return 0
	}
	return 1 - bw/total
}

// TotalBandwidthDemand sums the clients' demanded DRAM rates in bytes/sec
// (clients with no modelled time contribute nothing).
func TotalBandwidthDemand(demands []BandwidthDemand) float64 {
	var total float64
	for _, d := range demands {
		if d.Sec > 0 {
			total += d.Bytes / d.Sec
		}
	}
	return total
}

// BandwidthConfidence folds DRAM saturation into the model confidence:
// conf + (1-conf)*boundFrac. A fully bandwidth-bound bag (boundFrac 1) is
// insensitive to which side of the LRU capacity threshold its boundary
// reuse mass lands on — its phase times are bytes/bandwidth either way —
// so the threshold-instability discount confidence encodes is forgiven in
// proportion to the bound fraction.
func BandwidthConfidence(conf, boundFrac float64) float64 {
	return conf + (1-conf)*Clamp01(boundFrac)
}

// BandwidthGateRatio bounds the DRAM-contention regime: once aggregate
// demand exceeds the device bandwidth by this factor, the anchored
// isolated rates the model spreads traffic over ignore so much queueing
// that the phased completion order itself becomes unreliable, and the
// mixed tier falls back to exact simulation. The vision suite's heaviest
// bags sit well under this; it is a pure regime guard.
const BandwidthGateRatio = 8.0

// FallbackReason classifies why a mixed-tier co-run was answered by the
// exact simulator instead of the analytic model.
type FallbackReason string

const (
	// FallbackNone marks runs the analytic model answered, and exact runs
	// that were exact by configuration rather than by gating.
	FallbackNone FallbackReason = ""
	// FallbackLowConfidence: the phase sketches' own confidence (boundary
	// reuse mass near the capacity threshold) fell under the gate.
	FallbackLowConfidence FallbackReason = "low_confidence"
	// FallbackSubSMShare: the share penalty (a client's partition well
	// under one SM) pushed an otherwise-confident run under the gate.
	FallbackSubSMShare FallbackReason = "sub_sm_share"
	// FallbackBandwidthGate: aggregate DRAM demand exceeded the device
	// bandwidth by more than BandwidthGateRatio.
	FallbackBandwidthGate FallbackReason = "bandwidth_gate"
)

// RunKind classifies which simulator answered a fidelity-tier co-run.
type RunKind struct {
	// UsedExact reports whether the exact simulator produced the result
	// (exact fidelity, single-client runs, and mixed-tier fallbacks).
	UsedExact bool
	// Fallback records, for mixed-tier fallbacks only, which gate bounced
	// the run; FallbackNone for analytic answers and for runs that were
	// exact by configuration.
	Fallback FallbackReason
}
