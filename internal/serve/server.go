// Package serve is the production prediction service over the trained
// predictor: an HTTP layer that answers "how long will this k-application
// bag take on the GPU?" — the per-job query a multi-tenant scheduler issues
// (Section V's end product, framed as an online service). The bag size is
// inferred from the loaded model's feature width (the paper's models are
// 2-application); requests whose bag size differs from the trained k are
// rejected with a descriptive 400.
//
// The server warm-loads a persisted model (or the caller trains one at
// startup), validates every request against the benchmark registry and the
// model's feature contract, and serves:
//
//	POST /v1/predict  — single or batched bags, fanned out over the
//	                    measurement worker pool
//	GET  /healthz     — liveness + model identity
//	GET  /metrics     — Prometheus-style text metrics (stdlib only)
//
// Robustness: a bounded in-flight limiter sheds load with 503 before work
// is admitted, every request carries a deadline (504 on expiry), and
// Shutdown drains in-flight requests for graceful SIGTERM handling.
// Feature vectors are memoized across requests in a singleflight cache
// layered on dataset.Generator's per-member memo, so repeated bags skip
// re-simulation entirely.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/parallel"
	"mapc/internal/vision"
)

// Defaults for Config zero values.
const (
	DefaultMaxInFlight    = 64
	DefaultMaxBatch       = 64
	DefaultRequestTimeout = 30 * time.Second
	// DefaultBrownoutWatermark is the in-flight fraction of MaxInFlight at
	// which fresh admissions start answering from the fast fidelity tier.
	DefaultBrownoutWatermark = 0.75
	// DefaultDegradedMultiplier sizes the degraded admission pool relative
	// to MaxInFlight: fast-tier answers are ~250x cheaper than exact
	// simulation, so the brownout tier can admit well past the exact cap
	// before shedding.
	DefaultDegradedMultiplier = 4
	// maxBodyBytes bounds request bodies; a MaxBatch bag list is well
	// under 1 MiB.
	maxBodyBytes = 1 << 20
)

// Config configures a prediction server.
type Config struct {
	// Model is the trained predictor; required. Its feature width must be
	// a replicated bag vector (nApps*features.PerApp+1); the bag size it
	// was trained for is inferred from it at startup.
	Model *core.Predictor
	// Generator measures fresh bags; required. Its member-level memo is
	// shared with the feature cache, so one long-lived generator serves
	// every request.
	Generator *dataset.Generator
	// MaxInFlight bounds concurrently admitted /v1/predict requests;
	// excess requests are shed with 503. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// MaxBatch bounds bags per request (400 beyond it). 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// RequestTimeout is the per-request deadline (504 on expiry). 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Workers sizes the per-request measurement fan-out (parallel.ForEach
	// semantics: 0 = NumCPU, 1 = serial).
	Workers int
	// FeatureCacheMB bounds the cross-request feature cache in MiB; the
	// least-recently-used bags are evicted past it (an eviction costs
	// re-simulation on next sight, never a wrong answer). 0 means
	// DefaultFeatureCacheMB; negative values are rejected — the cache is
	// also the singleflight layer, so it cannot be disabled.
	FeatureCacheMB int
	// BrownoutWatermark is the in-flight fraction of MaxInFlight at which
	// new admissions answer from the fast fidelity tier instead of
	// shedding ("degraded": true in the response). 0 disables brownout
	// (the legacy shed-only admission, and the backward-compatible
	// default); values in (0, 1] enable it — mapc-serve defaults its flag
	// to DefaultBrownoutWatermark. Negative values and values above 1 are
	// rejected.
	BrownoutWatermark float64
	// MaxDegradedInFlight bounds the extra degraded-admission pool used
	// once the exact pool saturates; only past both pools does the server
	// shed 503. 0 means DefaultDegradedMultiplier*MaxInFlight; negative is
	// rejected. Ignored when brownout is disabled.
	MaxDegradedInFlight int
}

// Server is the HTTP prediction service. Create with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *featureCache
	// trainedK is the bag size the model was trained for, inferred from
	// its feature width at startup.
	trainedK int
	// featuresFn resolves a bag to its raw feature vector; defaults to the
	// shared cache and is swappable in tests (e.g. to inject slowness).
	// degradedFn is its brownout counterpart: the fast fidelity tier in a
	// separate cache namespace.
	featuresFn func(bag []dataset.Member) (x []float64, fairness float64, hit bool, err error)
	degradedFn func(bag []dataset.Member) (x []float64, fairness float64, hit bool, err error)
	inflight   chan struct{}
	// degradedSlots is the brownout admission pool, sized past MaxInFlight
	// because fast-tier answers are orders of magnitude cheaper; nil when
	// brownout is disabled. watermark is the in-flight count at which
	// fresh admissions degrade.
	degradedSlots chan struct{}
	watermark     int

	mu      sync.Mutex
	httpSrv *http.Server
}

// New validates the config and returns a ready-to-serve server. The model's
// feature contract is checked against the replicated-bag featurizer here so
// a mismatched model is refused at startup, not at first request; the bag
// size it was trained for (k) is recovered from its feature width.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: nil model")
	}
	if cfg.Generator == nil {
		return nil, errors.New("serve: nil generator")
	}
	trainedK, err := features.BagSizeForWidth(cfg.Model.NumFeatures())
	if err != nil {
		return nil, fmt.Errorf(
			"serve: model (scheme %q) was trained on an unrecognizable bag shape: %w",
			cfg.Model.Scheme().Name, err)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.FeatureCacheMB < 0 {
		return nil, fmt.Errorf("serve: negative feature cache budget %d MB (0 means the %d MB default; the cache cannot be disabled)",
			cfg.FeatureCacheMB, DefaultFeatureCacheMB)
	}
	if cfg.BrownoutWatermark > 1 || cfg.BrownoutWatermark < 0 {
		return nil, fmt.Errorf("serve: brownout watermark %g outside [0, 1] (a fraction of MaxInFlight; 0 disables brownout)", cfg.BrownoutWatermark)
	}
	if cfg.MaxDegradedInFlight < 0 {
		return nil, fmt.Errorf("serve: negative degraded in-flight bound %d (0 means %d×MaxInFlight)", cfg.MaxDegradedInFlight, DefaultDegradedMultiplier)
	}
	if cfg.MaxDegradedInFlight == 0 {
		cfg.MaxDegradedInFlight = DefaultDegradedMultiplier * cfg.MaxInFlight
	}
	s := &Server{
		cfg:      cfg,
		metrics:  NewMetrics(),
		cache:    newFeatureCache(cfg.Generator, cfg.FeatureCacheMB),
		trainedK: trainedK,
		inflight: make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.BrownoutWatermark > 0 {
		s.degradedSlots = make(chan struct{}, cfg.MaxDegradedInFlight)
		s.watermark = int(cfg.BrownoutWatermark * float64(cfg.MaxInFlight))
		if s.watermark < 1 {
			s.watermark = 1
		}
	}
	// /metrics reports the generator's simulation-memo counters alongside
	// the request-level feature cache: the feature cache dedupes repeated
	// bags, the simcache dedupes the pure simulation prefixes *inside*
	// fresh bags.
	s.metrics.SetSimCacheSource(cfg.Generator.SimCacheStats)
	s.metrics.SetFeatureCacheSource(s.cache.Stats)
	s.metrics.SetFidelitySource(cfg.Generator.FidelityStats)
	s.featuresFn = s.cachedFeatures
	s.degradedFn = s.cachedDegradedFeatures
	return s, nil
}

// cachedFeatures is the default featuresFn: the cross-request singleflight
// cache with hit/miss accounting.
func (s *Server) cachedFeatures(bag []dataset.Member) ([]float64, float64, bool, error) {
	x, fairness, hit, err := s.cache.get(bag)
	if err == nil {
		if hit {
			s.metrics.CacheHit()
		} else {
			s.metrics.CacheMiss()
		}
	}
	return x, fairness, hit, err
}

// cachedDegradedFeatures is the default degradedFn: the fast fidelity tier
// under the same singleflight cache, in its own key namespace.
func (s *Server) cachedDegradedFeatures(bag []dataset.Member) ([]float64, float64, bool, error) {
	x, fairness, hit, err := s.cache.getDegraded(bag)
	if err == nil {
		if hit {
			s.metrics.CacheHit()
		} else {
			s.metrics.CacheMiss()
		}
	}
	return x, fairness, hit, err
}

// Metrics exposes the server's metrics (for tests and embedding callers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheLen returns the number of feature-cache entries (published and in
// flight) — the /healthz cached_bags figure, exported for cluster tests
// and snapshot logging.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Handler returns the service's HTTP handler. Every route is wrapped in
// the panic-recovery middleware: a panicking request answers 500 and bumps
// mapc_serve_panics_total while the process keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/cache/snapshot", s.handleCacheSnapshot)
	mux.HandleFunc("/v1/cache/entry", s.handleCacheEntry)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

// statusTrackingWriter remembers whether a status line has been written,
// so the recovery middleware only attempts a 500 when the response is
// still unsent.
type statusTrackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusTrackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusTrackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// recoverPanics is the per-request panic containment layer: one crashing
// handler (or anything it calls outside the worker pool's own recovery)
// must cost one 500, never the process. The stack is logged server-side
// and kept out of the response body.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &statusTrackingWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Panic()
				log.Printf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if !tw.wrote {
					s.metrics.ObserveOther(writeJSON(tw, http.StatusInternalServerError,
						ErrorResponse{"internal error: request handler panicked (see server logs)"}))
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// panicRelated reports whether err stems from a recovered panic — either
// the measurement pool's parallel.PanicError or the feature cache's
// recoveredPanic — and therefore should count in mapc_serve_panics_total
// and answer with a generic 500 (stacks stay in the server log).
func panicRelated(err error) bool {
	var pe *parallel.PanicError
	var rp *recoveredPanic
	return errors.As(err, &pe) || errors.As(err, &rp)
}

// ListenAndServe serves on addr until Shutdown or a listener error. It
// always returns a non-nil error; after Shutdown it returns
// http.ErrServerClosed like the stdlib server.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (tests use port 0 listeners).
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.mu.Lock()
	if s.httpSrv != nil {
		s.mu.Unlock()
		return errors.New("serve: Serve called twice")
	}
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests drain until ctx expires. Safe to call before Serve
// (no-op) and concurrently with it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// parseBags validates and flattens the request into a list of member
// sequences (wire types live in wire.go, shared with the cluster router).
// Every bag's size must match the model's trained bag size.
func (s *Server) parseBags(req *PredictRequest) ([][]Member, error) {
	bags, err := req.BagList()
	if err != nil {
		return nil, err
	}
	if len(bags) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch of %d bags exceeds the limit of %d", len(bags), s.cfg.MaxBatch)
	}
	for i, bag := range bags {
		if len(bag) != s.trainedK {
			return nil, fmt.Errorf(
				"bag %d carries %d application(s) but the loaded model was trained for %d-application bags; retrain with -k %d or resize the bag",
				i, len(bag), s.trainedK, len(bag))
		}
		for _, m := range bag {
			if strings.TrimSpace(m.Benchmark) == "" {
				return nil, fmt.Errorf("bag %d: empty benchmark name", i)
			}
			if _, err := vision.ByName(m.Benchmark); err != nil {
				return nil, fmt.Errorf("bag %d: %v (known: %s)", i, err, strings.Join(vision.Names(), ", "))
			}
			if m.Batch <= 0 {
				return nil, fmt.Errorf("bag %d: non-positive batch %d for %s", i, m.Batch, m.Benchmark)
			}
		}
	}
	return bags, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := s.servePredict(w, r)
	s.metrics.ObserveRequest(code, time.Since(start))
}

// servePredict does the work and returns the status code written.
func (s *Server) servePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"POST only"})
	}

	// Bounded admission with brownout, shedding only as the last resort:
	// an exact pool of MaxInFlight slots; past the watermark (or on an
	// explicit degraded-allowed header) fresh admissions answer from the
	// fast fidelity tier, drawing on a larger degraded pool — fast-tier
	// answers are orders of magnitude cheaper, so the brownout tier keeps
	// answering while the exact pool drains. Only when both pools are full
	// does the server shed 503.
	degraded := s.degradedSlots != nil && r.Header.Get(HeaderDegradedOK) != ""
	if !degraded && s.degradedSlots != nil && len(s.inflight) >= s.watermark {
		degraded = true
	}
	var slot chan struct{}
	if !degraded {
		select {
		case s.inflight <- struct{}{}:
			slot = s.inflight
		default:
			if s.degradedSlots == nil {
				s.metrics.RejectSaturated()
				w.Header().Set("Retry-After", "1")
				return writeJSON(w, http.StatusServiceUnavailable,
					ErrorResponse{fmt.Sprintf("server saturated: %d requests in flight", s.cfg.MaxInFlight)})
			}
			degraded = true
		}
	}
	if slot == nil {
		// Degraded admission: prefer the degraded pool, overflowing into
		// the exact pool (a forced-degraded request on an idle server must
		// not shed just because the degraded pool is sized for overload).
		select {
		case s.degradedSlots <- struct{}{}:
			slot = s.degradedSlots
		default:
			select {
			case s.inflight <- struct{}{}:
				slot = s.inflight
			default:
				s.metrics.RejectSaturated()
				w.Header().Set("Retry-After", "1")
				return writeJSON(w, http.StatusServiceUnavailable,
					ErrorResponse{fmt.Sprintf("server saturated: exact (%d) and degraded (%d) admission pools full",
						cap(s.inflight), cap(s.degradedSlots))})
			}
		}
	}
	// The slot tracks *work*, not the handler: simulations are not
	// cancellable mid-run, so a request that times out (504) leaves its
	// measurement goroutine running — the slot must stay held until that
	// work finishes, or a burst of slow bags would grow actual concurrent
	// computes far past the admission bound (each 504 freeing a slot for
	// the next admission while the previous simulation kept running).
	// Until the goroutine is handed the slot, the handler's own returns
	// release it.
	s.metrics.IncInFlight()
	if degraded {
		s.metrics.IncDegradedInFlight()
	}
	release := func() {
		s.metrics.DecInFlight()
		if degraded {
			s.metrics.DecDegradedInFlight()
		}
		<-slot
	}
	handedOff := false
	defer func() {
		if !handedOff {
			release()
		}
	}()

	// Honor a propagated deadline (X-Mapc-Deadline, remaining budget in
	// milliseconds — the router stamps it per attempt) when it is tighter
	// than the server's own RequestTimeout: answering a caller that has
	// already given up is wasted simulation.
	timeout := s.cfg.RequestTimeout
	if hdr := r.Header.Get(HeaderDeadline); hdr != "" {
		if ms, err := strconv.ParseInt(hdr, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.RejectValidation()
		return writeJSON(w, http.StatusBadRequest, ErrorResponse{"decoding request: " + err.Error()})
	}
	// Reject trailing data after the first JSON value ({"a":…}{"b":…},
	// {"a":…}garbage, …): the old decoder silently ignored everything past
	// the first value, masking client bugs. Token returns io.EOF only
	// when nothing but whitespace remains.
	if tok, err := dec.Token(); err != io.EOF {
		s.metrics.RejectValidation()
		return writeJSON(w, http.StatusBadRequest, ErrorResponse{fmt.Sprintf(
			"request body carries trailing data after the JSON value (next token %v); send exactly one JSON object", tok)})
	}
	bags, err := s.parseBags(&req)
	if err != nil {
		s.metrics.RejectValidation()
		return writeJSON(w, http.StatusBadRequest, ErrorResponse{err.Error()})
	}

	// Fan the bags out over the measurement worker pool, bounded by the
	// request deadline. Simulations are not cancellable mid-run; on
	// timeout the goroutine finishes in the background (still holding the
	// admission slot) and its results land in the cache for the retry.
	results := make([]BagResult, len(bags))
	done := make(chan error, 1)
	handedOff = true
	featuresFn := s.featuresFn
	if degraded {
		featuresFn = s.degradedFn
	}
	go func() {
		err := parallel.ForEach(s.cfg.Workers, len(bags), func(i int) error {
			if ctx.Err() != nil {
				return ctx.Err() // deadline hit: stop claiming new bags
			}
			bag := make([]dataset.Member, len(bags[i]))
			for j, m := range bags[i] {
				bag[j] = m.member()
			}
			label := dataset.BagKeyOf(bag)
			x, fairness, hit, err := featuresFn(bag)
			if err != nil {
				return fmt.Errorf("bag %d (%s): %w", i, label, err)
			}
			pred, err := s.cfg.Model.PredictRaw(x)
			if err != nil {
				return fmt.Errorf("bag %d (%s): %w", i, label, err)
			}
			res := BagResult{
				Members:      bags[i],
				PredictedSec: pred, Fairness: fairness, Cached: hit,
			}
			if len(bags[i]) == 2 {
				res.A, res.B = &bags[i][0], &bags[i][1]
			}
			results[i] = res
			return nil
		})
		// Release the admission slot strictly before signalling
		// completion, so a caller that saw the response can never observe
		// the slot still held.
		release()
		done <- err
	}()

	select {
	case <-ctx.Done():
		s.metrics.RejectTimeout()
		return writeJSON(w, http.StatusGatewayTimeout,
			ErrorResponse{fmt.Sprintf("deadline of %v exceeded", timeout)})
	case err := <-done:
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.metrics.RejectTimeout()
				return writeJSON(w, http.StatusGatewayTimeout,
					ErrorResponse{fmt.Sprintf("deadline of %v exceeded", timeout)})
			}
			if panicRelated(err) {
				// A measurement task died mid-flight; the worker pool (or
				// the feature cache) contained it. Log the stack, keep it
				// out of the response, and keep serving.
				s.metrics.Panic()
				log.Printf("serve: recovered panic in /v1/predict: %v", err)
				return writeJSON(w, http.StatusInternalServerError,
					ErrorResponse{"internal error: prediction task panicked (see server logs)"})
			}
			return writeJSON(w, http.StatusInternalServerError, ErrorResponse{err.Error()})
		}
	}
	s.metrics.Predictions(len(bags))
	if degraded {
		s.metrics.Degraded()
		w.Header().Set(HeaderDegraded, "1")
	}
	return writeJSON(w, http.StatusOK, PredictResponse{
		ModelScheme: s.cfg.Model.Scheme().Name,
		Results:     results,
		Degraded:    degraded,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.metrics.ObserveOther(writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"GET only"}))
		return
	}
	s.metrics.ObserveOther(writeJSON(w, http.StatusOK, HealthResponse{
		Status:          "ok",
		ModelScheme:     s.cfg.Model.Scheme().Name,
		ModelFeatures:   s.cfg.Model.NumFeatures(),
		TrainedOnPoints: s.cfg.Model.TrainedOnPoints(),
		CachedBags:      s.cache.Len(),
		InFlight:        s.metrics.InFlight(),
		UptimeSec:       time.Since(s.metrics.start).Seconds(),
		Shares:          s.cache.shares,
	}))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.metrics.ObserveOther(writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"GET only"}))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = s.metrics.WriteTo(w)
	s.metrics.ObserveOther(http.StatusOK)
}

// writeJSON writes v with the status code and returns the code.
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return code
}
