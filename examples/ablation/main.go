// Ablation: reproduce the paper's feature-scheme study (Figures 5-9 in
// miniature) and inspect the learned tree — which features its decision
// paths actually consult, and with what importance. This is the
// "explainability" workflow Section VI-C argues for.
package main

import (
	"fmt"
	"log"

	"mapc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablation: ")

	corpus, err := mapc.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}

	// Scheme sweep: the Figure-5 bars plus custom combinations.
	memCPU, err := mapc.NewScheme("mem+cputime", "mem", "cpu_time")
	if err != nil {
		log.Fatal(err)
	}
	gpuOnly, err := mapc.NewScheme("gputime", "gpu_time")
	if err != nil {
		log.Fatal(err)
	}
	schemes := []mapc.Scheme{
		mapc.SchemeInsmix, mapc.SchemeInsmixCPU,
		mapc.SchemeInsmixCPUFair, mapc.SchemeFull,
		memCPU, gpuOnly,
	}
	fmt.Println("LOOCV mean relative error by feature scheme:")
	for _, s := range schemes {
		res, err := mapc.LOOCV(corpus, s, mapc.DefaultTreeParams(), mapc.HoldOutOwn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %8.2f%%\n", s.Name, mapc.MeanLOOCVError(res))
	}

	// Decision-path analysis with the full feature set.
	res, err := mapc.LOOCV(corpus, mapc.SchemeFull, mapc.DefaultTreeParams(), mapc.HoldOutOwn)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mapc.AnalyzePaths(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfeature presence on LOOCV decision paths (Figure 10):")
	for _, k := range stats.TopKinds() {
		fmt.Printf("  %-10s in %5.1f%% of paths, %.2f uses/path\n",
			k, stats.Presence[k], stats.MeanUses[k])
	}

	// Impurity-based importances of a tree fitted on the full corpus.
	p, err := mapc.Train(corpus, mapc.SchemeFull)
	if err != nil {
		log.Fatal(err)
	}
	imps, err := p.Tree().FeatureImportances()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nimpurity-based feature importances (full-corpus tree):")
	for i, name := range p.FeatureNames() {
		if imps[i] >= 0.01 {
			fmt.Printf("  %-12s %.3f\n", name, imps[i])
		}
	}
}
