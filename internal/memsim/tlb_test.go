package memsim

import "testing"

func mustTLB(t *testing.T, entries, sources int) *TLB {
	t.Helper()
	tlb, err := NewTLB(entries, sources)
	if err != nil {
		t.Fatal(err)
	}
	return tlb
}

func TestTLBConfigErrors(t *testing.T) {
	if _, err := NewTLB(0, 1); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewTLB(4, 0); err == nil {
		t.Error("zero sources accepted")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := mustTLB(t, 4, 1)
	if tlb.Access(0, 0) {
		t.Fatal("cold translation hit")
	}
	if !tlb.Access(0, PageSize-1) {
		t.Fatal("same-page translation missed")
	}
	if tlb.Access(0, PageSize) {
		t.Fatal("next-page translation hit")
	}
}

func TestTLBSourcesAreIsolated(t *testing.T) {
	// Under MPS each client has its own address space: the same page
	// number from another source must not hit.
	tlb := mustTLB(t, 8, 2)
	tlb.Access(0, 0)
	if tlb.Access(1, 0) {
		t.Fatal("cross-source translation hit")
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := mustTLB(t, 2, 1)
	tlb.Access(0, 0)          // page 0
	tlb.Access(0, PageSize)   // page 1
	tlb.Access(0, 0)          // page 0 now MRU
	tlb.Access(0, 2*PageSize) // evicts page 1
	if !tlb.Access(0, 0) {
		t.Error("MRU page evicted")
	}
	if tlb.Access(0, PageSize) {
		t.Error("LRU page retained")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := mustTLB(t, 4, 1)
	tlb.Access(0, 0)
	tlb.Flush()
	if tlb.Access(0, 0) {
		t.Fatal("translation survived Flush")
	}
	if tlb.Flushes() != 1 {
		t.Fatalf("Flushes() = %d", tlb.Flushes())
	}
}

func TestTLBReset(t *testing.T) {
	tlb := mustTLB(t, 4, 1)
	tlb.Access(0, 0)
	tlb.Flush()
	tlb.Reset()
	if st := tlb.Stats(0); st.Accesses != 0 {
		t.Fatalf("stats after reset %+v", st)
	}
	if tlb.Flushes() != 0 {
		t.Fatal("flush count survived Reset")
	}
	if tlb.Entries() != 4 {
		t.Fatal("geometry changed by Reset")
	}
}
