package simcache

import (
	"sync"
	"testing"
	"time"
)

func okCompute(v any, bytes int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, bytes, nil }
}

// TestLookupOutcomes pins the three-way outcome: the computing caller sees
// Computed, a caller that joined the in-flight computation sees Waited, and
// a caller served by the published entry sees Hit. The distinction is what
// lets the serve layer's "cached" response field stop lying to clients.
func TestLookupOutcomes(t *testing.T) {
	c := MustNew(1 << 20)
	k := Key{Domain: "t/outcome", Config: "cfg", Workload: 1}

	entered := make(chan struct{})
	release := make(chan struct{})
	type res struct {
		v       any
		outcome Outcome
		err     error
	}
	first := make(chan res, 1)
	go func() {
		v, o, err := c.Lookup(k, func() (any, int64, error) {
			close(entered)
			<-release
			return "value", 8, nil
		})
		first <- res{v, o, err}
	}()
	<-entered

	second := make(chan res, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		v, o, err := c.Lookup(k, okCompute("wrong", 8))
		second <- res{v, o, err}
	}()
	// The waiter must attach to the in-flight entry before release; its
	// attach point is not externally observable, so give the goroutine a
	// beat after it starts (attach-after-release would surface as a
	// spurious OutcomeHit failure, never a false pass).
	<-started
	time.Sleep(20 * time.Millisecond)
	close(release)

	r1, r2 := <-first, <-second
	if r1.err != nil || r2.err != nil {
		t.Fatalf("errors: %v / %v", r1.err, r2.err)
	}
	if r1.outcome != OutcomeComputed {
		t.Errorf("computing caller got outcome %v, want OutcomeComputed", r1.outcome)
	}
	if r2.outcome != OutcomeWaited {
		t.Errorf("waiting caller got outcome %v, want OutcomeWaited", r2.outcome)
	}
	if r2.v != "value" {
		t.Errorf("waiter received %v, want the winner's value", r2.v)
	}

	v, o, err := c.Lookup(k, okCompute("also wrong", 8))
	if err != nil || v != "value" || o != OutcomeHit {
		t.Errorf("published lookup: v=%v outcome=%v err=%v, want value/OutcomeHit/nil", v, o, err)
	}

	// Counter compatibility: Hit and Waited both count as hits (the compute
	// ran once), so stats report 2 hits / 1 miss.
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats %+v, want 2 hits / 1 miss", st)
	}
}

// TestGetOrComputeDelegates keeps the legacy two-way API consistent with
// Lookup: hit=false only for the computing caller.
func TestGetOrComputeDelegates(t *testing.T) {
	c := MustNew(1 << 20)
	k := Key{Domain: "t/legacy", Config: "cfg"}
	if _, hit, _ := c.GetOrCompute(k, okCompute(1, 8)); hit {
		t.Error("first GetOrCompute reported hit=true")
	}
	if _, hit, _ := c.GetOrCompute(k, okCompute(2, 8)); !hit {
		t.Error("second GetOrCompute reported hit=false")
	}
}

// TestSeed covers warm-start publication: a seeded value is a published
// entry (Peek and Lookup hit it), an existing resident wins over a seed,
// and seeding respects the byte budget.
func TestSeed(t *testing.T) {
	c := MustNew(64)
	k := Key{Domain: "t/seed", Config: "a"}

	if !c.Seed(k, "seeded", 16) {
		t.Fatal("seed into an empty cache not resident")
	}
	if v, ok := c.Peek(k); !ok || v != "seeded" {
		t.Fatalf("Peek after Seed: %v %v", v, ok)
	}
	v, o, err := c.Lookup(k, okCompute("computed", 16))
	if err != nil || v != "seeded" || o != OutcomeHit {
		t.Fatalf("Lookup after Seed: v=%v outcome=%v err=%v", v, o, err)
	}

	// An existing resident entry wins: re-seeding the same key with a
	// different value is a no-op (entries are immutable once published),
	// reported by the false return — the duplicate was not inserted.
	if c.Seed(k, "usurper", 16) {
		t.Error("re-seed of a resident key claimed an insertion")
	}
	if v, _ := c.Peek(k); v != "seeded" {
		t.Errorf("re-seed replaced the resident value with %v", v)
	}

	// The budget applies to seeds like any other insert: an oversized seed
	// is accepted but immediately evicted, reported by the false return.
	big := Key{Domain: "t/seed", Config: "big"}
	if c.Seed(big, "huge", 1<<20) {
		t.Error("oversized seed reported resident")
	}
	if _, ok := c.Peek(big); ok {
		t.Error("oversized seed still resident")
	}

	// Nil-safety: a disabled cache accepts and drops seeds.
	var nilCache *Cache
	if nilCache.Seed(k, "x", 8) {
		t.Error("nil cache reported a resident seed")
	}
}

// TestPeek pins the read-only contract: no counters move, no recency
// update, and in-flight entries are invisible.
func TestPeek(t *testing.T) {
	c := MustNew(1 << 20)
	k := Key{Domain: "t/peek", Config: "cfg"}
	if _, ok := c.Peek(k); ok {
		t.Fatal("Peek found a never-inserted key")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved counters: %+v", st)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Lookup(k, func() (any, int64, error) {
			close(entered)
			<-release
			return "v", 8, nil
		})
	}()
	<-entered
	if _, ok := c.Peek(k); ok {
		t.Error("Peek observed an in-flight (unpublished) entry")
	}
	close(release)
	<-done
	if v, ok := c.Peek(k); !ok || v != "v" {
		t.Errorf("Peek after publication: %v %v", v, ok)
	}

	var nilCache *Cache
	if _, ok := nilCache.Peek(k); ok {
		t.Error("nil cache Peek reported ok")
	}
}

// TestItems pins the snapshot iteration: MRU-first order, published entries
// only, and early termination when fn returns false.
func TestItems(t *testing.T) {
	c := MustNew(1 << 20)
	keys := []Key{
		{Domain: "t/items", Config: "a"},
		{Domain: "t/items", Config: "b"},
		{Domain: "t/items", Config: "c"},
	}
	for i, k := range keys {
		if _, _, err := c.Lookup(k, okCompute(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so recency is a,c,b (MRU-first).
	if _, _, err := c.Lookup(keys[0], okCompute(-1, 8)); err != nil {
		t.Fatal(err)
	}

	var got []string
	c.Items(func(k Key, val any, bytes int64) bool {
		if bytes != 8 {
			t.Errorf("entry %v carries %d bytes, want 8", k, bytes)
		}
		got = append(got, k.Config)
		return true
	})
	want := []string{"a", "c", "b"}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want MRU-first %v", got, want)
		}
	}

	// Early termination.
	var n int
	c.Items(func(Key, any, int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("fn ran %d times after returning false, want 1", n)
	}

	// The callback runs outside the cache lock: mutating the cache from
	// inside fn must not deadlock.
	var wg sync.WaitGroup
	wg.Add(1)
	c.Items(func(k Key, _ any, _ int64) bool {
		defer wg.Done()
		c.Seed(Key{Domain: "t/items", Config: "from-fn"}, "x", 8)
		return false
	})
	wg.Wait()

	var nilCache *Cache
	nilCache.Items(func(Key, any, int64) bool { t.Fatal("nil cache iterated"); return false })
}
