package phasesum

import (
	"math"
	"testing"
)

func TestParseFidelity(t *testing.T) {
	cases := []struct {
		in   string
		want Fidelity
		ok   bool
	}{
		{"", Exact, true},
		{"exact", Exact, true},
		{"mixed", Mixed, true},
		{"fast", Fast, true},
		{"FAST", "", false},
		{"approx", "", false},
	}
	for _, c := range cases {
		got, err := ParseFidelity(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseFidelity(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseFidelity(%q) accepted; want error", c.in)
		}
	}
	if Fidelity("").Effective() != Exact {
		t.Error("zero fidelity must resolve to exact")
	}
	if Exact.Analytic() || !Mixed.Analytic() || !Fast.Analytic() {
		t.Error("Analytic(): want false for exact, true for mixed/fast")
	}
}

// seqStream builds a stream touching `units` distinct lines `rounds` times
// each, round-robin, at line granularity (addresses 64 bytes apart).
func seqStream(units, rounds int) ([]uint64, []int) {
	addrs := make([]uint64, 0, units*rounds)
	for r := 0; r < rounds; r++ {
		for u := 0; u < units; u++ {
			addrs = append(addrs, uint64(u)<<LineShift)
		}
	}
	return addrs, []int{len(addrs)}
}

func TestSummarizeColdAndReuse(t *testing.T) {
	addrs, ends := seqStream(100, 3)
	s := Summarize(addrs, ends)
	ps := s.Line[0]
	if ps.Refs != 300 || ps.Cold != 100 {
		t.Fatalf("line sketch: refs=%d cold=%d, want 300/100", ps.Refs, ps.Cold)
	}
	var reuse int
	for _, c := range ps.Hist {
		reuse += c
	}
	if reuse != 200 {
		t.Fatalf("reuse mass %d, want 200", reuse)
	}
	// Every re-reference is at distance exactly 100 -> bucket log2(100)=6.
	if ps.Hist[6] != 200 {
		t.Fatalf("distance-100 mass in bucket 6 = %d, want 200", ps.Hist[6])
	}
	// 100 lines of 64B span two 4K pages; page sketch sees 2 cold units.
	if s.Page[0].Cold != 2 {
		t.Fatalf("page cold = %d, want 2", s.Page[0].Cold)
	}
	if s.TotalRefs != 300 {
		t.Fatalf("TotalRefs = %d, want 300", s.TotalRefs)
	}
}

func TestSummarizeDistancesCrossPhases(t *testing.T) {
	// Same line touched in phase 0 and phase 1: the reuse must be seen
	// (not treated as cold) because the isolated replay walks one stream.
	addrs := []uint64{0, 1 << LineShift, 0}
	ends := []int{2, 3}
	s := Summarize(addrs, ends)
	if s.Line[1].Cold != 0 {
		t.Fatalf("phase-1 cold = %d, want 0 (reuse crosses phases)", s.Line[1].Cold)
	}
	if s.Line[1].Hist[1] != 1 { // distance 2 -> bucket 1
		t.Fatalf("phase-1 hist = %v, want distance-2 reuse", s.Line[1].Hist)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
	if got := bucketOf(1 << 40); got != NumBuckets-1 {
		t.Errorf("huge distance bucket %d, want clamp to %d", got, NumBuckets-1)
	}
}

func TestSharedMissCapacityFit(t *testing.T) {
	// One client, working set of 64 lines, capacity 1024: everything but
	// the cold misses hits.
	addrs, ends := seqStream(64, 10)
	s := Summarize(addrs, ends)
	est := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs}, SharedConfig{Capacity: 1024})
	m := est[0][0]
	wantMiss := 64.0 / 640.0
	if math.Abs(m.Miss-wantMiss) > 1e-12 {
		t.Fatalf("fit-in-capacity miss %.4f, want %.4f (cold only)", m.Miss, wantMiss)
	}
	if m.Confidence < 0.99 {
		t.Fatalf("confidence %.3f, want ~1 (mass far from threshold)", m.Confidence)
	}
}

func TestSharedMissCapacityThrash(t *testing.T) {
	// Working set 4096 lines >> capacity 64: every reuse distance (4096)
	// exceeds the threshold; all references miss.
	addrs, ends := seqStream(4096, 4)
	s := Summarize(addrs, ends)
	est := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs}, SharedConfig{Capacity: 64})
	if m := est[0][0].Miss; m < 0.999 {
		t.Fatalf("thrash miss %.4f, want ~1", m)
	}
}

func TestSharedMissContentionDilutesCapacity(t *testing.T) {
	// A client that fits alone must miss more when a high-novelty
	// co-runner floods the shared structure.
	addrs, ends := seqStream(256, 8)
	victim := Summarize(addrs, ends)

	// Aggressor: a long stream of all-distinct lines (pure novelty).
	n := 8 * 256
	agg := make([]uint64, n)
	for i := range agg {
		agg[i] = uint64(1<<30+i) << LineShift
	}
	aggSum := Summarize(agg, []int{n})

	// Capacity 300: alone, DeltaMax = 300/u = 2400 and the distance-256
	// reuse hits; shared with the aggressor the diluted DeltaMax ~= 267
	// drops below the bucket midpoint (~362) and the reuse misses.
	cfg := SharedConfig{Capacity: 300}
	alone := SharedMiss([][]PhaseSum{victim.Line}, []int{victim.TotalRefs}, cfg)
	shared := SharedMiss(
		[][]PhaseSum{victim.Line, aggSum.Line},
		[]int{victim.TotalRefs, aggSum.TotalRefs}, cfg)
	if !(shared[0][0].Miss > alone[0][0].Miss) {
		t.Fatalf("contended miss %.4f not above isolated %.4f", shared[0][0].Miss, alone[0][0].Miss)
	}
	// The aggressor itself misses everything either way (all cold).
	if shared[1][0].Miss < 0.999 {
		t.Fatalf("aggressor miss %.4f, want ~1", shared[1][0].Miss)
	}
}

func TestSharedMissFlushKillsLongReuse(t *testing.T) {
	addrs, ends := seqStream(64, 10) // reuse distance 64
	s := Summarize(addrs, ends)
	big := SharedConfig{Capacity: 1 << 20}
	noFlush := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs}, big)
	withFlush := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs},
		SharedConfig{Capacity: 1 << 20, FlushPeriod: 32})
	if !(withFlush[0][0].Miss > noFlush[0][0].Miss) {
		t.Fatalf("flush-period miss %.4f not above flushless %.4f",
			withFlush[0][0].Miss, noFlush[0][0].Miss)
	}
}

func TestConfidenceLowAtThreshold(t *testing.T) {
	// Reuse distance 64 with DeltaMax ~= 64: mass sits on the cutoff, so
	// confidence must collapse; with capacity 100x the distance it must
	// recover.
	addrs, ends := seqStream(64, 20)
	s := Summarize(addrs, ends)
	// Single client: DeltaMax = C / u = C * refs/cold = C * 20.
	// C=4 -> DeltaMax=80, inside (d/2, d*2) of the d~=90 bucket midpoint.
	at := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs}, SharedConfig{Capacity: 4})
	far := SharedMiss([][]PhaseSum{s.Line}, []int{s.TotalRefs}, SharedConfig{Capacity: 4096})
	if at[0][0].Confidence >= far[0][0].Confidence {
		t.Fatalf("threshold confidence %.3f not below far-from-threshold %.3f",
			at[0][0].Confidence, far[0][0].Confidence)
	}
	if at[0][0].Confidence > 0.2 {
		t.Fatalf("on-threshold confidence %.3f, want near 0", at[0][0].Confidence)
	}

	comb := CombineConfidence(at, [][]PhaseSum{s.Line})
	if comb > 0.6 {
		t.Fatalf("combined confidence %.3f should reflect the bad phase", comb)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.5) != 0 || Clamp01(1.5) != 1 || Clamp01(0.25) != 0.25 {
		t.Fatal("Clamp01 bounds broken")
	}
}

func TestSummaryBytesPositive(t *testing.T) {
	addrs, ends := seqStream(16, 2)
	s := Summarize(addrs, ends)
	if s.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive for LRU accounting")
	}
}
