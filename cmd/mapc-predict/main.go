// Command mapc-predict trains (or loads) the decision-tree predictor and
// predicts the GPU execution time of one 2-application bag, comparing the
// prediction with the simulated ground truth.
//
// A loaded model must have been trained with the scheme named by -scheme
// (default "full"): models persist their training scheme and feature count,
// and a mismatch is refused loudly instead of silently mispredicting.
//
// Usage:
//
//	mapc-predict -a sift -b surf              # batch 20 each
//	mapc-predict -a knn -abatch 80 -b svm -bbatch 40
//	mapc-predict -model model.json            # model from mapc-train -o
package main

import (
	"flag"
	"fmt"
	"os"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/ml"
)

func main() {
	benchA := flag.String("a", "sift", "first benchmark")
	benchB := flag.String("b", "surf", "second benchmark")
	batchA := flag.Int("abatch", 20, "first benchmark's batch size")
	batchB := flag.Int("bbatch", 20, "second benchmark's batch size")
	schemeName := flag.String("scheme", "full", "feature scheme: insmix, insmix+cputime, insmix+cputime+fairness, full; a loaded model must match")
	modelPath := flag.String("model", "", "load a saved model (mapc-train -o) instead of training")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); predictions are identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	flag.Parse()

	scheme, ok := core.SchemeByName(*schemeName)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	var predictor *core.Predictor
	if *modelPath != "" {
		predictor, err = core.LoadFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		// A model trained under a different scheme would accept the same
		// full-width vectors yet answer a different question; refuse it.
		if err := predictor.RequireScheme(scheme); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "mapc-predict: generating training corpus...")
		corpus, err := gen.Generate()
		if err != nil {
			fatal(err)
		}
		predictor, err = core.Train(corpus, scheme, core.DefaultTreeParams())
		if err != nil {
			fatal(err)
		}
	}

	a := dataset.Member{Benchmark: *benchA, Batch: *batchA}
	b := dataset.Member{Benchmark: *benchB, Batch: *batchB}
	x, fairness, err := gen.FeaturesFor(a, b)
	if err != nil {
		fatal(err)
	}
	pred, err := predictor.PredictRaw(x)
	if err != nil {
		fatal(err)
	}

	truth, err := gen.MeasurePoint(a, b)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("bag: %v + %v (fairness %.3f)\n", a, b, fairness)
	fmt.Printf("predicted GPU bag time: %8.3f ms\n", pred*1e3)
	fmt.Printf("simulated GPU bag time: %8.3f ms\n", truth.Y*1e3)
	if rel, ok := ml.PointRelativeError(truth.Y, pred); ok {
		fmt.Printf("relative error:         %8.2f %%\n", rel)
	} else {
		fmt.Printf("relative error:              n/a (zero ground truth)\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-predict:", err)
	os.Exit(1)
}
