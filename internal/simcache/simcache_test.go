package simcache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func key(i int) Key { return Key{Domain: "test", Config: "cfg", Workload: uint64(i), Slot: 0} }

func TestNewRejectsNonPositiveBudgets(t *testing.T) {
	for _, b := range []int64{0, -1, -1 << 30} {
		if _, err := New(b); err == nil {
			t.Fatalf("New(%d) succeeded; want error", b)
		}
	}
	if c := MustNew(1); c == nil {
		t.Fatal("MustNew(1) returned nil")
	}
}

func TestGetOrComputeMissThenHit(t *testing.T) {
	c := MustNew(1 << 20)
	calls := 0
	compute := func() (any, int64, error) { calls++; return "value", 5, nil }

	v, hit, err := c.GetOrCompute(key(1), compute)
	if err != nil || hit || v != "value" {
		t.Fatalf("first lookup: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(key(1), compute)
	if err != nil || !hit || v != "value" {
		t.Fatalf("second lookup: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 5 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v; want 0.5", got)
	}
}

func TestNilCacheRunsComputeEveryTime(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrCompute(key(1), func() (any, int64, error) { calls++; return calls, 1, nil })
		if err != nil || hit {
			t.Fatalf("nil cache lookup %d: hit=%v err=%v", i, hit, err)
		}
		if v != calls {
			t.Fatalf("nil cache returned stale value %v on call %d", v, calls)
		}
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times; want 3", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v; want zeros", st)
	}
	if c.Budget() != 0 || c.Len() != 0 {
		t.Fatal("nil cache budget/len non-zero")
	}
}

func TestErrorsAreNeverCached(t *testing.T) {
	c := MustNew(1 << 20)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, hit, err := c.GetOrCompute(key(1), func() (any, int64, error) { calls++; return nil, 0, boom })
		if !errors.Is(err, boom) || hit {
			t.Fatalf("lookup %d: hit=%v err=%v", i, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed compute ran %d times; want 2 (errors must not be cached)", calls)
	}
	// A subsequent success is cached normally.
	v, _, err := c.GetOrCompute(key(1), func() (any, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 {
		t.Fatalf("recovery lookup: v=%v err=%v", v, err)
	}
	if _, hit, _ := c.GetOrCompute(key(1), func() (any, int64, error) { t.Fatal("recomputed"); return nil, 0, nil }); !hit {
		t.Fatal("recovered entry not cached")
	}
}

func TestLRUEvictionOrderAndAccounting(t *testing.T) {
	c := MustNew(100)
	put := func(i int, size int64) {
		t.Helper()
		if _, _, err := c.GetOrCompute(key(i), func() (any, int64, error) { return i, size, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put(1, 40)
	put(2, 40)
	// Touch 1 so 2 becomes least-recently-used.
	if _, hit, _ := c.GetOrCompute(key(1), func() (any, int64, error) { return 1, 40, nil }); !hit {
		t.Fatal("key 1 missing")
	}
	put(3, 40) // exceeds 100: evicts key 2 (LRU), not key 1
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	if _, hit, _ := c.GetOrCompute(key(1), func() (any, int64, error) { return 1, 40, nil }); !hit {
		t.Fatal("recently-used key 1 was evicted; LRU order broken")
	}
	recomputed := false
	if _, hit, _ := c.GetOrCompute(key(2), func() (any, int64, error) { recomputed = true; return 2, 40, nil }); hit || !recomputed {
		t.Fatal("least-recently-used key 2 survived; LRU order broken")
	}
}

func TestOversizedEntryReturnedButNotRetained(t *testing.T) {
	c := MustNew(10)
	v, _, err := c.GetOrCompute(key(1), func() (any, int64, error) { return "big", 1000, nil })
	if err != nil || v != "big" {
		t.Fatalf("oversized compute: v=%v err=%v", v, err)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Evictions != 1 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
}

func TestSingleflightComputesOnce(t *testing.T) {
	c := MustNew(1 << 20)
	var calls atomic.Int64
	start := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	const G = 16
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.GetOrCompute(key(1), func() (any, int64, error) {
				calls.Add(1)
				<-release // hold the flight open so everyone piles on
				return "shared", 8, nil
			})
			if err != nil || v != "shared" {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	close(start)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention; want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != G-1 {
		t.Fatalf("stats = %+v; want 1 miss, %d hits", st, G-1)
	}
}

func TestPanickingComputePoisonsNobody(t *testing.T) {
	c := MustNew(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.GetOrCompute(key(1), func() (any, int64, error) {
			close(entered)
			<-release
			panic("kaboom")
		})
	}()

	// Capture the in-flight entry while the compute is provably still
	// running (it cannot panic until release closes): this is exactly the
	// entry any concurrent waiter would block on.
	<-entered
	c.mu.Lock()
	e := c.entries[key(1)]
	c.mu.Unlock()
	if e == nil {
		t.Fatal("no in-flight entry registered during compute")
	}
	close(release)

	if r := <-panicked; r == nil {
		t.Fatal("panic did not propagate to the computing caller")
	} else if r != "kaboom" {
		t.Fatalf("panic value %v; want kaboom", r)
	}
	// Waiters on the dead flight are woken with a retryable error, never a
	// zero value.
	<-e.done
	if e.err == nil {
		t.Fatal("waiter on a panicked flight would get nil error; want retryable error")
	}
	// The key is unpublished: the next lookup recomputes cleanly.
	v, hit, err := c.GetOrCompute(key(1), func() (any, int64, error) { return 42, 1, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("post-panic lookup: v=%v hit=%v err=%v", v, hit, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("post-panic stats: %+v; want exactly the recomputed entry", st)
	}
}

func TestConcurrentHammer(t *testing.T) {
	// Tiny budget + many keys: constant eviction and recomputation from
	// many goroutines. Run under -race in CI.
	c := MustNew(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(32)
				v, _, err := c.GetOrCompute(key(k), func() (any, int64, error) {
					return fmt.Sprintf("v%d", k), 16, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if want := fmt.Sprintf("v%d", k); v != want {
					t.Errorf("key %d returned %v; want %v", k, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 256 {
		t.Fatalf("resident bytes %d exceed budget 256", st.Bytes)
	}
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("lookups %d != %d", st.Hits+st.Misses, 8*2000)
	}
}
