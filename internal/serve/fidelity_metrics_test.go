package serve

import (
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/phasesum"
)

// labelledMetric extracts a labelled metric line's value from the
// exposition (the full "name{label=...}" string must match exactly).
func labelledMetric(t *testing.T, body, line string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(line) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from exposition:\n%s", line, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", line, m[1], err)
	}
	return v
}

// TestFidelityMetricsExposition: /metrics reports the generator's fidelity
// tier and per-kind co-run counters; a fast-fidelity generator serving
// fresh bags must show analytic runs and no exact ones.
func TestFidelityMetricsExposition(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Benchmarks = []string{"sift", "surf"}
	cfg.BatchSizes = []int{20, 40}
	cfg.MixedPairs = 0
	cfg.Fidelity = phasesum.Fast
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Model: mod, Generator: gen, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":40}}`
	if rr := doJSON(t, h, http.MethodPost, "/v1/predict", body); rr.Code != http.StatusOK {
		t.Fatalf("predict code %d body %s", rr.Code, rr.Body)
	}

	rr := doJSON(t, h, http.MethodGet, "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics code %d", rr.Code)
	}
	exp := rr.Body.String()
	if !strings.Contains(exp, `mapc_fidelity_info{tier="fast"} 1`) {
		t.Errorf("fidelity tier label missing:\n%s", exp)
	}
	if v := labelledMetric(t, exp, `mapc_fidelity_runs_total{kind="analytic"}`); v == 0 {
		t.Error("fast-fidelity serving reported zero analytic co-runs")
	}
	if v := labelledMetric(t, exp, `mapc_fidelity_runs_total{kind="exact"}`); v != 0 {
		t.Errorf("fast-fidelity serving reported %v unconditional-exact co-runs", v)
	}
	labelledMetric(t, exp, `mapc_fidelity_runs_total{kind="exact_fallback"}`) // present, any value
	// The per-reason fallback split is always exposed, one line per reason,
	// and must account for every fallback counted above.
	var reasons float64
	for _, reason := range []string{"low_confidence", "sub_sm_share", "bandwidth_gate"} {
		reasons += labelledMetric(t, exp, `mapc_fidelity_fallbacks_total{reason="`+reason+`"}`)
	}
	if total := labelledMetric(t, exp, `mapc_fidelity_runs_total{kind="exact_fallback"}`); reasons != total {
		t.Errorf("fallback reasons sum to %v, want %v", reasons, total)
	}
}

// TestFidelityMetricsDefaultExact: the package fixture's generator runs at
// the zero-value (exact) tier and the exposition says so.
func TestFidelityMetricsDefaultExact(t *testing.T) {
	fixture(t)
	s := newTestServer(t, nil)
	h := s.Handler()
	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`
	if rr := doJSON(t, h, http.MethodPost, "/v1/predict", body); rr.Code != http.StatusOK {
		t.Fatalf("predict code %d body %s", rr.Code, rr.Body)
	}
	rr := doJSON(t, h, http.MethodGet, "/metrics", "")
	exp := rr.Body.String()
	if !strings.Contains(exp, `mapc_fidelity_info{tier="exact"} 1`) {
		t.Errorf("default tier label missing:\n%s", exp)
	}
	if v := labelledMetric(t, exp, `mapc_fidelity_runs_total{kind="analytic"}`); v != 0 {
		t.Errorf("exact-tier serving reported %v analytic co-runs", v)
	}
}
