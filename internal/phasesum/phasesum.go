// Package phasesum is the fast fidelity tier's analytic core: compact
// per-phase summaries of sampled reference streams (reuse-distance
// sketches over cache lines and pages) and a closed-form shared-capacity
// contention model that estimates co-run miss rates from summaries alone,
// without replaying a single reference.
//
// The exact simulators (cpusim, gpusim) interleave every client's sampled
// address stream into genuinely shared structures — the CPU LLC, the GPU
// L2 and TLB — which costs O(total references) per bag. The summaries here
// are built once per (workload, slot) during the already-memoized isolated
// runs; a bag's contended miss rates then cost O(phases x histogram
// buckets), which is what lifts corpus generation past 100 points/sec.
//
// The model follows the phase/basic-block-granular prediction framing of
// BB-ML (arXiv:2202.07798) and the hybrid analytical+ML design of Braun et
// al. (arXiv:2001.07104): a coarse analytic estimate, consumed downstream
// by the learned predictor, validated point-by-point against the exact
// simulators by dataset's differential oracle.
//
// # Model
//
// For each phase of each client we keep, at a given granularity (cache
// lines, shift 6; pages, shift 12):
//
//   - Refs: sampled references in the phase;
//   - Cold: first touches of a unit within the client's whole stream;
//   - Hist[b]: re-references whose own-stream time distance d (references
//     since the previous touch of the same unit) falls in bucket
//     [2^b, 2^(b+1)).
//
// Under the proportional (Bresenham) interleave, client i issues r_i of
// every R = sum r_j global references, so an own-stream distance d spans
// T = d*R/r_i global references. During T the shared LRU structure admits
// roughly T * U distinct units, where U = sum_j (Cold_j/Refs_j) * r_j / R
// is the global novelty rate. The re-reference hits iff the intervening
// distinct units fit in the capacity C:
//
//	hit  <=>  T*U <= C  <=>  d <= DeltaMax = C * r_i / (R * U)
//
// Isolated, the same client sees DeltaMaxIso = C / u_i with
// u_i = Cold_i/Refs_i. Evaluating the histogram against both thresholds
// yields model miss rates Mshared and Miso; the caller anchors the
// estimate to the memoized *exact* isolated miss rate m_iso:
//
//	m_shared ~= clamp(m_iso + (Mshared - Miso), 0, 1)
//
// so the closed form only has to predict the *delta* contention adds, not
// the absolute miss rate — the delta is where histogram-bucket
// quantization bias cancels.
//
// Shared TLBs additionally flush every FlushPeriod global references
// (MPS context interleaving): a re-reference at global distance T survives
// with probability max(0, 1 - T/FlushPeriod), folded per bucket.
//
// # Confidence
//
// Each estimate carries a self-reported confidence in [0,1]: the fraction
// of reuse mass that is *not* within one bucket (a factor of two) of the
// DeltaMax threshold. Mass at the threshold is exactly where LRU's sharp
// cutoff makes the closed form unstable; the mixed fidelity tier falls
// back to exact simulation below MinConfidence.
package phasesum

import "math"

// Granularity shifts: units are addr >> shift.
const (
	LineShift = 6  // 64-byte cache lines (memsim.LineSize)
	PageShift = 12 // 4 KiB pages (memsim TLB granularity)
)

// NumBuckets bounds the log2 time-distance histogram. Sampled streams are
// capped at 24576 references per phase (memsim.SampleRefs), so per-workload
// streams stay well under 2^31 references; distances at or past the last
// bucket are clamped into it.
const NumBuckets = 32

// PhaseSum is one phase's reuse sketch at one granularity.
type PhaseSum struct {
	// Refs is the number of sampled references in the phase.
	Refs int
	// Cold counts first touches of a unit within the whole stream
	// (compulsory misses at this granularity).
	Cold int
	// Hist[b] counts re-references at own-stream time distance
	// d in [2^b, 2^(b+1)).
	Hist [NumBuckets]int
}

// Summary is one client's whole-stream sketch: per-phase reuse histograms
// at line and page granularity, plus the stream length the interleave
// model needs as the client's issue rate.
type Summary struct {
	Line []PhaseSum // per phase, addr >> LineShift
	Page []PhaseSum // per phase, addr >> PageShift
	// TotalRefs is the stream length (sum of Refs over phases); the
	// proportional interleave issues clients in ratio of their TotalRefs.
	TotalRefs int
}

// Bytes reports the summary's approximate resident size for memo-cache
// LRU accounting.
func (s *Summary) Bytes() int64 {
	per := int64(NumBuckets+2) * 8
	return int64(len(s.Line)+len(s.Page))*per + 64
}

// Summarize sketches a phase-contiguous address stream: addrs holds every
// phase's sampled references back to back and ends[p] is the first index
// past phase p (the representation both simulators already memoize).
// Distances are own-stream positions, measured across phase boundaries —
// exactly the stream the isolated replay would walk.
func Summarize(addrs []uint64, ends []int) Summary {
	sum := Summary{
		Line:      make([]PhaseSum, len(ends)),
		Page:      make([]PhaseSum, len(ends)),
		TotalRefs: len(addrs),
	}
	sketch(addrs, ends, LineShift, sum.Line)
	sketch(addrs, ends, PageShift, sum.Page)
	return sum
}

// sketch fills one granularity's per-phase histograms.
func sketch(addrs []uint64, ends []int, shift uint, out []PhaseSum) {
	last := make(map[uint64]int, 1<<12)
	start := 0
	for pi := range out {
		end := ends[pi]
		ps := &out[pi]
		ps.Refs = end - start
		for i := start; i < end; i++ {
			u := addrs[i] >> shift
			if prev, ok := last[u]; ok {
				ps.Hist[bucketOf(i-prev)]++
			} else {
				ps.Cold++
			}
			last[u] = i
		}
		start = end
	}
}

// bucketOf maps a positive distance to its log2 bucket, clamped to the
// final bucket.
func bucketOf(d int) int {
	b := 0
	for d > 1 {
		d >>= 1
		b++
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// noveltyRate returns the client's distinct-unit rate Cold/Refs over the
// whole stream at the given granularity (0 for an empty stream).
func noveltyRate(phases []PhaseSum) float64 {
	var cold, refs int
	for i := range phases {
		cold += phases[i].Cold
		refs += phases[i].Refs
	}
	if refs == 0 {
		return 0
	}
	return float64(cold) / float64(refs)
}

// SharedConfig parameterizes one shared structure for the contention model.
type SharedConfig struct {
	// Capacity is the structure's size in units (lines for a cache,
	// entries for a TLB).
	Capacity float64
	// FlushPeriod > 0 flushes the structure every FlushPeriod *global*
	// references (the GPU TLB under MPS interleaving); 0 disables it.
	FlushPeriod float64
}

// Estimate is one phase's analytic miss estimate.
type Estimate struct {
	// Miss is the modelled miss fraction per sampled reference.
	Miss float64
	// Confidence in [0,1] reports how far the phase's reuse mass sits
	// from the capacity threshold (1 = all mass far from the cutoff).
	Confidence float64
}

// client precomputes one co-runner's interleave parameters.
type client struct {
	phases []PhaseSum
	rate   float64 // r_i: own share of the global reference stream
	u      float64 // novelty rate Cold/Refs
}

// SharedMiss estimates, for every client and phase, the miss rate of the
// shared structure under the proportional interleave of all clients'
// streams. all[i] selects each client's per-phase sketch at the modelled
// granularity (Summary.Line or Summary.Page); rates[i] is the client's
// stream length (Summary.TotalRefs). The i-th inner slice is indexed like
// all[i].
//
// The isolated special case (len(all) == 1, no flushing) degenerates to
// the classic single-stream working-set model; callers use it as the
// model-side anchor for delta correction (see the package comment).
func SharedMiss(all [][]PhaseSum, rates []int, cfg SharedConfig) [][]Estimate {
	n := len(all)
	clients := make([]client, n)
	var total float64
	for i := range all {
		clients[i] = client{phases: all[i], rate: float64(rates[i]), u: noveltyRate(all[i])}
		total += float64(rates[i])
	}
	if total == 0 {
		out := make([][]Estimate, n)
		for i := range out {
			out[i] = make([]Estimate, len(all[i]))
		}
		return out
	}
	// Global novelty rate U: distinct units admitted per global reference.
	var U float64
	for i := range clients {
		U += clients[i].u * clients[i].rate / total
	}

	out := make([][]Estimate, n)
	for i := range clients {
		c := &clients[i]
		out[i] = make([]Estimate, len(c.phases))
		// DeltaMax: own-stream distance below which a re-reference still
		// fits in the shared capacity (see package comment). With zero
		// novelty anywhere (pure re-reference streams) nothing is ever
		// evicted and every reuse hits.
		deltaMax := math.Inf(1)
		if U > 0 && c.rate > 0 {
			deltaMax = cfg.Capacity * c.rate / (total * U)
		}
		// Flush survival operates on global distance T = d*total/rate.
		globalScale := 0.0
		if c.rate > 0 {
			globalScale = total / c.rate
		}
		for pi := range c.phases {
			out[i][pi] = estimatePhase(&c.phases[pi], deltaMax, globalScale, cfg.FlushPeriod)
		}
	}
	return out
}

// estimatePhase evaluates one phase's histogram against the capacity
// threshold and the optional flush window.
func estimatePhase(ps *PhaseSum, deltaMax, globalScale, flushPeriod float64) Estimate {
	if ps.Refs == 0 {
		return Estimate{Miss: 0, Confidence: 1}
	}
	missed := float64(ps.Cold)
	var reuse, boundary float64
	for b := 0; b < NumBuckets; b++ {
		cnt := float64(ps.Hist[b])
		if cnt == 0 {
			continue
		}
		reuse += cnt
		// Bucket representative: geometric midpoint of [2^b, 2^(b+1)).
		d := float64(uint64(1)<<uint(b)) * math.Sqrt2
		hit := 1.0
		if d > deltaMax {
			hit = 0
		}
		// Mass within a factor of two of the cutoff is where the sharp
		// LRU threshold makes the estimate unstable.
		if d > deltaMax/2 && d < deltaMax*2 {
			boundary += cnt
		}
		if hit > 0 && flushPeriod > 0 {
			surv := 1 - d*globalScale/flushPeriod
			if surv < 0 {
				surv = 0
			}
			hit = surv
		}
		missed += cnt * (1 - hit)
	}
	conf := 1.0
	if reuse > 0 {
		conf = 1 - boundary/reuse
	}
	return Estimate{Miss: missed / float64(ps.Refs), Confidence: conf}
}

// Clamp01 clamps v into [0, 1] — the delta-corrected miss estimate's
// domain.
func Clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// CombineConfidence combines per-phase confidences into a run-level figure:
// the reference-weighted mean, floored by the single worst phase weighted
// at half. Heavy phases dominate the run's accuracy, but one badly
// threshold-straddling phase should still be able to demote the run.
func CombineConfidence(all [][]Estimate, phases [][]PhaseSum) float64 {
	var wsum, csum float64
	worst := 1.0
	for i := range all {
		for pi := range all[i] {
			w := float64(phases[i][pi].Refs)
			if w == 0 {
				continue
			}
			c := all[i][pi].Confidence
			wsum += w
			csum += w * c
			if c < worst {
				worst = c
			}
		}
	}
	if wsum == 0 {
		return 1
	}
	mean := csum / wsum
	floor := (1 + worst) / 2
	if floor < mean {
		return floor
	}
	return mean
}
