package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"mapc/internal/dataset"
)

// TestFeatureCacheSingleflightHammer hammers the shared feature cache from
// many goroutines (run under -race in CI) and proves each distinct bag's
// computation runs exactly once.
func TestFeatureCacheSingleflightHammer(t *testing.T) {
	var computes atomic.Int64
	c := newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
		computes.Add(1)
		return []float64{float64(bag[0].Batch), float64(bag[1].Batch)}, 0.5, nil
	}, true, 64<<20)

	members := []dataset.Member{
		{Benchmark: "sift", Batch: 20},
		{Benchmark: "sift", Batch: 40},
		{Benchmark: "surf", Batch: 20},
		{Benchmark: "surf", Batch: 40},
		{Benchmark: "knn", Batch: 80},
	}
	// Distinct canonical bags among 5 members (unordered pairs with
	// repetition): C(5,2)+5 = 15.
	const wantKeys = 15

	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	var hits atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := members[(g+i)%len(members)]
				b := members[(g*7+i*3)%len(members)]
				x, fairness, hit, err := c.get([]dataset.Member{a, b})
				if err != nil {
					t.Error(err)
					return
				}
				if hit {
					hits.Add(1)
				}
				if len(x) != 2 || fairness != 0.5 {
					t.Errorf("bad result %v %v", x, fairness)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := computes.Load(); got != wantKeys {
		t.Errorf("compute ran %d times for %d distinct bags", got, wantKeys)
	}
	if c.Len() != wantKeys {
		t.Errorf("cache holds %d entries, want %d", c.Len(), wantKeys)
	}
	if hits.Load() == 0 {
		t.Error("no cache hits across the hammer")
	}
}

// TestServerConcurrentPredictHammer drives the full handler concurrently
// with a stub featurizer, exercising the limiter, gauge, histogram and
// cache accounting under -race.
func TestServerConcurrentPredictHammer(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 8; c.Workers = 2 })
	gen, _ := fixture(t)
	// Stub features: constant-width vectors, no simulation, so the hammer
	// is fast; width must match the model (21 features for 2-app bags).
	width := s.cfg.Model.NumFeatures()
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		x := make([]float64, width)
		for i := range x {
			x[i] = 0.25
		}
		return x, 0.5, false, nil
	}
	_ = gen
	h := s.Handler()

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	var ok200, ok503 atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(
					`{"bags":[{"a":{"benchmark":"sift","batch":%d},"b":{"benchmark":"surf","batch":%d}},
					          {"a":{"benchmark":"surf","batch":%d},"b":{"benchmark":"sift","batch":%d}}]}`,
					20+(i%3)*20, 20+(g%3)*20, 20, 40)
				rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
				switch rr.Code {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					ok503.Add(1) // limiter shed load; acceptable under hammer
				default:
					t.Errorf("unexpected status %d: %s", rr.Code, rr.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no successful predictions under hammer")
	}
	if got := s.Metrics().InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after hammer", got)
	}
}
