package ml

import (
	"reflect"
	"testing"
)

func groupedDataset() *Dataset {
	return &Dataset{
		FeatureNames: []string{"f0", "f1", "f2"},
		X: [][]float64{
			{1, 10, 100}, {2, 20, 200}, {3, 30, 300},
			{4, 40, 400}, {5, 50, 500}, {6, 60, 600},
		},
		Y:      []float64{1, 2, 3, 4, 5, 6},
		Groups: []string{"a", "a", "b", "b", "c", "c"},
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := groupedDataset().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := []*Dataset{
		{},
		{X: [][]float64{{1}}, Y: []float64{1, 2}},
		{X: [][]float64{{1}, {1, 2}}, Y: []float64{1, 2}},
		{X: [][]float64{{}}, Y: []float64{1}},
		{X: [][]float64{{1}}, Y: []float64{1}, Groups: []string{"a", "b"}},
		{X: [][]float64{{1}}, Y: []float64{1}, FeatureNames: []string{"a", "b"}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad dataset %d accepted", i)
		}
	}
}

func TestSubset(t *testing.T) {
	d := groupedDataset()
	s := d.Subset([]int{0, 3, 5})
	if s.Len() != 3 {
		t.Fatalf("subset len %d", s.Len())
	}
	if s.Y[1] != 4 || s.Groups[2] != "c" {
		t.Errorf("subset rows wrong: %v %v", s.Y, s.Groups)
	}
	// Rows are shared, not copied.
	s.X[0][0] = 99
	if d.X[0][0] != 99 {
		t.Error("Subset copied rows")
	}
}

func TestSelectFeatures(t *testing.T) {
	d := groupedDataset()
	s, err := d.SelectFeatures([]string{"f2", "f0"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.FeatureNames, []string{"f2", "f0"}) {
		t.Errorf("names %v", s.FeatureNames)
	}
	if s.X[0][0] != 100 || s.X[0][1] != 1 {
		t.Errorf("row 0 = %v", s.X[0])
	}
	if _, err := d.SelectFeatures([]string{"missing"}); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestSplit(t *testing.T) {
	d := groupedDataset()
	train, test, err := d.Split(0.34, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d + %d", train.Len(), test.Len())
	}
	if test.Len() != 2 {
		t.Fatalf("test size %d, want 2", test.Len())
	}
	// Deterministic per seed.
	_, test2, err := d.Split(0.34, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(test.Y, test2.Y) {
		t.Error("same-seed splits differ")
	}
	if _, _, err := d.Split(0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestGroupNames(t *testing.T) {
	got := groupedDataset().GroupNames()
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("GroupNames = %v", got)
	}
}

func TestSplitByGroup(t *testing.T) {
	d := groupedDataset()
	rest, held, err := d.SplitByGroup("b")
	if err != nil {
		t.Fatal(err)
	}
	if held.Len() != 2 || rest.Len() != 4 {
		t.Fatalf("split sizes rest=%d held=%d", rest.Len(), held.Len())
	}
	for _, g := range held.Groups {
		if g != "b" {
			t.Errorf("held group %q", g)
		}
	}
	if _, _, err := d.SplitByGroup("zzz"); err == nil {
		t.Error("unknown group accepted")
	}
	ungrouped := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, _, err := ungrouped.SplitByGroup("a"); err == nil {
		t.Error("ungrouped dataset accepted")
	}
}
