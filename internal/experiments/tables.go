package experiments

import (
	"fmt"

	"mapc/internal/features"
	"mapc/internal/isa"
	"mapc/internal/vision"
)

// The paper's Tables II-IV are descriptive rather than computed; rendering
// them from the live registries keeps the documentation honest — the table
// contents are whatever the code actually implements. (Table I is a
// related-work survey with no code counterpart.)

// benchmarkDescriptions mirrors Table II's one-line descriptions.
var benchmarkDescriptions = map[string]string{
	"sift":    "Extracts features invariant to image orientation, illumination and scaling",
	"surf":    "Feature extraction with scale invariance (integral-image box filters)",
	"fast":    "Extracts corners from an image (segment test on a Bresenham circle)",
	"orb":     "FAST detector + BRIEF binary descriptors, orientation-compensated",
	"hog":     "Histograms of oriented gradients over cells with block normalization",
	"svm":     "Trains a support vector machine (SMO), then classifies features",
	"knn":     "Classifies features by brute-force nearest-neighbour search",
	"objrec":  "Object recognition: feature extraction + matching + voting",
	"facedet": "Face detection with a Haar cascade over an integral image",
}

// TableII renders the benchmark suite from the vision registry.
func TableII(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Benchmarks (derived from MEVBench/SD-VBS, reimplemented in Go)",
		Header: []string{"benchmark", "description"},
	}
	for _, b := range vision.All() {
		desc, ok := benchmarkDescriptions[b.Name()]
		if !ok {
			return nil, fmt.Errorf("experiments: benchmark %q has no Table-II description", b.Name())
		}
		t.Rows = append(t.Rows, []string{b.Name(), desc})
	}
	return t, nil
}

// TableIII renders the simulated baseline system from the live configs.
func TableIII(e *Env) (*Table, error) {
	cpu := e.Cfg.CPU
	gpu := e.Cfg.GPU
	t := &Table{
		ID:     "table3",
		Title:  "Details of the simulated baseline system (paper: 2x Xeon Gold 5118 + Tesla T4)",
		Header: []string{"parameter", "value"},
	}
	rows := [][2]string{
		{"CPU cores (physical)", fmt.Sprintf("%d", cpu.Cores)},
		{"CPU SMT ways", fmt.Sprintf("%d", cpu.ThreadsPerCore)},
		{"CPU frequency", fmt.Sprintf("%.1f GHz", cpu.FreqGHz)},
		{"CPU L1D / L2 (private)", fmt.Sprintf("%d KB / %d KB", cpu.L1Bytes>>10, cpu.L2Bytes>>10)},
		{"CPU shared LLC", fmt.Sprintf("%d MB", cpu.LLCytes>>20)},
		{"CPU DRAM bandwidth", fmt.Sprintf("%.0f GB/s", cpu.DRAMBandwidth/1e9)},
		{"GPU SMs", fmt.Sprintf("%d", gpu.SMs)},
		{"GPU CUDA-core equivalent", fmt.Sprintf("%d", gpu.SMs*int(gpu.Throughput[0]))},
		{"GPU frequency", fmt.Sprintf("%.2f GHz", gpu.FreqGHz)},
		{"GPU shared L2", fmt.Sprintf("%d MB", gpu.L2Bytes>>20)},
		{"GPU shared TLB entries", fmt.Sprintf("%d", gpu.TLBEntries)},
		{"GPU DRAM bandwidth", fmt.Sprintf("%.0f GB/s", gpu.DRAMBandwidth/1e9)},
		{"PCIe bandwidth", fmt.Sprintf("%.0f GB/s", gpu.PCIeBandwidth/1e9)},
		{"Multiplexing", "MPS-style spatial partitioning, phased co-runs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r[0], r[1]})
	}
	return t, nil
}

// featureDescriptions mirrors Table IV's per-feature descriptions.
var featureDescriptions = map[string]string{
	features.KindCPUTime:  "Execution time of the benchmark on the CPU (isolated)",
	features.KindGPUTime:  "Execution time of the benchmark on the GPU (single instance)",
	isa.SSE.String():      "% of packed/vector (SSE-class) instructions",
	isa.ALU.String():      "% of scalar integer arithmetic instructions",
	isa.MEM.String():      "% of load/store instructions",
	isa.FP.String():       "% of floating point instructions",
	isa.Stack.String():    "% of stack push/pop instructions",
	isa.String.String():   "% of string operations",
	isa.Shift.String():    "% of multiply/shift operations",
	isa.Control.String():  "% of control/branch instructions",
	features.KindFairness: "Fairness of concurrent multi-application execution (Eq. 2)",
}

// TableIV renders the feature list from the live feature vocabulary.
func TableIV(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "List of features (per application, replicated per bag member)",
		Header: []string{"num", "feature", "description"},
	}
	for i, kind := range features.KindNames() {
		desc, ok := featureDescriptions[kind]
		if !ok {
			return nil, fmt.Errorf("experiments: feature kind %q has no Table-IV description", kind)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), kind, desc})
	}
	t.Notes = append(t.Notes,
		"the paper's novel features are gpu_time (single-instance) and fairness; the rest follow prior work")
	return t, nil
}
