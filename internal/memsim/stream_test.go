package memsim

import (
	"testing"
	"testing/quick"

	"mapc/internal/trace"
)

func phaseWith(p trace.Pattern, footprint int64, reuse float64) *trace.Phase {
	return &trace.Phase{
		Name: "p", Footprint: footprint, Pattern: p, StrideBytes: 128,
		Reuse: reuse, Parallelism: 1, VectorWidth: 1,
	}
}

func TestStreamDeterminism(t *testing.T) {
	for _, pat := range []trace.Pattern{trace.Sequential, trace.Strided, trace.Windowed, trace.Random} {
		a, err := NewStream(phaseWith(pat, 1<<16, 0.3), 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewStream(phaseWith(pat, 1<<16, 0.3), 0, 42)
		for i := 0; i < 1000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%v stream diverged at step %d", pat, i)
			}
		}
	}
}

func TestStreamAddressesWithinFootprint(t *testing.T) {
	if err := quick.Check(func(seed uint64, patRaw uint8, fpRaw uint16) bool {
		pat := trace.Pattern(int(patRaw) % 4)
		fp := int64(fpRaw)%(1<<15) + LineSize
		base := uint64(1) << 40
		s, err := NewStream(phaseWith(pat, fp, 0.4), base, seed)
		if err != nil {
			return false
		}
		// Footprint is rounded up to at least a line inside NewStream.
		limit := uint64(fp)
		if limit < LineSize {
			limit = LineSize
		}
		for i := 0; i < 300; i++ {
			a := s.Next()
			if a < base || a >= base+limit {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamNilPhase(t *testing.T) {
	if _, err := NewStream(nil, 0, 1); err == nil {
		t.Fatal("nil phase accepted")
	}
}

func TestSequentialStreamAdvances(t *testing.T) {
	s, err := NewStream(phaseWith(trace.Sequential, 1<<20, 0), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Next()
	for i := 0; i < 100; i++ {
		next := s.Next()
		if next != prev+8 {
			t.Fatalf("sequential step %d: %d -> %d", i, prev, next)
		}
		prev = next
	}
}

func TestReuseRaisesHitRate(t *testing.T) {
	// A high-reuse random stream must hit a small cache more often than
	// a no-reuse stream over the same large footprint.
	run := func(reuse float64) float64 {
		c, err := NewCache("c", 8<<10, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(phaseWith(trace.Random, 8<<20, reuse), 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			c.Access(0, s.Next())
		}
		return c.Stats(0).MissRate()
	}
	if noReuse, highReuse := run(0), run(0.8); highReuse >= noReuse {
		t.Fatalf("reuse did not reduce misses: %.3f vs %.3f", highReuse, noReuse)
	}
}

func TestSampleRefs(t *testing.T) {
	if got := SampleRefs(100); got != 100 {
		t.Errorf("SampleRefs(100) = %d", got)
	}
	if got := SampleRefs(1 << 40); got <= 0 || got > 1<<20 {
		t.Errorf("SampleRefs(huge) = %d", got)
	}
}

func TestStreamSeedDistinguishesParts(t *testing.T) {
	a := StreamSeed("cpu", "sift", "phase")
	b := StreamSeed("cpu", "sift", "phase2")
	c := StreamSeed("cpusift", "", "phase") // separator must matter
	if a == b || a == c {
		t.Fatalf("seeds collide: %x %x %x", a, b, c)
	}
	if a != StreamSeed("cpu", "sift", "phase") {
		t.Fatal("StreamSeed not deterministic")
	}
}
