// Package isa defines the virtual instruction-category taxonomy used by the
// instrumentation, simulation, and feature-extraction layers.
//
// The taxonomy mirrors the MICA-style categories of Table IV in the paper:
// SSE (packed/vector), ALU (scalar integer arithmetic), MEM (loads/stores),
// FP (scalar floating point), Stack (push/pop and call frames), String
// (byte-string operations), Shift (multiplies and shifts), and Control
// (branches, calls, returns). Counts of instructions in these categories are
// the architecture-independent half of the predictor's feature vector.
package isa

import (
	"fmt"
	"strings"
)

// Category is one MICA-style instruction class.
type Category int

// The instruction categories, in the order used by feature vectors
// (Table IV rows 3-10).
const (
	SSE     Category = iota // packed/vector SIMD operations
	ALU                     // scalar integer arithmetic and logic
	MEM                     // loads and stores
	FP                      // scalar floating-point operations
	Stack                   // stack pushes/pops, frame setup
	String                  // string/byte-block operations
	Shift                   // shifts and multiplies
	Control                 // branches, calls, returns
	NumCategories
)

var categoryNames = [NumCategories]string{
	"sse", "alu", "mem", "fp", "stack", "string", "shift", "control",
}

// String returns the lower-case mnemonic for the category.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("isa.Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in feature-vector order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ParseCategory converts a mnemonic (case-insensitive) back to a Category.
func ParseCategory(s string) (Category, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	for i, n := range categoryNames {
		if n == ls {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown category %q", s)
}

// Counts holds per-category dynamic instruction counts. The zero value is an
// empty count, ready to use.
type Counts [NumCategories]uint64

// Add accumulates n instructions of category c.
func (k *Counts) Add(c Category, n uint64) {
	k[c] += n
}

// AddCounts accumulates every category of other into k.
func (k *Counts) AddCounts(other Counts) {
	for i := range k {
		k[i] += other[i]
	}
}

// Scale returns a copy of k with every category multiplied by factor.
// Scaling with a non-integral factor rounds toward zero per category.
func (k Counts) Scale(factor float64) Counts {
	var out Counts
	for i, v := range k {
		out[i] = uint64(float64(v) * factor)
	}
	return out
}

// Total returns the total dynamic instruction count across categories.
func (k Counts) Total() uint64 {
	var t uint64
	for _, v := range k {
		t += v
	}
	return t
}

// Mix returns the fraction of instructions in each category. If the count is
// empty, all fractions are zero.
func (k Counts) Mix() [NumCategories]float64 {
	var mix [NumCategories]float64
	total := k.Total()
	if total == 0 {
		return mix
	}
	for i, v := range k {
		mix[i] = float64(v) / float64(total)
	}
	return mix
}

// String renders the counts as "cat=n" pairs for debugging.
func (k Counts) String() string {
	var b strings.Builder
	for i, v := range k {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", Category(i), v)
	}
	return b.String()
}
