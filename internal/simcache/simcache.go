// Package simcache is the cross-bag memoization layer for pure simulation
// prefixes: a concurrency-safe, byte-bounded, LRU-evicting cache shared by
// the CPU and GPU simulators.
//
// The corpus of Section V-B runs thousands of 2-application bags over the
// same handful of benchmark workloads, and large pieces of each bag's
// simulation are pure functions of a *single* member: synthetic stream
// generation, the private L1/L2 replay, and the entire isolated
// (single-client) memory simulation. This cache lets cpusim and gpusim
// compute each of those prefixes exactly once per (config, workload, slot)
// and replay only the genuinely shared structures (LLC, device L2, TLB)
// per bag — with guaranteed bit-identical outputs, because every cached
// value is exactly the bytes the cold path would have produced and entries
// are immutable once published.
//
// Concurrency: lookups singleflight — concurrent requests for the same key
// block on one computation (the measurement worker pool frequently asks
// for the same member from several bags at once). Entries are published
// only after the compute function returns; waiters never observe partial
// values. A panicking compute poisons nobody: the entry is evicted, the
// panic propagates to the caller (where the worker pool's containment
// converts it into a typed error), and waiters receive a retryable error.
//
// Bounding: every entry carries a caller-reported byte size; when the
// total exceeds the configured budget the least-recently-used entries are
// dropped. Eviction changes only *when* values are recomputed, never what
// they are, so outputs are bit-identical at every budget — including zero,
// which is expressed as a nil *Cache (all methods are nil-safe no-ops and
// callers fall back to the cold path).
package simcache

import (
	"fmt"
	"sync"
)

// Key identifies one memoized simulation prefix. All fields participate in
// equality:
//
//   - Domain separates caching sites ("cpusim/priv", "gpusim/iso", ...) so
//     different value types never collide.
//   - Config is the exact textual rendering of the simulator configuration
//     (fmt "%+v"): two configs reuse an entry only when every field of the
//     simulated machine is identical.
//   - Workload is trace.Workload.Fingerprint(): a 64-bit digest of every
//     field of the workload. Two distinct workloads share an entry only on
//     a fingerprint collision (~2^-64 per pair; the suite has tens of
//     workloads).
//   - Slot is the client index the workload occupies in the run: slots
//     determine the address-space base and the stream seeds, so the same
//     workload at slot 0 and slot 1 produces different streams.
type Key struct {
	Domain   string
	Config   string
	Workload uint64
	Slot     int
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups served from a published entry (incl. singleflight waits)
	Misses    int64 // lookups that ran the compute function
	Evictions int64 // entries dropped by the LRU bound
	Bytes     int64 // resident entry bytes (caller-reported)
	Entries   int   // resident entry count
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one singleflight slot. done is closed exactly once, after val,
// bytes and err are final; waiters synchronize on it and then read those
// fields without the cache lock.
type entry struct {
	key   Key
	done  chan struct{}
	val   any
	bytes int64
	err   error

	// LRU intrusive list; only published (successful) entries are linked.
	prev, next *entry
}

// Cache is the bounded memo. The zero value is not usable; create with
// New. A nil *Cache is the documented "disabled" state: GetOrCompute runs
// the compute function every time and Stats returns zeros.
type Cache struct {
	budget int64 // bytes; > 0 (New rejects other values)

	mu        sync.Mutex
	entries   map[Key]*entry
	head      *entry // most recently used
	tail      *entry // least recently used
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache bounded to budgetBytes of caller-reported entry
// bytes. budgetBytes must be positive: "no cache" is spelled as a nil
// *Cache, not a zero budget, so disabled paths never pay for map upkeep.
func New(budgetBytes int64) (*Cache, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("simcache: budget must be positive, got %d (disable by passing a nil *Cache instead)", budgetBytes)
	}
	return &Cache{budget: budgetBytes, entries: make(map[Key]*entry)}, nil
}

// MustNew is New for callers with a known-good constant budget.
func MustNew(budgetBytes int64) *Cache {
	c, err := New(budgetBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// GetOrCompute returns the memoized value for key, running compute at most
// once per resident generation of the key. compute reports the value and
// its approximate resident size in bytes; the value MUST be immutable
// after return (callers receive the same value concurrently).
//
// The second return is true on a cache hit (including waiting on another
// goroutine's in-flight computation). Errors are never cached: a failed or
// panicked compute unpublishes the key so the next lookup retries.
//
// A nil receiver runs compute directly — the cold path, bit-identical by
// construction.
func (c *Cache) GetOrCompute(key Key, compute func() (value any, bytes int64, err error)) (any, bool, error) {
	if c == nil {
		v, _, err := compute()
		return v, false, err
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			// Published: bump recency under the same lock.
			c.moveToFront(e)
			c.hits++
			c.mu.Unlock()
			return e.val, true, e.err
		default:
			// In flight: wait outside the lock.
			c.hits++
			c.mu.Unlock()
			<-e.done
			return e.val, true, e.err
		}
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock. If compute panics, unpublish the entry and
	// hand waiters a retryable error before letting the panic propagate to
	// this caller (the measurement pool converts it to a PanicError).
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		e.err = fmt.Errorf("simcache: compute for %v panicked in another goroutine; retry", key)
		close(e.done)
	}()
	val, bytes, err := compute()
	completed = true

	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		e.err = err
		close(e.done)
		return nil, false, err
	}
	if bytes < 0 {
		bytes = 0
	}
	e.val, e.bytes = val, bytes
	c.mu.Lock()
	c.pushFront(e)
	c.bytes += e.bytes
	// Evict least-recently-used published entries until we fit. The entry
	// just inserted is at the front, so it is evicted only if it alone
	// exceeds the whole budget — in which case it is returned to the
	// caller but not retained.
	for c.bytes > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	c.mu.Unlock()
	close(e.done)
	return val, false, nil
}

// moveToFront relinks e as most-recently-used. Caller holds mu.
func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links e at the head. Caller holds mu.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the recency list. Caller holds mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict drops a published entry. Caller holds mu.
func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evictions++
}

// Stats returns a snapshot of the counters. Nil-safe: a disabled cache
// reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
}

// Budget returns the configured byte budget (0 for a nil cache).
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
