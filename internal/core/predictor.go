package core

import (
	"errors"
	"fmt"

	"mapc/internal/dataset"
	"mapc/internal/features"
	"mapc/internal/ml"
)

// Predictor is the trained model: a CART regression tree over a feature
// scheme, carrying the normalization constant of its training corpus so it
// can featurize fresh bags consistently.
type Predictor struct {
	scheme       Scheme
	cols         []int
	colNames     []string
	allNames     []string
	tree         *ml.TreeRegressor
	timeDivisor  float64
	trainedOnPts int
}

// TreeParams exposes the decision-tree hyper-parameters (Section II-B3's
// pre-specified depth etc.).
type TreeParams struct {
	MaxDepth        int
	MinSamplesLeaf  int
	MinSamplesSplit int
}

// DefaultTreeParams mirror the configuration used for every figure.
func DefaultTreeParams() TreeParams {
	return TreeParams{MaxDepth: 0, MinSamplesLeaf: 1, MinSamplesSplit: 2}
}

// Train fits a predictor on the corpus with the given scheme.
func Train(c *dataset.Corpus, scheme Scheme, params TreeParams) (*Predictor, error) {
	if c == nil || len(c.Points) == 0 {
		return nil, errors.New("core: empty corpus")
	}
	d := c.Dataset()
	return trainOn(d, c, scheme, params)
}

// trainOn fits on an explicit dataset view (used by LOOCV to train on
// subsets).
func trainOn(d *ml.Dataset, c *dataset.Corpus, scheme Scheme, params TreeParams) (*Predictor, error) {
	cols, err := scheme.Columns(c.FeatureNames)
	if err != nil {
		return nil, err
	}
	colNames, err := scheme.ColumnNames(c.FeatureNames)
	if err != nil {
		return nil, err
	}
	sel, err := (&ml.Dataset{
		FeatureNames: c.FeatureNames,
		X:            d.X, Y: d.Y, Groups: d.Groups,
	}).SelectFeatures(colNames)
	if err != nil {
		return nil, err
	}
	tree := ml.NewTreeRegressor()
	tree.MaxDepth = params.MaxDepth
	tree.MinSamplesLeaf = params.MinSamplesLeaf
	tree.MinSamplesSplit = params.MinSamplesSplit
	if err := tree.Fit(sel); err != nil {
		return nil, err
	}
	return &Predictor{
		scheme:       scheme,
		cols:         cols,
		colNames:     colNames,
		allNames:     c.FeatureNames,
		tree:         tree,
		timeDivisor:  c.CPUTimeDivisor,
		trainedOnPts: sel.Len(),
	}, nil
}

// Scheme returns the feature scheme the predictor was trained with.
func (p *Predictor) Scheme() Scheme { return p.scheme }

// NumFeatures returns the full corpus-vector width the predictor expects as
// input to PredictRaw/PredictVector (the scheme's column subset is selected
// internally).
func (p *Predictor) NumFeatures() int { return len(p.allNames) }

// TrainedOnPoints returns how many corpus points the model was fitted on.
func (p *Predictor) TrainedOnPoints() int { return p.trainedOnPts }

// RequireScheme returns a descriptive error unless the predictor was
// trained with the given scheme. Callers that assume a particular feature
// scheme (the CLIs' -scheme flag, the serving layer) use it to refuse a
// mismatched saved model loudly instead of silently mispredicting.
func (p *Predictor) RequireScheme(s Scheme) error {
	if !p.scheme.Equal(s) {
		return fmt.Errorf(
			"core: scheme mismatch: model was trained with scheme %q (%d kinds), caller expects %q (%d kinds); retrain or pass the matching -scheme",
			p.scheme.Name, len(p.scheme.Kinds), s.Name, len(s.Kinds))
	}
	return nil
}

// FeatureNames returns the names of the model's input columns.
func (p *Predictor) FeatureNames() []string {
	return append([]string(nil), p.colNames...)
}

// Tree exposes the underlying fitted tree for introspection.
func (p *Predictor) Tree() *ml.TreeRegressor { return p.tree }

// TimeDivisor returns the Section V-C normalization constant.
func (p *Predictor) TimeDivisor() float64 { return p.timeDivisor }

// PredictVector predicts from a full (normalized) corpus-width vector.
func (p *Predictor) PredictVector(x []float64) (float64, error) {
	sel, err := p.selectCols(x)
	if err != nil {
		return 0, err
	}
	return p.tree.Predict(sel)
}

// PredictRaw predicts from a raw (un-normalized) full-width vector, e.g.
// one produced by dataset.Generator.FeaturesFor. The vector is copied.
// Vectors of the wrong width are rejected with a descriptive error naming
// the model's scheme — a wrong-width vector means the caller featurized for
// a different model and any prediction would be silently wrong.
func (p *Predictor) PredictRaw(x []float64) (float64, error) {
	if len(x) != len(p.allNames) {
		return 0, fmt.Errorf(
			"core: feature vector width %d, but model (scheme %q) expects %d raw corpus features",
			len(x), p.scheme.Name, len(p.allNames))
	}
	cp := append([]float64(nil), x...)
	if err := features.ScaleTimes(p.allNames, cp, p.timeDivisor); err != nil {
		return 0, err
	}
	return p.PredictVector(cp)
}

// PathVector returns the decision path for a full-width normalized vector.
func (p *Predictor) PathVector(x []float64) ([]ml.DecisionStep, error) {
	sel, err := p.selectCols(x)
	if err != nil {
		return nil, err
	}
	return p.tree.DecisionPath(sel)
}

func (p *Predictor) selectCols(x []float64) ([]float64, error) {
	if len(x) != len(p.allNames) {
		return nil, fmt.Errorf("core: vector width %d, corpus width %d (model scheme %q)",
			len(x), len(p.allNames), p.scheme.Name)
	}
	sel := make([]float64, len(p.cols))
	for i, c := range p.cols {
		sel[i] = x[c]
	}
	return sel, nil
}

// PredictPoint predicts the GPU bag time for an existing corpus point.
func (p *Predictor) PredictPoint(pt *dataset.Point) (float64, error) {
	return p.PredictVector(pt.X)
}
