// Package profiling wires the standard pprof producers into the CLIs: file
// based CPU/heap profiles for batch tools (mapc-datagen, mapc-experiments)
// and an opt-in loopback net/http/pprof listener for long-running servers
// (mapc-serve). Everything is off unless explicitly requested by flag, and
// the HTTP endpoint refuses non-loopback binds so a profiling port can
// never be exposed publicly by accident.
package profiling

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. Either path may be empty; with both empty Start is a
// no-op and the returned stop does nothing. Typical CLI use:
//
//	stop, err := profiling.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// stop is idempotent and returns the first error it encounters (profiles
// are best-effort diagnostics; callers usually just log it).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: creating CPU profile: %w", err)
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return firstErr
			}
			runtime.GC() // material allocations only: snapshot after a full GC
			if err := rpprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// Handler returns the standard net/http/pprof mux (index, profile, heap,
// goroutine, trace, symbol, cmdline) for mounting on a dedicated listener.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe starts the pprof handler on addr, which must resolve to a
// loopback interface (e.g. "127.0.0.1:6060", "localhost:6060"): the
// profiling surface exposes heap contents and must never face the network.
// It returns the bound listener (so callers can log the resolved address
// and close it on shutdown); serving proceeds on a background goroutine,
// with serve errors reported to errf (may be nil).
func ListenAndServe(addr string, errf func(error)) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("profiling: invalid -pprof address %q: %w", addr, err)
	}
	ips, err := net.LookupIP(host)
	if err != nil {
		return nil, fmt.Errorf("profiling: resolving -pprof host %q: %w", host, err)
	}
	for _, ip := range ips {
		if !ip.IsLoopback() {
			return nil, fmt.Errorf("profiling: refusing non-loopback -pprof address %q (resolves to %s); bind 127.0.0.1 or localhost", addr, ip)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("profiling: listening on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler()}
	go func() {
		err := srv.Serve(ln)
		// Closing the returned listener is the normal shutdown path, so
		// net.ErrClosed (like http.ErrServerClosed) is not reportable.
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) && errf != nil {
			errf(err)
		}
	}()
	return ln, nil
}
