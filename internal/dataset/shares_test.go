package dataset

import (
	"math"
	"reflect"
	"testing"

	"mapc/internal/phasesum"
)

// End-to-end tests for Config.Shares: validation, journal fingerprints,
// the uniform≡nil bit-identity property at corpus level, the per-reason
// fallback split, and the scenario matrix.

func TestSharesValidation(t *testing.T) {
	bad := []struct {
		name   string
		k      int
		shares []float64
	}{
		{"length mismatch", 2, []float64{1, 2, 3}},
		{"zero weight", 2, []float64{1, 0}},
		{"negative weight", 2, []float64{2, -1}},
		{"NaN weight", 2, []float64{1, math.NaN()}},
		{"infinite weight", 2, []float64{1, math.Inf(1)}},
		{"length vs k", 4, []float64{0.5, 0.5}},
	}
	for _, c := range bad {
		cfg := smallConfig()
		cfg.K = c.k
		cfg.Shares = c.shares
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("%s: NewGenerator accepted shares %v at k=%d", c.name, c.shares, c.k)
		}
	}
	cfg := smallConfig()
	cfg.Shares = []float64{0.7, 0.3}
	if _, err := NewGenerator(cfg); err != nil {
		t.Errorf("valid share vector rejected: %v", err)
	}
}

// TestSharesFingerprint pins the journal-compat contract: nil shares keep
// the legacy fingerprint, any non-nil vector (including explicit uniform)
// changes it, and distinct vectors never collide.
func TestSharesFingerprint(t *testing.T) {
	base := smallConfig()
	legacy := base.Fingerprint()

	uniform := base
	uniform.Shares = []float64{0.5, 0.5}
	skew := base
	skew.Shares = []float64{0.7, 0.3}

	if uniform.Fingerprint() == legacy {
		t.Error("explicit uniform shares must fingerprint differently from nil (declared intent differs)")
	}
	if skew.Fingerprint() == legacy || skew.Fingerprint() == uniform.Fingerprint() {
		t.Error("distinct share vectors must not share fingerprints")
	}
}

func TestSharesLabel(t *testing.T) {
	cfg := smallConfig()
	if got := cfg.SharesLabel(); got != "" {
		t.Errorf("nil shares label %q, want empty", got)
	}
	cfg.Shares = []float64{0.7, 0.2, 0.1}
	if got := cfg.SharesLabel(); got != "0.7/0.2/0.1" {
		t.Errorf("shares label %q, want 0.7/0.2/0.1", got)
	}
}

// TestUniformSharesCorpusBitIdentical: a corpus generated with an explicit
// 1/k share vector matches the nil-shares corpus point for point, at k=2
// and k=4, under the fast analytic tier (the tier the property unlocks).
func TestUniformSharesCorpusBitIdentical(t *testing.T) {
	for _, k := range []int{2, 4} {
		cfg := fidelityConfig(phasesum.Fast)
		cfg.K = k
		want := generateWithWorkers(t, cfg, 1)

		uniform := make([]float64, k)
		for i := range uniform {
			uniform[i] = 1 / float64(k)
		}
		cfg.Shares = uniform
		got := generateWithWorkers(t, cfg, 1)

		if !reflect.DeepEqual(got.Points, want.Points) {
			t.Fatalf("k=%d: explicit uniform shares changed the corpus", k)
		}
	}
}

// TestSkewedSharesStayAnalytic is the acceptance criterion: skewed
// corpora with minority shares down to 0.05 at k ∈ {2,4} keep >= 90% of
// contended co-runs analytic under mixed fidelity, with the full-corpus
// differential oracle inside 5% on the GPU bag time.
func TestSkewedSharesStayAnalytic(t *testing.T) {
	cases := []struct {
		k      int
		shares []float64
	}{
		{2, []float64{0.95, 0.05}},
		{4, []float64{0.85, 0.05, 0.05, 0.05}},
	}
	for _, c := range cases {
		cfg := smallConfig()
		cfg.MixedPairs = 2
		cfg.K = c.k
		cfg.Shares = c.shares
		cfg.Fidelity = phasesum.Mixed
		gen, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gen.Generate(); err != nil {
			t.Fatal(err)
		}
		st := gen.FidelityStats()
		total := st.AnalyticRuns + st.ExactFallbacks + st.ExactRuns
		if total == 0 {
			t.Fatalf("k=%d: no contended co-runs counted", c.k)
		}
		if cov := float64(st.AnalyticRuns) / float64(total); cov < 0.9 {
			t.Errorf("k=%d shares %v: analytic coverage %.2f < 0.90 (%+v)", c.k, c.shares, cov, st)
		}
		rep, err := gen.RunOracle(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Within(0.05) {
			t.Errorf("k=%d shares %v: oracle outside 5%%: %+v", c.k, c.shares, rep)
		}
	}
}

// TestFallbackReasonSplit: extreme share skew leaves the minority client a
// fifth of an SM, so mixed-tier GPU co-runs must fall back with the
// sub-SM-share reason — and the reason counters must sum to the fallback
// total.
func TestFallbackReasonSplit(t *testing.T) {
	cfg := fidelityConfig(phasesum.Mixed)
	cfg.Shares = []float64{0.995, 0.005}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(); err != nil {
		t.Fatal(err)
	}
	st := gen.FidelityStats()
	if st.FallbackSubSMShare == 0 {
		t.Errorf("no sub-SM-share fallbacks under a 0.2-SM minority partition: %+v", st)
	}
	if sum := st.FallbackLowConfidence + st.FallbackSubSMShare + st.FallbackBandwidthGate; sum != st.ExactFallbacks {
		t.Errorf("fallback reasons sum to %d, want %d: %+v", sum, st.ExactFallbacks, st)
	}
}

func TestParseShares(t *testing.T) {
	got, err := ParseShares("0.7/0.2/0.1")
	if err != nil || !reflect.DeepEqual(got, []float64{0.7, 0.2, 0.1}) {
		t.Errorf("ParseShares slash form: %v, %v", got, err)
	}
	got, err = ParseShares("0.7,0.3")
	if err != nil || !reflect.DeepEqual(got, []float64{0.7, 0.3}) {
		t.Errorf("ParseShares comma form: %v, %v", got, err)
	}
	for _, bad := range []string{"", "a/b", "0.7;0.3"} {
		if _, err := ParseShares(bad); err == nil {
			t.Errorf("ParseShares(%q) accepted", bad)
		}
	}
}

func TestParseScenarios(t *testing.T) {
	specs, err := ParseScenarios("2;2:uniform;2:0.7/0.3;4:0.85/0.05/0.05/0.05")
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"k2:uniform", "k2:uniform", "k2:0.7/0.3", "k4:0.85/0.05/0.05/0.05"}
	if len(specs) != len(wantNames) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(wantNames))
	}
	for i, s := range specs {
		if s.Name() != wantNames[i] {
			t.Errorf("spec %d name %q, want %q", i, s.Name(), wantNames[i])
		}
	}
	for _, bad := range []string{"", "x:0.5/0.5", "2:0.7/0.2/0.1", "2:0.7/oops"} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Errorf("ParseScenarios(%q) accepted", bad)
		}
	}
}

// TestRunScenarios: a two-cell matrix at the fast tier produces full
// analytic coverage, per-cell oracle reports, and canonical names.
func TestRunScenarios(t *testing.T) {
	base := smallConfig()
	base.MixedPairs = 0
	base.Benchmarks = []string{"fast", "knn"}
	base.BatchSizes = []int{20, 40}
	base.Fidelity = phasesum.Fast
	specs := []ScenarioSpec{{K: 2}, {K: 2, Shares: []float64{0.7, 0.3}}}
	rep, err := RunScenarios(base, specs, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fidelity != "fast" || len(rep.Scenarios) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	for _, s := range rep.Scenarios {
		if s.AnalyticCoverage != 1 {
			t.Errorf("cell %s: fast-tier coverage %v, want 1", s.Name, s.AnalyticCoverage)
		}
		if s.Oracle == nil || !s.Oracle.Within(0.05) {
			t.Errorf("cell %s: oracle missing or out of bounds: %+v", s.Name, s.Oracle)
		}
		if s.Points == 0 || s.PointsPerSec <= 0 {
			t.Errorf("cell %s: empty or untimed (%d points, %v pts/s)", s.Name, s.Points, s.PointsPerSec)
		}
	}
	if rep.Scenarios[0].Name != "k2:uniform" || rep.Scenarios[1].Name != "k2:0.7/0.3" {
		t.Errorf("cell names: %q, %q", rep.Scenarios[0].Name, rep.Scenarios[1].Name)
	}
	if rep.MinAnalyticCoverage() != 1 {
		t.Errorf("MinAnalyticCoverage %v, want 1", rep.MinAnalyticCoverage())
	}
	if rep.MaxRelErrGPU() > 0.05 {
		t.Errorf("MaxRelErrGPU %v > 0.05", rep.MaxRelErrGPU())
	}

	if _, err := RunScenarios(base, nil, 0, 0); err == nil {
		t.Error("empty scenario list accepted")
	}
}
