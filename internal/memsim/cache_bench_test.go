package memsim

import (
	"testing"

	"mapc/internal/xrand"
)

// Cache microbenchmarks mirror the TLB suite: hit-heavy (footprint fits),
// miss-heavy (streaming lines), and multi-source contention — the regimes
// the shared-LLC (cpusim) and shared-L2 (gpusim) interleaving loops drive.
// Geometry matches gpusim.DefaultConfig's T4 L2 (4 MiB, 16 ways).

func benchCacheAddrs(lines int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % uint64(lines)) * LineSize
	}
	return addrs
}

func benchCache(b *testing.B, sources int) *Cache {
	b.Helper()
	c, err := NewCache("bench-l2", 4<<20, 16, sources)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkCacheAccessHitHeavy(b *testing.B) {
	c := benchCache(b, 1)
	// Working set = 1/4 of capacity: after warm-up nearly every access hits.
	addrs := benchCacheAddrs((4<<20)/LineSize/4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, addrs[i&(len(addrs)-1)])
	}
}

func BenchmarkCacheAccessMissHeavy(b *testing.B) {
	c := benchCache(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Streaming: distinct lines forever, every access past warm-up
		// misses and evicts.
		c.Access(0, uint64(i)*LineSize)
	}
}

func BenchmarkCacheAccessMultiSource(b *testing.B) {
	const sources = 4
	c := benchCache(b, sources)
	// 2x capacity shared by 4 clients: heavy cross-source eviction.
	addrs := benchCacheAddrs((4<<20)/LineSize*2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i&(sources-1), addrs[i&(len(addrs)-1)])
	}
}
