package ml

import (
	"errors"
	"fmt"
	"math"

	"mapc/internal/xrand"
)

// ForestRegressor is a bagged ensemble of regression trees with per-tree
// random feature subspaces — a from-scratch random forest. It is not part
// of the paper's evaluation (the paper argues for a single explainable
// tree) but serves the model-comparison extension and downstream users who
// prefer variance reduction over path explainability.
type ForestRegressor struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds each tree (0 = unbounded).
	MaxDepth int
	// MinSamplesLeaf is each tree's smallest leaf.
	MinSamplesLeaf int
	// FeatureFraction is the share of features each tree sees; 0 selects
	// the sqrt(p)/p heuristic.
	FeatureFraction float64
	// Seed drives bootstrapping and subspace selection.
	Seed uint64

	trees    []*TreeRegressor
	features [][]int // per-tree column subset
	nFeature int
	fitted   bool
}

// NewForestRegressor returns a 100-tree forest with default settings.
func NewForestRegressor() *ForestRegressor {
	return &ForestRegressor{Trees: 100, MinSamplesLeaf: 1, Seed: 1}
}

// Fit trains the ensemble on bootstrap resamples of d.
func (f *ForestRegressor) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if f.Trees <= 0 {
		return errors.New("ml: forest needs a positive tree count")
	}
	n := d.Len()
	p := len(d.X[0])
	frac := f.FeatureFraction
	if frac <= 0 {
		frac = math.Sqrt(float64(p)) / float64(p)
	}
	if frac > 1 {
		return fmt.Errorf("ml: feature fraction %v exceeds 1", frac)
	}
	k := int(math.Ceil(frac * float64(p)))
	if k < 1 {
		k = 1
	}

	rng := xrand.New(f.Seed)
	f.trees = make([]*TreeRegressor, f.Trees)
	f.features = make([][]int, f.Trees)
	f.nFeature = p
	for ti := 0; ti < f.Trees; ti++ {
		// Bootstrap rows.
		sub := &Dataset{
			X: make([][]float64, n),
			Y: make([]float64, n),
		}
		// Random feature subspace.
		perm := rng.Perm(p)
		cols := append([]int(nil), perm[:k]...)
		f.features[ti] = cols
		for i := 0; i < n; i++ {
			src := rng.Intn(n)
			row := make([]float64, k)
			for j, c := range cols {
				row[j] = d.X[src][c]
			}
			sub.X[i] = row
			sub.Y[i] = d.Y[src]
		}
		tree := NewTreeRegressor()
		tree.MaxDepth = f.MaxDepth
		tree.MinSamplesLeaf = f.MinSamplesLeaf
		if err := tree.Fit(sub); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", ti, err)
		}
		f.trees[ti] = tree
	}
	f.fitted = true
	return nil
}

// Predict averages the ensemble's predictions at x.
func (f *ForestRegressor) Predict(x []float64) (float64, error) {
	if !f.fitted {
		return 0, errors.New("ml: forest not fitted")
	}
	if len(x) != f.nFeature {
		return 0, fmt.Errorf("ml: feature vector width %d, forest expects %d", len(x), f.nFeature)
	}
	var sum float64
	sub := make([]float64, 0, f.nFeature)
	for ti, tree := range f.trees {
		sub = sub[:0]
		for _, c := range f.features[ti] {
			sub = append(sub, x[c])
		}
		v, err := tree.Predict(sub)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(len(f.trees)), nil
}

// PredictAll predicts every row of X.
func (f *ForestRegressor) PredictAll(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, x := range X {
		v, err := f.Predict(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Size returns the fitted ensemble size.
func (f *ForestRegressor) Size() int { return len(f.trees) }

var _ Regressor = (*ForestRegressor)(nil)
