package profiling

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles are non-trivial.
	var sink []byte
	for i := 0; i < 2000; i++ {
		sink = append(sink, make([]byte, 1024)...)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("unwritable CPU profile path accepted")
	}
}

func TestListenAndServeLoopbackOnly(t *testing.T) {
	if _, err := ListenAndServe("0.0.0.0:0", nil); err == nil {
		t.Fatal("wildcard bind accepted; pprof must stay on loopback")
	}
	if _, err := ListenAndServe("notanaddress", nil); err == nil {
		t.Fatal("garbage address accepted")
	}

	ln, err := ListenAndServe("127.0.0.1:0", func(err error) { t.Error(err) })
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("pprof index empty")
	}
}
