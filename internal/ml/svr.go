package ml

import (
	"errors"
	"fmt"
	"math"

	"mapc/internal/xrand"
)

// Kernel is a similarity function between feature vectors (Section II-B2).
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// LinearKernel is the inner-product kernel.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// RBFKernel is the Gaussian radial-basis-function kernel
// k(a,b) = exp(-gamma*||a-b||²).
type RBFKernel struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// SVR is epsilon-insensitive support vector regression trained with a
// simplified SMO optimizer — the paper's rejected alternative model, kept
// for the Section V-D comparison (its error was ~10x the tree's on this
// problem because the sparse data cannot pin down a unique hyperplane).
type SVR struct {
	// C is the box constraint on the dual variables.
	C float64
	// Epsilon is the width of the insensitive tube.
	Epsilon float64
	// Kernel defaults to RBF with gamma=1/width when nil.
	Kernel Kernel
	// MaxPasses bounds SMO sweeps without progress.
	MaxPasses int
	// Seed drives the SMO partner-selection randomness.
	Seed uint64

	x      [][]float64
	beta   []float64 // beta_i = alpha_i - alpha_i^*
	bias   float64
	fitted bool
}

// NewSVR returns an SVR with conventional hyper-parameters (C=10, eps=0.05).
func NewSVR() *SVR {
	return &SVR{C: 10, Epsilon: 0.05, MaxPasses: 5, Seed: 1}
}

// Fit trains the model on the dataset.
func (m *SVR) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if m.C <= 0 {
		return errors.New("ml: SVR C must be positive")
	}
	if m.Epsilon < 0 {
		return errors.New("ml: SVR epsilon must be non-negative")
	}
	if m.Kernel == nil {
		m.Kernel = RBFKernel{Gamma: 1 / float64(len(d.X[0]))}
	}
	if m.MaxPasses <= 0 {
		m.MaxPasses = 5
	}

	n := d.Len()
	m.x = d.X
	m.beta = make([]float64, n)
	m.bias = mean(d.Y)

	// Cache the kernel matrix: the datasets here are small (~100 points),
	// exactly the regime the paper works in.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := m.Kernel.Eval(d.X[i], d.X[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	f := func(i int) float64 {
		s := m.bias
		for j := 0; j < n; j++ {
			if m.beta[j] != 0 {
				s += m.beta[j] * k[i][j]
			}
		}
		return s
	}

	rng := xrand.New(m.Seed)
	passes := 0
	for total := 0; passes < m.MaxPasses && total < 60; total++ {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - d.Y[i]
			// KKT check for the epsilon tube.
			violates := (ei > m.Epsilon && m.beta[i] > -m.C) ||
				(ei < -m.Epsilon && m.beta[i] < m.C)
			if !violates {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - d.Y[j]
			eta := k[i][i] + k[j][j] - 2*k[i][j]
			if eta <= 1e-12 {
				continue
			}
			// Joint optimization preserving beta_i + beta_j keeps the
			// equality constraint sum(beta)=0 satisfied.
			delta := (ej - ei) / eta
			oldI, oldJ := m.beta[i], m.beta[j]
			bi := clamp(oldI+delta, -m.C, m.C)
			delta = bi - oldI
			bj := clamp(oldJ-delta, -m.C, m.C)
			delta = oldJ - bj
			bi = oldI + delta
			if math.Abs(bi-oldI) < 1e-12 {
				continue
			}
			m.beta[i] = bi
			m.beta[j] = bj
			// Re-centre the bias on the current residuals.
			m.bias -= (ei + ej) / (2 * float64(n))
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Final bias: average residual over the tube-interior points.
	var resid float64
	var cnt int
	for i := 0; i < n; i++ {
		if math.Abs(m.beta[i]) < m.C-1e-9 {
			resid += d.Y[i] - (f(i) - m.bias)
			cnt++
		}
	}
	if cnt > 0 {
		m.bias = resid / float64(cnt)
	}
	m.fitted = true
	return nil
}

// Predict evaluates the fitted model at x.
func (m *SVR) Predict(x []float64) (float64, error) {
	if !m.fitted {
		return 0, errors.New("ml: SVR not fitted")
	}
	if len(x) != len(m.x[0]) {
		return 0, fmt.Errorf("ml: feature vector width %d, model expects %d", len(x), len(m.x[0]))
	}
	s := m.bias
	for i, b := range m.beta {
		if b != 0 {
			s += b * m.Kernel.Eval(m.x[i], x)
		}
	}
	return s, nil
}

// PredictAll predicts every row of X.
func (m *SVR) PredictAll(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, x := range X {
		v, err := m.Predict(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// SupportVectors returns the number of points with non-zero dual weight.
func (m *SVR) SupportVectors() int {
	n := 0
	for _, b := range m.beta {
		if b != 0 {
			n++
		}
	}
	return n
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
