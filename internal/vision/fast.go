package vision

import (
	"mapc/internal/trace"
)

// FAST implements the FAST-9 corner detector (Rosten & Drummond): a pixel is
// a corner when 9 contiguous pixels on the 16-pixel Bresenham circle of
// radius 3 are all brighter or all darker than the centre by a threshold.
// Detection is followed by non-maximum suppression on a corner score.
type FAST struct {
	// Threshold is the intensity difference required on the circle.
	Threshold float64
}

// NewFAST returns the detector with the conventional threshold of 20.
func NewFAST() *FAST { return &FAST{Threshold: 20} }

// Name implements Benchmark.
func (f *FAST) Name() string { return "fast" }

// Scene implements Benchmark.
func (f *FAST) Scene() SceneKind { return SceneTextured }

// circle16 is the Bresenham circle of radius 3: 16 (dx, dy) offsets in
// clockwise order starting from (0, -3).
var circle16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// Keypoint is a detected interest point with a saliency score and, for
// oriented detectors, an orientation in radians.
type Keypoint struct {
	X, Y        int
	Score       float64
	Orientation float64
	Octave      int
}

func (f *FAST) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var totalCorners int
	for _, im := range images {
		kps := f.detect(im, rec)
		totalCorners += len(kps)
	}
	return map[string]float64{
		"corners": float64(totalCorners) / float64(len(images)),
	}, nil
}

// detect runs segment test + NMS on one image under instrumentation.
func (f *FAST) detect(im *Image, rec *trace.Recorder) []Keypoint {
	w, h := im.W, im.H
	interior := (w - 6) * (h - 6)
	if interior < 1 {
		interior = 1
	}

	// Phase 1: segment test over every interior pixel. Window accesses on
	// the radius-3 circle, integer compares, highly branchy — the
	// signature FAST profile (ALU/control heavy, no FP).
	rec.BeginPhase("fast-segment-test", im.Bytes(), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.85,
		Parallelism: interior,
		VectorWidth: 1,
	})
	score := NewImage(w, h)
	var candidates []Keypoint
	var circleProbes uint64
	for y := 3; y < h-3; y++ {
		for x := 3; x < w-3; x++ {
			c := im.At(x, y)
			hi := c + f.Threshold
			lo := c - f.Threshold

			// Early-exit test on the 4 compass points: any 9-pixel
			// contiguous arc covers at least 2 of them, so fewer than
			// 2 passing points rules the pixel out.
			nb, nd := 0, 0
			for _, i := range [4]int{0, 4, 8, 12} {
				v := im.At(x+circle16[i][0], y+circle16[i][1])
				if v > hi {
					nb++
				} else if v < lo {
					nd++
				}
			}
			circleProbes += 4
			if nb < 2 && nd < 2 {
				continue
			}

			// Full segment test: longest contiguous arc above/below.
			var bright, dark [16]bool
			for i, off := range circle16 {
				v := im.At(x+off[0], y+off[1])
				bright[i] = v > hi
				dark[i] = v < lo
			}
			circleProbes += 16
			if arcLen(bright[:]) >= 9 || arcLen(dark[:]) >= 9 {
				s := f.cornerScore(im, x, y)
				score.Set(x, y, s)
				candidates = append(candidates, Keypoint{X: x, Y: y, Score: s})
			}
		}
	}
	rec.Mem(circleProbes + uint64(interior)) // circle loads + centre loads
	rec.ALU(circleProbes * 2)                // two compares per probe
	rec.Control(circleProbes + uint64(interior))
	rec.Shift(circleProbes) // 2-D offset addressing
	rec.EndPhase()

	// Phase 2: 3x3 non-maximum suppression over the candidates.
	rec.BeginPhase("fast-nms", score.Bytes(), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.6,
		Parallelism: maxInt(len(candidates), 1),
		VectorWidth: 1,
	})
	var out []Keypoint
	for _, kp := range candidates {
		best := true
		for dy := -1; dy <= 1 && best; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if score.AtClamped(kp.X+dx, kp.Y+dy) > kp.Score {
					best = false
					break
				}
			}
		}
		if best {
			out = append(out, kp)
		}
	}
	n := uint64(len(candidates))
	rec.Mem(n * 9)
	rec.FP(n * 8) // score compares
	rec.Control(n * 9)
	rec.ALU(n * 4)
	rec.EndPhase()
	return out
}

// cornerScore is the sum of absolute differences between the centre and the
// circle pixels that exceed the threshold — the standard FAST NMS score.
func (f *FAST) cornerScore(im *Image, x, y int) float64 {
	c := im.At(x, y)
	var s float64
	for _, off := range circle16 {
		d := im.At(x+off[0], y+off[1]) - c
		if d > f.Threshold || d < -f.Threshold {
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// arcLen returns the longest run of true values in the circular sequence.
func arcLen(b []bool) int {
	n := len(b)
	best, cur := 0, 0
	// Walk twice around to capture wrap-around arcs, capped at n.
	for i := 0; i < 2*n; i++ {
		if b[i%n] {
			cur++
			if cur > best {
				best = cur
			}
			if best >= n {
				return n
			}
		} else {
			cur = 0
		}
	}
	return best
}
