// Package cpusim models the paper's multicore CPU server (Table III: 2x
// Intel Xeon Gold 5118, 24 physical cores, 128 GB): out-of-order cores with
// per-category issue ports, private L1/L2 caches, a shared last-level cache,
// and finite DRAM bandwidth. It executes trace.Workloads — alone or
// co-scheduled — and reports execution time and IPC, from which the perfmon
// package derives the fairness feature.
//
// The model is a port-pressure + memory-hierarchy simulator: per phase, the
// compute bound is the max of total-issue and per-port cycles, the memory
// bound comes from simulating a sampled synthetic address stream through
// the cache hierarchy (the LLC genuinely shared between co-runners), and
// DRAM bandwidth is apportioned between applications by demand.
package cpusim

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"mapc/internal/isa"
	"mapc/internal/memsim"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// Config describes the simulated multicore machine. DefaultConfig mirrors
// the paper's Table III server.
type Config struct {
	Cores          int     // physical cores
	ThreadsPerCore int     // SMT ways
	SMTYield       float64 // extra throughput an SMT sibling adds (0..1)
	FreqGHz        float64 // core clock
	IssueWidth     float64 // total micro-ops issued per cycle per core

	// Throughput holds per-category execution-port throughput in
	// operations per cycle per core.
	Throughput [isa.NumCategories]float64

	L1Bytes int64 // private L1D capacity
	L1Ways  int
	L2Bytes int64 // private L2 capacity
	L2Ways  int
	LLCytes int64 // shared LLC capacity
	LLCWays int

	L2LatencyCycles  float64 // L1 miss, L2 hit
	LLCLatencyCycles float64 // L2 miss, LLC hit
	DRAMLatency      float64 // LLC miss, in cycles
	DRAMBandwidth    float64 // bytes/second shared by all cores
	MLP              float64 // overlapped outstanding misses per thread

	ForkJoinCycles float64 // per-phase parallel region overhead

	// PrefetchDegree attaches a stride prefetcher in front of each app's
	// private L2, issuing this many line prefetches per confident miss.
	// 0 (the default) disables it: the calibrated port/MLP parameters
	// already fold the average benefit of hardware prefetching in; the
	// explicit model is an opt-in refinement studied by the ablations.
	PrefetchDegree int
}

// DefaultConfig returns the Table-III-equivalent machine: 24 cores with SMT,
// 2.3 GHz, 32 KB/1 MB private caches, a 32 MB shared LLC and ~100 GB/s of
// DRAM bandwidth (per-socket share of the 2-socket machine).
func DefaultConfig() Config {
	var tput [isa.NumCategories]float64
	tput[isa.SSE] = 2     // two vector ports
	tput[isa.ALU] = 3     // three scalar ALUs
	tput[isa.MEM] = 2     // two AGU/load-store ports
	tput[isa.FP] = 2      // two FP ports
	tput[isa.Stack] = 2   // handled by the store/ALU ports
	tput[isa.String] = 1  // microcoded
	tput[isa.Shift] = 2   // shift/mul ports
	tput[isa.Control] = 2 // branch units
	return Config{
		Cores:            24,
		ThreadsPerCore:   2,
		SMTYield:         0.35,
		FreqGHz:          2.3,
		IssueWidth:       4,
		Throughput:       tput,
		L1Bytes:          32 << 10,
		L1Ways:           8,
		L2Bytes:          1 << 20,
		L2Ways:           16,
		LLCytes:          16 << 20,
		LLCWays:          11,
		L2LatencyCycles:  14,
		LLCLatencyCycles: 44,
		DRAMLatency:      220,
		DRAMBandwidth:    25e9,
		MLP:              6,
		ForkJoinCycles:   20000,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.ThreadsPerCore <= 0:
		return errors.New("cpusim: cores and SMT ways must be positive")
	case c.FreqGHz <= 0:
		return errors.New("cpusim: frequency must be positive")
	case c.IssueWidth <= 0:
		return errors.New("cpusim: issue width must be positive")
	case c.L1Bytes <= 0 || c.L2Bytes <= 0 || c.LLCytes <= 0:
		return errors.New("cpusim: cache capacities must be positive")
	case c.DRAMBandwidth <= 0:
		return errors.New("cpusim: DRAM bandwidth must be positive")
	case c.MLP <= 0:
		return errors.New("cpusim: MLP must be positive")
	}
	for cat, t := range c.Throughput {
		if t <= 0 {
			return fmt.Errorf("cpusim: throughput for %v must be positive", isa.Category(cat))
		}
	}
	return nil
}

// App is one application instance scheduled onto the machine.
type App struct {
	// Workload is the instrumented trace to execute. Read-only contract:
	// Run (and RunMemo) never mutate the workload, so callers may pass one
	// shared *trace.Workload to any number of concurrent runs without
	// cloning. TestRunTreatsWorkloadsAsReadOnly enforces this with a deep
	// content hash before and after every run.
	Workload *trace.Workload
	// Threads is the OpenMP-style thread count; the paper uses each
	// benchmark's best configuration.
	Threads int
}

// Result reports one application's simulated execution.
type Result struct {
	// TimeSec is the wall-clock execution time.
	TimeSec float64
	// Cycles is the wall-clock time in core cycles.
	Cycles float64
	// Instructions is the total dynamic instruction count.
	Instructions uint64
	// IPC is aggregate instructions per wall-clock cycle (all threads).
	IPC float64
	// LLCMissRate is the fraction of this app's LLC accesses that missed.
	LLCMissRate float64
	// DRAMBytes is the total traffic this app drove to memory.
	DRAMBytes float64
}

// Performance returns 1/time, the paper's definition of performance.
func (r Result) Performance() float64 {
	if r.TimeSec <= 0 {
		return 0
	}
	return 1 / r.TimeSec
}

// phaseMem captures one phase's simulated memory behaviour.
type phaseMem struct {
	l1Miss   float64 // per reference
	l2Miss   float64 // per reference (of refs, not of L1 misses)
	llcMiss  float64 // per reference
	llcMissN uint64
}

// Run simulates the co-scheduled execution of apps and returns one Result
// per app. Like a real co-run, the execution is phased: all apps contend
// while co-resident, and each app's exit releases its cores, cache share
// and bandwidth to the survivors. Reported times are completion times and
// IPC is lifetime IPC — what Linux perf attached to each process measures.
// A single-element slice simulates an isolated run.
//
// Run treats every workload as strictly read-only (see App.Workload), so
// callers may share cached workloads across concurrent runs.
func Run(cfg Config, apps []App) ([]Result, error) {
	return RunMemo(cfg, nil, apps)
}

// RunMemo is Run with a cross-run memo for pure simulation prefixes. Two
// pieces of simulateMemory are pure functions of (cfg, workload, slot) and
// are cached in memo when it is non-nil:
//
//   - the per-app private phase — stream generation, the L1/L2 replay with
//     the stride prefetcher, the per-phase l1/l2 miss ratios and the
//     LLC-bound miss list — which never observes the co-runner (seeds and
//     address bases are slot-derived, and the private caches are reset per
//     app);
//   - for single-app runs, the entire memory simulation including the LLC
//     replay (one client, so nothing is shared).
//
// Shared structures (the LLC with more than one client, DRAM bandwidth
// apportioning, the phased completion schedule) are always recomputed per
// call. Outputs are bit-identical to Run for every memo budget, including
// under eviction pressure: cached entries are immutable and hold exactly
// the bytes the cold path would recompute. A nil memo is the cold path.
func RunMemo(cfg Config, memo *simcache.Cache, apps []App) ([]Result, error) {
	if err := validateApps(cfg, apps); err != nil {
		return nil, err
	}
	return runPhased(cfg, apps, func(sub []App) ([]Result, error) {
		return runSteady(cfg, memo, sub)
	})
}

// runPhased executes the phased completion schedule over steady-state
// rates: progress every active app proportionally to its current rate;
// when the earliest finisher completes, re-evaluate the survivors as a
// smaller client set via steady. Shared by the exact path (RunMemo) and
// the analytic fidelity tier (RunMemoFidelity) — same schedule, different
// steady-state evaluators.
func runPhased(cfg Config, apps []App, steadyFn func(sub []App) ([]Result, error)) ([]Result, error) {
	steady, err := steadyFn(apps)
	if err != nil {
		return nil, err
	}
	if len(apps) == 1 {
		return steady, nil
	}

	n := len(apps)
	remaining := make([]float64, n)
	finish := make([]float64, n)
	active := make([]int, n)
	for i := range active {
		active[i] = i
		remaining[i] = 1
	}
	cur := steady
	var clock float64
	for len(active) > 0 {
		best := -1
		bestDT := 0.0
		for k := range active {
			dt := remaining[active[k]] * cur[k].TimeSec
			if best < 0 || dt < bestDT {
				best, bestDT = k, dt
			}
		}
		for k, ai := range active {
			if cur[k].TimeSec > 0 {
				remaining[ai] -= bestDT / cur[k].TimeSec
			} else {
				remaining[ai] = 0
			}
		}
		clock += bestDT
		done := active[best]
		finish[done] = clock
		remaining[done] = 0
		active = append(active[:best], active[best+1:]...)
		if len(active) == 0 {
			break
		}
		sub := make([]App, len(active))
		for k, ai := range active {
			sub[k] = apps[ai]
		}
		cur, err = steadyFn(sub)
		if err != nil {
			return nil, err
		}
	}

	out := make([]Result, n)
	for i := range apps {
		out[i] = steady[i]
		out[i].TimeSec = finish[i]
		out[i].Cycles = finish[i] * cfg.FreqGHz * 1e9
		if out[i].Cycles > 0 {
			out[i].IPC = float64(out[i].Instructions) / out[i].Cycles
		}
	}
	return out, nil
}

func validateApps(cfg Config, apps []App) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(apps) == 0 {
		return errors.New("cpusim: no applications to run")
	}
	for i := range apps {
		if apps[i].Workload == nil {
			return fmt.Errorf("cpusim: app %d has nil workload", i)
		}
		if err := apps[i].Workload.Validate(); err != nil {
			return fmt.Errorf("cpusim: app %d: %w", i, err)
		}
		if apps[i].Threads <= 0 {
			return fmt.Errorf("cpusim: app %d has non-positive thread count", i)
		}
	}
	return nil
}

// runSteady computes per-app times assuming all apps stay co-resident.
// mem is treated as read-only here: for memoized single-app runs it aliases
// an immutable cache entry.
func runSteady(cfg Config, memo *simcache.Cache, apps []App) ([]Result, error) {
	mem, llcStats, err := simulateMemory(cfg, memo, apps)
	if err != nil {
		return nil, err
	}
	llcRates := make([]float64, len(apps))
	for i := range llcStats {
		llcRates[i] = llcStats[i].MissRate()
	}
	return steadyFromMem(cfg, apps, mem, llcRates), nil
}

// steadyFromMem is the timing tail of runSteady: core allocation, the
// two-pass bandwidth apportioning, and result assembly, given the
// per-phase memory behaviour (exact or analytic) and the per-app LLC miss
// ratios to report. Shared by the exact and analytic steady evaluators.
func steadyFromMem(cfg Config, apps []App, mem [][]phaseMem, llcRates []float64) []Result {
	// Core allocation. The machine provides Cores full-speed thread
	// contexts plus diminishing-return SMT siblings: its total capacity
	// in core-equivalents is Cores*(1 + SMTYield*(ThreadsPerCore-1)).
	// While demand fits within physical cores every thread runs at full
	// speed; beyond that, all runnable threads share the capacity
	// proportionally — the OS time-slices them fairly.
	capacity := float64(cfg.Cores) * (1 + cfg.SMTYield*float64(cfg.ThreadsPerCore-1))
	demanded := 0
	for i := range apps {
		demanded += apps[i].Threads
	}
	coreScale := 1.0
	if d := float64(demanded); d > float64(cfg.Cores) {
		if scale := capacity / d; scale < 1 {
			coreScale = scale
		}
	}

	// Pass 1: compute-and-latency-bound times, ignoring bandwidth.
	results := make([]Result, len(apps))
	traffic := make([]float64, len(apps))
	for i := range apps {
		cycles, bytes := appCycles(cfg, apps[i], mem[i], coreScale, 0)
		results[i].Cycles = cycles
		traffic[i] = bytes
	}

	// Pass 2: apportion DRAM bandwidth by demand and re-time with the
	// bandwidth bound in place.
	share := bandwidthShares(cfg, results, traffic)
	for i := range apps {
		cycles, bytes := appCycles(cfg, apps[i], mem[i], coreScale, share[i])
		w := apps[i].Workload
		results[i] = Result{
			TimeSec:      cycles / (cfg.FreqGHz * 1e9),
			Cycles:       cycles,
			Instructions: w.Instructions(),
			DRAMBytes:    bytes,
			LLCMissRate:  llcRates[i],
		}
		if cycles > 0 {
			results[i].IPC = float64(w.Instructions()) / cycles
		}
	}
	return results
}

// bandwidthShares returns per-app available DRAM bandwidth (bytes/sec) under
// max-min fair arbitration of the memory controller.
func bandwidthShares(cfg Config, prelim []Result, traffic []float64) []float64 {
	demand := make([]float64, len(prelim))
	for i := range prelim {
		t := prelim[i].Cycles / (cfg.FreqGHz * 1e9)
		if t > 0 {
			demand[i] = traffic[i] / t
		}
	}
	return memsim.Waterfill(cfg.DRAMBandwidth, demand)
}

// appCycles computes one app's wall-clock cycles and DRAM traffic given its
// per-phase memory behaviour. bwShare, when positive, bounds phase
// throughput by the app's bandwidth allocation in bytes/second.
func appCycles(cfg Config, app App, mem []phaseMem, coreScale float64, bwShare float64) (float64, float64) {
	return appCyclesTraced(cfg, app, mem, coreScale, bwShare, nil)
}

func appCyclesTraced(cfg Config, app App, mem []phaseMem, coreScale float64, bwShare float64, timings *[]PhaseTiming) (float64, float64) {
	var cycles, bytes float64
	for pi := range app.Workload.Phases {
		p := &app.Workload.Phases[pi]
		m := mem[pi]

		// Compute bound: port-pressure roofline per thread.
		var portMax, totalOps float64
		for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
			n := float64(p.Counts[cat])
			totalOps += n
			if c := n / cfg.Throughput[cat]; c > portMax {
				portMax = c
			}
		}
		issue := totalOps / cfg.IssueWidth
		if portMax > issue {
			issue = portMax
		}

		// Memory stalls from the simulated hierarchy.
		refs := float64(p.MemRefs())
		stall := refs * (m.l1Miss*cfg.L2LatencyCycles +
			m.l2Miss*cfg.LLCLatencyCycles +
			m.llcMiss*cfg.DRAMLatency) / cfg.MLP

		// Thread scaling: parallelism-capped, core-share-scaled; a
		// modest sublinear efficiency models synchronization.
		effT := float64(app.Threads) * coreScale
		if par := float64(p.Parallelism); effT > par {
			effT = par
		}
		if effT < 1 {
			effT = 1
		}
		eff := 1 / (1 + 0.04*(effT-1)) // Amdahl-style coordination tax
		phaseCycles := (issue+stall)/(effT*eff) + cfg.ForkJoinCycles*float64(p.LaunchCount())

		// Bandwidth bound.
		phaseBytes := refs * m.llcMiss * memsim.LineSize
		bytes += phaseBytes
		if bwShare > 0 {
			bwCycles := phaseBytes / bwShare * cfg.FreqGHz * 1e9
			if bwCycles > phaseCycles {
				phaseCycles = bwCycles
			}
		}
		cycles += phaseCycles
		if timings != nil {
			*timings = append(*timings, PhaseTiming{
				Name:             p.Name,
				ComputeCycles:    issue,
				StallCycles:      stall,
				TotalCycles:      phaseCycles,
				EffectiveThreads: effT,
				L1MissRate:       m.l1Miss,
				L2MissRate:       m.l2Miss,
				LLCMissRate:      m.llcMiss,
			})
		}
	}
	return cycles, bytes
}

// PhaseTiming reports one phase's simulated timing decomposition.
type PhaseTiming struct {
	Name             string
	ComputeCycles    float64 // single-thread issue/port bound
	StallCycles      float64 // single-thread memory-latency bound
	TotalCycles      float64 // after thread scaling, fork-join and bandwidth
	EffectiveThreads float64
	L1MissRate       float64 // per reference
	L2MissRate       float64 // per reference
	LLCMissRate      float64 // per reference
}

// PhaseBreakdown retraces one app of a Run configuration and returns its
// per-phase timing decomposition — the CPU-side counterpart of
// gpusim.PhaseBreakdown. apps must match the Run call being explained.
func PhaseBreakdown(cfg Config, apps []App, app int) ([]PhaseTiming, error) {
	if err := validateApps(cfg, apps); err != nil {
		return nil, err
	}
	if app < 0 || app >= len(apps) {
		return nil, fmt.Errorf("cpusim: app %d out of range", app)
	}
	mem, _, err := simulateMemory(cfg, nil, apps)
	if err != nil {
		return nil, err
	}
	capacity := float64(cfg.Cores) * (1 + cfg.SMTYield*float64(cfg.ThreadsPerCore-1))
	demanded := 0
	for i := range apps {
		demanded += apps[i].Threads
	}
	coreScale := 1.0
	if d := float64(demanded); d > float64(cfg.Cores) {
		if scale := capacity / d; scale < 1 {
			coreScale = scale
		}
	}
	var out []PhaseTiming
	appCyclesTraced(cfg, apps[app], mem[app], coreScale, 0, &out)
	return out, nil
}

// simScratch holds the buffers simulateMemory reuses across calls: the
// flat LLC-bound address arena (worst case every sampled reference misses
// L2, so the per-app capacity bound is exact and known up front) and the
// per-phase address batch Stream.Fill writes into. Pooled because corpus
// generation calls simulateMemory thousands of times, potentially from
// concurrent measurement workers.
type simScratch struct {
	bound []uint64 // cold-path LLC-bound arena, capacity >= total
	addrs []uint64 // per-phase fill batch, capacity >= maxPhase
}

// grow sizes the scratch buffers, reusing prior capacity.
func (s *simScratch) grow(total, maxPhase int) {
	if cap(s.bound) < total {
		s.bound = make([]uint64, total)
	}
	if cap(s.addrs) < maxPhase {
		s.addrs = make([]uint64, maxPhase)
	}
	s.bound = s.bound[:cap(s.bound)]
	s.addrs = s.addrs[:cap(s.addrs)]
}

var scratchPool = sync.Pool{New: func() any { return new(simScratch) }}

// Memo key domains (simcache.Key.Domain) for the two cached prefixes.
const (
	memoDomainPriv = "cpusim/priv" // per-app private phase (stream + L1/L2 replay)
	memoDomainIso  = "cpusim/iso"  // entire single-app memory simulation
)

// configKey renders cfg exactly for memo keys: two configurations share a
// cache entry only when every field of the simulated machine is identical.
func configKey(cfg Config) string { return fmt.Sprintf("%+v", cfg) }

// phaseMemBytes is the resident size of one phaseMem (3 float64 + uint64).
const phaseMemBytes = 32

// privResult is the memoized pure prefix of one app's memory simulation:
// everything that depends only on (cfg, workload, slot), not on the
// co-runner. Cached entries are immutable — the shared-LLC replay reads
// bound/ends and accumulates into a private copy of mem.
type privResult struct {
	mem   []phaseMem // l1Miss/l2Miss per phase; llcMiss fields zero
	bound []uint64   // LLC-bound (L2-miss) addresses, phase-contiguous
	ends  []int      // cumulative end offset of each phase within bound
}

// bytes reports the entry's approximate resident size for LRU accounting.
func (pr privResult) bytes() int64 {
	return int64(len(pr.mem))*phaseMemBytes + int64(cap(pr.bound))*8 + int64(len(pr.ends))*8 + 96
}

// isoResult is the memoized outcome of a whole single-app simulateMemory
// call: with one client nothing is shared, so the finalized per-phase miss
// behaviour and LLC statistics are pure in (cfg, workload). Immutable.
type isoResult struct {
	mem   [][]phaseMem
	stats []memsim.CacheStats
}

func (ir isoResult) bytes() int64 {
	var n int64 = 128
	for _, m := range ir.mem {
		n += int64(len(m)) * phaseMemBytes
	}
	n += int64(len(ir.stats)) * 32
	return n
}

// privateReplay runs one app's private phase: per phase, generate the
// sampled synthetic stream, replay it through the private L1/L2 pair (with
// the stride prefetcher in front of L2), record the per-phase l1/l2 miss
// ratios, and append every L2 miss — the LLC-bound stream — to bound.
// bound must have capacity for the worst case (every sampled reference
// missing); the appends never reallocate. addrs is the reusable fill
// batch. The result is a pure function of (cfg, w, ai) plus the caches'
// reset state: l1/l2 must be fresh or Reset (state-identical by the
// frozen-reference tests in memsim).
func privateReplay(cfg Config, w *trace.Workload, ai int, l1, l2 *memsim.Cache, addrs, bound []uint64) (privResult, error) {
	mem := make([]phaseMem, len(w.Phases))
	ends := make([]int, len(w.Phases))
	base := uint64(ai+1) << 40 // disjoint address spaces per slot
	// Seed strings are per-app constants; strconv.Itoa produces exactly
	// the bytes fmt.Sprint emitted here before, without the interface
	// boxing per phase.
	batchStr := strconv.Itoa(w.BatchSize)
	slotStr := strconv.Itoa(ai)
	for pi := range w.Phases {
		p := &w.Phases[pi]
		refs := p.MemRefs()
		if refs == 0 {
			ends[pi] = len(bound)
			continue
		}
		seed := memsim.StreamSeed("cpu", w.Benchmark, p.Name, batchStr, slotStr)
		st, err := memsim.NewStream(p, base+uint64(pi)<<32, seed)
		if err != nil {
			return privResult{}, err
		}
		pf := memsim.NewStridePrefetcher(cfg.PrefetchDegree)
		n := memsim.SampleRefs(refs)
		if n == 0 {
			// Explicit guard mirroring gpusim's pa.acc == 0 pattern:
			// today unreachable (refs > 0 implies n >= 1), but the
			// divides below must never see n == 0 even if SampleRefs
			// grows a subsampling mode.
			ends[pi] = len(bound)
			continue
		}
		batch := addrs[:n]
		st.Fill(batch)
		var l1m, l2m int
		for _, a := range batch {
			if l1.Access(0, a) {
				continue
			}
			l1m++
			if l2.Access(0, a) {
				continue
			}
			l2m++
			bound = append(bound, a)
			// Train the stride prefetcher on the L2 demand-miss
			// stream; fills land in L2 ahead of the access.
			for _, pa := range pf.OnMiss(a) {
				l2.Install(0, pa)
			}
		}
		mem[pi].l1Miss = float64(l1m) / float64(n)
		mem[pi].l2Miss = float64(l2m) / float64(n)
		ends[pi] = len(bound)
	}
	return privResult{mem: mem, bound: bound, ends: ends}, nil
}

// simulateMemory drives sampled synthetic streams for every phase of every
// app through private L1/L2 hierarchies and one shared LLC, returning the
// per-phase miss behaviour and per-app LLC statistics.
//
// With a non-nil memo, single-app calls are answered entirely from the
// isolated-run memo (pure: one client shares nothing) and multi-app calls
// reuse memoized private phases, replaying only the LLC-bound streams
// through the genuinely shared LLC. Outputs are bit-identical to the cold
// path at every budget.
func simulateMemory(cfg Config, memo *simcache.Cache, apps []App) ([][]phaseMem, []memsim.CacheStats, error) {
	if memo != nil && len(apps) == 1 {
		key := simcache.Key{
			Domain:   memoDomainIso,
			Config:   configKey(cfg),
			Workload: apps[0].Workload.Fingerprint(),
			Slot:     0,
		}
		v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
			mem, stats, err := simulateMemoryShared(cfg, memo, apps)
			if err != nil {
				return nil, 0, err
			}
			ir := isoResult{mem: mem, stats: stats}
			return ir, ir.bytes(), nil
		})
		if err != nil {
			return nil, nil, err
		}
		ir := v.(isoResult)
		return ir.mem, ir.stats, nil
	}
	return simulateMemoryShared(cfg, memo, apps)
}

// simulateMemoryShared is the full memory simulation: private phases (memo
// hits or cold replays) followed by the shared-LLC interleave.
func simulateMemoryShared(cfg Config, memo *simcache.Cache, apps []App) ([][]phaseMem, []memsim.CacheStats, error) {
	llc, err := memsim.NewCache("llc", cfg.LLCytes, cfg.LLCWays, len(apps))
	if err != nil {
		return nil, nil, err
	}

	// Exact per-app sample counts: SampleRefs is a pure function of the
	// workload, so arena windows and memo-entry capacities are known up
	// front.
	counts := make([]int, len(apps))
	total, maxPhase := 0, 0
	for ai := range apps {
		w := apps[ai].Workload
		for pi := range w.Phases {
			if refs := w.Phases[pi].MemRefs(); refs > 0 {
				k := memsim.SampleRefs(refs)
				counts[ai] += k
				if k > maxPhase {
					maxPhase = k
				}
			}
		}
		total += counts[ai]
	}

	// Private L1/L2 pair and pooled scratch, created lazily: an all-hit
	// memoized run touches neither. A fresh cache and a Reset cache are
	// state-identical, so lazy creation cannot perturb outcomes.
	var l1, l2 *memsim.Cache
	var scratch *simScratch
	defer func() {
		if scratch != nil {
			scratchPool.Put(scratch)
		}
	}()
	getScratch := func() *simScratch {
		if scratch == nil {
			scratch = scratchPool.Get().(*simScratch)
			scratch.grow(total, maxPhase)
		}
		return scratch
	}
	privCaches := func() (*memsim.Cache, *memsim.Cache, error) {
		if l1 == nil {
			var err error
			if l1, err = memsim.NewCache("l1", cfg.L1Bytes, cfg.L1Ways, 1); err != nil {
				return nil, nil, err
			}
			if l2, err = memsim.NewCache("l2", cfg.L2Bytes, cfg.L2Ways, 1); err != nil {
				return nil, nil, err
			}
		} else {
			l1.Reset()
			l2.Reset()
		}
		return l1, l2, nil
	}

	mem := make([][]phaseMem, len(apps))
	bounds := make([][]uint64, len(apps))
	ends := make([][]int, len(apps))
	var cfgKey string
	if memo != nil {
		cfgKey = configKey(cfg)
	}
	off := 0
	for ai := range apps {
		w := apps[ai].Workload
		if memo != nil {
			key := simcache.Key{Domain: memoDomainPriv, Config: cfgKey, Workload: w.Fingerprint(), Slot: ai}
			ai := ai // capture per-iteration for the compute closure
			v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
				cl1, cl2, err := privCaches()
				if err != nil {
					return nil, 0, err
				}
				// Exact-capacity heap slice: the entry outlives this call,
				// so it cannot live in the pooled arena.
				pr, err := privateReplay(cfg, w, ai, cl1, cl2, getScratch().addrs, make([]uint64, 0, counts[ai]))
				if err != nil {
					return nil, 0, err
				}
				return pr, pr.bytes(), nil
			})
			if err != nil {
				return nil, nil, err
			}
			pr := v.(privResult)
			// Private copy of the per-phase ratios: the shared replay
			// accumulates llcMissN into it, and cached entries are
			// immutable.
			mem[ai] = append([]phaseMem(nil), pr.mem...)
			bounds[ai], ends[ai] = pr.bound, pr.ends
		} else {
			cl1, cl2, err := privCaches()
			if err != nil {
				return nil, nil, err
			}
			s := getScratch()
			// Zero-length full-capacity window into the arena: the appends
			// in privateReplay never reallocate and never cross into a
			// neighbour's window.
			pr, err := privateReplay(cfg, w, ai, cl1, cl2, s.addrs, s.bound[off:off:off+counts[ai]])
			if err != nil {
				return nil, nil, err
			}
			off += counts[ai]
			mem[ai] = pr.mem
			bounds[ai], ends[ai] = pr.bound, pr.ends
		}
	}

	// Shared-LLC phase: interleave every app's LLC-bound stream round-robin
	// in proportion to stream length, the steady-state mix a shared cache
	// observes from concurrent clients. Phase attribution follows the
	// cursor through the phase-contiguous bound list (ends[ai][p] is the
	// first index past phase p), replacing the per-reference phase tag.
	idx := make([]int, len(apps))
	ph := make([]int, len(apps))
	remaining := 0
	maxLen := 0
	for ai := range bounds {
		remaining += len(bounds[ai])
		if len(bounds[ai]) > maxLen {
			maxLen = len(bounds[ai])
		}
	}
	// Proportional pacing: app ai issues len/maxLen refs per step — i.e.
	// exactly quota(step) = floor(len*(step+1)/maxLen) - floor(len*step/maxLen)
	// references. Because len <= maxLen the quota is always 0 or 1, so a
	// Bresenham error accumulator (er += len; issue and er -= maxLen when
	// er >= maxLen) reproduces the identical schedule without the two
	// integer divisions per app per step the closed form costs (the golden
	// corpus hashes pin the equivalence).
	er := make([]int, len(apps))
	for step := 0; step < maxLen && remaining > 0; step++ {
		for ai := range bounds {
			er[ai] += len(bounds[ai])
			if er[ai] >= maxLen {
				er[ai] -= maxLen
				for idx[ai] >= ends[ai][ph[ai]] {
					ph[ai]++
				}
				addr := bounds[ai][idx[ai]]
				idx[ai]++
				remaining--
				if !llc.Access(ai, addr) {
					mem[ai][ph[ai]].llcMissN++
				}
			}
		}
	}

	// Convert LLC miss counts to per-reference ratios.
	for ai := range apps {
		w := apps[ai].Workload
		for pi := range w.Phases {
			p := &w.Phases[pi]
			pm := &mem[ai][pi]
			refs := p.MemRefs()
			if refs == 0 {
				continue
			}
			n := memsim.SampleRefs(refs)
			if n == 0 {
				continue // see the matching guard in privateReplay
			}
			pm.llcMiss = float64(pm.llcMissN) / float64(n)
		}
	}

	stats := make([]memsim.CacheStats, len(apps))
	for ai := range apps {
		stats[ai] = llc.Stats(ai)
	}
	return mem, stats, nil
}
