// Package dataset creates the training corpus of Section V-B: it runs
// every Table-II benchmark at five batch sizes through the instrumented
// vision suite, measures isolated CPU/GPU executions and co-scheduled
// 2-application bags on the simulators, and assembles the 91-run corpus of
// homogeneous and heterogeneous data points with Table-IV feature vectors.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mapc/internal/cpusim"
	"mapc/internal/faultinject"
	"mapc/internal/features"
	"mapc/internal/gpusim"
	"mapc/internal/mica"
	"mapc/internal/ml"
	"mapc/internal/parallel"
	"mapc/internal/perfmon"
	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
	"mapc/internal/vision"
)

// DefaultSimCacheMB is the default byte budget (in MiB) of the cross-bag
// simulation memo. Sized so the full 91-point paper corpus fits with room
// to spare: generating it resides ~376 MiB of entries — dominated by
// gpusim's materialized reference streams and cpusim's LLC-bound lists
// (both ~8 bytes per sampled reference, per member per slot) plus the
// whole-run isolated results. At 512 MiB the full default corpus
// generates with zero evictions; a tighter budget only costs
// recomputation time, never accuracy (outputs are bit-identical at every
// budget).
const DefaultSimCacheMB = 512

// DefaultBatchSizes are the five input sizes of Section V-B: the standard
// 20-image batch and its doublings.
var DefaultBatchSizes = []int{20, 40, 80, 160, 320}

// DefaultThreads is the per-application CPU thread count (the paper picks
// each benchmark's best configuration; on the Table-III server the OpenCV
// kernels saturate around 16 threads).
const DefaultThreads = 16

// Member identifies one application instance inside a bag.
type Member struct {
	Benchmark string
	Batch     int
}

func (m Member) String() string { return fmt.Sprintf("%s/%d", m.Benchmark, m.Batch) }

// Point is one data point: a k-application bag with its feature vector and
// measured GPU bag execution time. The paper's corpus uses k=2; the
// generator accepts any k in [2, features.MaxApps]. Slices marshal to the
// same JSON arrays the former fixed-size pair fields produced, so v1
// journals written by the pair pipeline load unchanged.
type Point struct {
	// Members lists the bag's applications in canonical (measured) order.
	Members []Member
	// Homogeneous records whether every member is identical.
	Homogeneous bool
	// X is the Table-IV feature vector (see features.Names(len(Members))).
	X []float64
	// Y is the target: the bag's GPU execution time (makespan) under MPS,
	// in seconds.
	Y float64
	// Fairness is the bag's CPU fairness metric (also inside X).
	Fairness float64
	// CPUTimes and GPUTimes are the members' isolated execution times,
	// indexed like Members.
	CPUTimes []float64
	GPUTimes []float64
}

// Corpus is the complete generated dataset.
type Corpus struct {
	Points       []Point
	FeatureNames []string
	// CPUTimeDivisor is the Section V-C normalization constant applied to
	// the time columns.
	CPUTimeDivisor float64
}

// Config controls corpus generation.
type Config struct {
	CPU        cpusim.Config
	GPU        gpusim.Config
	BatchSizes []int
	Threads    int
	// Seed drives image synthesis; fixed by default for reproducibility.
	Seed uint64
	// HeteroBatches lists extra mixed-batch heterogeneous combinations;
	// see DefaultConfig for the shipped set.
	MixedPairs int
	// K is the bag size: how many applications are co-scheduled per data
	// point. 0 (the zero value) means 2 — the paper's pair corpus, and
	// bit-identical to the legacy pair pipeline (the golden-hash tests pin
	// this). Values outside [2, features.MaxApps] are rejected by
	// NewGenerator.
	K int
	// CanonicalOrder, when true, sorts bag members heavier-first (by
	// isolated CPU time) before building the replicated feature vector.
	// The paper replicates in arbitrary order; canonical ordering is an
	// extension studied in the ablation benches.
	CanonicalOrder bool
	// Workers bounds the measurement engine's goroutine pool: how many
	// simulator runs Generate executes concurrently. 0 (the zero value)
	// selects runtime.NumCPU(); 1 is the exact legacy serial path.
	// Corpus contents and ordering are bit-for-bit identical for every
	// worker count — results are written by bag index and every
	// simulator RNG is seeded per member, never shared across
	// goroutines.
	Workers int
	// Benchmarks optionally restricts generation to a subset of the
	// Table-II suite (canonical vision benchmark names). Nil or empty
	// means all nine. Primarily for tests and partial regenerations.
	Benchmarks []string
	// SimCacheMB bounds the cross-bag simulation memo (internal/simcache)
	// in MiB: memoized pure simulation prefixes — per-app private cache
	// replays, materialized GPU reference streams, whole isolated runs —
	// shared across every bag the generator measures. 0 disables the memo
	// (the exact cold path); negative values are rejected by NewGenerator.
	// Like Workers, the value never changes outputs, only speed: corpora
	// are bit-for-bit identical at every budget, so it is excluded from
	// the journal's config fingerprint.
	SimCacheMB int
	// Fidelity selects how contended co-runs (the shared CPU run behind
	// fairness and the shared GPU run behind the target) are computed:
	// exact reference-by-reference simulation (the zero value — the legacy
	// bit-identical path), the closed-form phase-summary tier ("fast"), or
	// confidence-gated mixing of the two ("mixed"). Isolated runs are
	// always exact. Unlike Workers/SimCacheMB this changes measured
	// values, so any non-exact tier is folded into the journal
	// fingerprint; the differential oracle (RunOracle) bounds the error.
	Fidelity phasesum.Fidelity
	// Shares is the bag's MPS SM partitioning: relative weights, indexed
	// by canonical bag position (after the CanonicalOrder sort), applied
	// to every shared GPU co-run the generator measures. Nil (the zero
	// value) is the legacy equal split, bit-identical to the pair
	// pipeline; a non-nil vector must have exactly EffectiveK positive
	// finite entries and is folded into the journal fingerprint (like
	// Fidelity, it changes measured targets). The CPU side has no
	// partitioning — fairness co-runs ignore Shares.
	Shares []float64
}

// EffectiveWorkers resolves the configured worker count: values <= 0 mean
// runtime.NumCPU().
func (c Config) EffectiveWorkers() int { return parallel.Resolve(c.Workers) }

// EffectiveK resolves the configured bag size: 0 means the paper's
// 2-application bags.
func (c Config) EffectiveK() int {
	if c.K == 0 {
		return 2
	}
	return c.K
}

// SharesLabel renders the share vector canonically ("0.7/0.2/0.1" —
// shortest round-tripping float form, slash-separated), or "" for the nil
// equal split. Journal fingerprints, serve cache namespaces and scenario
// names all use this one rendering.
func (c Config) SharesLabel() string { return sharesLabel(c.Shares) }

func sharesLabel(shares []float64) string {
	if shares == nil {
		return ""
	}
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = strconv.FormatFloat(s, 'g', -1, 64)
	}
	return strings.Join(parts, "/")
}

// BenchmarkNames returns the effective benchmark list: Config.Benchmarks if
// set, otherwise the full Table-II suite, always as a fresh slice.
func (c Config) BenchmarkNames() []string {
	if len(c.Benchmarks) == 0 {
		return vision.Names()
	}
	return append([]string(nil), c.Benchmarks...)
}

// DefaultConfig reproduces the paper's 91-run corpus: 45 homogeneous points
// (9 benchmarks x 5 batches), 36 heterogeneous same-batch pairs and 10
// heterogeneous mixed-batch pairs.
func DefaultConfig() Config {
	return Config{
		CPU:            cpusim.DefaultConfig(),
		GPU:            gpusim.DefaultConfig(),
		BatchSizes:     DefaultBatchSizes,
		Threads:        DefaultThreads,
		Seed:           42,
		MixedPairs:     10,
		CanonicalOrder: true,
		Workers:        runtime.NumCPU(),
		SimCacheMB:     DefaultSimCacheMB,
	}
}

// measurement caches one (benchmark, batch) instrumented run and its
// isolated simulator results.
type measurement struct {
	workload *trace.Workload
	mix      mica.Mix
	cpu      cpusim.Result
	gpu      gpusim.Result
}

// measureEntry is one singleflight slot of the memoized measurement cache:
// the sync.Once guarantees the member's instrumented run and isolated
// simulations execute exactly once even when concurrent bags share the
// member.
type measureEntry struct {
	once sync.Once
	mm   *measurement
	err  error
}

// Generator builds corpora; it caches instrumented runs across points. All
// methods are safe for concurrent use: the measurement memo is a
// singleflight map, the simulation memo is concurrency-safe, and the
// simulators honour a read-only contract on the cached workloads (no
// cloning needed; see cpusim.App and gpusim.Run).
type Generator struct {
	cfg Config

	// memo is the cross-bag simulation-prefix cache threaded into every
	// cpusim/gpusim run; nil when Config.SimCacheMB == 0 (cold path).
	memo *simcache.Cache

	// fault is the chaos-testing hook (nil in production): fired once per
	// bag at FaultSitePoint before the bag is measured.
	fault faultinject.Injector

	// Fidelity-tier counters (atomic): how many contended co-runs the
	// analytic model answered, how many the mixed tier bounced back to the
	// exact simulators (split by the gate that bounced them), and how many
	// ran exact by configuration.
	analyticRuns      atomic.Uint64
	exactFallbacks    atomic.Uint64
	exactRuns         atomic.Uint64
	fallbackLowConf   atomic.Uint64
	fallbackSubShare  atomic.Uint64
	fallbackBandwidth atomic.Uint64

	mu    sync.Mutex // guards cache map structure only
	cache map[Member]*measureEntry
}

// FidelityStats is a snapshot of the generator's fidelity-tier counters,
// exposed on mapc-serve /metrics and in the mapc-datagen summary.
type FidelityStats struct {
	// Fidelity is the configured tier ("exact", "mixed" or "fast").
	Fidelity string
	// AnalyticRuns counts contended co-runs answered by the closed-form
	// phase-summary model.
	AnalyticRuns uint64
	// ExactFallbacks counts contended co-runs the mixed tier bounced back
	// to the exact simulators; the three FallbackX fields split it by the
	// gate that bounced the run and sum to it.
	ExactFallbacks uint64
	// FallbackLowConfidence: the phase sketches' own confidence fell
	// under the mixed gate.
	FallbackLowConfidence uint64
	// FallbackSubSMShare: the fractional-share penalty (a client's SM
	// partition well under one SM) demoted the run.
	FallbackSubSMShare uint64
	// FallbackBandwidthGate: aggregate DRAM demand exceeded the device
	// bandwidth by more than phasesum.BandwidthGateRatio.
	FallbackBandwidthGate uint64
	// ExactRuns counts contended co-runs simulated exactly by
	// configuration (always zero under pure fast fidelity).
	ExactRuns uint64
}

// FidelityStats returns a snapshot of the fidelity-tier counters.
func (g *Generator) FidelityStats() FidelityStats {
	return FidelityStats{
		Fidelity:              g.cfg.Fidelity.String(),
		AnalyticRuns:          g.analyticRuns.Load(),
		ExactFallbacks:        g.exactFallbacks.Load(),
		FallbackLowConfidence: g.fallbackLowConf.Load(),
		FallbackSubSMShare:    g.fallbackSubShare.Load(),
		FallbackBandwidthGate: g.fallbackBandwidth.Load(),
		ExactRuns:             g.exactRuns.Load(),
	}
}

// countFidelity tallies one contended co-run's tier outcome.
func (g *Generator) countFidelity(kind phasesum.RunKind) {
	g.countFidelityAs(g.cfg.Fidelity, kind)
}

// countFidelityAs is countFidelity with an explicit requested tier, for
// per-call fidelity overrides (serve's brownout path asks for fast on a
// generator configured exact).
func (g *Generator) countFidelityAs(fid phasesum.Fidelity, kind phasesum.RunKind) {
	switch {
	case !kind.UsedExact:
		g.analyticRuns.Add(1)
	case fid.Analytic():
		g.exactFallbacks.Add(1)
		switch kind.Fallback {
		case phasesum.FallbackSubSMShare:
			g.fallbackSubShare.Add(1)
		case phasesum.FallbackBandwidthGate:
			g.fallbackBandwidth.Add(1)
		default:
			g.fallbackLowConf.Add(1)
		}
	default:
		g.exactRuns.Add(1)
	}
}

// NewGenerator returns a generator for the given config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.CPU.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.GPU.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.BatchSizes) == 0 {
		return nil, fmt.Errorf("dataset: no batch sizes")
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("dataset: non-positive thread count")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("dataset: negative worker count %d (0 means NumCPU, 1 means serial)", cfg.Workers)
	}
	if cfg.SimCacheMB < 0 {
		return nil, fmt.Errorf("dataset: negative simulation cache budget %d MB (0 disables the memo)", cfg.SimCacheMB)
	}
	if cfg.K != 0 && (cfg.K < 2 || cfg.K > features.MaxApps) {
		return nil, fmt.Errorf("dataset: bag size %d outside [2, %d] (0 means 2)", cfg.K, features.MaxApps)
	}
	if !cfg.Fidelity.Valid() {
		return nil, fmt.Errorf("dataset: unknown fidelity %q (want exact, mixed or fast)", string(cfg.Fidelity))
	}
	if cfg.Shares != nil {
		if len(cfg.Shares) != cfg.EffectiveK() {
			return nil, fmt.Errorf("dataset: %d share weights for bag size %d (nil means equal split)", len(cfg.Shares), cfg.EffectiveK())
		}
		for i, s := range cfg.Shares {
			if !(s > 0) || math.IsInf(s, 0) {
				return nil, fmt.Errorf("dataset: Shares[%d] = %v; weights must be positive and finite", i, s)
			}
		}
	}
	seen := make(map[string]int, len(cfg.Benchmarks))
	for i, n := range cfg.Benchmarks {
		if strings.TrimSpace(n) == "" {
			return nil, fmt.Errorf("dataset: Benchmarks[%d] is empty; use a canonical Table-II benchmark name (one of %s)",
				i, strings.Join(vision.Names(), ", "))
		}
		if j, dup := seen[n]; dup {
			return nil, fmt.Errorf("dataset: Benchmarks[%d] duplicates Benchmarks[%d] (%q); each benchmark may appear once", i, j, n)
		}
		seen[n] = i
		if _, err := vision.ByName(n); err != nil {
			return nil, fmt.Errorf("dataset: Benchmarks[%d]: %w", i, err)
		}
	}
	var memo *simcache.Cache
	if cfg.SimCacheMB > 0 {
		memo = simcache.MustNew(int64(cfg.SimCacheMB) << 20)
	}
	return &Generator{cfg: cfg, memo: memo, cache: map[Member]*measureEntry{}}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// SimCacheStats returns a snapshot of the simulation memo's counters
// (zeros when the memo is disabled). Exposed on mapc-serve /metrics and in
// the mapc-datagen end-of-run summary.
func (g *Generator) SimCacheStats() simcache.Stats { return g.memo.Stats() }

// SetFaultInjector installs a chaos-testing hook fired once per bag index
// at FaultSitePoint before the bag is measured. Production code never
// calls this; the nil default costs one pointer check per bag.
func (g *Generator) SetFaultInjector(h faultinject.Injector) { g.fault = h }

// measure returns the memoized isolated measurement for member m, computing
// it exactly once (singleflight) no matter how many goroutines ask.
func (g *Generator) measure(m Member) (*measurement, error) {
	g.mu.Lock()
	e, ok := g.cache[m]
	if !ok {
		e = &measureEntry{}
		g.cache[m] = e
	}
	g.mu.Unlock()
	e.once.Do(func() { e.mm, e.err = g.runMeasurement(m) })
	return e.mm, e.err
}

// runMeasurement performs member m's instrumented benchmark run and
// isolated CPU/GPU simulations. The vision RNG is seeded per call from the
// config seed, so concurrent measurements of different members never share
// generator state.
func (g *Generator) runMeasurement(m Member) (*measurement, error) {
	b, err := vision.ByName(m.Benchmark)
	if err != nil {
		return nil, err
	}
	res, err := vision.Run(b, m.Batch, g.cfg.Seed)
	if err != nil {
		return nil, err
	}
	mix, err := mica.Analyze(res.Workload)
	if err != nil {
		return nil, err
	}
	cpuRes, err := cpusim.RunMemo(g.cfg.CPU, g.memo, []cpusim.App{{Workload: res.Workload, Threads: g.cfg.Threads}})
	if err != nil {
		return nil, err
	}
	gpuRes, err := gpusim.RunMemo(g.cfg.GPU, g.memo, []*trace.Workload{res.Workload})
	if err != nil {
		return nil, err
	}
	return &measurement{workload: res.Workload, mix: mix, cpu: cpuRes[0], gpu: gpuRes[0]}, nil
}

// Workload returns the cached instrumented workload for member m, running
// the benchmark if needed. The returned workload is shared with the cache;
// callers that mutate it must Clone first.
func (g *Generator) Workload(m Member) (*trace.Workload, error) {
	mm, err := g.measure(m)
	if err != nil {
		return nil, err
	}
	return mm.workload, nil
}

// IsolatedTimes returns member m's cached isolated CPU and GPU execution
// times in seconds.
func (g *Generator) IsolatedTimes(m Member) (cpuSec, gpuSec float64, err error) {
	mm, err := g.measure(m)
	if err != nil {
		return 0, 0, err
	}
	return mm.cpu.TimeSec, mm.gpu.TimeSec, nil
}

// bagMember pairs one bag member with its memoized isolated measurement,
// in the bag's canonical order.
type bagMember struct {
	member Member
	mm     *measurement
}

// measureBag resolves every member's memoized isolated measurement and
// applies the canonical ordering. With Config.CanonicalOrder the members
// are sorted heavier-first by isolated CPU time, ties broken by
// (Benchmark, Batch) — a strict total order, which is what makes bag
// features permutation-invariant: every ordering of the same multiset of
// members measures the identical canonical sequence. For 2-member bags
// this reduces exactly to the legacy pair swap (swap iff the second
// member's CPU time is strictly larger), pinned by the golden hashes.
func (g *Generator) measureBag(bag []Member) ([]bagMember, error) {
	if len(bag) < 2 {
		return nil, fmt.Errorf("dataset: bag of %d member(s); bags carry at least 2 applications", len(bag))
	}
	if len(bag) > features.MaxApps {
		return nil, fmt.Errorf("dataset: bag of %d members exceeds the supported maximum of %d", len(bag), features.MaxApps)
	}
	ms := make([]bagMember, len(bag))
	for i, m := range bag {
		mm, err := g.measure(m)
		if err != nil {
			return nil, fmt.Errorf("dataset: %v: %w", m, err)
		}
		ms[i] = bagMember{member: m, mm: mm}
	}
	if g.cfg.CanonicalOrder {
		sort.SliceStable(ms, func(i, j int) bool {
			a, b := &ms[i], &ms[j]
			if a.mm.cpu.TimeSec != b.mm.cpu.TimeSec {
				return a.mm.cpu.TimeSec > b.mm.cpu.TimeSec
			}
			if a.member.Benchmark != b.member.Benchmark {
				return a.member.Benchmark < b.member.Benchmark
			}
			return a.member.Batch < b.member.Batch
		})
	}
	return ms, nil
}

// bagLabel renders the canonical "bench/batch+bench/batch+..." label used
// in error messages (identical to the legacy "%v+%v" pair form at k=2).
func bagLabel(ms []bagMember) string {
	parts := make([]string, len(ms))
	for i := range ms {
		parts[i] = ms[i].member.String()
	}
	return strings.Join(parts, "+")
}

// bagFairness runs the co-scheduled CPU simulation over the canonical bag
// and reduces it to the fairness metric (Equation 2), capped at 1.
func (g *Generator) bagFairness(ms []bagMember) (float64, error) {
	return g.bagFairnessAs(ms, g.cfg.Fidelity)
}

// bagFairnessAs is bagFairness with a per-call fidelity tier: the shared
// co-run switches tier while the isolated measurements (already memoized
// per member) stay exact, which is what anchors the analytic model.
func (g *Generator) bagFairnessAs(ms []bagMember, fid phasesum.Fidelity) (float64, error) {
	// The cached workloads are passed directly: the simulators are
	// read-only on their inputs (contract documented on cpusim.App and
	// gpusim.Run, enforced by the mutation-guard tests), so per-point
	// clones are unnecessary.
	apps := make([]cpusim.App, len(ms))
	for i := range ms {
		apps[i] = cpusim.App{Workload: ms[i].mm.workload, Threads: g.cfg.Threads}
	}
	cpuShared, kind, err := cpusim.RunMemoFidelity(g.cfg.CPU, g.memo, apps, fid)
	if err != nil {
		return 0, fmt.Errorf("dataset: shared CPU run %s: %w", bagLabel(ms), err)
	}
	g.countFidelityAs(fid, kind)
	perf := make([]perfmon.AppPerf, len(ms))
	for i := range ms {
		perf[i] = perfmon.AppPerf{IPCAlone: ms[i].mm.cpu.IPC, IPCShared: cpuShared[i].IPC}
	}
	fairness, err := perfmon.Fairness(perf)
	if err != nil {
		return 0, fmt.Errorf("dataset: fairness %s: %w", bagLabel(ms), err)
	}
	if fairness > 1 {
		// Small simulation noise can push a slowdown ratio above 1;
		// fairness is a ratio of min to max and stays in (0,1].
		fairness = 1
	}
	return fairness, nil
}

// bagApps renders the canonical bag as the featurizer's per-app blocks.
func bagApps(ms []bagMember) []features.App {
	apps := make([]features.App, len(ms))
	for i := range ms {
		apps[i] = features.App{
			CPUTimeSec: ms[i].mm.cpu.TimeSec,
			GPUTimeSec: ms[i].mm.gpu.TimeSec,
			Mix:        ms[i].mm.mix,
		}
	}
	return apps
}

// BagFeatures measures everything a prediction needs for a k-member bag —
// isolated CPU/GPU runs and the co-scheduled CPU run for fairness — without
// executing the bag on the GPU. This is the inference-time entry point: the
// returned vector is raw (un-normalized); apply features.ScaleTimes with
// the training corpus's divisor before passing it to a trained model.
func (g *Generator) BagFeatures(bag []Member) (x []float64, fairness float64, err error) {
	ms, err := g.measureBag(bag)
	if err != nil {
		return nil, 0, err
	}
	fairness, err = g.bagFairness(ms)
	if err != nil {
		return nil, 0, err
	}
	x, err = features.BagVector(bagApps(ms), fairness)
	if err != nil {
		return nil, 0, err
	}
	return x, fairness, nil
}

// BagFeaturesFidelity is BagFeatures with a per-call fidelity override:
// serve's brownout path answers from the fast analytic tier on a generator
// configured for exact simulation, without touching the generator's
// configured fidelity (or any other caller's view of it). Isolated
// per-member measurements are shared with the exact path — only the
// contended co-run switches tier.
func (g *Generator) BagFeaturesFidelity(bag []Member, fid phasesum.Fidelity) (x []float64, fairness float64, err error) {
	if !fid.Valid() {
		return nil, 0, fmt.Errorf("dataset: unknown fidelity %q (want exact, mixed or fast)", string(fid))
	}
	ms, err := g.measureBag(bag)
	if err != nil {
		return nil, 0, err
	}
	fairness, err = g.bagFairnessAs(ms, fid)
	if err != nil {
		return nil, 0, err
	}
	x, err = features.BagVector(bagApps(ms), fairness)
	if err != nil {
		return nil, 0, err
	}
	return x, fairness, nil
}

// FeaturesFor is BagFeatures for the paper's 2-application bags (the pair
// entry point mapc-predict and the scheduler use).
func (g *Generator) FeaturesFor(a, b Member) (x []float64, fairness float64, err error) {
	return g.BagFeatures([]Member{a, b})
}

// MeasureBag produces the data point for a k-member bag: co-scheduled CPU
// run for fairness, co-scheduled GPU run for the target. With
// Config.CanonicalOrder, members are sorted heavier-first (by isolated CPU
// time) so the replicated per-app feature blocks are comparable across data
// points.
func (g *Generator) MeasureBag(bag []Member) (Point, error) {
	ms, err := g.measureBag(bag)
	if err != nil {
		return Point{}, err
	}

	// Shared CPU run → fairness (Equation 2).
	fairness, err := g.bagFairness(ms)
	if err != nil {
		return Point{}, err
	}

	// Shared GPU run → the target bag time.
	workloads := make([]*trace.Workload, len(ms))
	for i := range ms {
		workloads[i] = ms[i].mm.workload
	}
	gpuShared, kind, err := gpusim.RunMemoSharesFidelity(g.cfg.GPU, g.memo, workloads, g.cfg.Shares, g.cfg.Fidelity)
	if err != nil {
		return Point{}, fmt.Errorf("dataset: shared GPU run %s: %w", bagLabel(ms), err)
	}
	g.countFidelity(kind)

	x, err := features.BagVector(bagApps(ms), fairness)
	if err != nil {
		return Point{}, err
	}
	members := make([]Member, len(ms))
	cpuTimes := make([]float64, len(ms))
	gpuTimes := make([]float64, len(ms))
	homogeneous := true
	for i := range ms {
		members[i] = ms[i].member
		cpuTimes[i] = ms[i].mm.cpu.TimeSec
		gpuTimes[i] = ms[i].mm.gpu.TimeSec
		if ms[i].member != ms[0].member {
			homogeneous = false
		}
	}
	return Point{
		Members:     members,
		Homogeneous: homogeneous,
		X:           x,
		Y:           gpusim.BagTime(gpuShared),
		Fairness:    fairness,
		CPUTimes:    cpuTimes,
		GPUTimes:    gpuTimes,
	}, nil
}

// MeasurePoint is MeasureBag for the paper's 2-application bags.
func (g *Generator) MeasurePoint(a, b Member) (Point, error) {
	return g.MeasureBag([]Member{a, b})
}

// Bags enumerates the corpus's k-application bags in their canonical
// order: homogeneous points for every (benchmark, batch), heterogeneous
// same-batch C(n,k) combinations with the batch cycling through the sweep,
// then the MixedPairs extra mixed-batch bags. Enumeration is pure — no
// simulator runs — and its order is what makes parallel generation
// reproducible: point i of the corpus is always bag i of this list. At
// the default k=2 the plan is exactly the legacy pair enumeration.
func (g *Generator) Bags() ([][]Member, error) {
	k := g.cfg.EffectiveK()
	names := g.cfg.BenchmarkNames()
	var bags [][]Member

	// Homogeneous: k copies of every (benchmark, batch).
	for _, n := range names {
		for _, bs := range g.cfg.BatchSizes {
			m := Member{Benchmark: n, Batch: bs}
			bag := make([]Member, k)
			for i := range bag {
				bag[i] = m
			}
			bags = append(bags, bag)
		}
	}

	// Heterogeneous, equal-batch: all C(n,k) combinations in
	// lexicographic order, with the batch size cycling through the sweep
	// so the bags cover the same input range as the homogeneous points
	// ("different combinations of batch sizes", Section V-B). For k=2
	// this is the legacy i<j double loop.
	comboNo := 0
	forEachCombination(len(names), k, func(idx []int) {
		bs := g.cfg.BatchSizes[comboNo%len(g.cfg.BatchSizes)]
		comboNo++
		bag := make([]Member, k)
		for i, ix := range idx {
			bag[i] = Member{Benchmark: names[ix], Batch: bs}
		}
		bags = append(bags, bag)
	})

	mixed, err := mixedBags(names, g.cfg.BatchSizes, g.cfg.MixedPairs, k)
	if err != nil {
		return nil, err
	}
	return append(bags, mixed...), nil
}

// forEachCombination visits every size-k subset of {0..n-1} in
// lexicographic order. When k > n there are no subsets and fn never runs.
func forEachCombination(n, k int, fn func(idx []int)) {
	if k <= 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance: find the rightmost index that can still move up.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// mixedBags enumerates the heterogeneous mixed-batch bags: a fixed
// pseudo-pattern walk over (benchmark, batch) combinations, skipped
// entirely (like the legacy generator) when fewer than three batch sizes
// are configured. The walk is bounded: with a degenerate registry (e.g. a
// single benchmark, where every candidate bag collapses to one
// application) the legacy loop spun forever; now it returns a descriptive
// error at every k. Member m of step t draws benchmark (t*(2m+1)+m) mod n
// and batch 1+((t+2m) mod (B-1)) — at k=2 exactly the legacy i=t%n,
// j=(3t+1)%n, ba=1+t%(B-1), bb=1+(t+2)%(B-1) walk.
func mixedBags(names []string, batchSizes []int, count, k int) ([][]Member, error) {
	if count <= 0 || len(batchSizes) <= 2 {
		return nil, nil
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no benchmarks to build %d mixed-batch bags from", count)
	}
	// Every full cycle of len(names) steps visits at least one
	// non-collapsing candidate when len(names) > 1, so count+1 cycles
	// (scaled by the batch period for slack) always suffice for feasible
	// configurations.
	maxSteps := (count + 1) * len(names) * len(batchSizes)
	var out [][]Member
	added := 0
	for t := 0; added < count && t < maxSteps; t++ {
		idx := make([]int, k)
		allSame := true
		for m := 0; m < k; m++ {
			idx[m] = (t*(2*m+1) + m) % len(names)
			if idx[m] != idx[0] {
				allSame = false
			}
		}
		if allSame {
			// A mixed bag must stay heterogeneous: skip candidates that
			// collapse to a single benchmark (for k=2, the legacy i==j).
			continue
		}
		bag := make([]Member, k)
		for m := 0; m < k; m++ {
			bag[m] = Member{
				Benchmark: names[idx[m]],
				Batch:     batchSizes[1+((t+2*m)%(len(batchSizes)-1))],
			}
		}
		out = append(out, bag)
		added++
	}
	if added < count {
		return nil, fmt.Errorf(
			"dataset: assembled only %d of %d mixed-batch bags after %d walk steps (%d benchmarks, %d batch sizes, k=%d): every candidate bag collides",
			added, count, maxSteps, len(names), len(batchSizes), k)
	}
	return out, nil
}

// Generate builds the full corpus over the measurement engine's worker
// pool: the bag list is enumerated up front, Config.Workers goroutines
// measure bags concurrently, and each result is written to its bag's index,
// so the corpus is bit-for-bit identical to a Workers=1 serial run.
func (g *Generator) Generate() (*Corpus, error) {
	return g.generate(context.Background(), nil)
}

// Resume builds the corpus crash-safely against journal j: bags already
// journaled are restored without re-measurement, every freshly measured
// point is durably appended before the run moves on, and cancelling ctx
// (SIGINT/SIGTERM in mapc-datagen) stops the pool claiming new bags while
// in-flight measurements finish and commit. Because each point is a pure
// function of (Config, bag), an interrupted-and-resumed corpus is
// bit-for-bit identical — same SHA-256 — to an uninterrupted run at any
// worker count. The caller owns j (Commit/Close).
func (g *Generator) Resume(ctx context.Context, j *Journal) (*Corpus, error) {
	if j == nil {
		return nil, errors.New("dataset: Resume requires a journal (use Generate for unjournaled runs)")
	}
	return g.generate(ctx, j)
}

// generate is the shared engine behind Generate and Resume.
func (g *Generator) generate(ctx context.Context, j *Journal) (*Corpus, error) {
	bags, err := g.Bags()
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(bags))
	have := make([]bool, len(bags))
	if j != nil {
		for i, bag := range bags {
			if p, ok := j.Lookup(BagKeyOf(bag)); ok {
				points[i] = p
				have[i] = true
			}
		}
	}
	err = parallel.ForEach(g.cfg.Workers, len(bags), func(i int) error {
		if have[i] {
			return nil // restored from the journal
		}
		if err := ctx.Err(); err != nil {
			return err // interrupted: stop claiming new bags
		}
		if err := faultinject.Fire(g.fault, FaultSitePoint, i); err != nil {
			return err
		}
		p, err := g.MeasureBag(bags[i])
		if err != nil {
			return err
		}
		points[i] = p
		if j != nil {
			// Durable before visible: the point is fsynced into the
			// journal before the run proceeds, so a crash after this line
			// never re-measures bag i.
			if err := j.Append(BagKeyOf(bags[i]), p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fnames, err := features.Names(g.cfg.EffectiveK())
	if err != nil {
		return nil, err
	}
	c := &Corpus{Points: points, FeatureNames: fnames}
	if err := c.normalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// normalize applies the Section V-C time normalization in place.
func (c *Corpus) normalize() error {
	d := c.rawDataset()
	div, err := features.NormalizeTimes(d)
	if err != nil {
		return err
	}
	c.CPUTimeDivisor = div
	// rawDataset shares row slices with Points, so Points now hold the
	// normalized features.
	return nil
}

// rawDataset wraps the corpus rows in an ml.Dataset sharing storage.
func (c *Corpus) rawDataset() *ml.Dataset {
	d := &ml.Dataset{FeatureNames: c.FeatureNames}
	for i := range c.Points {
		p := &c.Points[i]
		d.X = append(d.X, p.X)
		d.Y = append(d.Y, p.Y)
		d.Groups = append(d.Groups, p.Members[0].Benchmark)
	}
	return d
}

// Dataset returns the corpus as an ml.Dataset. Group labels hold the first
// member's benchmark; use ContainsBenchmark for the paper's LOOCV split.
func (c *Corpus) Dataset() *ml.Dataset { return c.rawDataset() }

// ContainsBenchmark reports whether point i includes the named benchmark.
func (c *Corpus) ContainsBenchmark(i int, benchmark string) bool {
	for _, m := range c.Points[i].Members {
		if m.Benchmark == benchmark {
			return true
		}
	}
	return false
}

// BenchmarkNames returns the distinct benchmarks present, sorted.
func (c *Corpus) BenchmarkNames() []string {
	seen := map[string]bool{}
	for i := range c.Points {
		for _, m := range c.Points[i].Members {
			seen[m.Benchmark] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
