package experiments

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mapc/internal/dataset"
)

// raceEnvConfig is deliberately tiny: the hammer tests below regenerate
// real simulator measurements, and under -race everything runs several
// times slower.
func raceEnvConfig() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Benchmarks = []string{"fast", "hog", "knn"}
	cfg.BatchSizes = []int{20, 40}
	cfg.MixedPairs = 0
	cfg.Workers = 2
	return cfg
}

// TestEnvCachesConcurrent hammers every sync.Once-guarded Env cache from
// concurrent goroutines: all callers must observe the same cached pointers
// (one generation each) and identical values. Run under -race in CI.
func TestEnvCachesConcurrent(t *testing.T) {
	e := NewEnv(raceEnvConfig())
	const goroutines = 12
	type snapshot struct {
		gen    any
		corpus *dataset.Corpus
		loocv  any
		cpu    map[string][]float64
		gpu    map[string][]float64
	}
	snaps := make([]snapshot, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			gen, err := e.Generator()
			if err != nil {
				t.Error(err)
				return
			}
			corpus, err := e.Corpus()
			if err != nil {
				t.Error(err)
				return
			}
			loocv, err := e.LOOCV()
			if err != nil {
				t.Error(err)
				return
			}
			cpu, gpu, err := e.scalingPerf()
			if err != nil {
				t.Error(err)
				return
			}
			snaps[gi] = snapshot{gen: gen, corpus: corpus, loocv: loocv, cpu: cpu, gpu: gpu}
		}(gi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for gi := 1; gi < goroutines; gi++ {
		if snaps[gi].corpus != snaps[0].corpus {
			t.Fatalf("goroutine %d observed a different corpus: Once cache broken", gi)
		}
		if snaps[gi].gen != snaps[0].gen {
			t.Fatalf("goroutine %d observed a different generator", gi)
		}
		if !reflect.DeepEqual(snaps[gi].loocv, snaps[0].loocv) {
			t.Fatalf("goroutine %d observed different LOOCV results", gi)
		}
		if !reflect.DeepEqual(snaps[gi].cpu, snaps[0].cpu) ||
			!reflect.DeepEqual(snaps[gi].gpu, snaps[0].gpu) {
			t.Fatalf("goroutine %d observed different scaling caches", gi)
		}
	}
}

// TestEnvFiguresConcurrent regenerates overlapping figures from
// t.Parallel() subtests sharing one Env — the pattern a concurrent report
// server would use. Meaningful under -race.
func TestEnvFiguresConcurrent(t *testing.T) {
	e := NewEnv(raceEnvConfig())
	figures := []string{"figure1", "figure2", "figure3", "figure4", "figure1", "figure4"}
	t.Run("group", func(t *testing.T) {
		for i, id := range figures {
			id := id
			t.Run(fmt.Sprintf("%s-%d", id, i), func(t *testing.T) {
				t.Parallel()
				tb, err := Run(e, id)
				if err != nil {
					t.Fatal(err)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table", id)
				}
			})
		}
	})

	// Cross-check against a fresh serial environment: parallel regeneration
	// must not change any cell.
	serialCfg := raceEnvConfig()
	serialCfg.Workers = 1
	se := NewEnv(serialCfg)
	for _, id := range []string{"figure1", "figure2", "figure3", "figure4"} {
		got, err := Run(e, id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(se, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: parallel rows differ from serial rows", id)
		}
	}
}
