package dataset

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"mapc/internal/faultinject"
	"mapc/internal/parallel"
)

// countingInjector implements faultinject.Injector without injecting
// anything: it counts how many bags a generation run actually measured
// (FaultSitePoint fires once per freshly measured bag, never for
// journal-restored ones).
type countingInjector struct{ n atomic.Int64 }

func (c *countingInjector) At(site string, index int) error {
	if site == FaultSitePoint {
		c.n.Add(1)
	}
	return nil
}

// funcInjector adapts a closure to faultinject.Injector for bespoke chaos
// (e.g. cancelling a context at a chosen append).
type funcInjector func(site string, index int) error

func (f funcInjector) At(site string, index int) error { return f(site, index) }

// mustBags returns the canonical bag list for cfg.
func mustBags(t *testing.T, cfg Config) [][]Member {
	t.Helper()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bags, err := gen.Bags()
	if err != nil {
		t.Fatal(err)
	}
	return bags
}

// resumeToCompletion opens the journal at path ("after the crash": a fresh
// Journal and a fresh Generator, as a restarted process would have) and
// finishes the run, returning the corpus and how many bags it re-measured.
func resumeToCompletion(t *testing.T, cfg Config, path string) (*Corpus, int) {
	t.Helper()
	j, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := &countingInjector{}
	gen.SetFaultInjector(counter)
	c, err := gen.Resume(context.Background(), j)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	return c, int(counter.n.Load())
}

// TestChaosKillAndResume is the headline crash-equivalence invariant: a
// corpus run killed by an injected panic at a seed-chosen bag, then
// resumed by a fresh generator from the journal, must hash bit-identically
// (goldenSmallCorpusHash, the PR-3 golden) to an uninterrupted run — at
// workers=1 and workers=8, across several kill seeds.
func TestChaosKillAndResume(t *testing.T) {
	cfg := smallConfig()
	nBags := len(mustBags(t, cfg))
	for _, workers := range []int{1, 8} {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("workers=%d/seed=%d", workers, seed), func(t *testing.T) {
				runCfg := cfg
				runCfg.Workers = workers
				path := journalPath(t)

				// Doomed run: dies with an injected panic at a random bag.
				j, err := CreateJournal(path, runCfg)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := NewGenerator(runCfg)
				if err != nil {
					t.Fatal(err)
				}
				plan := faultinject.RandomKillPlan(seed, FaultSitePoint, nBags)
				killIdx := plan.Faults[0].Index
				gen.SetFaultInjector(faultinject.New(plan))
				_, err = gen.Resume(context.Background(), j)
				var pe *parallel.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("killed run returned %v, want *parallel.PanicError", err)
				}
				if pe.Index > killIdx {
					// Lowest-index-failure rule: the reported index is the
					// kill site unless an even earlier bag also failed
					// (impossible here).
					t.Errorf("PanicError.Index = %d, kill was at %d", pe.Index, killIdx)
				}
				var ip *faultinject.Panic
				if !errors.As(err, &ip) {
					t.Errorf("panic value lost through recovery: %v", pe.Value)
				}
				// The process "died": abandon j without Close/Commit, so
				// resume sees exactly what fsync left on disk.

				// The journal must hold fewer points than the full corpus
				// (the killed bag can never have committed).
				j2, err := OpenJournal(path, runCfg)
				if err != nil {
					t.Fatal(err)
				}
				journaled := j2.Len()
				j2.Close()
				if journaled >= nBags {
					t.Fatalf("journal holds %d/%d points despite the kill", journaled, nBags)
				}

				c, measured := resumeToCompletion(t, runCfg, path)
				if got := hashCorpus(c); got != goldenSmallCorpusHash {
					t.Errorf("resumed corpus hash = %s, want uninterrupted golden %s\n"+
						"kill-and-resume broke bit-identity (workers=%d, seed=%d, killed bag %d)",
						got, goldenSmallCorpusHash, workers, seed, killIdx)
				}
				if measured != nBags-journaled {
					t.Errorf("resume re-measured %d bags, want exactly the %d missing ones",
						measured, nBags-journaled)
				}
			})
		}
	}
}

// TestResumeAfterContextCancel is the SIGTERM path: cancelling the context
// mid-run (here, after the second journal append) stops the pool cleanly,
// the journal stays valid, and a resume completes to the golden hash.
func TestResumeAfterContextCancel(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	nBags := len(mustBags(t, cfg))
	path := journalPath(t)

	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.SetFaultInjector(funcInjector(func(site string, index int) error {
		if site == FaultSiteJournalAppend && index == 1 {
			cancel() // "SIGTERM" lands while measurements are in flight
		}
		return nil
	}))
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Resume(ctx, j)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	// Clean shutdown commits and closes the journal (what mapc-datagen
	// does on SIGTERM).
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	c, measured := resumeToCompletion(t, cfg, path)
	if got := hashCorpus(c); got != goldenSmallCorpusHash {
		t.Errorf("corpus after cancel+resume hash = %s, want %s", got, goldenSmallCorpusHash)
	}
	if measured >= nBags {
		t.Errorf("resume re-measured all %d bags; the pre-cancel points were not reused", measured)
	}
}

// TestChaosTornWriteKillAndResume composes both fault classes: the run
// dies on a torn journal write, leaving a genuinely truncated record on
// disk; the resume must heal the tear and still reach the golden hash.
func TestChaosTornWriteKillAndResume(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 8
	nBags := len(mustBags(t, cfg))
	path := journalPath(t)

	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.SetFaultInjector(faultinject.New(faultinject.RandomTearPlan(3, FaultSiteJournalAppend, nBags/2, 24)))
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Resume(context.Background(), j)
	var tw *faultinject.TornWrite
	if !errors.As(err, &tw) {
		t.Fatalf("torn-write run returned %v, want *faultinject.TornWrite", err)
	}
	// Process death: abandon the journal handle.

	c, _ := resumeToCompletion(t, cfg, path)
	if got := hashCorpus(c); got != goldenSmallCorpusHash {
		t.Errorf("corpus after torn-write+resume hash = %s, want %s", got, goldenSmallCorpusHash)
	}
}

// TestResumeCompletedJournalMeasuresNothing: resuming a finished run is a
// pure replay — zero new measurements, identical corpus.
func TestResumeCompletedJournalMeasuresNothing(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	path := journalPath(t)

	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := gen.Resume(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := hashCorpus(first); got != goldenSmallCorpusHash {
		t.Fatalf("journaled full run hash = %s, want golden %s (journaling perturbed generation)", got, goldenSmallCorpusHash)
	}

	replay, measured := resumeToCompletion(t, cfg, path)
	if measured != 0 {
		t.Errorf("replay re-measured %d bags, want 0", measured)
	}
	if got := hashCorpus(replay); got != goldenSmallCorpusHash {
		t.Errorf("replayed corpus hash = %s, want %s", got, goldenSmallCorpusHash)
	}
}

// TestGeneratePanicYieldsPanicError is the acceptance check for panic
// containment in the measurement pool without any journal: a panic
// injected into one measurement task surfaces as a *parallel.PanicError
// (index + stack) from Generate instead of killing the process.
func TestGeneratePanicYieldsPanicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := smallConfig()
		cfg.Workers = workers
		gen, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen.SetFaultInjector(faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
			{Site: FaultSitePoint, Index: 3, Kind: faultinject.KindPanic, Once: true},
		}}))
		_, err = gen.Generate()
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Generate returned %v, want *parallel.PanicError", workers, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: PanicError.Index = %d, want 3", workers, pe.Index)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: stack not captured", workers)
		}
	}
}

// TestResumeNilJournal pins the API contract.
func TestResumeNilJournal(t *testing.T) {
	gen, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Resume(context.Background(), nil); err == nil {
		t.Fatal("nil journal accepted")
	}
}
