package gpusim

import (
	"reflect"
	"sync"
	"testing"

	"mapc/internal/trace"
)

// TestSimulateMemoryScratchReuse proves the pooled interleaving arena is
// invisible: repeated calls with different client counts (forcing the
// arena to be re-partitioned and partially overwritten) return identical
// results, serially and from concurrent goroutines (run under -race in
// CI). This is the safety net for the allocation-free fast path — a stale
// byte leaking across calls would diverge these results immediately.
func TestSimulateMemoryScratchReuse(t *testing.T) {
	cfg := DefaultConfig()
	solo := []*trace.Workload{memKernel("a")}
	trio := []*trace.Workload{memKernel("a"), computeKernel("b"), memKernel("c")}

	type out struct {
		mem      [][]phaseMem
		l2, tlbs interface{}
	}
	measure := func(ws []*trace.Workload) out {
		mem, l2, tlbs, err := simulateMemory(cfg, nil, ws)
		if err != nil {
			t.Fatal(err)
		}
		return out{mem, l2, tlbs}
	}
	wantSolo := measure(solo)
	wantTrio := measure(trio)
	if reflect.DeepEqual(wantSolo.mem[0], wantTrio.mem[0]) {
		t.Fatal("contended and isolated runs coincide; contention model is inert")
	}
	for i := 0; i < 3; i++ {
		if got := measure(trio); !reflect.DeepEqual(got, wantTrio) {
			t.Fatalf("iteration %d: trio results drifted after scratch reuse", i)
		}
		if got := measure(solo); !reflect.DeepEqual(got, wantSolo) {
			t.Fatalf("iteration %d: solo results drifted after scratch reuse", i)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var want, got out
				if (g+i)%2 == 0 {
					want, got = wantSolo, measure(solo)
				} else {
					want, got = wantTrio, measure(trio)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d iter %d: concurrent scratch reuse corrupted results", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
