package experiments

import (
	"fmt"

	"mapc/internal/core"
	"mapc/internal/features"
	"mapc/internal/isa"
)

// Figure4 reproduces the per-benchmark LOOCV relative errors of Figure 4.
func Figure4(e *Env) (*Table, error) {
	res, err := e.LOOCV()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure4",
		Title:  "Relative error for leave-one-out cross validation (full feature set)",
		Header: []string{"held-out benchmark", "mean rel. error %", "test points"},
		Notes: []string{
			"paper shape: single-digit-to-low-tens per-benchmark errors, mean ~9% (paper) vs. our simulated substrate's mean below",
		},
	}
	for _, r := range res {
		t.Rows = append(t.Rows, []string{
			r.Benchmark,
			fmt.Sprintf("%.2f", r.MeanRelErr),
			fmt.Sprintf("%d", len(r.PerPoint)),
		})
	}
	t.Rows = append(t.Rows, []string{"MEAN", fmt.Sprintf("%.2f", core.MeanLOOCVError(res)), ""})
	return t, nil
}

// schemeError evaluates one scheme under the Figure-4 protocol, running
// folds on the environment's worker pool.
func schemeError(e *Env, s core.Scheme) (float64, error) {
	corpus, err := e.Corpus()
	if err != nil {
		return 0, err
	}
	res, err := core.LOOCVWorkers(corpus, s, core.DefaultTreeParams(), core.HoldOutOwn, e.Cfg.Workers)
	if err != nil {
		return 0, err
	}
	return core.MeanLOOCVError(res), nil
}

// Figure5 reproduces the related-work comparison of Figure 5: the four
// feature schemes' LOOCV errors.
func Figure5(e *Env) (*Table, error) {
	t := &Table{
		ID:     "figure5",
		Title:  "Comparison with related work (feature schemes, LOOCV error)",
		Header: []string{"scheme", "mean rel. error %"},
		Notes: []string{
			"paper: insmix 144.6%, +cputime 57.05%, +fairness 37.73%, full 9.05%",
			"shape to match: insmix-only is catastrophically wrong; each added feature family shrinks the error; the full Table-IV set wins",
		},
	}
	for _, s := range core.Figure5Schemes() {
		err := func() error {
			v, err := schemeError(e, s)
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{s.Name, fmt.Sprintf("%.2f", v)})
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// sensitivity builds a Figure 6-9 style table: per base combination, the
// error without and with the added feature kind(s).
func sensitivity(e *Env, id, title string, added []string, bases []core.Scheme, paperNote string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"base combination", "without %", "with %", "change %"},
		Notes:  []string{paperNote},
	}
	for _, base := range bases {
		with, err := core.NewScheme(base.Name+"+"+added[0], append(append([]string{}, base.Kinds...), added...)...)
		if err != nil {
			return nil, err
		}
		e0, err := schemeError(e, base)
		if err != nil {
			return nil, err
		}
		e1, err := schemeError(e, with)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			base.Name,
			fmt.Sprintf("%.2f", e0),
			fmt.Sprintf("%.2f", e1),
			fmt.Sprintf("%+.2f", e1-e0),
		})
	}
	return t, nil
}

func mustKinds(name string, kinds ...string) core.Scheme {
	s, err := core.NewScheme(name, kinds...)
	if err != nil {
		panic(err)
	}
	return s
}

var (
	kMem   = isa.MEM.String()
	kALU   = isa.ALU.String()
	kSSE   = isa.SSE.String()
	kCPU   = features.KindCPUTime
	kGPU   = features.KindGPUTime
	kFair  = features.KindFairness
	insmix = core.SchemeInsmix.Kinds
)

// Figure6 reproduces the CPU-time sensitivity study of Figure 6.
func Figure6(e *Env) (*Table, error) {
	return sensitivity(e, "figure6", "Effect of CPU time on the prediction error",
		[]string{kCPU},
		[]core.Scheme{
			mustKinds("insmix", insmix...),
			mustKinds("mem+fairness", kMem, kFair),
			mustKinds("arith+sse+fairness", kALU, kSSE, kFair),
			mustKinds("insmix+fairness", append(append([]string{}, insmix...), kFair)...),
			mustKinds("mem", kMem),
		},
		"paper shape: adding CPU time reduces the error for every base combination")
}

// Figure7 reproduces the GPU-time sensitivity study of Figure 7.
func Figure7(e *Env) (*Table, error) {
	return sensitivity(e, "figure7", "Effect of GPU time on the prediction error",
		[]string{kGPU},
		[]core.Scheme{
			mustKinds("insmix", insmix...),
			mustKinds("arith+sse+fairness", kALU, kSSE, kFair),
			mustKinds("mem+cputime", kMem, kCPU),
			mustKinds("insmix+fairness", append(append([]string{}, insmix...), kFair)...),
			mustKinds("insmix+cputime+fairness", append(append([]string{}, insmix...), kCPU, kFair)...),
		},
		"paper shape: adding GPU time gives the largest error reductions of any feature (Insight 3)")
}

// Figure8 reproduces the instruction-mix sensitivity study of Figure 8.
func Figure8(e *Env) (*Table, error) {
	return sensitivity(e, "figure8", "Effect of the instruction mix on the prediction error",
		insmix,
		[]core.Scheme{
			mustKinds("gputime", kGPU),
			mustKinds("gputime+fairness", kGPU, kFair),
			mustKinds("cputime", kCPU),
			mustKinds("cputime+fairness", kCPU, kFair),
		},
		"paper shape: the mix helps combinations built on CPU time but adds little once GPU time is present")
}

// Figure9 reproduces the fairness sensitivity study of Figure 9.
func Figure9(e *Env) (*Table, error) {
	return sensitivity(e, "figure9", "Effect of fairness on the prediction error",
		[]string{kFair},
		[]core.Scheme{
			mustKinds("insmix", insmix...),
			mustKinds("insmix+cputime", append(append([]string{}, insmix...), kCPU)...),
			mustKinds("mem+cputime+gputime", kMem, kCPU, kGPU),
			mustKinds("insmix+cputime+gputime", append(append([]string{}, insmix...), kCPU, kGPU)...),
		},
		"paper shape: fairness reduces the error for every combination; in our substrate its contribution is within noise because the phased co-run model lets the replicated CPU-time features carry most of the same signal (see EXPERIMENTS.md)")
}
