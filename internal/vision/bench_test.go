package vision

import (
	"reflect"
	"testing"

	"mapc/internal/isa"
)

func TestAllBenchmarksRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			res, err := Run(b, 20, 42)
			if err != nil {
				t.Fatal(err)
			}
			w := res.Workload
			if err := w.Validate(); err != nil {
				t.Fatalf("invalid workload: %v", err)
			}
			if w.Benchmark != b.Name() {
				t.Errorf("workload benchmark %q", w.Benchmark)
			}
			if w.Instructions() == 0 {
				t.Error("no instructions recorded")
			}
			if w.TransferBytes <= 0 {
				t.Error("no transfer bytes recorded")
			}
			if len(res.Summary) == 0 {
				t.Error("empty functional summary")
			}
		})
	}
}

func TestRunRejectsBadBatch(t *testing.T) {
	if _, err := Run(NewFAST(), 0, 1); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := Run(NewFAST(), -5, 1); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, b := range []Benchmark{NewFAST(), NewSIFT(), NewSVM()} {
		r1, err := Run(b, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(b, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Workload, r2.Workload) {
			t.Errorf("%s: workloads differ across identical runs", b.Name())
		}
		if !reflect.DeepEqual(r1.Summary, r2.Summary) {
			t.Errorf("%s: summaries differ across identical runs", b.Name())
		}
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	a, err := Run(NewFAST(), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(NewFAST(), 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Workload.TotalCounts(), b.Workload.TotalCounts()) {
		t.Error("different seeds produced identical dynamic counts")
	}
}

func TestInstructionsGrowWithBatch(t *testing.T) {
	for _, b := range All() {
		small, err := Run(b, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Run(b, 160, 42)
		if err != nil {
			t.Fatal(err)
		}
		si, bi := small.Workload.Instructions(), big.Workload.Instructions()
		if bi <= si {
			t.Errorf("%s: instructions did not grow with batch (%d -> %d)", b.Name(), si, bi)
		}
		// Growth should be roughly linear in batch (within 2x slack for
		// batch-invariant phases).
		if float64(bi) > float64(si)*16 {
			t.Errorf("%s: superlinear growth %d -> %d", b.Name(), si, bi)
		}
	}
}

func TestMixesAreBatchStable(t *testing.T) {
	// Instruction-mix percentages identify the algorithm, not the input
	// size; they must barely move across batches.
	for _, b := range All() {
		small, err := Run(b, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Run(b, 320, 42)
		if err != nil {
			t.Fatal(err)
		}
		ms := small.Workload.TotalCounts().Mix()
		mb := big.Workload.TotalCounts().Mix()
		for c := isa.Category(0); c < isa.NumCategories; c++ {
			if diff := ms[c] - mb[c]; diff > 0.12 || diff < -0.12 {
				t.Errorf("%s: %v fraction moved %.3f -> %.3f across batches",
					b.Name(), c, ms[c], mb[c])
			}
		}
	}
}

func TestMixesDifferAcrossBenchmarks(t *testing.T) {
	// The suite must be diverse: every pair of benchmarks should differ
	// in at least one mix category by a few points.
	mixes := map[string][isa.NumCategories]float64{}
	for _, b := range All() {
		res, err := Run(b, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		mixes[b.Name()] = res.Workload.TotalCounts().Mix()
	}
	names := Names()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			var maxDiff float64
			for c := isa.Category(0); c < isa.NumCategories; c++ {
				d := mixes[names[i]][c] - mixes[names[j]][c]
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff < 0.01 {
				t.Errorf("%s and %s have nearly identical mixes (max diff %.4f)",
					names[i], names[j], maxDiff)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		b, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, b.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNamesMatchesPaperOrder(t *testing.T) {
	want := []string{"fast", "hog", "knn", "objrec", "orb", "sift", "surf", "svm", "facedet"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v", got)
	}
}

func TestScaleWorkloadLaunches(t *testing.T) {
	res, err := Run(NewFAST(), 60, 42) // sample 3 -> factor 20
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Workload.Phases {
		if p.LaunchCount() != 20 {
			t.Fatalf("phase %q launches = %d, want 20", p.Name, p.LaunchCount())
		}
	}
}

func TestSmallBatchNotScaled(t *testing.T) {
	res, err := Run(NewFAST(), 2, 42) // within sampleCap
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Workload.Phases {
		if p.LaunchCount() != 1 {
			t.Fatalf("unsampled phase %q has launches %d", p.Name, p.LaunchCount())
		}
	}
}
