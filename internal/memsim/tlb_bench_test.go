package memsim

import (
	"testing"

	"mapc/internal/xrand"
)

// The TLB microbenchmarks cover the three access regimes corpus generation
// actually produces (see DESIGN.md "Performance engineering"):
//
//   - hit-heavy: a working set smaller than the TLB, the steady state of a
//     phase whose footprint fits its translations;
//   - miss-heavy: a streaming page walk larger than the TLB, the worst case
//     (every access is a capacity miss + eviction);
//   - multi-source flush-interleaved: four MPS clients with periodic full
//     flushes, the shared-TLB contention pattern gpusim.simulateMemory
//     drives.
//
// Record ns/op into BENCH_baseline.json with scripts/benchjson; CI's
// perf-gate job fails on >2x regression against the committed baseline.

func benchTLBAddrs(pages int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % uint64(pages)) * PageSize
	}
	return addrs
}

func BenchmarkTLBAccessHitHeavy(b *testing.B) {
	tlb, err := NewTLB(512, 1)
	if err != nil {
		b.Fatal(err)
	}
	addrs := benchTLBAddrs(256, 1) // working set = half the TLB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Access(0, addrs[i&(len(addrs)-1)])
	}
}

func BenchmarkTLBAccessMissHeavy(b *testing.B) {
	tlb, err := NewTLB(512, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Strictly streaming pages: every access past warm-up misses and
		// evicts the LRU entry.
		tlb.Access(0, uint64(i)*PageSize)
	}
}

func BenchmarkTLBAccessMultiSourceFlush(b *testing.B) {
	const sources = 4
	tlb, err := NewTLB(512, sources)
	if err != nil {
		b.Fatal(err)
	}
	addrs := benchTLBAddrs(1024, 2) // 2x TLB capacity, shared by 4 clients
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%12000 == 11999 { // gpusim.DefaultConfig().TLBFlushPeriod
			tlb.Flush()
		}
		tlb.Access(i&(sources-1), addrs[i&(len(addrs)-1)])
	}
}
