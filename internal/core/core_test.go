package core

import (
	"strings"
	"sync"
	"testing"

	"mapc/internal/dataset"
	"mapc/internal/features"
)

var (
	corpusOnce sync.Once
	corpus     *dataset.Corpus
	corpusErr  error
)

// testCorpus generates a reduced corpus (2 batch sizes) once per package:
// large enough for meaningful folds, fast enough for CI.
func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.BatchSizes = []int{20, 40, 80}
		cfg.MixedPairs = 4
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			corpusErr = err
			return
		}
		corpus, corpusErr = gen.Generate()
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestSchemeColumns(t *testing.T) {
	c := testCorpus(t)
	cols, err := SchemeFull.Columns(c.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(c.FeatureNames) {
		t.Errorf("full scheme selects %d of %d columns", len(cols), len(c.FeatureNames))
	}
	cols, err = SchemeInsmix.Columns(c.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 16 { // 8 categories x 2 replicas
		t.Errorf("insmix selects %d columns, want 16", len(cols))
	}
	names, err := SchemeInsmixCPU.ColumnNames(c.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	foundCPU := false
	for _, n := range names {
		if features.Kind(n) == features.KindCPUTime {
			foundCPU = true
		}
		if features.Kind(n) == features.KindGPUTime {
			t.Errorf("insmix+cputime selected %q", n)
		}
	}
	if !foundCPU {
		t.Error("insmix+cputime missing cpu_time columns")
	}
}

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme("bad", "no-such-kind"); err == nil {
		t.Error("unknown kind accepted")
	}
	s, err := NewScheme("ok", "mem", "fairness")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Kinds) != 2 {
		t.Errorf("kinds %v", s.Kinds)
	}
}

func TestSchemeNoMatchingColumns(t *testing.T) {
	s := Scheme{Name: "empty", Kinds: []string{"mem"}}
	if _, err := s.Columns([]string{"unrelated"}); err == nil {
		t.Error("scheme with no columns accepted")
	}
}

func TestTrainAndPredict(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	// An unpruned tree must reproduce its training points almost exactly.
	for i := range c.Points {
		got, err := p.PredictPoint(&c.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		rel := (got - c.Points[i].Y) / c.Points[i].Y
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("training point %d rel error %.2f", i, rel)
		}
	}
	if p.TimeDivisor() != c.CPUTimeDivisor {
		t.Errorf("divisor %v vs corpus %v", p.TimeDivisor(), c.CPUTimeDivisor)
	}
	if got := p.Scheme().Name; got != SchemeFull.Name {
		t.Errorf("scheme %q", got)
	}
}

func TestPredictVectorWidthCheck(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictVector([]float64{1, 2}); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := p.PathVector([]float64{1}); err == nil {
		t.Error("short vector accepted by PathVector")
	}
}

func TestPredictRawAppliesNormalization(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct a raw vector from a normalized point and check both
	// paths agree.
	pt := &c.Points[0]
	raw := append([]float64(nil), pt.X...)
	for j, n := range c.FeatureNames {
		switch features.Kind(n) {
		case features.KindCPUTime, features.KindGPUTime:
			raw[j] *= c.CPUTimeDivisor
		}
	}
	fromRaw, err := p.PredictRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	fromNorm, err := p.PredictVector(pt.X)
	if err != nil {
		t.Fatal(err)
	}
	if fromRaw != fromNorm {
		t.Fatalf("raw path %v, normalized path %v", fromRaw, fromNorm)
	}
}

func TestLOOCVProtocols(t *testing.T) {
	c := testCorpus(t)
	own, err := LOOCV(c, SchemeFull, DefaultTreeParams(), HoldOutOwn)
	if err != nil {
		t.Fatal(err)
	}
	containing, err := LOOCV(c, SchemeFull, DefaultTreeParams(), HoldOutContaining)
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 9 || len(containing) != 9 {
		t.Fatalf("fold counts %d / %d", len(own), len(containing))
	}
	for i := range own {
		// Own protocol holds out exactly the homogeneous batch variants.
		if got := len(own[i].PerPoint); got != 3 {
			t.Errorf("%s own-protocol test points %d, want 3", own[i].Benchmark, got)
		}
		// Containing protocol holds out strictly more.
		if len(containing[i].PerPoint) <= len(own[i].PerPoint) {
			t.Errorf("%s containing protocol not stricter", containing[i].Benchmark)
		}
		if own[i].MeanRelErr < 0 {
			t.Errorf("negative error %v", own[i].MeanRelErr)
		}
		if len(own[i].Paths) != len(own[i].PerPoint) {
			t.Errorf("%s paths/points mismatch", own[i].Benchmark)
		}
	}
	if MeanLOOCVError(own) <= 0 {
		t.Error("zero mean LOOCV error is implausible")
	}
	if MeanLOOCVError(nil) != 0 {
		t.Error("MeanLOOCVError(nil)")
	}
}

func TestEvaluateSchemeOrdering(t *testing.T) {
	// The paper's central comparison: instruction mix alone must be far
	// worse than the full feature set.
	c := testCorpus(t)
	insmix, err := EvaluateScheme(c, SchemeInsmix, DefaultTreeParams(), HoldOutOwn)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvaluateScheme(c, SchemeFull, DefaultTreeParams(), HoldOutOwn)
	if err != nil {
		t.Fatal(err)
	}
	if insmix < full*3 {
		t.Errorf("insmix error %v not clearly worse than full %v", insmix, full)
	}
}

func TestAnalyzePaths(t *testing.T) {
	c := testCorpus(t)
	res, err := LOOCV(c, SchemeFull, DefaultTreeParams(), HoldOutOwn)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := AnalyzePaths(res)
	if err != nil {
		t.Fatal(err)
	}
	nPoints := 0
	for _, r := range res {
		nPoints += len(r.PerPoint)
	}
	if len(stats.PerPoint) != nPoints {
		t.Fatalf("path stats cover %d points, want %d", len(stats.PerPoint), nPoints)
	}
	for _, k := range stats.KindNames {
		p := stats.Presence[k]
		if p < 0 || p > 100 {
			t.Errorf("presence[%s] = %v", k, p)
		}
	}
	// GPU time must dominate the decision paths (the paper's headline
	// explainability finding).
	if stats.Presence[features.KindGPUTime] < 90 {
		t.Errorf("gpu_time presence %v%% — expected near-universal use",
			stats.Presence[features.KindGPUTime])
	}
	top := stats.TopKinds()
	if features.Kind(top[0]) != features.KindGPUTime && features.Kind(top[0]) != features.KindCPUTime {
		t.Errorf("top path feature %q", top[0])
	}
	if _, err := AnalyzePaths(nil); err == nil {
		t.Error("empty results accepted")
	}
}

func TestProtocolString(t *testing.T) {
	if !strings.Contains(HoldOutOwn.String(), "own") {
		t.Errorf("HoldOutOwn.String() = %q", HoldOutOwn.String())
	}
	if !strings.Contains(HoldOutContaining.String(), "containing") {
		t.Errorf("HoldOutContaining.String() = %q", HoldOutContaining.String())
	}
	if !strings.Contains(Protocol(9).String(), "9") {
		t.Errorf("invalid protocol String() = %q", Protocol(9).String())
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, SchemeFull, DefaultTreeParams()); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Train(&dataset.Corpus{}, SchemeFull, DefaultTreeParams()); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := LOOCV(&dataset.Corpus{}, SchemeFull, DefaultTreeParams(), HoldOutOwn); err == nil {
		t.Error("empty corpus LOOCV accepted")
	}
}

func TestFigure5Schemes(t *testing.T) {
	schemes := Figure5Schemes()
	if len(schemes) != 4 {
		t.Fatalf("%d schemes", len(schemes))
	}
	wantNames := []string{"insmix", "insmix+cputime", "insmix+cputime+fairness", "full"}
	for i, s := range schemes {
		if s.Name != wantNames[i] {
			t.Errorf("scheme %d = %q, want %q", i, s.Name, wantNames[i])
		}
	}
}
