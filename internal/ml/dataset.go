// Package ml implements, from scratch, the supervised-learning machinery
// the paper obtains from scikit-learn (Section V-D): a CART regression tree
// with decision-path introspection, ordinary-least-squares linear
// regression, epsilon-SVR trained by SMO, cross-validation schemes
// including the grouped leave-one-out protocol of Figure 4, and the error
// metrics of Section VI.
package ml

import (
	"errors"
	"fmt"

	"mapc/internal/xrand"
)

// Dataset is a supervised regression dataset: one row of X per data point,
// a target in Y, and an optional group label per point (the benchmark a
// point derives from, used by grouped LOOCV).
type Dataset struct {
	// FeatureNames labels the columns of X.
	FeatureNames []string
	// X holds the feature vectors, all of equal length.
	X [][]float64
	// Y holds the regression targets.
	Y []float64
	// Groups holds one label per point; may be nil when grouping is
	// not needed.
	Groups []string
}

// Len returns the number of data points.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks the dataset's shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("ml: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d targets", len(d.X), len(d.Y))
	}
	if d.Groups != nil && len(d.Groups) != len(d.X) {
		return fmt.Errorf("ml: %d feature rows but %d group labels", len(d.X), len(d.Groups))
	}
	width := len(d.X[0])
	if width == 0 {
		return errors.New("ml: zero-width feature vectors")
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != width {
		return fmt.Errorf("ml: %d feature names for width-%d vectors", len(d.FeatureNames), width)
	}
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: row %d has width %d, want %d", i, len(row), width)
		}
	}
	return nil
}

// Subset returns a new dataset containing the rows at the given indices.
// The rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{FeatureNames: d.FeatureNames}
	out.X = make([][]float64, len(idx))
	out.Y = make([]float64, len(idx))
	if d.Groups != nil {
		out.Groups = make([]string, len(idx))
	}
	for k, i := range idx {
		out.X[k] = d.X[i]
		out.Y[k] = d.Y[i]
		if d.Groups != nil {
			out.Groups[k] = d.Groups[i]
		}
	}
	return out
}

// SelectFeatures returns a dataset restricted to the named feature columns,
// in the order given. Unknown names are an error.
func (d *Dataset) SelectFeatures(names []string) (*Dataset, error) {
	cols := make([]int, len(names))
	for k, n := range names {
		found := -1
		for j, fn := range d.FeatureNames {
			if fn == n {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("ml: unknown feature %q", n)
		}
		cols[k] = found
	}
	out := &Dataset{
		FeatureNames: append([]string(nil), names...),
		Y:            d.Y,
		Groups:       d.Groups,
		X:            make([][]float64, len(d.X)),
	}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, c := range cols {
			nr[k] = row[c]
		}
		out.X[i] = nr
	}
	return out, nil
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, shuffled deterministically by seed (Section V-D2's 80/20
// protocol).
func (d *Dataset) Split(testFraction float64, seed uint64) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("ml: test fraction %v outside (0,1)", testFraction)
	}
	perm := xrand.New(seed).Perm(d.Len())
	nTest := int(float64(d.Len()) * testFraction)
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= d.Len() {
		nTest = d.Len() - 1
	}
	return d.Subset(perm[nTest:]), d.Subset(perm[:nTest]), nil
}

// GroupNames returns the distinct group labels in first-appearance order.
func (d *Dataset) GroupNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range d.Groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// SplitByGroup returns the subsets excluding and containing group g —
// the grouped leave-one-out split of Figure 4.
func (d *Dataset) SplitByGroup(g string) (rest, held *Dataset, err error) {
	if d.Groups == nil {
		return nil, nil, errors.New("ml: dataset has no group labels")
	}
	var restIdx, heldIdx []int
	for i, gi := range d.Groups {
		if gi == g {
			heldIdx = append(heldIdx, i)
		} else {
			restIdx = append(restIdx, i)
		}
	}
	if len(heldIdx) == 0 {
		return nil, nil, fmt.Errorf("ml: no points in group %q", g)
	}
	if len(restIdx) == 0 {
		return nil, nil, fmt.Errorf("ml: group %q is the entire dataset", g)
	}
	return d.Subset(restIdx), d.Subset(heldIdx), nil
}
