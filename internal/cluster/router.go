package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mapc/internal/serve"
)

// Router defaults.
const (
	DefaultRouterTimeout = 60 * time.Second
	routerMaxBodyBytes   = 1 << 20
)

// RouterConfig configures the sharding router.
type RouterConfig struct {
	// Pool is the replica membership; required.
	Pool *Pool
	// Client forwards prediction sub-batches; nil means a fresh client
	// with no global timeout (per-request contexts bound each forward).
	Client *http.Client
	// Timeout bounds one client request end-to-end across all forwards
	// and retries; 0 means DefaultRouterTimeout.
	Timeout time.Duration
	// Logf reports forwarding errors; nil discards.
	Logf func(format string, args ...any)
}

// Router shards /v1/predict bags across replicas by canonical bag key and
// reassembles the answers in request order. It owns no model: every
// prediction comes verbatim from a replica, so routed answers are
// bit-identical to asking the owning replica directly.
type Router struct {
	cfg     RouterConfig
	pool    *Pool
	metrics *routerMetrics
	start   time.Time
}

// NewRouter validates the config and returns a ready router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Pool == nil {
		return nil, errors.New("cluster: router needs a pool")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRouterTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Router{cfg: cfg, pool: cfg.Pool, metrics: newRouterMetrics(), start: time.Now()}, nil
}

// Handler returns the router's HTTP mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// Pool exposes the membership (for probe wiring in cmd/mapc-router).
func (rt *Router) Pool() *Pool { return rt.pool }

// writeJSON mirrors the serve layer's response shape (pretty-printed).
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return code
}

// bagCall tracks one bag through forwarding: its original position, its
// canonical key's candidate replicas, and how many have been tried.
type bagCall struct {
	index   int
	members []serve.Member
	cands   []string
	attempt int
}

// forwardError is a sub-batch outcome that should be propagated to the
// client as-is (a replica answered non-200).
type forwardError struct {
	status     int
	body       serve.ErrorResponse
	retryAfter string
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	startTime := time.Now()
	code := rt.servePredict(w, r)
	rt.metrics.observe(code, time.Since(startTime))
}

func (rt *Router) servePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "use POST"})
	}
	body := http.MaxBytesReader(w, r.Body, routerMaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req serve.PredictRequest
	if err := dec.Decode(&req); err != nil {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
	}
	// Same trailing-data contract as the replicas: exactly one JSON value.
	if tok, err := dec.Token(); err != io.EOF {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: fmt.Sprintf("request body carries trailing data after the JSON value (next token %v); send exactly one JSON object", tok)})
	}
	bags, err := req.BagList()
	if err != nil {
		return writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
	defer cancel()

	calls := make([]*bagCall, len(bags))
	for i, ms := range bags {
		calls[i] = &bagCall{index: i, members: ms, cands: rt.pool.Route(serve.CanonicalKey(ms))}
	}

	results := make([]serve.BagResult, len(bags))
	scheme := ""
	pending := calls
	for len(pending) > 0 {
		// Group this round's bags by the replica each should try next.
		groups := make(map[string][]*bagCall)
		var exhausted *bagCall
		for _, c := range pending {
			if c.attempt >= len(c.cands) {
				exhausted = c
				break
			}
			replica := c.cands[c.attempt]
			c.attempt++
			groups[replica] = append(groups[replica], c)
		}
		if exhausted != nil {
			return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
				Error: fmt.Sprintf("bag %d: every replica failed; last candidate list %v", exhausted.index, exhausted.cands)})
		}

		// Forward the groups concurrently; collect per-group outcomes.
		replicas := make([]string, 0, len(groups))
		for rep := range groups {
			replicas = append(replicas, rep)
		}
		sort.Strings(replicas)
		type outcome struct {
			replica string
			resp    *serve.PredictResponse
			ferr    *forwardError // replica answered non-200
			netErr  error         // transport-level failure → retry next candidate
		}
		outcomes := make([]outcome, len(replicas))
		var wg sync.WaitGroup
		for i, rep := range replicas {
			wg.Add(1)
			go func(i int, rep string) {
				defer wg.Done()
				resp, ferr, netErr := rt.forward(ctx, rep, groups[rep])
				outcomes[i] = outcome{replica: rep, resp: resp, ferr: ferr, netErr: netErr}
			}(i, rep)
		}
		wg.Wait()

		pending = pending[:0]
		for _, o := range outcomes {
			group := groups[o.replica]
			switch {
			case o.netErr != nil:
				// Transport failure: report to the pool (passive ejection)
				// and retry every bag in the group at its next candidate.
				rt.pool.ReportFailure(o.replica, o.netErr)
				rt.metrics.retries.Add(int64(len(group)))
				rt.cfg.Logf("cluster: forward to %s failed (%v); retrying %d bag(s)", o.replica, o.netErr, len(group))
				pending = append(pending, group...)
			case o.ferr != nil:
				// The replica answered an HTTP error: propagate it as-is —
				// a 400 means the bag itself is invalid everywhere, a 503
				// means the owner is shedding (the client's backpressure
				// signal; rerouting would defeat admission control).
				if o.ferr.retryAfter != "" {
					w.Header().Set("Retry-After", o.ferr.retryAfter)
				}
				return writeJSON(w, o.ferr.status, o.ferr.body)
			default:
				if scheme == "" {
					scheme = o.resp.ModelScheme
				} else if scheme != o.resp.ModelScheme {
					return writeJSON(w, http.StatusBadGateway, serve.ErrorResponse{
						Error: fmt.Sprintf("replicas disagree on the model scheme (%q vs %q); the tier is misconfigured", scheme, o.resp.ModelScheme)})
				}
				for j, br := range o.resp.Results {
					results[group[j].index] = br
				}
				rt.metrics.forwarded(o.replica, len(group))
			}
		}
	}

	rt.metrics.bags.Add(int64(len(results)))
	return writeJSON(w, http.StatusOK, serve.PredictResponse{ModelScheme: scheme, Results: results})
}

// forward posts one sub-batch to one replica. Returns exactly one of:
// the decoded response (len(Results) == len(group) guaranteed), a
// forwardError to propagate, or a transport error to retry.
func (rt *Router) forward(ctx context.Context, baseURL string, group []*bagCall) (*serve.PredictResponse, *forwardError, error) {
	sub := serve.PredictRequest{Bags: make([]serve.Bag, len(group))}
	for i, c := range group {
		sub.Bags[i] = serve.Bag{Members: c.members}
	}
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/predict", bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var eresp serve.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, routerMaxBodyBytes)).Decode(&eresp); err != nil {
			eresp.Error = fmt.Sprintf("replica %s answered %d with an unreadable body", baseURL, resp.StatusCode)
		}
		return nil, &forwardError{
			status:     resp.StatusCode,
			body:       eresp,
			retryAfter: resp.Header.Get("Retry-After"),
		}, nil
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, routerMaxBodyBytes)).Decode(&pr); err != nil {
		// A 200 with a garbled body is a transport-class failure: the
		// replica is sick, try the next candidate.
		return nil, nil, fmt.Errorf("decoding reply from %s: %w", baseURL, err)
	}
	if len(pr.Results) != len(group) {
		return nil, nil, fmt.Errorf("replica %s answered %d results for %d bags", baseURL, len(pr.Results), len(group))
	}
	return &pr, nil, nil
}

// RouterHealth is the router's /healthz body.
type RouterHealth struct {
	Status    string          `json:"status"`
	Healthy   int             `json:"healthy"`
	Replicas  []ReplicaStatus `json:"replicas"`
	UptimeSec float64         `json:"uptime_sec"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "GET only"})
		return
	}
	status := rt.pool.Status()
	healthy := 0
	for _, s := range status {
		if s.Healthy {
			healthy++
		}
	}
	// The router is "ok" while at least one replica is admitted; a tier
	// with zero healthy members reports degraded (503) so an outer load
	// balancer can fail away from it.
	code, state := http.StatusOK, "ok"
	if healthy == 0 {
		code, state = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, code, RouterHealth{
		Status:    state,
		Healthy:   healthy,
		Replicas:  status,
		UptimeSec: time.Since(rt.start).Seconds(),
	})
}

// routerMetrics is the router's stdlib-only instrumentation.
type routerMetrics struct {
	mu       sync.Mutex
	byCode   map[int]int64
	byTarget map[string]int64 // bags forwarded per replica
	latSum   float64
	latN     int64

	bags    atomic.Int64
	retries atomic.Int64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{byCode: map[int]int64{}, byTarget: map[string]int64{}}
}

func (m *routerMetrics) observe(code int, d time.Duration) {
	m.mu.Lock()
	m.byCode[code]++
	m.latSum += d.Seconds()
	m.latN++
	m.mu.Unlock()
}

func (m *routerMetrics) forwarded(replica string, bags int) {
	m.mu.Lock()
	m.byTarget[replica] += int64(bags)
	m.mu.Unlock()
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "GET only"})
		return
	}
	m := rt.metrics
	m.mu.Lock()
	codes := make([]int, 0, len(m.byCode))
	for c := range m.byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	targets := make([]string, 0, len(m.byTarget))
	for t := range m.byTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, c := range codes {
		fmt.Fprintf(w, "mapc_router_requests_total{code=%q} %d\n", fmt.Sprint(c), m.byCode[c])
	}
	for _, t := range targets {
		fmt.Fprintf(w, "mapc_router_forwarded_bags_total{replica=%q} %d\n", t, m.byTarget[t])
	}
	fmt.Fprintf(w, "mapc_router_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "mapc_router_request_duration_seconds_count %d\n", m.latN)
	m.mu.Unlock()
	fmt.Fprintf(w, "mapc_router_bags_total %d\n", m.bags.Load())
	fmt.Fprintf(w, "mapc_router_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "mapc_router_replicas_healthy %d\n", rt.pool.HealthyCount())
	fmt.Fprintf(w, "mapc_router_ejections_total %d\n", rt.pool.Ejections())
	fmt.Fprintf(w, "mapc_router_readmissions_total %d\n", rt.pool.Readmissions())
	fmt.Fprintf(w, "mapc_router_uptime_seconds %g\n", time.Since(rt.start).Seconds())
}
