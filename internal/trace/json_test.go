package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mapc/internal/isa"
)

func sampleWorkload() *Workload {
	var c1, c2 isa.Counts
	c1.Add(isa.ALU, 100)
	c1.Add(isa.MEM, 50)
	c2.Add(isa.SSE, 30)
	c2.Add(isa.Control, 7)
	return &Workload{
		Benchmark:     "demo",
		BatchSize:     40,
		TransferBytes: 12345,
		Phases: []Phase{
			{
				Name: "scan", Counts: c1, Footprint: 4096,
				Pattern: Sequential, Reuse: 0.25,
				Parallelism: 64, VectorWidth: 4, Launches: 13,
			},
			{
				Name: "gather", Counts: c2, Footprint: 1 << 20,
				Pattern: Strided, StrideBytes: 128, Reuse: 0.5,
				Parallelism: 8, VectorWidth: 1, BatchInvariant: true,
			},
		},
	}
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	w := sampleWorkload()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", w, got)
	}
}

func TestWorkloadJSONHumanReadable(t *testing.T) {
	data, err := json.Marshal(sampleWorkload())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"alu":100`, `"pattern":"strided"`, `"benchmark":"demo"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestWorkloadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"format":"wrong","benchmark":"b","batch_size":1,"phases":[]}`,
		`{"format":"mapc-workload-v1","benchmark":"","batch_size":1,"phases":[]}`,
		`{"format":"mapc-workload-v1","benchmark":"b","batch_size":1,"phases":[
		  {"name":"p","counts":{},"pattern":"bogus","parallelism":1,"vector_width":1}]}`,
		`{"format":"mapc-workload-v1","benchmark":"b","batch_size":1,"phases":[
		  {"name":"p","counts":{"nope":1},"pattern":"sequential","parallelism":1,"vector_width":1}]}`,
		`{"format":"mapc-workload-v1","benchmark":"b","batch_size":1,"phases":[
		  {"name":"p","counts":{},"pattern":"sequential","parallelism":0,"vector_width":1}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWorkloadMarshalInvalid(t *testing.T) {
	w := &Workload{} // invalid: no benchmark/phases
	if _, err := json.Marshal(w); err == nil {
		t.Fatal("invalid workload serialized")
	}
}
