package ml

import (
	"math"
	"testing"
	"testing/quick"

	"mapc/internal/xrand"
)

func TestSVRFitsLinearFunction(t *testing.T) {
	d := &Dataset{}
	rng := xrand.New(17)
	for i := 0; i < 60; i++ {
		x := rng.Float64()*2 - 1
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 2*x+0.5)
	}
	m := NewSVR()
	m.Kernel = LinearKernel{}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i, x := range d.X {
		p, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(p - d.Y[i]); e > maxErr {
			maxErr = e
		}
	}
	// Epsilon-insensitive fit: residuals should stay near the tube.
	if maxErr > 0.5 {
		t.Fatalf("max residual %v on a clean linear target", maxErr)
	}
}

func TestSVRRBFFitsSmoothFunction(t *testing.T) {
	d := &Dataset{}
	rng := xrand.New(19)
	for i := 0; i < 80; i++ {
		x := rng.Float64()*4 - 2
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, math.Sin(x))
	}
	m := NewSVR()
	m.Kernel = RBFKernel{Gamma: 2}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	var sumAbs float64
	for i, x := range d.X {
		p, _ := m.Predict(x)
		sumAbs += math.Abs(p - d.Y[i])
	}
	if mae := sumAbs / float64(len(d.X)); mae > 0.3 {
		t.Fatalf("RBF SVR MAE %v on sin(x)", mae)
	}
	if m.SupportVectors() == 0 {
		t.Error("no support vectors after fitting a non-trivial function")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBFKernel{Gamma: 0.7}
	if err := quick.Check(func(a, b [3]int16) bool {
		av := []float64{float64(a[0]) / 100, float64(a[1]) / 100, float64(a[2]) / 100}
		bv := []float64{float64(b[0]) / 100, float64(b[1]) / 100, float64(b[2]) / 100}
		kab := k.Eval(av, bv)
		// Symmetry, self-similarity 1, bounded [0, 1] (distant points
		// may underflow to exactly 0).
		return kab == k.Eval(bv, av) &&
			math.Abs(k.Eval(av, av)-1) < 1e-12 &&
			kab >= 0 && kab <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearKernel(t *testing.T) {
	k := LinearKernel{}
	if got := k.Eval([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("linear kernel = %v", got)
	}
	if k.Name() != "linear" {
		t.Errorf("name %q", k.Name())
	}
}

func TestSVRValidation(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	m := NewSVR()
	m.C = -1
	if err := m.Fit(d); err == nil {
		t.Error("negative C accepted")
	}
	m = NewSVR()
	m.Epsilon = -0.5
	if err := m.Fit(d); err == nil {
		t.Error("negative epsilon accepted")
	}
	m = NewSVR()
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("unfitted Predict succeeded")
	}
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong-width vector accepted")
	}
}

func TestSVRDefaultKernel(t *testing.T) {
	d := &Dataset{X: [][]float64{{0}, {1}, {2}}, Y: []float64{0, 1, 2}}
	m := NewSVR()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.Kernel == nil {
		t.Fatal("no default kernel installed")
	}
}

func TestClampAndMean(t *testing.T) {
	if clamp(5, 0, 3) != 3 || clamp(-1, 0, 3) != 0 || clamp(2, 0, 3) != 2 {
		t.Error("clamp misbehaves")
	}
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean([1,2,3]) != 2")
	}
}
