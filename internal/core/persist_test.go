package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeFull, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Scheme().Name != p.Scheme().Name {
		t.Errorf("scheme %q after load", loaded.Scheme().Name)
	}
	if loaded.TimeDivisor() != p.TimeDivisor() {
		t.Errorf("divisor %v after load", loaded.TimeDivisor())
	}
	for i := range c.Points {
		a, err := p.PredictPoint(&c.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictPoint(&c.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("point %d predictions diverge after round trip: %v vs %v", i, a, b)
		}
	}
	// Decision-path introspection works on loaded models too.
	path, err := loaded.PathVector(c.Points[0].X)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Error("empty path from loaded model")
	}
}

func TestPredictorSaveLoadFile(t *testing.T) {
	c := testCorpus(t)
	p, err := Train(c, SchemeInsmixCPU, DefaultTreeParams())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.PredictVector(c.Points[3].X)
	b, _ := loaded.PredictVector(c.Points[3].X)
	if a != b {
		t.Fatalf("file round trip diverges: %v vs %v", a, b)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"format":"wrong"}`,
		`{"format":"mapc-predictor-v1"}`,
		`{"format":"mapc-predictor-v1","time_divisor":1,"columns":[0],"column_names":["a"],"all_feature_names":["a"]}`,
		`{"format":"mapc-predictor-v1","time_divisor":1,"columns":[9],"column_names":["a"],"all_feature_names":["a"],
		  "tree":{"format":"mapc-tree-v1","n_features":1,"nodes":[{"feature":-1,"value":1}]}}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("garbage case %d loaded", i)
		}
	}
}
