// Package experiments regenerates every computed artifact of the paper's
// evaluation: Figures 1-3 (performance scaling with multi-application
// concurrency), Figure 4 (LOOCV error per benchmark), Figures 5-9 (feature
// scheme comparison and sensitivity), and Figures 10-12 (decision-path
// analyses). Each Figure function returns a Table whose rows mirror the
// series the corresponding figure plots; cmd/mapc-experiments and the
// repository benchmarks render them.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mapc/internal/core"
	"mapc/internal/dataset"
)

// Table is a rendered experiment result: the rows/series of one figure.
type Table struct {
	// ID is the paper artifact identifier, e.g. "figure5".
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the data, pre-formatted as strings.
	Rows [][]string
	// Notes carries shape commentary (what the paper observed vs. what we
	// measure).
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Env shares expensive state (the generator's workload cache and the
// corpus) across figures. It is safe for concurrent use: each cached
// artifact sits behind a sync.Once, and the underlying generator, corpus
// generation, and LOOCV all run on the race-clean parallel measurement
// engine (Config.Workers bounds each sweep's goroutine pool).
type Env struct {
	Cfg dataset.Config

	genOnce sync.Once
	gen     *dataset.Generator
	genErr  error

	corpusOnce sync.Once
	corpus     *dataset.Corpus
	corpusErr  error

	loocvOnce sync.Once
	loocv     []core.LOOCVResult
	loocvErr  error

	scalingOnce sync.Once
	scalingCPU  map[string][]float64
	scalingGPU  map[string][]float64
	scalingErr  error
}

// NewEnv returns an environment with the given configuration.
func NewEnv(cfg dataset.Config) *Env { return &Env{Cfg: cfg} }

// DefaultEnv returns an environment with the paper-default configuration.
func DefaultEnv() *Env { return NewEnv(dataset.DefaultConfig()) }

// Generator returns the shared dataset generator.
func (e *Env) Generator() (*dataset.Generator, error) {
	e.genOnce.Do(func() {
		e.gen, e.genErr = dataset.NewGenerator(e.Cfg)
	})
	return e.gen, e.genErr
}

// Corpus returns the shared 91-run corpus, generating it on first use.
func (e *Env) Corpus() (*dataset.Corpus, error) {
	e.corpusOnce.Do(func() {
		gen, err := e.Generator()
		if err != nil {
			e.corpusErr = err
			return
		}
		e.corpus, e.corpusErr = gen.Generate()
	})
	return e.corpus, e.corpusErr
}

// LOOCV returns the shared full-scheme Figure-4 cross-validation results.
func (e *Env) LOOCV() ([]core.LOOCVResult, error) {
	e.loocvOnce.Do(func() {
		corpus, err := e.Corpus()
		if err != nil {
			e.loocvErr = err
			return
		}
		e.loocv, e.loocvErr = core.LOOCVWorkers(corpus, core.SchemeFull,
			core.DefaultTreeParams(), core.HoldOutOwn, e.Cfg.Workers)
	})
	return e.loocv, e.loocvErr
}

// Generators maps artifact IDs to figure functions, in paper order.
func Generators() []struct {
	ID  string
	Fn  func(*Env) (*Table, error)
	Doc string
} {
	return []struct {
		ID  string
		Fn  func(*Env) (*Table, error)
		Doc string
	}{
		{"table2", TableII, "benchmark suite (Table II)"},
		{"table3", TableIII, "simulated baseline system (Table III)"},
		{"table4", TableIV, "feature list (Table IV)"},
		{"figure1", Figure1, "CPU performance vs. homogeneous instance count"},
		{"figure2", Figure2, "GPU performance vs. homogeneous instance count"},
		{"figure3", Figure3, "GPU/CPU performance ratio vs. instance count"},
		{"figure4", Figure4, "LOOCV relative error per held-out benchmark"},
		{"figure5", Figure5, "feature-scheme comparison with related work"},
		{"figure6", Figure6, "effect of CPU time on the prediction error"},
		{"figure7", Figure7, "effect of GPU time on the prediction error"},
		{"figure8", Figure8, "effect of the instruction mix on the prediction error"},
		{"figure9", Figure9, "effect of fairness on the prediction error"},
		{"figure10", Figure10, "% of test points using each feature in their decision path"},
		{"figure11", Figure11, "per-feature decision-path use-count distribution (radar)"},
		{"figure12", Figure12, "per-test-point feature use heatmap snapshot"},
	}
}

// Run generates one artifact by ID — a paper figure or an Extra extension.
func Run(e *Env, id string) (*Table, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g.Fn(e)
		}
	}
	for _, g := range ExtraGenerators() {
		if g.ID == id {
			return g.Fn(e)
		}
	}
	return nil, fmt.Errorf("experiments: unknown artifact %q", id)
}

// All generates every artifact in paper order.
func All(e *Env) ([]*Table, error) {
	var out []*Table
	for _, g := range Generators() {
		t, err := g.Fn(e)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
