// Package vision implements the nine computer-vision benchmarks of the
// paper's Table II (FAST, ORB, SIFT, SURF, HoG, SVM, KNN, ObjRec, FaceDet)
// as real Go algorithms over synthetic images. Every benchmark runs against
// instrumented primitives so that one execution yields both a functional
// result and a trace.Workload describing the run for the CPU/GPU simulators.
//
// The package replaces the paper's OpenCV/CUDA benchmark suite: the
// predictor never looks at pixels, only at the workload characteristics
// (instruction mix, footprints, parallel structure), and those are produced
// here by genuinely different algorithms, just as in the original suite.
package vision

import (
	"fmt"
	"math"

	"mapc/internal/xrand"
)

// Image is a single-channel (grayscale) float image in row-major order.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a zeroed w×h image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y). The caller must keep coordinates in range.
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// image border, the usual boundary handling for sliding-window filters.
func (im *Image) AtClamped(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Bytes returns the memory footprint of the pixel data in bytes.
func (im *Image) Bytes() int64 { return int64(len(im.Pix)) * 8 }

// SceneKind selects the synthetic content placed in generated images.
type SceneKind int

const (
	// SceneTextured produces blobs, edges and corners — generic input for
	// feature detectors and descriptors.
	SceneTextured SceneKind = iota
	// SceneFaces produces face-like bright/dark rectangle arrangements
	// that Haar cascades respond to.
	SceneFaces
	// SceneObjects produces a small set of distinctive object patterns
	// for recognition pipelines.
	SceneObjects
)

// SynthesizeImage renders a deterministic synthetic scene. The same
// (kind, w, h, seed) always yields the same image.
func SynthesizeImage(kind SceneKind, w, h int, seed uint64) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	rng := xrand.New(seed ^ 0xA5A5A5A5_5A5A5A5A)
	im := NewImage(w, h)

	// Smooth background ramp so gradients exist everywhere.
	gx := rng.Float64()*2 - 1
	gy := rng.Float64()*2 - 1
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, 90+gx*float64(x)/float64(w)*40+gy*float64(y)/float64(h)*40)
		}
	}

	switch kind {
	case SceneFaces:
		drawFaces(im, rng)
	case SceneObjects:
		drawObjects(im, rng)
	default:
		drawTexture(im, rng)
	}

	// Low-amplitude noise: keeps detectors honest without drowning signal.
	for i := range im.Pix {
		im.Pix[i] += rng.NormFloat64() * 1.5
		if im.Pix[i] < 0 {
			im.Pix[i] = 0
		} else if im.Pix[i] > 255 {
			im.Pix[i] = 255
		}
	}
	return im
}

func drawTexture(im *Image, rng *xrand.Rand) {
	// Rectangles create corners for FAST/ORB; Gaussian blobs create
	// scale-space extrema for SIFT/SURF.
	nrect := 6 + rng.Intn(6)
	for i := 0; i < nrect; i++ {
		x0 := rng.Intn(im.W - 8)
		y0 := rng.Intn(im.H - 8)
		rw := 6 + rng.Intn(im.W/3)
		rh := 6 + rng.Intn(im.H/3)
		v := 30 + rng.Float64()*200
		fillRect(im, x0, y0, rw, rh, v)
	}
	nblob := 5 + rng.Intn(5)
	for i := 0; i < nblob; i++ {
		cx := float64(rng.Intn(im.W))
		cy := float64(rng.Intn(im.H))
		sigma := 2 + rng.Float64()*6
		amp := 60 + rng.Float64()*120
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		drawBlob(im, cx, cy, sigma, amp)
	}
}

func drawFaces(im *Image, rng *xrand.Rand) {
	// A "face" is a bright oval with two dark eye bands and a dark mouth
	// band — precisely the contrast structure Haar-like features match.
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		fw := 20 + rng.Intn(18)
		fh := fw + fw/4
		x0 := rng.Intn(maxInt(1, im.W-fw))
		y0 := rng.Intn(maxInt(1, im.H-fh))
		fillRect(im, x0, y0, fw, fh, 200)
		eyeH := fh / 6
		fillRect(im, x0+fw/8, y0+fh/4, fw/4, eyeH, 60)         // left eye
		fillRect(im, x0+fw-fw/8-fw/4, y0+fh/4, fw/4, eyeH, 60) // right eye
		fillRect(im, x0+fw/4, y0+3*fh/4, fw/2, eyeH, 80)       // mouth
	}
	drawTexture(im, rng) // clutter
}

func drawObjects(im *Image, rng *xrand.Rand) {
	// Objects are repeatable cross/diamond/bar glyphs; recognition
	// pipelines can key on their descriptor statistics.
	n := 3 + rng.Intn(3)
	for i := 0; i < n; i++ {
		cx := 10 + rng.Intn(maxInt(1, im.W-20))
		cy := 10 + rng.Intn(maxInt(1, im.H-20))
		size := 8 + rng.Intn(10)
		v := 40 + rng.Float64()*180
		switch rng.Intn(3) {
		case 0: // cross
			fillRect(im, cx-size, cy-2, 2*size, 4, v)
			fillRect(im, cx-2, cy-size, 4, 2*size, v)
		case 1: // diamond
			for d := -size; d <= size; d++ {
				wd := size - absInt(d)
				fillRect(im, cx-wd, cy+d, 2*wd+1, 1, v)
			}
		default: // bars
			for b := 0; b < 3; b++ {
				fillRect(im, cx-size, cy-size+b*size, 2*size, size/2+1, v)
			}
		}
	}
	drawTexture(im, rng)
}

func fillRect(im *Image, x0, y0, w, h int, v float64) {
	for y := y0; y < y0+h && y < im.H; y++ {
		if y < 0 {
			continue
		}
		for x := x0; x < x0+w && x < im.W; x++ {
			if x < 0 {
				continue
			}
			im.Set(x, y, v)
		}
	}
}

func drawBlob(im *Image, cx, cy, sigma, amp float64) {
	r := int(3 * sigma)
	inv := 1 / (2 * sigma * sigma)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			x := int(cx) + dx
			y := int(cy) + dy
			if x < 0 || x >= im.W || y < 0 || y >= im.H {
				continue
			}
			d2 := float64(dx*dx + dy*dy)
			im.Set(x, y, im.At(x, y)+amp*math.Exp(-d2*inv))
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
