package ml

import (
	"encoding/json"
	"errors"
	"fmt"
)

// treeJSON is the serialized form of a fitted TreeRegressor. The flattened
// node array serializes directly; hyper-parameters ride along so a loaded
// model reports how it was built.
type treeJSON struct {
	Format              string     `json:"format"`
	MaxDepth            int        `json:"max_depth"`
	MinSamplesSplit     int        `json:"min_samples_split"`
	MinSamplesLeaf      int        `json:"min_samples_leaf"`
	MinImpurityDecrease float64    `json:"min_impurity_decrease"`
	NFeatures           int        `json:"n_features"`
	Nodes               []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	Feature   int     `json:"feature"`
	Threshold float64 `json:"threshold,omitempty"`
	Left      int     `json:"left,omitempty"`
	Right     int     `json:"right,omitempty"`
	Value     float64 `json:"value"`
	Samples   int     `json:"samples"`
	Impurity  float64 `json:"impurity"`
}

// treeFormat tags the serialization so future layout changes fail loudly.
const treeFormat = "mapc-tree-v1"

// MarshalJSON implements json.Marshaler for fitted trees.
func (t *TreeRegressor) MarshalJSON() ([]byte, error) {
	if !t.fitted {
		return nil, errors.New("ml: cannot serialize an unfitted tree")
	}
	out := treeJSON{
		Format:              treeFormat,
		MaxDepth:            t.MaxDepth,
		MinSamplesSplit:     t.MinSamplesSplit,
		MinSamplesLeaf:      t.MinSamplesLeaf,
		MinImpurityDecrease: t.MinImpurityDecrease,
		NFeatures:           t.nFeature,
		Nodes:               make([]nodeJSON, len(t.nodes)),
	}
	for i, n := range t.nodes {
		out.Nodes[i] = nodeJSON{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right,
			Value: n.value, Samples: n.samples, Impurity: n.impurity,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating the node graph.
func (t *TreeRegressor) UnmarshalJSON(data []byte) error {
	var in treeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("ml: decoding tree: %w", err)
	}
	if in.Format != treeFormat {
		return fmt.Errorf("ml: unsupported tree format %q", in.Format)
	}
	if in.NFeatures <= 0 {
		return errors.New("ml: serialized tree has no features")
	}
	if len(in.Nodes) == 0 {
		return errors.New("ml: serialized tree has no nodes")
	}
	nodes := make([]treeNode, len(in.Nodes))
	for i, n := range in.Nodes {
		if n.Feature >= in.NFeatures {
			return fmt.Errorf("ml: node %d splits on feature %d of %d", i, n.Feature, in.NFeatures)
		}
		if n.Feature >= 0 {
			// Internal node: children must be in-range forward
			// references (the builder appends children after parents).
			if n.Left <= 0 || n.Left >= len(in.Nodes) ||
				n.Right <= 0 || n.Right >= len(in.Nodes) {
				return fmt.Errorf("ml: node %d has invalid children (%d, %d)", i, n.Left, n.Right)
			}
			if n.Left <= i || n.Right <= i {
				return fmt.Errorf("ml: node %d has non-forward children", i)
			}
		}
		nodes[i] = treeNode{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right,
			value: n.Value, samples: n.Samples, impurity: n.Impurity,
		}
	}
	t.MaxDepth = in.MaxDepth
	t.MinSamplesSplit = in.MinSamplesSplit
	t.MinSamplesLeaf = in.MinSamplesLeaf
	t.MinImpurityDecrease = in.MinImpurityDecrease
	t.nFeature = in.NFeatures
	t.nodes = nodes
	t.fitted = true
	return nil
}
