package features

import (
	"strings"
	"testing"
)

// Table-driven coverage of the BagVector error paths introduced by the
// k-app generalization: each rejected shape must fail with a message a
// caller can act on (the serve layer surfaces these verbatim in 400s).
func TestBagVectorErrorTable(t *testing.T) {
	ok := sampleApp(1, 1)
	cases := []struct {
		name     string
		apps     []App
		fairness float64
		wantSub  string
	}{
		{"nil bag", nil, 0.5, "empty bag"},
		{"empty bag", []App{}, 0.5, "empty bag"},
		{"single member", []App{ok}, 0.5, "at least 2 applications"},
		{"nine members", make([]App, 9), 0.5, "unsupported bag size 9"},
		{"zero fairness", []App{ok, ok}, 0, "fairness"},
		{"negative fairness", []App{ok, ok}, -0.1, "fairness"},
		{"fairness above one", []App{ok, ok}, 1.0001, "fairness"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, err := BagVector(tc.apps, tc.fairness)
			if err == nil {
				t.Fatalf("BagVector accepted %s (got %d-wide vector)", tc.name, len(x))
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// Every legal size from the pair up to MaxApps builds, and the width
	// round-trips through BagSizeForWidth.
	for k := 2; k <= MaxApps; k++ {
		apps := make([]App, k)
		for i := range apps {
			apps[i] = ok
		}
		x, err := BagVector(apps, 0.75)
		if err != nil {
			t.Fatalf("k=%d rejected: %v", k, err)
		}
		if len(x) != k*PerApp+1 {
			t.Fatalf("k=%d width %d, want %d", k, len(x), k*PerApp+1)
		}
		got, err := BagSizeForWidth(len(x))
		if err != nil || got != k {
			t.Errorf("BagSizeForWidth(%d) = %d, %v; want %d", len(x), got, err, k)
		}
	}
}

// BagSizeForWidth must reject every width that is not exactly
// nApps*PerApp+1 for nApps in 1..MaxApps — a model persisted with a
// mismatched scheme width must be refused, not misread.
func TestBagSizeForWidthTable(t *testing.T) {
	bad := []struct {
		width   int
		wantSub string
	}{
		{0, "not a replicated bag vector"},
		{1, "not a replicated bag vector"},            // fairness alone, no apps
		{PerApp, "not a replicated bag vector"},       // missing fairness column
		{2*PerApp + 2, "not a replicated bag vector"}, // one column too many
		{2*PerApp - 1 + 1, "not a replicated bag vector"},
		{9*PerApp + 1, "beyond the supported maximum"},
		{-21, "not a replicated bag vector"},
	}
	for _, tc := range bad {
		if n, err := BagSizeForWidth(tc.width); err == nil {
			t.Errorf("width %d accepted as %d-app bag", tc.width, n)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("width %d: error %q does not mention %q", tc.width, err, tc.wantSub)
		}
	}
	for n := 1; n <= MaxApps; n++ {
		got, err := BagSizeForWidth(n*PerApp + 1)
		if err != nil || got != n {
			t.Errorf("BagSizeForWidth(%d) = %d, %v; want %d", n*PerApp+1, got, err, n)
		}
	}
}

// Names at every k: suffix progression _a.._h, one fairness column, and
// agreement between Names and the vector BagVector actually emits.
func TestNamesKSweep(t *testing.T) {
	for k := 1; k <= MaxApps; k++ {
		names, err := Names(k)
		if err != nil {
			t.Fatalf("Names(%d): %v", k, err)
		}
		if len(names) != k*PerApp+1 {
			t.Fatalf("Names(%d) width %d, want %d", k, len(names), k*PerApp+1)
		}
		for a := 0; a < k; a++ {
			want := "cpu_time" + appSuffixes[a]
			if names[a*PerApp] != want {
				t.Errorf("Names(%d) block %d starts %q, want %q", k, a, names[a*PerApp], want)
			}
		}
		if names[len(names)-1] != KindFairness {
			t.Errorf("Names(%d) last column %q", k, names[len(names)-1])
		}
		// Every column maps back to a suffix-free kind.
		kinds := map[string]bool{}
		for _, kn := range KindNames() {
			kinds[kn] = true
		}
		for _, n := range names {
			if !kinds[Kind(n)] {
				t.Errorf("Names(%d): column %q has unknown kind %q", k, n, Kind(n))
			}
		}
	}
}
