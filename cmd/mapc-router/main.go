// Command mapc-router fronts a fleet of mapc-serve replicas with a
// consistent-hash router: every permutation of the same application bag
// routes to the same replica (and therefore the same feature-cache entry),
// so the tier's aggregate cache grows linearly with replica count. Health
// probes eject dead replicas and re-admit them when they recover; requests
// fail over to ring neighbours in the meantime.
//
// The router holds no model: responses come verbatim from the replicas,
// so a router in front of one replica is bit-identical to querying the
// replica directly.
//
// Endpoints mirror mapc-serve: POST /v1/predict, GET /healthz, GET /metrics.
//
// Usage:
//
//	mapc-router -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	mapc-router -addr :8080 -replicas ... -probe-interval 2s -timeout 60s
//	mapc-router -replicas ... -attempt-timeout 2s -retry-budget 16 -hedge-delay 50ms
//	mapc-router -replicas ... -chaos 'blackhole|net.127.0.0.1:18082|*'   # CI fault drills
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mapc/internal/cluster"
	"mapc/internal/faultinject"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health probe period")
	probeTimeout := flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe deadline")
	failAfter := flag.Int("fail-after", cluster.DefaultFailAfter, "consecutive probe failures before ejection")
	reviveAfter := flag.Int("revive-after", cluster.DefaultReviveAfter, "consecutive probe successes before re-admission")
	timeout := flag.Duration("timeout", cluster.DefaultRouterTimeout, "per-request forwarding deadline")
	attemptTimeout := flag.Duration("attempt-timeout", cluster.DefaultAttemptTimeout, "per-forward deadline to a single replica; failover happens at this boundary, not -timeout")
	retryBudget := flag.Int("retry-budget", cluster.DefaultRetryBudget, "failed forward attempts (beyond each group's first try) one client request may spend before 502")
	retryBase := flag.Duration("retry-base", cluster.DefaultRetryBaseDelay, "base delay of the jittered exponential backoff between retry rounds")
	retryMax := flag.Duration("retry-max", cluster.DefaultRetryMaxDelay, "backoff delay cap")
	hedgeDelay := flag.Duration("hedge-delay", 0, "tail-latency hedge for single-bag requests: race a second replica after this delay (0 = off; each hedge spends one retry budget unit)")
	breakerCooldown := flag.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown, "how long an opened per-replica circuit breaker rejects traffic before trialling one request")
	chaos := flag.String("chaos", "", "fault-injection plan for drills: comma-separated kind|site|index[|opt=val;...] specs (site e.g. net.127.0.0.1:18082) installed on the forward and probe clients; empty = off")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget for in-flight requests")
	flag.Parse()

	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (comma-separated base URLs)"))
	}
	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, strings.TrimRight(r, "/"))
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mapc-router: "+format+"\n", args...)
	}

	// With -chaos, both the forward path and the health probes go through
	// the same fault-injecting transport: a black-holed replica must look
	// dark to the prober too, or the drill would test failover against a
	// pool that still believes the replica is healthy.
	var forwardClient, probeClient *http.Client
	if *chaos != "" {
		plan, err := faultinject.ParsePlan(*chaos)
		if err != nil {
			fatal(err)
		}
		forwardClient = &http.Client{Transport: faultinject.NewTransport(http.DefaultTransport, plan)}
		probeClient = &http.Client{Transport: faultinject.NewTransport(http.DefaultTransport, plan)}
		logf("CHAOS: injecting %d fault spec(s) into forward and probe clients", len(plan.Faults))
	}

	pool, err := cluster.NewPool(cluster.PoolConfig{
		Replicas:        urls,
		VirtualNodes:    *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailAfter:       *failAfter,
		ReviveAfter:     *reviveAfter,
		BreakerCooldown: *breakerCooldown,
		Client:          probeClient,
		Logf:            logf,
	})
	if err != nil {
		fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Pool:           pool,
		Client:         forwardClient,
		Timeout:        *timeout,
		AttemptTimeout: *attemptTimeout,
		RetryBudget:    *retryBudget,
		RetryBaseDelay: *retryBase,
		RetryMaxDelay:  *retryMax,
		HedgeDelay:     *hedgeDelay,
		Logf:           logf,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go pool.Start(ctx)

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logf("listening on %s, routing to %d replica(s) (probe every %v, eject after %d, revive after %d, attempt %v, retry budget %d, hedge %v)",
		*addr, len(urls), *probeInterval, *failAfter, *reviveAfter, *attemptTimeout, *retryBudget, *hedgeDelay)

	select {
	case err := <-errc:
		fatal(err) // listener failed before any signal
	case <-ctx.Done():
		logf("signal received; draining in-flight requests (up to %v)...", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		logf("drained; bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-router:", err)
	os.Exit(1)
}
