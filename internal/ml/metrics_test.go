package ml

import (
	"math"
	"testing"
)

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestRelativeErrors(t *testing.T) {
	errs, err := RelativeErrors([]float64{10, 20}, []float64{11, 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(errs[0]-10) > 1e-12 || math.Abs(errs[1]-25) > 1e-12 {
		t.Fatalf("relative errors %v", errs)
	}
	if _, err := RelativeErrors([]float64{0}, []float64{1}); err == nil {
		t.Error("zero truth accepted")
	}
}

func TestMeanRelativeError(t *testing.T) {
	got, err := MeanRelativeError([]float64{10, 20}, []float64{11, 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("mean relative error %v", got)
	}
}

func TestMetricErrors(t *testing.T) {
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := MAE([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched MAE accepted")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2,4])")
	}
}
