// Command mapc-serve runs the HTTP prediction service: it warm-loads a
// persisted model (mapc-train -o) or trains one at startup, then answers
// GPU bag-time queries until SIGTERM/SIGINT, draining in-flight requests on
// shutdown.
//
// Endpoints:
//
//	POST /v1/predict  {"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}
//	                  or {"bag":[{"benchmark":…,"batch":…},…]}          (k-app bag)
//	                  or {"bags":[{"a":…,"b":…},{"members":[…]},…]}     (batched, mixed forms)
//	GET  /healthz
//	GET  /metrics
//
// Every bag in a request must carry exactly as many applications as the
// loaded model was trained for (-k at train time); other sizes get a 400.
//
// Usage:
//
//	mapc-serve                              # train full-scheme model, :8080
//	mapc-serve -model model.json            # warm-load; scheme must match -scheme
//	mapc-serve -k 4                         # train and serve 4-app bags
//	mapc-serve -benchmarks sift,surf -batches 20,40   # fast-start subset
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/phasesum"
	"mapc/internal/profiling"
	"mapc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "load a saved model (mapc-train -o) instead of training at startup")
	schemeName := flag.String("scheme", "full", "feature scheme: insmix, insmix+cputime, insmix+cputime+fairness, full; a loaded model must match")
	k := flag.Int("k", 2, "bag size for startup training and served predictions (ignored when -model is set: the model pins its own bag size)")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial)")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "concurrent /v1/predict requests admitted before shedding with 503")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "maximum bags per request")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget for in-flight requests")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset for startup training (empty = full Table-II suite)")
	batches := flag.String("batches", "", "comma-separated batch sizes for startup training (empty = 20,40,80,160,320)")
	pprofAddr := flag.String("pprof", "", "opt-in net/http/pprof listener on a separate loopback address (e.g. 127.0.0.1:6060); empty = disabled")
	featureCacheMB := flag.Int("feature-cache-mb", serve.DefaultFeatureCacheMB, "cross-request feature cache budget in MiB (LRU past it; cannot be disabled)")
	snapshotPath := flag.String("snapshot", "", "feature-cache snapshot file: loaded at boot when present, saved atomically on drain")
	warmFrom := flag.String("warm-from", "", "peer replica base URL to pull a cache snapshot from at boot (e.g. http://127.0.0.1:8081)")
	peers := flag.String("peers", "", "comma-separated peer base URLs consulted on cache misses before simulating locally")
	fidelity := flag.String("fidelity", "exact", "co-run fidelity tier for training and served measurements: exact | mixed | fast (isolated runs stay exact; /metrics reports the tier and per-kind co-run counts)")
	shares := flag.String("shares", "", "MPS share profile for every shared GPU co-run: k slash- or comma-separated relative weights, e.g. 0.7/0.3 (empty = equal split); share-qualifies the feature cache and snapshots")
	brownout := flag.Float64("brownout-watermark", serve.DefaultBrownoutWatermark, "in-flight fraction of -max-inflight past which new requests are answered from the fast fidelity tier and marked degraded; 0 disables brownout (shed-only admission)")
	maxDegraded := flag.Int("max-degraded-inflight", 0, "extra admission slots for degraded answers once the exact pool is full; 0 = 4x -max-inflight")
	flag.Parse()

	if *pprofAddr != "" {
		ln, err := profiling.ListenAndServe(*pprofAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "mapc-serve: pprof:", err)
		})
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "mapc-serve: pprof listening on http://%s/debug/pprof/ (loopback only)\n", ln.Addr())
	}

	scheme, ok := core.SchemeByName(*schemeName)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	cfg.K = *k
	fid, err := phasesum.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	cfg.Fidelity = fid
	if *shares != "" {
		cfg.Shares, err = dataset.ParseShares(*shares)
		if err != nil {
			fatal(fmt.Errorf("parsing -shares: %w", err))
		}
	}
	if *benchmarks != "" {
		cfg.Benchmarks = splitList(*benchmarks)
	}
	if *batches != "" {
		bs, err := parseInts(*batches)
		if err != nil {
			fatal(fmt.Errorf("parsing -batches: %w", err))
		}
		cfg.BatchSizes = bs
		if len(bs) <= 2 {
			cfg.MixedPairs = 0 // mixed-batch pairs need >= 3 sizes
		}
	}
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}

	var model *core.Predictor
	if *modelPath != "" {
		model, err = core.LoadFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		// Refuse a model trained under a different scheme loudly: it would
		// accept the same full-width vectors yet answer a different
		// question.
		if err := model.RequireScheme(scheme); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mapc-serve: loaded model %s (scheme %s, %d features, trained on %d points)\n",
			*modelPath, model.Scheme().Name, model.NumFeatures(), model.TrainedOnPoints())
	} else {
		fmt.Fprintf(os.Stderr, "mapc-serve: no -model; generating training corpus (%d workers)...\n", cfg.EffectiveWorkers())
		t0 := time.Now()
		corpus, err := gen.Generate()
		if err != nil {
			fatal(err)
		}
		model, err = core.Train(corpus, scheme, core.DefaultTreeParams())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mapc-serve: trained scheme-%s model on %d points in %v\n",
			scheme.Name, model.TrainedOnPoints(), time.Since(t0).Round(time.Millisecond))
	}

	srv, err := serve.New(serve.Config{
		Model:               model,
		Generator:           gen,
		MaxInFlight:         *maxInFlight,
		MaxBatch:            *maxBatch,
		RequestTimeout:      *timeout,
		Workers:             *workers,
		FeatureCacheMB:      *featureCacheMB,
		BrownoutWatermark:   *brownout,
		MaxDegradedInFlight: *maxDegraded,
	})
	if err != nil {
		fatal(err)
	}

	// Warm start, cheapest source first: a local snapshot survives restarts
	// without any network; -warm-from pulls a serving peer's cache at join;
	// -peers keeps filling misses from siblings while running.
	if *snapshotPath != "" {
		switch n, err := srv.LoadSnapshotFile(*snapshotPath); {
		case err == nil:
			fmt.Fprintf(os.Stderr, "mapc-serve: warm-started %d cached bags from %s\n", n, *snapshotPath)
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "mapc-serve: no snapshot at %s yet; starting cold\n", *snapshotPath)
		default:
			fatal(fmt.Errorf("loading snapshot %s: %w", *snapshotPath, err))
		}
	}
	if *warmFrom != "" {
		warmCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n, err := srv.WarmFromPeer(warmCtx, nil, *warmFrom)
		cancel()
		if err != nil {
			// A missing peer must not block boot: the replica serves cold.
			fmt.Fprintf(os.Stderr, "mapc-serve: warm-from %s failed (%v); starting cold\n", *warmFrom, err)
		} else {
			fmt.Fprintf(os.Stderr, "mapc-serve: warm-started %d cached bags from peer %s\n", n, *warmFrom)
		}
	}
	if *peers != "" {
		peerList := splitList(*peers)
		srv.SetPeerFill(nil, peerList, 0)
		fmt.Fprintf(os.Stderr, "mapc-serve: peer fill enabled against %d peer(s)\n", len(peerList))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	brownoutDesc := "off"
	if *brownout > 0 {
		brownoutDesc = fmt.Sprintf("%.2f", *brownout)
	}
	fmt.Fprintf(os.Stderr, "mapc-serve: listening on %s (scheme %s, max-inflight %d, timeout %v, brownout %s)\n",
		*addr, model.Scheme().Name, *maxInFlight, *timeout, brownoutDesc)

	select {
	case err := <-errc:
		fatal(err) // listener failed before any signal
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "mapc-serve: signal received; draining in-flight requests (up to %v)...\n", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		if *snapshotPath != "" {
			if err := srv.SaveSnapshotFile(*snapshotPath); err != nil {
				fmt.Fprintf(os.Stderr, "mapc-serve: saving snapshot: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "mapc-serve: saved %d cached bags to %s\n", srv.CacheLen(), *snapshotPath)
			}
		}
		fmt.Fprintln(os.Stderr, "mapc-serve: drained; bye")
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-serve:", err)
	os.Exit(1)
}
