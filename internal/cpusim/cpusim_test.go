package cpusim

import (
	"testing"

	"mapc/internal/isa"
	"mapc/internal/trace"
)

// synthWorkload builds a deterministic workload with the given per-phase
// instruction volume and memory behaviour.
func synthWorkload(name string, instr uint64, memFrac float64, pattern trace.Pattern, footprint int64, par int) *trace.Workload {
	var counts isa.Counts
	mem := uint64(float64(instr) * memFrac)
	counts.Add(isa.MEM, mem)
	counts.Add(isa.ALU, (instr-mem)/2)
	counts.Add(isa.FP, instr-mem-(instr-mem)/2)
	return &trace.Workload{
		Benchmark: name,
		BatchSize: 1,
		Phases: []trace.Phase{{
			Name: "main", Counts: counts, Footprint: footprint,
			Pattern: pattern, StrideBytes: 64, Reuse: 0.2,
			Parallelism: par, VectorWidth: 1,
		}},
	}
}

func computeBound(name string) *trace.Workload {
	return synthWorkload(name, 50_000_000, 0.05, trace.Sequential, 64<<10, 1<<20)
}

func memoryBound(name string) *trace.Workload {
	return synthWorkload(name, 50_000_000, 0.6, trace.Random, 256<<20, 1<<20)
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.L1Bytes = 0 },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.MLP = 0 },
		func(c *Config) { c.Throughput[isa.ALU] = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, nil); err == nil {
		t.Error("empty app list accepted")
	}
	if _, err := Run(cfg, []App{{Workload: nil, Threads: 1}}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(cfg, []App{{Workload: computeBound("x"), Threads: 0}}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestSingleRunBasics(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, []App{{Workload: computeBound("a"), Threads: 8}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.TimeSec <= 0 || r.Cycles <= 0 {
		t.Fatalf("non-positive time: %+v", r)
	}
	if r.IPC <= 0 {
		t.Fatalf("non-positive IPC: %+v", r)
	}
	if r.Instructions != computeBound("a").Instructions() {
		t.Errorf("instructions %d", r.Instructions)
	}
	if p := r.Performance(); p <= 0 {
		t.Errorf("performance %v", p)
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	cfg := DefaultConfig()
	small := synthWorkload("s", 10_000_000, 0.3, trace.Sequential, 1<<20, 1<<20)
	big := synthWorkload("b", 100_000_000, 0.3, trace.Sequential, 1<<20, 1<<20)
	rs, err := Run(cfg, []App{{Workload: small, Threads: 8}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(cfg, []App{{Workload: big, Threads: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if rb[0].TimeSec <= rs[0].TimeSec {
		t.Fatalf("10x instructions not slower: %v vs %v", rb[0].TimeSec, rs[0].TimeSec)
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	cfg := DefaultConfig()
	w := computeBound("p")
	r1, err := Run(cfg, []App{{Workload: w.Clone(), Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(cfg, []App{{Workload: w.Clone(), Threads: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if r8[0].TimeSec >= r1[0].TimeSec {
		t.Fatalf("8 threads (%v) not faster than 1 (%v)", r8[0].TimeSec, r1[0].TimeSec)
	}
}

func TestParallelismCapsThreads(t *testing.T) {
	cfg := DefaultConfig()
	serial := synthWorkload("serial", 50_000_000, 0.1, trace.Sequential, 1<<20, 1)
	r1, err := Run(cfg, []App{{Workload: serial.Clone(), Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(cfg, []App{{Workload: serial.Clone(), Threads: 16}})
	if err != nil {
		t.Fatal(err)
	}
	// A serial workload cannot speed up with threads.
	if r16[0].TimeSec < r1[0].TimeSec*0.99 {
		t.Fatalf("serial workload sped up with threads: %v -> %v", r1[0].TimeSec, r16[0].TimeSec)
	}
}

func TestCoRunNeverFasterThanAlone(t *testing.T) {
	cfg := DefaultConfig()
	for _, mk := range []func(string) *trace.Workload{computeBound, memoryBound} {
		alone, err := Run(cfg, []App{{Workload: mk("a"), Threads: 16}})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Run(cfg, []App{
			{Workload: mk("a"), Threads: 16},
			{Workload: mk("b"), Threads: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		if shared[0].TimeSec < alone[0].TimeSec*0.999 {
			t.Errorf("co-run completion (%v) beat isolated run (%v)",
				shared[0].TimeSec, alone[0].TimeSec)
		}
	}
}

func TestMemoryContentionSlowsMemoryBound(t *testing.T) {
	cfg := DefaultConfig()
	alone, err := Run(cfg, []App{{Workload: memoryBound("m1"), Threads: 16}})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(cfg, []App{
		{Workload: memoryBound("m1"), Threads: 16},
		{Workload: memoryBound("m2"), Threads: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].TimeSec <= alone[0].TimeSec*1.02 {
		t.Fatalf("two memory-bound co-runners show no contention: %v vs %v",
			shared[0].TimeSec, alone[0].TimeSec)
	}
}

func TestSharedIPCNotHigherThanAlone(t *testing.T) {
	cfg := DefaultConfig()
	alone, err := Run(cfg, []App{{Workload: memoryBound("m"), Threads: 16}})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(cfg, []App{
		{Workload: memoryBound("m"), Threads: 16},
		{Workload: memoryBound("n"), Threads: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].IPC > alone[0].IPC*1.001 {
		t.Fatalf("shared IPC %v exceeds isolated IPC %v", shared[0].IPC, alone[0].IPC)
	}
}

func TestPhasedCoRunAsymmetry(t *testing.T) {
	// A short job co-run with a long one: the long job's completion must
	// be below twice its isolated time (it runs alone after the short
	// job exits), and the short job must finish well before the long one.
	cfg := DefaultConfig()
	short := synthWorkload("short", 5_000_000, 0.5, trace.Random, 64<<20, 1<<20)
	long := synthWorkload("long", 200_000_000, 0.5, trace.Random, 64<<20, 1<<20)
	aloneLong, err := Run(cfg, []App{{Workload: long.Clone(), Threads: 16}})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(cfg, []App{
		{Workload: short.Clone(), Threads: 16},
		{Workload: long.Clone(), Threads: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].TimeSec >= shared[1].TimeSec {
		t.Fatalf("short job (%v) did not finish before long job (%v)",
			shared[0].TimeSec, shared[1].TimeSec)
	}
	if shared[1].TimeSec > aloneLong[0].TimeSec*1.5 {
		t.Fatalf("long job slowed %vx by a brief co-runner",
			shared[1].TimeSec/aloneLong[0].TimeSec)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	apps := []App{
		{Workload: memoryBound("a"), Threads: 16},
		{Workload: computeBound("b"), Threads: 16},
	}
	r1, err := Run(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].TimeSec != r2[i].TimeSec || r1[i].IPC != r2[i].IPC {
			t.Fatalf("run %d not deterministic", i)
		}
	}
}

func TestPhaseBreakdown(t *testing.T) {
	cfg := DefaultConfig()
	apps := []App{{Workload: memoryBound("m"), Threads: 16}}
	bd, err := PhaseBreakdown(cfg, apps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != len(apps[0].Workload.Phases) {
		t.Fatalf("breakdown phases %d", len(bd))
	}
	for i, p := range bd {
		if p.TotalCycles <= 0 {
			t.Errorf("phase %d total cycles %v", i, p.TotalCycles)
		}
		if p.EffectiveThreads < 1 || p.EffectiveThreads > 16 {
			t.Errorf("phase %d effective threads %v", i, p.EffectiveThreads)
		}
		if p.L1MissRate < 0 || p.L1MissRate > 1 ||
			p.LLCMissRate < 0 || p.LLCMissRate > 1 {
			t.Errorf("phase %d miss rates out of range: %+v", i, p)
		}
	}
	if _, err := PhaseBreakdown(cfg, apps, 3); err == nil {
		t.Error("out-of-range app accepted")
	}
}

func TestPrefetchingSpeedsStreamingWorkloads(t *testing.T) {
	// A sequential streaming workload must get faster with the stride
	// prefetcher enabled; a random-access one must not benefit much.
	stream := synthWorkload("stream", 50_000_000, 0.5, trace.Sequential, 128<<20, 1<<20)
	random := synthWorkload("rand", 50_000_000, 0.5, trace.Random, 128<<20, 1<<20)
	run := func(w *trace.Workload, degree int) float64 {
		cfg := DefaultConfig()
		cfg.PrefetchDegree = degree
		r, err := Run(cfg, []App{{Workload: w.Clone(), Threads: 16}})
		if err != nil {
			t.Fatal(err)
		}
		return r[0].TimeSec
	}
	sOff, sOn := run(stream, 0), run(stream, 4)
	if sOn >= sOff*0.95 {
		t.Errorf("prefetching did not speed a streaming workload: %v -> %v", sOff, sOn)
	}
	rOff, rOn := run(random, 0), run(random, 4)
	if rOn < rOff*0.8 {
		t.Errorf("random workload implausibly sped up by prefetching: %v -> %v", rOff, rOn)
	}
}
