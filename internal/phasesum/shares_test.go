package phasesum

import (
	"math"
	"testing"
)

func TestShareConfidence(t *testing.T) {
	cases := []struct {
		name   string
		shares []float64
		want   float64
	}{
		{"all above one SM", []float64{20, 20}, 1},
		{"exactly one SM", []float64{39, 1}, 1},
		{"half an SM", []float64{39.5, 0.5}, 0.5},
		{"thinnest client bounds", []float64{30, 9.6, 0.4}, 0.4},
		{"zero share refused", []float64{40, 0}, 0},
		{"negative share refused", []float64{41, -1}, 0},
		{"empty", nil, 1},
	}
	for _, c := range cases {
		if got := ShareConfidence(c.shares); got != c.want {
			t.Errorf("%s: ShareConfidence(%v) = %v, want %v", c.name, c.shares, got, c.want)
		}
	}
}

func TestBandwidthBoundFrac(t *testing.T) {
	// Two clients demanding 100+100 GB/s against a 320 GB/s device: fits,
	// so nothing is bandwidth-bound.
	fits := []BandwidthDemand{{Bytes: 100e9, Sec: 1}, {Bytes: 100e9, Sec: 1}}
	if got := BandwidthBoundFrac(320e9, fits); got != 0 {
		t.Errorf("unsaturated bag: boundFrac = %v, want 0", got)
	}
	// 640 GB/s demanded against 320: exactly half the demanded rate is
	// beyond the device.
	sat := []BandwidthDemand{{Bytes: 320e9, Sec: 1}, {Bytes: 640e9, Sec: 2}}
	if got := BandwidthBoundFrac(320e9, sat); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("2x-saturated bag: boundFrac = %v, want 0.5", got)
	}
	// Zero-time clients contribute no demand rather than dividing by zero.
	degenerate := []BandwidthDemand{{Bytes: 1e9, Sec: 0}}
	if got := BandwidthBoundFrac(320e9, degenerate); got != 0 {
		t.Errorf("zero-time client: boundFrac = %v, want 0", got)
	}
}

func TestBandwidthConfidence(t *testing.T) {
	// Unbound bags keep their confidence; fully bound bags are forgiven
	// entirely; the blend is monotone in between.
	if got := BandwidthConfidence(0.6, 0); got != 0.6 {
		t.Errorf("boundFrac 0: conf = %v, want 0.6", got)
	}
	if got := BandwidthConfidence(0.6, 1); got != 1 {
		t.Errorf("boundFrac 1: conf = %v, want 1", got)
	}
	if got := BandwidthConfidence(0.6, 0.5); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("boundFrac 0.5: conf = %v, want 0.8", got)
	}
	prev := 0.0
	for f := 0.0; f <= 1.0; f += 0.125 {
		c := BandwidthConfidence(0.5, f)
		if c < prev {
			t.Fatalf("BandwidthConfidence not monotone in boundFrac at %v", f)
		}
		prev = c
	}
}
