package cpusim

import (
	"reflect"
	"testing"

	"mapc/internal/simcache"
)

// TestRunTreatsWorkloadsAsReadOnly enforces the read-only contract
// documented on App.Workload: Run and RunMemo never mutate their input
// workloads, so dataset.Generator may pass its cached workloads directly
// (no per-point clones). Checked two ways — the full-field Fingerprint
// digest and a structural DeepEqual against a pre-run Clone — across
// isolated runs, shared runs, and memoized runs under eviction pressure.
func TestRunTreatsWorkloadsAsReadOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 2 // exercise the prefetcher paths too

	wa, wb := memoryBound("a"), computeBound("b")
	fpA, fpB := wa.Fingerprint(), wb.Fingerprint()
	cloneA, cloneB := wa.Clone(), wb.Clone()

	check := func(stage string) {
		t.Helper()
		if wa.Fingerprint() != fpA || wb.Fingerprint() != fpB {
			t.Fatalf("%s: workload fingerprint changed; the simulator mutated its input", stage)
		}
		if !reflect.DeepEqual(wa, cloneA) || !reflect.DeepEqual(wb, cloneB) {
			t.Fatalf("%s: workload structure changed; the simulator mutated its input", stage)
		}
	}

	if _, err := Run(cfg, []App{{Workload: wa, Threads: 8}}); err != nil {
		t.Fatal(err)
	}
	check("isolated Run")

	if _, err := Run(cfg, []App{{Workload: wa, Threads: 8}, {Workload: wb, Threads: 8}}); err != nil {
		t.Fatal(err)
	}
	check("shared Run")

	// Memoized runs, including a tiny budget that forces evictions and
	// therefore recomputation through every cached code path.
	for _, budget := range []int64{64 << 20, 1 << 12} {
		memo := simcache.MustNew(budget)
		for i := 0; i < 3; i++ {
			if _, err := RunMemo(cfg, memo, []App{{Workload: wa, Threads: 8}}); err != nil {
				t.Fatal(err)
			}
			if _, err := RunMemo(cfg, memo, []App{{Workload: wa, Threads: 8}, {Workload: wb, Threads: 8}}); err != nil {
				t.Fatal(err)
			}
		}
		check("RunMemo")
	}
}
