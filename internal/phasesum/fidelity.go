package phasesum

import "fmt"

// Fidelity selects how contended co-runs are computed throughout the
// pipeline (dataset generation, serving, every command's -fidelity flag):
//
//   - Exact: every shared structure is simulated reference-by-reference —
//     the bit-identical legacy path, pinned by the golden corpus hashes.
//   - Fast: contended runs are estimated in closed form from phase
//     summaries everywhere; isolated runs stay exact (they are the
//     summaries' source and the delta-correction anchors).
//   - Mixed: analytic where the model's self-reported confidence clears
//     DefaultMinConfidence, exact fallback elsewhere.
//
// The zero value "" means Exact, so zero-valued configs keep the legacy
// behaviour.
type Fidelity string

const (
	Exact Fidelity = "exact"
	Mixed Fidelity = "mixed"
	Fast  Fidelity = "fast"
)

// DefaultMinConfidence is the confidence floor below which the mixed tier
// falls back to exact simulation. Calibrated against the differential
// oracle on the paper corpus: estimates above it stay within the gated
// error bounds, and the satellite skew/thrash cases fall below it.
const DefaultMinConfidence = 0.75

// ParseFidelity validates a -fidelity flag value; "" selects Exact.
func ParseFidelity(s string) (Fidelity, error) {
	switch Fidelity(s) {
	case "", Exact:
		return Exact, nil
	case Mixed:
		return Mixed, nil
	case Fast:
		return Fast, nil
	}
	return "", fmt.Errorf("phasesum: unknown fidelity %q (want exact, mixed or fast)", s)
}

// Effective resolves the zero value to Exact.
func (f Fidelity) Effective() Fidelity {
	if f == "" {
		return Exact
	}
	return f
}

// Valid reports whether f is one of the three tiers (or the zero value).
func (f Fidelity) Valid() bool {
	switch f {
	case "", Exact, Mixed, Fast:
		return true
	}
	return false
}

// Analytic reports whether this tier ever uses the closed-form model.
func (f Fidelity) Analytic() bool { return f == Mixed || f == Fast }

func (f Fidelity) String() string { return string(f.Effective()) }
