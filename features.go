package mapc

import (
	"mapc/internal/features"
	"mapc/internal/vision"
)

// FeatureKinds returns the Table-IV feature-kind vocabulary used to build
// custom schemes: "cpu_time", "gpu_time", the eight instruction-mix
// categories ("sse", "alu", "mem", "fp", "stack", "string", "shift",
// "control"), and "fairness".
func FeatureKinds() []string { return features.KindNames() }

// FeatureNames returns the full replicated feature-column names for a bag
// of nApps applications, matching Corpus.FeatureNames for nApps == 2.
func FeatureNames(nApps int) ([]string, error) { return features.Names(nApps) }

func benchmarkNames() []string { return vision.Names() }
