package vision

import (
	"math"
	"testing"
	"testing/quick"

	"mapc/internal/trace"
	"mapc/internal/xrand"
)

func constantImage(w, h int, v float64) *Image {
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = v
	}
	return im
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.0, 1.6, 3.2} {
		k := GaussianKernel1D(sigma)
		if len(k)%2 == 0 {
			t.Errorf("sigma %v: even kernel length %d", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("sigma %v: kernel sums to %v", sigma, sum)
		}
		// Symmetry.
		for i := range k {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Errorf("sigma %v: kernel asymmetric at %d", sigma, i)
			}
		}
	}
	if k := GaussianKernel1D(0); len(k) != 1 || k[0] != 1 {
		t.Errorf("sigma 0 kernel = %v", k)
	}
}

func TestConvolvePreservesConstant(t *testing.T) {
	im := constantImage(16, 16, 42)
	out := ConvolveSeparable(im, GaussianKernel1D(1.5), nil)
	for i, v := range out.Pix {
		if math.Abs(v-42) > 1e-9 {
			t.Fatalf("pixel %d = %v after blurring constant 42", i, v)
		}
	}
}

func TestConvolveSmooths(t *testing.T) {
	// An impulse must spread: centre decreases, neighbours increase.
	im := NewImage(9, 9)
	im.Set(4, 4, 100)
	out := ConvolveSeparable(im, GaussianKernel1D(1.0), nil)
	if out.At(4, 4) >= 100 {
		t.Error("impulse centre did not decrease")
	}
	if out.At(3, 4) <= 0 {
		t.Error("impulse did not spread to neighbour")
	}
	// Mass conservation away from borders (impulse is interior).
	var sum float64
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("blur mass %v, want 100", sum)
	}
}

func TestSobelZeroOnConstant(t *testing.T) {
	gx, gy := Sobel(constantImage(8, 8, 7), nil)
	for i := range gx.Pix {
		if gx.Pix[i] != 0 || gy.Pix[i] != 0 {
			t.Fatalf("gradient %d nonzero on constant image", i)
		}
	}
}

func TestSobelDetectsVerticalEdge(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			im.Set(x, y, 100)
		}
	}
	gx, gy := Sobel(im, nil)
	if gx.At(4, 4) <= 0 {
		t.Error("vertical edge not detected in gx")
	}
	if math.Abs(gy.At(4, 4)) > 1e-9 {
		t.Error("spurious gy response on vertical edge")
	}
}

func TestDownsampleHalves(t *testing.T) {
	im := constantImage(10, 8, 3)
	out := Downsample2x(im, nil)
	if out.W != 5 || out.H != 4 {
		t.Fatalf("downsampled size %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("averaged constant = %v", v)
		}
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		im := NewImage(13, 9)
		for i := range im.Pix {
			im.Pix[i] = rng.Float64() * 255
		}
		it := NewIntegral(im, nil)
		for trial := 0; trial < 20; trial++ {
			x0 := rng.Intn(im.W)
			y0 := rng.Intn(im.H)
			x1 := x0 + 1 + rng.Intn(im.W-x0)
			y1 := y0 + 1 + rng.Intn(im.H-y0)
			var want float64
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					want += im.At(x, y)
				}
			}
			if math.Abs(it.BoxSum(x0, y0, x1, y1)-want) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestL2NormalizeUnitNorm(t *testing.T) {
	v := []float64{3, 4, 0, 0}
	L2Normalize(v, nil)
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if math.Abs(ss-1) > 1e-9 {
		t.Fatalf("norm² = %v", ss)
	}
	// Zero vector must not NaN.
	z := []float64{0, 0}
	L2Normalize(z, nil)
	for _, x := range z {
		if math.IsNaN(x) {
			t.Fatal("NaN from zero-vector normalize")
		}
	}
}

func TestDist2AndDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if got := Dist2(a, b, nil); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := Dot(a, b, nil); got != 25 {
		t.Errorf("Dot = %v", got)
	}
}

func TestHammingDistanceProperties(t *testing.T) {
	if err := quick.Check(func(a, b [4]uint64) bool {
		as, bs := a[:], b[:]
		dab := HammingDistance(as, bs, nil)
		dba := HammingDistance(bs, as, nil)
		if dab != dba {
			return false // symmetry
		}
		if HammingDistance(as, as, nil) != 0 {
			return false // identity
		}
		return dab >= 0 && dab <= 256
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0xFF: 8, ^uint64(0): 64, 1 << 63: 1}
	for in, want := range cases {
		if got := popcount(in); got != want {
			t.Errorf("popcount(%x) = %d, want %d", in, got, want)
		}
	}
}

func TestInstrumentationCountsPositive(t *testing.T) {
	// Every primitive must report work when run under a recorder.
	rec := trace.NewRecorder("prim", 1)
	rec.BeginPhase("all", 1<<16, trace.PhaseOpts{Parallelism: 64, VectorWidth: 1})
	im := SynthesizeImage(SceneTextured, 32, 32, 1)
	ConvolveSeparable(im, GaussianKernel1D(1), rec)
	Sobel(im, rec)
	Downsample2x(im, rec)
	Subtract(im, im, rec)
	NewIntegral(im, rec)
	CountBoxSum(rec, 10)
	L2Normalize([]float64{1, 2}, rec)
	Dist2([]float64{1}, []float64{2}, rec)
	Dot([]float64{1}, []float64{2}, rec)
	HammingDistance([]uint64{1}, []uint64{2}, rec)
	rec.EndPhase()
	w, err := rec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Instructions() == 0 {
		t.Fatal("no instructions recorded by primitives")
	}
}
