// Package memsim provides the microarchitectural memory-system components
// shared by the CPU and GPU simulators: set-associative caches with LRU
// replacement, a TLB with flush support, and a synthetic address-stream
// generator that turns a trace.Phase's pattern/footprint/reuse descriptor
// into a concrete reference stream.
//
// These components replace the paper's physical memory hierarchies (Xeon
// LLC, T4 L2/TLB). Contention between concurrent applications emerges the
// same way it does in hardware: interleaved streams from different sources
// evict each other's lines from shared structures.
//
// The cache and TLB are the hottest code in the system — every corpus
// point, LOOCV fold and serving-cache miss funnels millions of references
// through them — so both are engineered for throughput under a strict
// bit-identity contract with their original implementations (see
// reference_test.go and the differential tests).
package memsim

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes used throughout the simulators.
const LineSize = 64

// line is one cache way. The metadata the way scan touches (tag, recency,
// validity, owner) is fused into a single struct so a set's ways occupy
// adjacent memory — one or two cache lines per simulated set instead of
// four strided slices.
type line struct {
	tag   uint64
	lru   uint64 // per-set logical clock; smallest in the set is the victim
	src   int32  // source that installed the line
	valid bool
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// per-source hit/miss statistics so shared caches can attribute interference
// to individual applications. The zero value is not usable; call NewCache.
type Cache struct {
	name     string
	sets     int
	ways     int
	setShift uint
	setMask  uint64
	// tagShift is bits.Len(sets-1), hoisted to construction time; the
	// original recomputed it on every access.
	tagShift uint
	// lines[set*ways+way] holds the fused way metadata; the valid bit is
	// tracked explicitly so tag 0 is usable.
	lines []line
	clock uint64

	stats []CacheStats // indexed by source id
	// crossEvictions[victim] counts lines lost to any other source.
	crossEvictions []uint64
}

// CacheStats accumulates per-source access results.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an idle source.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewCache builds a cache of totalBytes capacity and the given
// associativity, serving up to nSources distinct requestors.
func NewCache(name string, totalBytes int64, ways, nSources int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || nSources <= 0 {
		return nil, fmt.Errorf("memsim: invalid cache config %q (bytes=%d ways=%d sources=%d)",
			name, totalBytes, ways, nSources)
	}
	lines := totalBytes / LineSize
	if lines < int64(ways) {
		return nil, fmt.Errorf("memsim: cache %q too small for %d ways", name, ways)
	}
	sets := int(lines) / ways
	// Round sets down to a power of two for mask indexing.
	if sets&(sets-1) != 0 {
		sets = 1 << (bits.Len(uint(sets)) - 1)
	}
	c := &Cache{
		name:           name,
		sets:           sets,
		ways:           ways,
		setShift:       uint(bits.TrailingZeros(uint(LineSize))),
		setMask:        uint64(sets - 1),
		tagShift:       uint(bits.Len(uint(sets - 1))),
		lines:          make([]line, sets*ways),
		stats:          make([]CacheStats, nSources),
		crossEvictions: make([]uint64, nSources),
	}
	return c, nil
}

// Access looks up addr on behalf of source, installing the line on a miss.
// It returns true on a hit.
func (c *Cache) Access(source int, addr uint64) bool {
	ln := addr >> c.setShift
	set := ln & c.setMask
	tag := ln >> c.tagShift
	base := int(set) * c.ways
	c.clock++
	c.stats[source].Accesses++

	ways := c.lines[base : base+c.ways : base+c.ways]
	lruWay, lruClock := 0, ^uint64(0)
	for w := range ways {
		l := &ways[w]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			return true
		}
		if l.lru < lruClock {
			lruClock = l.lru
			lruWay = w
		}
	}
	// Miss: install over the LRU way.
	c.stats[source].Misses++
	l := &ways[lruWay]
	if l.valid && l.src != int32(source) {
		c.crossEvictions[l.src]++
	}
	l.tag = tag
	l.valid = true
	l.src = int32(source)
	l.lru = c.clock
	return false
}

// Stats returns the accumulated statistics for source.
func (c *Cache) Stats(source int) CacheStats { return c.stats[source] }

// CrossEvictions returns how many of source's lines were evicted by other
// sources — the direct measure of destructive interference.
func (c *Cache) CrossEvictions(source int) uint64 { return c.crossEvictions[source] }

// Reset clears contents and statistics, keeping the geometry.
func (c *Cache) Reset() {
	clear(c.lines)
	for i := range c.stats {
		c.stats[i] = CacheStats{}
		c.crossEvictions[i] = 0
	}
	c.clock = 0
}

// Sets returns the number of sets (exported for tests).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityBytes returns the rounded capacity actually simulated.
func (c *Cache) CapacityBytes() int64 { return int64(c.sets) * int64(c.ways) * LineSize }
