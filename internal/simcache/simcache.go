// Package simcache is the cross-bag memoization layer for pure simulation
// prefixes: a concurrency-safe, byte-bounded, LRU-evicting cache shared by
// the CPU and GPU simulators.
//
// The corpus of Section V-B runs thousands of 2-application bags over the
// same handful of benchmark workloads, and large pieces of each bag's
// simulation are pure functions of a *single* member: synthetic stream
// generation, the private L1/L2 replay, and the entire isolated
// (single-client) memory simulation. This cache lets cpusim and gpusim
// compute each of those prefixes exactly once per (config, workload, slot)
// and replay only the genuinely shared structures (LLC, device L2, TLB)
// per bag — with guaranteed bit-identical outputs, because every cached
// value is exactly the bytes the cold path would have produced and entries
// are immutable once published.
//
// Concurrency: lookups singleflight — concurrent requests for the same key
// block on one computation (the measurement worker pool frequently asks
// for the same member from several bags at once). Entries are published
// only after the compute function returns; waiters never observe partial
// values. A panicking compute poisons nobody: the entry is evicted, the
// panic propagates to the caller (where the worker pool's containment
// converts it into a typed error), and waiters receive a retryable error.
//
// Bounding: every entry carries a caller-reported byte size; when the
// total exceeds the configured budget the least-recently-used entries are
// dropped. Eviction changes only *when* values are recomputed, never what
// they are, so outputs are bit-identical at every budget — including zero,
// which is expressed as a nil *Cache (all methods are nil-safe no-ops and
// callers fall back to the cold path).
package simcache

import (
	"fmt"
	"sync"
)

// Key identifies one memoized simulation prefix. All fields participate in
// equality:
//
//   - Domain separates caching sites ("cpusim/priv", "gpusim/iso", ...) so
//     different value types never collide.
//   - Config is the exact textual rendering of the simulator configuration
//     (fmt "%+v"): two configs reuse an entry only when every field of the
//     simulated machine is identical.
//   - Workload is trace.Workload.Fingerprint(): a 64-bit digest of every
//     field of the workload. Two distinct workloads share an entry only on
//     a fingerprint collision (~2^-64 per pair; the suite has tens of
//     workloads).
//   - Slot is the client index the workload occupies in the run: slots
//     determine the address-space base and the stream seeds, so the same
//     workload at slot 0 and slot 1 produces different streams.
type Key struct {
	Domain   string
	Config   string
	Workload uint64
	Slot     int
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups served from a published entry (incl. singleflight waits)
	Misses    int64 // lookups that ran the compute function
	Evictions int64 // entries dropped by the LRU bound
	Bytes     int64 // resident entry bytes (caller-reported)
	Entries   int   // resident entry count
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one singleflight slot. done is closed exactly once, after val,
// bytes and err are final; waiters synchronize on it and then read those
// fields without the cache lock.
type entry struct {
	key   Key
	done  chan struct{}
	val   any
	bytes int64
	err   error

	// LRU intrusive list; only published (successful) entries are linked.
	prev, next *entry
}

// Cache is the bounded memo. The zero value is not usable; create with
// New. A nil *Cache is the documented "disabled" state: GetOrCompute runs
// the compute function every time and Stats returns zeros.
type Cache struct {
	budget int64 // bytes; > 0 (New rejects other values)

	mu        sync.Mutex
	entries   map[Key]*entry
	head      *entry // most recently used
	tail      *entry // least recently used
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache bounded to budgetBytes of caller-reported entry
// bytes. budgetBytes must be positive: "no cache" is spelled as a nil
// *Cache, not a zero budget, so disabled paths never pay for map upkeep.
func New(budgetBytes int64) (*Cache, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("simcache: budget must be positive, got %d (disable by passing a nil *Cache instead)", budgetBytes)
	}
	return &Cache{budget: budgetBytes, entries: make(map[Key]*entry)}, nil
}

// MustNew is New for callers with a known-good constant budget.
func MustNew(budgetBytes int64) *Cache {
	c, err := New(budgetBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Outcome classifies how a Lookup was satisfied. Callers that only need
// "did I skip the compute?" use GetOrCompute; callers whose semantics
// distinguish a published entry from joining someone else's in-flight
// computation (e.g. serve's "cached" response field, which must not claim
// a hit for a request that waited out a full simulation) switch on this.
type Outcome int

const (
	// OutcomeComputed: no resident entry; this caller ran compute.
	OutcomeComputed Outcome = iota
	// OutcomeWaited: another goroutine's compute was in flight; this
	// caller blocked on it and shares its result (or error).
	OutcomeWaited
	// OutcomeHit: a published entry was served immediately.
	OutcomeHit
)

// GetOrCompute returns the memoized value for key, running compute at most
// once per resident generation of the key. compute reports the value and
// its approximate resident size in bytes; the value MUST be immutable
// after return (callers receive the same value concurrently).
//
// The second return is true on a cache hit (including waiting on another
// goroutine's in-flight computation). Errors are never cached: a failed or
// panicked compute unpublishes the key so the next lookup retries.
//
// A nil receiver runs compute directly — the cold path, bit-identical by
// construction.
func (c *Cache) GetOrCompute(key Key, compute func() (value any, bytes int64, err error)) (any, bool, error) {
	v, outcome, err := c.Lookup(key, compute)
	return v, outcome != OutcomeComputed, err
}

// Lookup is GetOrCompute with the hit bool refined into an Outcome; see
// Outcome for when the distinction matters. Counter semantics are
// unchanged: OutcomeHit and OutcomeWaited both count as hits, only
// OutcomeComputed counts as a miss.
func (c *Cache) Lookup(key Key, compute func() (value any, bytes int64, err error)) (any, Outcome, error) {
	if c == nil {
		v, _, err := compute()
		return v, OutcomeComputed, err
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			// Published: bump recency under the same lock.
			c.moveToFront(e)
			c.hits++
			c.mu.Unlock()
			return e.val, OutcomeHit, e.err
		default:
			// In flight: wait outside the lock.
			c.hits++
			c.mu.Unlock()
			<-e.done
			return e.val, OutcomeWaited, e.err
		}
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock. If compute panics, unpublish the entry and
	// hand waiters a retryable error before letting the panic propagate to
	// this caller (the measurement pool converts it to a PanicError).
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		e.err = fmt.Errorf("simcache: compute for %v panicked in another goroutine; retry", key)
		close(e.done)
	}()
	val, bytes, err := compute()
	completed = true

	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		e.err = err
		close(e.done)
		return nil, OutcomeComputed, err
	}
	if bytes < 0 {
		bytes = 0
	}
	e.val, e.bytes = val, bytes
	c.mu.Lock()
	c.pushFront(e)
	c.bytes += e.bytes
	// Evict least-recently-used published entries until we fit. The entry
	// just inserted is at the front, so it is evicted only if it alone
	// exceeds the whole budget — in which case it is returned to the
	// caller but not retained.
	for c.bytes > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	c.mu.Unlock()
	close(e.done)
	return val, OutcomeComputed, nil
}

// Peek returns the published value for key without waiting on an in-flight
// computation and without running anything. It does not move counters or
// recency — peeks serve cross-replica fill requests and must not distort
// the local working set. Nil-safe.
func (c *Cache) Peek(key Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false
	}
}

// Seed publishes a precomputed entry, as if compute had just returned it:
// the warm-start path for a fresh replica restoring a snapshot. The value
// must honour the same immutability contract as computed values. An
// existing resident entry (published or in flight) wins — a snapshot never
// clobbers live state — and the seed counts as neither hit nor miss. The
// LRU bound applies: seeding past the budget evicts from the cold end,
// so restoring a snapshot larger than the budget keeps its hottest
// (earliest-seeded) prefix. Nil-safe no-op. Reports whether this call
// inserted an entry that is still resident — false for duplicates, an
// immediately-evicted oversize seed, or a nil cache.
func (c *Cache) Seed(key Key, val any, bytes int64) bool {
	if c == nil {
		return false
	}
	if bytes < 0 {
		bytes = 0
	}
	e := &entry{key: key, done: make(chan struct{}), val: val, bytes: bytes}
	close(e.done)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return false
	}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	// The seed itself may have been evicted (alone over budget); report
	// whether it is resident.
	_, resident := c.entries[key]
	return resident
}

// Items visits every published entry from most- to least-recently used,
// stopping early when fn returns false. In-flight entries are skipped. The
// snapshot of (key, value, bytes) triples is taken under the lock, then fn
// runs outside it, so fn may take as long as it likes (e.g. stream a
// snapshot over HTTP) without stalling lookups; entries evicted after the
// snapshot are still visited.
func (c *Cache) Items(fn func(key Key, val any, bytes int64) bool) {
	if c == nil {
		return
	}
	type item struct {
		key   Key
		val   any
		bytes int64
	}
	c.mu.Lock()
	items := make([]item, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		items = append(items, item{e.key, e.val, e.bytes})
	}
	c.mu.Unlock()
	for _, it := range items {
		if !fn(it.key, it.val, it.bytes) {
			return
		}
	}
}

// moveToFront relinks e as most-recently-used. Caller holds mu.
func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links e at the head. Caller holds mu.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the recency list. Caller holds mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict drops a published entry. Caller holds mu.
func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evictions++
}

// Stats returns a snapshot of the counters. Nil-safe: a disabled cache
// reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
}

// Budget returns the configured byte budget (0 for a nil cache).
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
