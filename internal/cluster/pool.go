package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health-probe defaults.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = 1 * time.Second
	// DefaultFailAfter consecutive probe failures eject a replica;
	// DefaultReviveAfter consecutive successes re-admit it. Asymmetric on
	// purpose: ejection should be quick (requests are failing), re-entry
	// slightly sticky (a flapping replica shouldn't churn the ring).
	DefaultFailAfter   = 3
	DefaultReviveAfter = 2
	// DefaultBreakerCooldown is how long an opened breaker rejects traffic
	// before letting one half-open trial request through.
	DefaultBreakerCooldown = 5 * time.Second
)

// breakerState is the per-replica circuit-breaker state. It moves in
// lockstep with the health bit: closed ⇔ healthy; open and half-open are
// both "ejected" as far as Route ordering is concerned.
type breakerState int

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case brkClosed:
		return "closed"
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// PoolConfig configures replica membership.
type PoolConfig struct {
	// Replicas are the member base URLs (e.g. "http://127.0.0.1:8081");
	// required, order defines identity. Every replica stays on the hash
	// ring permanently — health only decides whether traffic routed to it
	// is diverted to the next ring node — so a recovered replica gets its
	// original keyspace (and its warm cache) back.
	Replicas []string
	// VirtualNodes per replica on the ring; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Client performs health probes; nil means a client bounded by
	// ProbeTimeout.
	Client *http.Client
	// ProbeInterval between health rounds for Start; 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz request; 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// FailAfter / ReviveAfter are the consecutive-probe thresholds; 0
	// means the defaults.
	FailAfter   int
	ReviveAfter int
	// BreakerCooldown is how long an opened breaker stays fully open
	// before Allow admits a single half-open trial; 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Logf reports membership transitions (ejections, re-admissions);
	// nil discards them.
	Logf func(format string, args ...any)
}

// replicaState tracks one member's health and breaker state. The two
// agree by construction: healthy is true exactly when brk == brkClosed.
type replicaState struct {
	url       string
	healthy   bool
	succ      int // consecutive probe successes
	fail      int // consecutive probe failures (or reported ones)
	lastError string

	brk      breakerState
	openedAt time.Time // when brk last entered brkOpen
	trial    bool      // a half-open trial request is in flight
}

// ReplicaStatus is a point-in-time public view of one member.
type ReplicaStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Breaker   string `json:"breaker"`
	LastError string `json:"last_error,omitempty"`
}

// Pool is the health-checked membership set: a fixed replica list, a
// consistent-hash ring over all of it, and a health bit plus circuit
// breaker per replica. Probes and request-path reports feed the same
// state machine, so the breaker and the prober never disagree about a
// replica. All methods are safe for concurrent use.
type Pool struct {
	cfg  PoolConfig
	ring *Ring
	now  func() time.Time // injectable for deterministic breaker tests

	mu       sync.Mutex
	replicas []*replicaState

	ejections    int64
	readmissions int64
	breakerSkips int64
}

// NewPool validates the config and returns a pool with every replica
// optimistically healthy — a router boots usable before the first probe
// round, and a genuinely dead replica costs FailAfter probes.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: pool needs at least one replica")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ReviveAfter <= 0 {
		cfg.ReviveAfter = DefaultReviveAfter
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ring, err := NewRing(cfg.Replicas, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, ring: ring, now: time.Now}
	for _, u := range cfg.Replicas {
		p.replicas = append(p.replicas, &replicaState{url: u, healthy: true, brk: brkClosed})
	}
	return p, nil
}

// Route returns the replicas to try for key, healthiest-preference order:
// the key's owner and ring-order fallbacks, healthy members first. The
// full candidate list is returned (never empty) so a caller can still try
// ejected replicas when everything is marked down — a pool that sheds all
// traffic on a flaky probe round would turn a monitoring blip into an
// outage.
func (p *Pool) Route(key string) []string {
	candidates := p.ring.LookupN(key, len(p.cfg.Replicas))
	p.mu.Lock()
	healthy := make(map[string]bool, len(p.replicas))
	for _, r := range p.replicas {
		healthy[r.url] = r.healthy
	}
	p.mu.Unlock()
	// Stable partition: healthy candidates keep ring order, then ejected
	// ones as a last resort.
	out := make([]string, 0, len(candidates))
	for _, c := range candidates {
		if healthy[c] {
			out = append(out, c)
		}
	}
	for _, c := range candidates {
		if !healthy[c] {
			out = append(out, c)
		}
	}
	return out
}

// ReportFailure records a request-path failure against url (network error
// or 5xx while forwarding): passive detection between probe rounds. It
// counts like a failed probe, so FailAfter request failures eject the
// replica without waiting for the prober.
func (p *Pool) ReportFailure(url string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.url == url {
			p.failLocked(r, msg)
			return
		}
	}
}

// Probe runs one synchronous health round: GET /healthz on every replica
// concurrently. Exported so tests (and the loadgen harness) can step
// membership deterministically instead of sleeping through intervals.
func (p *Pool) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	results := make([]error, len(p.cfg.Replicas))
	for i, u := range p.cfg.Replicas {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			results[i] = p.probeOne(ctx, u)
		}(i, u)
	}
	wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.replicas {
		if err := results[i]; err != nil {
			p.failLocked(r, err.Error())
		} else {
			p.succeedLocked(r)
		}
	}
}

// probeOne checks one replica's /healthz.
func (p *Pool) probeOne(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	// Require a parseable health body: a load balancer answering 200 with
	// an HTML error page must not count as a live replica.
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("healthz body: %v", err)
	}
	if body.Status != "ok" {
		return fmt.Errorf("healthz status %q", body.Status)
	}
	return nil
}

// failLocked and succeedLocked apply the consecutive-count thresholds and
// drive the breaker state machine. Callers hold p.mu.
func (p *Pool) failLocked(r *replicaState, msg string) {
	r.succ = 0
	r.fail++
	r.lastError = msg
	r.trial = false
	switch r.brk {
	case brkClosed:
		if r.fail >= p.cfg.FailAfter {
			r.brk = brkOpen
			r.openedAt = p.now()
			r.healthy = false
			p.ejections++
			p.cfg.Logf("cluster: ejecting %s after %d consecutive failures, breaker open (%s)", r.url, r.fail, msg)
		}
	case brkHalfOpen:
		// The trial (or a probe racing it) failed: back to open with a
		// fresh cooldown.
		r.brk = brkOpen
		r.openedAt = p.now()
		p.cfg.Logf("cluster: half-open trial for %s failed, breaker re-opened (%s)", r.url, msg)
	case brkOpen:
		// Failures while open (last-resort routing, probes) don't extend
		// the cooldown: a replica that stays dark keeps failing probes
		// and would otherwise never reach half-open.
	}
}

func (p *Pool) succeedLocked(r *replicaState) {
	r.fail = 0
	r.succ++
	r.lastError = ""
	if r.brk != brkClosed && r.succ >= p.cfg.ReviveAfter {
		p.closeLocked(r, fmt.Sprintf("%d consecutive healthy probes", r.succ))
	}
}

// closeLocked re-admits a replica: breaker closed, healthy again.
func (p *Pool) closeLocked(r *replicaState, why string) {
	r.brk = brkClosed
	r.healthy = true
	r.trial = false
	r.fail = 0
	p.readmissions++
	p.cfg.Logf("cluster: re-admitting %s, breaker closed (%s)", r.url, why)
}

// ReportSuccess records a request-path success against url. It resets the
// passive failure streak, and a success on a half-open trial closes the
// breaker immediately — real traffic is at least as strong a liveness
// signal as a probe.
func (p *Pool) ReportSuccess(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.url != url {
			continue
		}
		r.fail = 0
		if r.brk == brkHalfOpen {
			p.closeLocked(r, "half-open trial succeeded")
		}
		return
	}
}

// Allow reports whether a request may be forwarded to url right now.
// Closed always admits. Open admits nothing until BreakerCooldown has
// elapsed, at which point the breaker moves to half-open and this call
// claims the single trial slot. Half-open admits exactly one in-flight
// trial; the trial's ReportSuccess / ReportFailure decides what happens
// next. Unknown URLs are allowed (the router's candidate lists only ever
// contain pool members, so this is belt and braces).
func (p *Pool) Allow(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.url != url {
			continue
		}
		switch r.brk {
		case brkClosed:
			return true
		case brkOpen:
			if p.now().Sub(r.openedAt) >= p.cfg.BreakerCooldown {
				r.brk = brkHalfOpen
				r.trial = true
				p.cfg.Logf("cluster: breaker for %s half-open, admitting trial request", r.url)
				return true
			}
			p.breakerSkips++
			return false
		case brkHalfOpen:
			if !r.trial {
				r.trial = true
				return true
			}
			p.breakerSkips++
			return false
		}
	}
	return true
}

// BreakerState returns url's breaker state string ("closed", "open",
// "half-open"), or "" for an unknown URL.
func (p *Pool) BreakerState(url string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.url == url {
			return r.brk.String()
		}
	}
	return ""
}

// BreakerSkips returns how many forward attempts the breakers rejected.
func (p *Pool) BreakerSkips() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.breakerSkips
}

// Start probes on the configured interval until ctx is cancelled. Run it
// in a goroutine; it performs one immediate round first so a dead replica
// configured at boot is ejected within FailAfter*interval, not one extra.
func (p *Pool) Start(ctx context.Context) {
	p.Probe(ctx)
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Probe(ctx)
		}
	}
}

// Status snapshots every member's health, in configuration order.
func (p *Pool) Status() []ReplicaStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaStatus, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = ReplicaStatus{URL: r.url, Healthy: r.healthy, Breaker: r.brk.String(), LastError: r.lastError}
	}
	return out
}

// HealthyCount returns how many members are currently admitted.
func (p *Pool) HealthyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.replicas {
		if r.healthy {
			n++
		}
	}
	return n
}

// Ejections and Readmissions return the lifetime transition counters.
func (p *Pool) Ejections() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejections
}

func (p *Pool) Readmissions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readmissions
}
