package ml

import (
	"errors"
	"fmt"
	"math"
)

// Regressor is the interface shared by every model in this package, letting
// the evaluation harness treat trees, linear models and SVRs uniformly.
type Regressor interface {
	Fit(d *Dataset) error
	Predict(x []float64) (float64, error)
	PredictAll(X [][]float64) ([]float64, error)
}

// Compile-time interface checks.
var (
	_ Regressor = (*TreeRegressor)(nil)
	_ Regressor = (*LinearRegression)(nil)
	_ Regressor = (*SVR)(nil)
)

// MSE returns the mean squared error between truth and predictions
// (Equation 1 of the paper).
func MSE(y, yhat []float64) (float64, error) {
	if err := sameLen(y, yhat); err != nil {
		return 0, err
	}
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s / float64(len(y)), nil
}

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) (float64, error) {
	if err := sameLen(y, yhat); err != nil {
		return 0, err
	}
	var s float64
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y)), nil
}

// RelativeErrors returns |(true-pred)/true|*100 per point — the paper's
// error definition (Section VI). Zero-valued truths are an error because
// the metric is undefined there.
func RelativeErrors(y, yhat []float64) ([]float64, error) {
	if err := sameLen(y, yhat); err != nil {
		return nil, err
	}
	out := make([]float64, len(y))
	for i := range y {
		if y[i] == 0 {
			return nil, fmt.Errorf("ml: relative error undefined for zero truth at index %d", i)
		}
		out[i] = math.Abs((y[i]-yhat[i])/y[i]) * 100
	}
	return out, nil
}

// PointRelativeError returns the paper's per-point relative error
// |truth-pred|/|truth|*100 and ok=false when truth is zero (the metric is
// undefined there; CLIs print "n/a" instead of NaN/Inf). This is the shared
// helper behind every single-point error report.
func PointRelativeError(truth, pred float64) (relPct float64, ok bool) {
	if truth == 0 {
		return 0, false
	}
	return math.Abs((truth-pred)/truth) * 100, true
}

// MeanRelativeError returns the mean of RelativeErrors — the headline
// metric of Figures 4-9.
func MeanRelativeError(y, yhat []float64) (float64, error) {
	errs, err := RelativeErrors(y, yhat)
	if err != nil {
		return 0, err
	}
	return Mean(errs), nil
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(v []float64) float64 { return mean(v) }

func sameLen(y, yhat []float64) error {
	if len(y) == 0 {
		return errors.New("ml: empty prediction vectors")
	}
	if len(y) != len(yhat) {
		return fmt.Errorf("ml: %d truths but %d predictions", len(y), len(yhat))
	}
	return nil
}
