// Package parallel provides the bounded worker pool underlying the
// measurement engine: deterministic, index-addressed fan-out used by corpus
// generation (internal/dataset), LOOCV fold training (internal/core), and
// the per-benchmark scaling sweeps (internal/experiments).
//
// The pool preserves serial semantics exactly: results are written by
// index, so output order never depends on goroutine scheduling, and the
// error returned is the one a serial loop would have returned (the error at
// the lowest index). Callers can therefore flip between workers=1 and
// workers=N and observe bit-for-bit identical outputs.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a configured worker count to an effective one: values <= 0
// select runtime.NumCPU() (the default), anything else is returned as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of workers.
//
// Semantics:
//   - workers <= 0 selects runtime.NumCPU(); workers == 1 runs the exact
//     serial loop on the calling goroutine (the legacy path: no goroutines,
//     no synchronization).
//   - Indices are claimed in ascending order, so if fn(e) fails, every
//     index < e has already been claimed; combined with returning the
//     lowest-index error, the error value matches what the serial loop
//     would have produced for deterministic fn.
//   - After the first failure no new indices are claimed (in-flight calls
//     finish), so a failing run does not pay for the whole sweep.
//
// fn must be safe for concurrent invocation when workers > 1; writes to
// shared results must be disjoint per index.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Legacy serial path: identical to the pre-engine loops,
		// including stopping at the first error.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
