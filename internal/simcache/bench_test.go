package simcache

import (
	"testing"
)

// BenchmarkSimCacheHit measures the steady-state hit path: one resident
// entry looked up repeatedly. This is the cost every memoized simulation
// prefix pays per reuse, so it must stay far below the microseconds the
// cold computation costs.
func BenchmarkSimCacheHit(b *testing.B) {
	c := MustNew(1 << 20)
	k := Key{Domain: "bench", Config: "cfg", Workload: 1}
	if _, _, err := c.GetOrCompute(k, func() (any, int64, error) { return 42, 64, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, hit, err := c.GetOrCompute(k, nil)
		if err != nil || !hit || v != 42 {
			b.Fatalf("v=%v hit=%v err=%v", v, hit, err)
		}
	}
}

// BenchmarkSimCacheHitRotating cycles lookups over a resident working set,
// exercising the map probe plus the LRU move-to-front on every access
// (the common pattern during corpus generation, where dozens of per-member
// prefixes stay hot simultaneously).
func BenchmarkSimCacheHitRotating(b *testing.B) {
	const keys = 64
	c := MustNew(keys * 128)
	for i := 0; i < keys; i++ {
		k := Key{Domain: "bench", Config: "cfg", Workload: uint64(i)}
		if _, _, err := c.GetOrCompute(k, func() (any, int64, error) { return i, 64, nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{Domain: "bench", Config: "cfg", Workload: uint64(i % keys)}
		if _, hit, err := c.GetOrCompute(k, nil); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkSimCacheMissEvict measures the worst case: every lookup misses,
// computes, inserts, and evicts the previous tenant — the churn regime a
// starved budget produces. The compute closure is trivial so the number
// isolates the cache's own bookkeeping.
func BenchmarkSimCacheMissEvict(b *testing.B) {
	c := MustNew(96) // fits one 64-byte entry; every insert evicts
	// Seed a tenant so the very first timed insert already evicts (b.N can
	// be 1 during calibration).
	seed := Key{Domain: "bench", Config: "cfg", Workload: ^uint64(0)}
	if _, _, err := c.GetOrCompute(seed, func() (any, int64, error) { return 0, 64, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{Domain: "bench", Config: "cfg", Workload: uint64(i)}
		if _, _, err := c.GetOrCompute(k, func() (any, int64, error) { return i, 64, nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Evictions == 0 {
		b.Fatalf("no evictions under churn: %+v", st)
	}
}
