package memsim

import (
	"fmt"
	"math/bits"
)

// PageSize is the translation granule used by the TLB model.
const PageSize = 4096

// TLB is a fully-associative translation lookaside buffer with exact-LRU
// replacement and per-source statistics. GPUs share TLBs across MPS clients
// (Section II of the paper), so entries from different applications evict
// one another; Flush models the context-switch flushes the paper identifies
// as a major multi-application overhead.
//
// The implementation is O(1) per access: an open-addressed hash table keyed
// on the packed (page, source) pair locates the entry (cheaper than a Go map
// on this single-uint64-key workload, and flushes clear it with one memclr),
// and an intrusive doubly-linked recency list threaded through the slot
// array yields the exact-LRU victim without scanning. The index is a pure
// lookup structure — hit/miss decisions depend only on membership — so the
// design is bit-identical to the original linear-scan design
// (retained as refTLB in reference_test.go and enforced by the differential
// tests): the original picked the entry with the smallest logical clock,
// breaking ties by lowest index. Because only Flush/Reset invalidate — and
// they invalidate everything — the tied (never-touched) entries are always
// exactly the slots above nextFree, claimed in ascending order, and among
// valid entries clock values are unique, so the list head *is* the
// original's victim.
type TLB struct {
	entries  int
	nSources uint64
	slots    []tlbSlot
	index    tlbIndex // packed (page, source) -> slot
	head     int32    // LRU end of the recency list (-1 when empty)
	tail     int32    // MRU end (-1 when empty)
	nextFree int      // slots[nextFree:] never used since last Flush/Reset
	stats    []CacheStats
	flushes  uint64
}

// tlbIndex is a linear-probed open-addressed hash table mapping a packed
// (page, source) key to a slot number. Keys are stored biased by +1 so a
// stored 0 means "empty" (the genuine key 0 — page 0, source 0 — is
// representable as 1; simulator keys sit far below the top of the uint64
// range, see TLB.key). Capacity is a power of two at most half full, so
// probe chains stay short; deletion uses backward-shift so no tombstones
// accumulate; Flush clears it with a single memclr.
type tlbIndex struct {
	keys  []uint64 // biased key + 1; 0 = empty
	vals  []int32
	mask  uint64
	shift uint // 64 - log2(len(keys)), for Fibonacci hashing
}

func newTLBIndex(capacity int) tlbIndex {
	// At least 2x the resident entry count, rounded up to a power of two.
	n := 4
	for n < capacity*2 {
		n <<= 1
	}
	return tlbIndex{
		keys:  make([]uint64, n),
		vals:  make([]int32, n),
		mask:  uint64(n - 1),
		shift: uint(64 - bits.TrailingZeros(uint(n))),
	}
}

// home returns the preferred table position of a biased key.
func (x *tlbIndex) home(bk uint64) uint64 {
	return (bk * 0x9E3779B97F4A7C15) >> x.shift
}

// get returns the slot stored for key, if present.
func (x *tlbIndex) get(key uint64) (int32, bool) {
	bk := key + 1
	for i := x.home(bk); ; i = (i + 1) & x.mask {
		switch x.keys[i] {
		case bk:
			return x.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// put inserts or updates key -> val. The caller guarantees the table never
// exceeds half capacity (resident TLB entries <= capacity/2).
func (x *tlbIndex) put(key uint64, val int32) {
	bk := key + 1
	for i := x.home(bk); ; i = (i + 1) & x.mask {
		if x.keys[i] == bk || x.keys[i] == 0 {
			x.keys[i] = bk
			x.vals[i] = val
			return
		}
	}
}

// del removes key using backward-shift deletion, preserving every other
// entry's reachability without tombstones.
func (x *tlbIndex) del(key uint64) {
	bk := key + 1
	i := x.home(bk)
	for x.keys[i] != bk {
		if x.keys[i] == 0 {
			return
		}
		i = (i + 1) & x.mask
	}
	for {
		x.keys[i] = 0
		j := i
		for {
			j = (j + 1) & x.mask
			if x.keys[j] == 0 {
				return
			}
			h := x.home(x.keys[j])
			// Keep probing while j's entry still lies on its own probe
			// path if left in place, i.e. h is cyclically in (i, j].
			if i <= j {
				if i < h && h <= j {
					continue
				}
			} else if i < h || h <= j {
				continue
			}
			x.keys[i], x.vals[i] = x.keys[j], x.vals[j]
			i = j
			break
		}
	}
}

// clear empties the table (one memclr of the key array).
func (x *tlbIndex) clear() {
	clear(x.keys)
}

// len counts resident keys; O(capacity), used only by invariant checks in
// tests.
func (x *tlbIndex) len() int {
	n := 0
	for _, k := range x.keys {
		if k != 0 {
			n++
		}
	}
	return n
}

// tlbSlot is one TLB entry threaded onto the recency list.
type tlbSlot struct {
	key        uint64 // packed (page, source), see key()
	prev, next int32  // recency-list neighbours (-1 = none)
}

// NewTLB builds a TLB with the given number of entries serving nSources.
func NewTLB(entries, nSources int) (*TLB, error) {
	if entries <= 0 || nSources <= 0 {
		return nil, fmt.Errorf("memsim: invalid TLB config (entries=%d sources=%d)", entries, nSources)
	}
	return &TLB{
		entries:  entries,
		nSources: uint64(nSources),
		slots:    make([]tlbSlot, entries),
		index:    newTLBIndex(entries),
		head:     -1,
		tail:     -1,
		stats:    make([]CacheStats, nSources),
	}, nil
}

// key packs (page, source) into one map key. source < nSources, so the
// packing is collision-free; pages derived from simulator addresses stay
// far below the 2^64/nSources overflow bound.
func (t *TLB) key(source int, page uint64) uint64 {
	return page*t.nSources + uint64(source)
}

// Access translates addr for source, returning true on a TLB hit.
// Different sources never share translations (separate address spaces under
// MPS), so the (source, page) pair is the lookup key.
func (t *TLB) Access(source int, addr uint64) bool {
	page := addr / PageSize
	t.stats[source].Accesses++
	key := t.key(source, page)
	if i, ok := t.index.get(key); ok {
		t.touch(i)
		return true
	}
	t.stats[source].Misses++
	var i int32
	if t.nextFree < t.entries {
		// Original semantics: invalid entries all carry clock 0 and win
		// the victim scan at the lowest index — i.e. in ascending order.
		i = int32(t.nextFree)
		t.nextFree++
	} else {
		// All entries valid: evict the exact-LRU entry at the list head.
		i = t.head
		t.unlink(i)
		t.index.del(t.slots[i].key)
	}
	t.slots[i].key = key
	t.index.put(key, i)
	t.pushMRU(i)
	return false
}

// touch moves slot i to the MRU end of the recency list.
func (t *TLB) touch(i int32) {
	if t.tail == i {
		return
	}
	t.unlink(i)
	t.pushMRU(i)
}

// unlink removes slot i from the recency list.
func (t *TLB) unlink(i int32) {
	s := &t.slots[i]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
}

// pushMRU appends slot i at the MRU end of the recency list.
func (t *TLB) pushMRU(i int32) {
	s := &t.slots[i]
	s.prev = t.tail
	s.next = -1
	if t.tail >= 0 {
		t.slots[t.tail].next = i
	} else {
		t.head = i
	}
	t.tail = i
}

// Flush invalidates every entry, modelling a full TLB shootdown at an MPS
// context boundary, and counts the event.
func (t *TLB) Flush() {
	t.index.clear()
	t.head, t.tail = -1, -1
	t.nextFree = 0
	t.flushes++
}

// Stats returns per-source access statistics.
func (t *TLB) Stats(source int) CacheStats { return t.stats[source] }

// Flushes returns how many full flushes occurred.
func (t *TLB) Flushes() uint64 { return t.flushes }

// Entries returns the TLB capacity in entries.
func (t *TLB) Entries() int { return t.entries }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	t.index.clear()
	t.head, t.tail = -1, -1
	t.nextFree = 0
	for i := range t.stats {
		t.stats[i] = CacheStats{}
	}
	t.flushes = 0
}
