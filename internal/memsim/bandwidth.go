package memsim

// Waterfill apportions total bandwidth among clients with the given demands
// using max-min fairness (progressive filling): every client is guaranteed
// an equal share, clients that demand less than their share keep only what
// they need, and the surplus is redistributed among the still-unsatisfied
// clients. This mirrors how fair memory controllers arbitrate between
// co-running applications: light consumers are unaffected while heavy
// consumers absorb the squeeze — the asymmetry the fairness metric measures.
//
// The returned shares satisfy share[i] <= max(demand[i], equalShare) and
// sum(min(share, demand)) <= total. Clients with zero demand receive the
// full total (they are never bandwidth-bound).
func Waterfill(total float64, demand []float64) []float64 {
	share := make([]float64, len(demand))
	if total <= 0 || len(demand) == 0 {
		return share
	}
	var sum float64
	for _, d := range demand {
		sum += d
	}
	if sum <= total {
		// No congestion: everyone sees the full pipe.
		for i := range share {
			share[i] = total
		}
		return share
	}

	unsat := make([]int, 0, len(demand))
	for i, d := range demand {
		if d > 0 {
			unsat = append(unsat, i)
		} else {
			share[i] = total
		}
	}
	remaining := total
	for len(unsat) > 0 {
		fair := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if demand[i] <= fair {
				share[i] = demand[i]
				remaining -= demand[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			// Everyone remaining wants more than the fair share:
			// split the remainder equally.
			for _, i := range unsat {
				share[i] = fair
			}
			break
		}
	}
	return share
}
