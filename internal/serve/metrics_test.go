package serve

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := newLatencyHistogram()
	if q := h.quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile %v", q)
	}
	// 100 observations spread uniformly over (0, 1]s: the median estimate
	// must land near 0.5s and p99 near 1s, within bucket resolution.
	for i := 1; i <= 100; i++ {
		h.observe(float64(i) / 100)
	}
	if q := h.quantile(0.5); math.Abs(q-0.5) > 0.3 {
		t.Errorf("p50 %v far from 0.5", q)
	}
	if q := h.quantile(0.99); math.Abs(q-1.0) > 0.5 {
		t.Errorf("p99 %v far from 1.0", q)
	}
	if h.n != 100 {
		t.Errorf("count %d", h.n)
	}
	if math.Abs(h.sum-50.5) > 1e-9 {
		t.Errorf("sum %v", h.sum)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.quantile(q)
		if v < prev {
			t.Errorf("quantile(%v)=%v below quantile at lower q (%v)", q, v, prev)
		}
		prev = v
	}
	// Overflow bucket: an observation beyond the top bound still counts.
	h.observe(1000)
	if h.n != 101 {
		t.Errorf("overflow observation lost (n=%d)", h.n)
	}
}

func TestMetricsWriteTo(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest(200, 40*time.Millisecond)
	m.ObserveRequest(200, 60*time.Millisecond)
	m.ObserveRequest(400, time.Millisecond)
	m.ObserveOther(200)
	m.CacheHit()
	m.CacheMiss()
	m.CacheMiss()
	m.Predictions(3)
	m.RejectSaturated()
	m.IncInFlight()

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mapc_requests_total{code="200"} 3`,
		`mapc_requests_total{code="400"} 1`,
		"mapc_requests_inflight 1",
		"mapc_request_duration_seconds_count 3",
		"mapc_predictions_total 3",
		`mapc_rejected_total{reason="saturated"} 1`,
		"mapc_feature_cache_hits_total 1",
		"mapc_feature_cache_misses_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := m.CacheHitRate(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("hit rate %v, want 1/3", got)
	}
	m.DecInFlight()
	if m.InFlight() != 0 {
		t.Errorf("in-flight gauge %d", m.InFlight())
	}
}
