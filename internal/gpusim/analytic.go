package gpusim

import (
	"mapc/internal/memsim"
	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// This file is the GPU side of the fast fidelity tier (see
// internal/phasesum): the contended co-run — the shared L2 and shared TLB
// interleave with periodic MPS flushes that RunMemoShares replays
// reference-by-reference — is replaced by closed-form capacity-sharing
// estimates over memoized per-phase reuse sketches (lines for the L2,
// pages for the TLB). Isolated runs stay exact and anchor the deltas.

// memoDomainSum caches the reuse sketch of one client's reference stream.
// Stream generation is pure in (workload, slot) — see streamEntry — so
// sketches are keyed with an empty Config and shared across device
// configurations.
const memoDomainSum = "gpusim/sum"

// summaryEntry is the memoized sketch; immutable once published.
type summaryEntry struct{ sum phasesum.Summary }

// streamFor returns client w's materialized stream for slot ai — through
// the "gpusim/stream" memo when available (the same entries the exact
// shared path uses), cold otherwise.
func streamFor(memo *simcache.Cache, w *trace.Workload, ai int) (streamEntry, error) {
	count := 0
	for pi := range w.Phases {
		if refs := w.Phases[pi].MemRefs(); refs > 0 {
			count += memsim.SampleRefs(refs)
		}
	}
	if memo == nil {
		return materializeStream(w, ai, make([]uint64, count))
	}
	key := simcache.Key{Domain: memoDomainStream, Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		se, err := materializeStream(w, ai, make([]uint64, count))
		if err != nil {
			return nil, 0, err
		}
		return se, se.bytes(), nil
	})
	if err != nil {
		return streamEntry{}, err
	}
	return v.(streamEntry), nil
}

// streamSummaryFor returns the memoized reuse sketch of client w's stream
// at slot ai.
func streamSummaryFor(memo *simcache.Cache, w *trace.Workload, ai int) (phasesum.Summary, error) {
	if memo == nil {
		se, err := streamFor(memo, w, ai)
		if err != nil {
			return phasesum.Summary{}, err
		}
		return phasesum.Summarize(se.addrs, se.ends), nil
	}
	key := simcache.Key{Domain: memoDomainSum, Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		se, err := streamFor(memo, w, ai)
		if err != nil {
			return nil, 0, err
		}
		sum := phasesum.Summarize(se.addrs, se.ends)
		return summaryEntry{sum: sum}, sum.Bytes(), nil
	})
	if err != nil {
		return phasesum.Summary{}, err
	}
	return v.(summaryEntry).sum, nil
}

// smSharesOf mirrors steadyFromMem's SM partitioning: equal split for nil
// shares, normalized weights otherwise.
func smSharesOf(cfg Config, n int, shares []float64) []float64 {
	out := make([]float64, n)
	if shares == nil {
		equal := float64(cfg.SMs) / float64(n)
		for i := range out {
			out[i] = equal
		}
		return out
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	for i, s := range shares {
		out[i] = float64(cfg.SMs) * (s / sum)
	}
	return out
}

// runSteadyAnalytic is the analytic counterpart of runSteady: exact
// isolated anchors (memo hits), closed-form shared-L2 and shared-TLB miss
// estimates, then the identical timing tail. Returns the model's combined
// confidence; an isolated client is computed exactly (confidence 1).
func runSteadyAnalytic(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64) ([]Result, float64, error) {
	if len(workloads) == 1 {
		res, err := runSteady(cfg, memo, workloads, shares)
		return res, 1, err
	}
	n := len(workloads)
	lineSums := make([][]phasesum.PhaseSum, n)
	pageSums := make([][]phasesum.PhaseSum, n)
	rates := make([]int, n)
	isoMems := make([][]phaseMem, n)
	for ai, w := range workloads {
		sum, err := streamSummaryFor(memo, w, ai)
		if err != nil {
			return nil, 0, err
		}
		lineSums[ai] = sum.Line
		pageSums[ai] = sum.Page
		rates[ai] = sum.TotalRefs
		// Exact isolated anchor (memoized whole-run iso, slot 0): the
		// model predicts contention's *delta* on top of it. Slot-0
		// streams differ from slot-ai ones only in seed/base, so the
		// anchor transfers; the residual is what the oracle bounds.
		isoMem, _, _, err := simulateMemory(cfg, memo, []*trace.Workload{w})
		if err != nil {
			return nil, 0, err
		}
		isoMems[ai] = isoMem[0]
	}

	l2Cfg := phasesum.SharedConfig{Capacity: float64(cfg.L2Bytes) / memsim.LineSize}
	tlbCfg := phasesum.SharedConfig{Capacity: float64(cfg.TLBEntries)}
	if cfg.TLBFlushPeriod > 0 {
		// MPS context interleaving flushes the shared TLB only with more
		// than one resident client — the same n > 1 gate the exact
		// interleave applies.
		tlbCfg.FlushPeriod = float64(cfg.TLBFlushPeriod)
	}
	shL2 := phasesum.SharedMiss(lineSums, rates, l2Cfg)
	shTLB := phasesum.SharedMiss(pageSums, rates, tlbCfg)
	conf := phasesum.CombineConfidence(shL2, lineSums)
	if c := phasesum.CombineConfidence(shTLB, pageSums); c < conf {
		conf = c
	}
	// Hard guard: a partition thinner than one SM is outside the model's
	// regime — occupancy and MLP scaling there are dominated by effects
	// the summaries cannot see, so force the mixed tier to exact.
	for _, s := range smSharesOf(cfg, n, shares) {
		if s < 1 {
			conf = 0
			break
		}
	}

	mem := make([][]phaseMem, n)
	l2Rates := make([]float64, n)
	tlbRates := make([]float64, n)
	for ai, w := range workloads {
		// Isolated model anchors: single-client, no flushing — matching
		// the exact isolated interleave the anchors were measured on.
		isoL2 := phasesum.SharedMiss([][]phasesum.PhaseSum{lineSums[ai]}, []int{rates[ai]}, phasesum.SharedConfig{Capacity: l2Cfg.Capacity})
		isoTLB := phasesum.SharedMiss([][]phasesum.PhaseSum{pageSums[ai]}, []int{rates[ai]}, phasesum.SharedConfig{Capacity: tlbCfg.Capacity})
		pm := make([]phaseMem, len(w.Phases))
		var l2Sum, tlbSum, refSum float64
		for pi := range pm {
			refs := float64(lineSums[ai][pi].Refs)
			if refs == 0 {
				continue
			}
			l2m := phasesum.Clamp01(isoMems[ai][pi].l2Miss + shL2[ai][pi].Miss - isoL2[0][pi].Miss)
			tlbm := phasesum.Clamp01(isoMems[ai][pi].tlbMiss + shTLB[ai][pi].Miss - isoTLB[0][pi].Miss)
			pm[pi].l2Miss = l2m
			pm[pi].tlbMiss = tlbm
			l2Sum += l2m * refs
			tlbSum += tlbm * refs
			refSum += refs
		}
		mem[ai] = pm
		if refSum > 0 {
			l2Rates[ai] = l2Sum / refSum
			tlbRates[ai] = tlbSum / refSum
		}
	}
	return steadyFromMem(cfg, workloads, shares, mem, l2Rates, tlbRates), conf, nil
}

// RunMemoSharesFidelity is RunMemoShares with a fidelity tier. Exact
// fidelity (and every single-client run) delegates to RunMemoShares
// unchanged — bit-identical to the legacy path. Fast estimates every
// contended co-run analytically; mixed does so only while the model's
// self-reported confidence clears phasesum.DefaultMinConfidence, falling
// back to exact simulation below it (extreme share skew and sub-SM
// partitions land here by construction). The second return reports
// whether the exact simulator produced the result.
func RunMemoSharesFidelity(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64, fid phasesum.Fidelity) ([]Result, bool, error) {
	fid = fid.Effective()
	if !fid.Analytic() || len(workloads) == 1 {
		res, err := RunMemoShares(cfg, memo, workloads, shares)
		return res, true, err
	}
	if err := validateRun(cfg, workloads, shares); err != nil {
		return nil, false, err
	}
	// Evaluate the full-contention steady state once: it is both the
	// schedule's first step and the confidence the mixed tier gates on
	// (the full client set is the most contended, so its confidence is
	// the run's worst case).
	steady, conf, err := runSteadyAnalytic(cfg, memo, workloads, shares)
	if err != nil {
		return nil, false, err
	}
	if fid == phasesum.Mixed && conf < phasesum.DefaultMinConfidence {
		res, err := RunMemoShares(cfg, memo, workloads, shares)
		return res, true, err
	}
	first := true
	res, err := runPhased(cfg, workloads, shares, func(sub []*trace.Workload, subShares []float64) ([]Result, error) {
		if first && len(sub) == len(workloads) {
			first = false
			return steady, nil
		}
		r, _, err := runSteadyAnalytic(cfg, memo, sub, subShares)
		return r, err
	})
	return res, false, err
}
