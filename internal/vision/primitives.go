package vision

import (
	"math"

	"mapc/internal/trace"
)

// This file contains the instrumented image-processing primitives shared by
// the benchmarks. Each primitive performs the real computation and reports
// aggregate dynamic instruction counts to the recorder (the PIN analogue).
// Counting conventions, applied uniformly:
//
//   - one FP count per scalar floating-point add/mul/compare;
//   - vectorizable inner loops report floor(ops/vw) SSE ops plus the scalar
//     remainder as FP/ALU, where vw is the natural SIMD width (4 doubles);
//   - one MEM count per array element load or store;
//   - one ALU count per scalar integer add/sub/logic;
//   - one Shift count per multiply/shift used in addressing or fixed-point;
//   - one Control count per loop-back branch or data-dependent branch;
//   - Stack counts for per-call frame traffic in recursion-heavy code.
//
// The counts are accumulated per primitive call rather than per executed
// instruction, which keeps instrumentation overhead negligible while
// preserving the relative mix that MICA would report.

const simdWidth = 4

// vectorized splits n identical float ops into packed and scalar parts.
func vectorized(r *trace.Recorder, n uint64) {
	r.SSE(n / simdWidth)
	r.FP(n % simdWidth)
}

// GaussianKernel1D returns a normalized 1-D Gaussian kernel with the given
// sigma; the radius is ceil(2.5*sigma).
func GaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	radius := int(math.Ceil(2.5 * sigma))
	k := make([]float64, 2*radius+1)
	var sum float64
	inv := 1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) * inv)
		k[i+radius] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// ConvolveSeparable applies the 1-D kernel horizontally then vertically
// (clamped borders), returning a new image. This is the workhorse of the
// Gaussian scale-space construction in SIFT/SURF/HoG preprocessing.
func ConvolveSeparable(im *Image, kernel []float64, r *trace.Recorder) *Image {
	tmp := NewImage(im.W, im.H)
	out := NewImage(im.W, im.H)
	radius := len(kernel) / 2

	// Horizontal pass.
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var acc float64
			for i := -radius; i <= radius; i++ {
				acc += kernel[i+radius] * im.AtClamped(x+i, y)
			}
			tmp.Set(x, y, acc)
		}
	}
	// Vertical pass.
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var acc float64
			for i := -radius; i <= radius; i++ {
				acc += kernel[i+radius] * tmp.AtClamped(x, y+i)
			}
			out.Set(x, y, acc)
		}
	}

	n := uint64(im.W*im.H) * uint64(len(kernel)) * 2 // two passes
	vectorized(r, 2*n)                               // mul + add per tap
	r.Mem(n + 2*uint64(im.W*im.H))                   // tap loads + pass stores
	r.Control(n)                                     // tap-loop branches
	r.Shift(2 * uint64(im.W*im.H))                   // row addressing
	return out
}

// Sobel computes central-difference gradient images (gx, gy).
func Sobel(im *Image, r *trace.Recorder) (gx, gy *Image) {
	gx = NewImage(im.W, im.H)
	gy = NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx := im.AtClamped(x+1, y-1) + 2*im.AtClamped(x+1, y) + im.AtClamped(x+1, y+1) -
				im.AtClamped(x-1, y-1) - 2*im.AtClamped(x-1, y) - im.AtClamped(x-1, y+1)
			dy := im.AtClamped(x-1, y+1) + 2*im.AtClamped(x, y+1) + im.AtClamped(x+1, y+1) -
				im.AtClamped(x-1, y-1) - 2*im.AtClamped(x, y-1) - im.AtClamped(x+1, y-1)
			gx.Set(x, y, dx)
			gy.Set(x, y, dy)
		}
	}
	px := uint64(im.W * im.H)
	vectorized(r, px*14) // 10 adds + 4 mults per pixel
	r.Mem(px * 8)        // 6 loads + 2 stores
	r.Control(px)
	r.Shift(px) // addressing
	return gx, gy
}

// Downsample2x halves the image resolution by 2×2 averaging.
func Downsample2x(im *Image, r *trace.Recorder) *Image {
	w, h := im.W/2, im.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := im.AtClamped(2*x, 2*y) + im.AtClamped(2*x+1, 2*y) +
				im.AtClamped(2*x, 2*y+1) + im.AtClamped(2*x+1, 2*y+1)
			out.Set(x, y, s*0.25)
		}
	}
	px := uint64(w * h)
	vectorized(r, px*4)
	r.Mem(px * 5)
	r.Control(px)
	r.Shift(px * 2) // strided addressing
	return out
}

// Subtract returns a-b pixelwise (the DoG operator).
func Subtract(a, b *Image, r *trace.Recorder) *Image {
	out := NewImage(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	n := uint64(len(out.Pix))
	vectorized(r, n)
	r.Mem(n * 3)
	r.Control(n / simdWidth)
	return out
}

// Integral computes the summed-area table s where s(x,y) = sum of pixels in
// the rectangle [0..x, 0..y]. The table is (W+1)x(H+1) with a zero border so
// that box sums need no boundary tests.
type Integral struct {
	W, H int
	Sum  []float64
}

// NewIntegral builds the summed-area table of im.
func NewIntegral(im *Image, r *trace.Recorder) *Integral {
	w, h := im.W, im.H
	it := &Integral{W: w, H: h, Sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum float64
		for x := 1; x <= w; x++ {
			rowSum += im.At(x-1, y-1)
			it.Sum[y*stride+x] = it.Sum[(y-1)*stride+x] + rowSum
		}
	}
	px := uint64(w * h)
	r.FP(px * 2)  // rowSum add + column add (prefix dependency: scalar)
	r.Mem(px * 3) // pixel load, above load, store
	r.Control(px)
	r.Shift(px) // addressing
	return it
}

// BoxSum returns the sum of pixels in the rectangle [x0,y0]..(x1,y1)
// exclusive of x1,y1, i.e. width x1-x0, height y1-y0.
func (it *Integral) BoxSum(x0, y0, x1, y1 int) float64 {
	stride := it.W + 1
	return it.Sum[y1*stride+x1] - it.Sum[y0*stride+x1] -
		it.Sum[y1*stride+x0] + it.Sum[y0*stride+x0]
}

// CountBoxSum records the cost of n BoxSum evaluations.
func CountBoxSum(r *trace.Recorder, n uint64) {
	r.FP(n * 3)    // 3 adds/subs
	r.Mem(n * 4)   // 4 table loads
	r.Shift(n * 4) // addressing
	r.ALU(n * 4)
}

// L2Normalize scales v to unit Euclidean length in place (eps-guarded) and
// reports the cost. Used by HoG block normalization and SIFT descriptors.
func L2Normalize(v []float64, r *trace.Recorder) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	n := uint64(len(v))
	norm := math.Sqrt(ss) + 1e-12
	inv := 1 / norm
	for i := range v {
		v[i] *= inv
	}
	vectorized(r, n*3) // square+acc, scale
	r.FP(8)            // sqrt + divide, amortized
	r.Mem(n * 2)
	r.Control(n / simdWidth)
}

// Dist2 returns the squared Euclidean distance between equal-length vectors.
func Dist2(a, b []float64, r *trace.Recorder) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	n := uint64(len(a))
	vectorized(r, n*3)
	r.Mem(n * 2)
	r.Control(n / simdWidth)
	return s
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64, r *trace.Recorder) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	n := uint64(len(a))
	vectorized(r, n*2)
	r.Mem(n * 2)
	r.Control(n / simdWidth)
	return s
}

// HammingDistance counts differing bits between two binary descriptors.
func HammingDistance(a, b []uint64, r *trace.Recorder) int {
	var d int
	for i := range a {
		d += popcount(a[i] ^ b[i])
	}
	n := uint64(len(a))
	r.ALU(n * 2) // xor + popcount
	r.Str(n)     // byte/bit-block op, mirrors x86 string/packed byte ops
	r.Mem(n * 2)
	r.Control(n)
	return d
}

func popcount(x uint64) int {
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
