package sched

import (
	"errors"

	"mapc/internal/dataset"
)

// SerialFIFO runs one job at a time in arrival order — the no-concurrency
// baseline (the GPU is never shared, so there is no interference and no
// spatial-multiplexing benefit).
type SerialFIFO struct{}

// Name implements Policy.
func (SerialFIFO) Name() string { return "serial-fifo" }

// Pick implements Policy.
func (SerialFIFO) Pick(_ *Scheduler, pending []Job) ([]int, error) {
	return []int{0}, nil
}

// PairFIFO naively co-schedules adjacent arrivals — what an operator gets
// by turning MPS on without any placement intelligence.
type PairFIFO struct{}

// Name implements Policy.
func (PairFIFO) Name() string { return "pair-fifo" }

// Pick implements Policy.
func (PairFIFO) Pick(_ *Scheduler, pending []Job) ([]int, error) {
	if len(pending) == 1 {
		return []int{0}, nil
	}
	return []int{0, 1}, nil
}

// bagEstimator scores a candidate pair; PredictedPairing and OraclePairing
// differ only in where the estimate comes from.
type bagEstimator func(s *Scheduler, a, b dataset.Member) (float64, error)

// greedyPair picks the pair whose estimated bag time minimizes wasted GPU
// time relative to running its members serially; if no pair beats serial
// execution, it runs the longest pending job alone. The benefit metric is
// (serial sum - bag makespan), the GPU seconds the co-schedule saves.
func greedyPair(s *Scheduler, pending []Job, estimate bagEstimator) ([]int, error) {
	if len(pending) == 1 {
		return []int{0}, nil
	}
	serial := make([]float64, len(pending))
	for i, j := range pending {
		_, gpuSec, err := s.gen.IsolatedTimes(j.Member)
		if err != nil {
			return nil, err
		}
		serial[i] = gpuSec
	}
	bestI, bestJ := -1, -1
	bestSaving := 0.0
	for i := 0; i < len(pending); i++ {
		for j := i + 1; j < len(pending); j++ {
			bag, err := estimate(s, pending[i].Member, pending[j].Member)
			if err != nil {
				return nil, err
			}
			if saving := serial[i] + serial[j] - bag; saving > bestSaving {
				bestSaving = saving
				bestI, bestJ = i, j
			}
		}
	}
	if bestI < 0 {
		// No pair saves GPU time: drain the longest job alone.
		longest := 0
		for i := range serial {
			if serial[i] > serial[longest] {
				longest = i
			}
		}
		return []int{longest}, nil
	}
	return []int{bestI, bestJ}, nil
}

// PredictedPairing uses the paper's trained predictor to estimate every
// candidate bag and greedily launches the most beneficial pairing — the
// use-case the paper's introduction argues for.
type PredictedPairing struct{}

// Name implements Policy.
func (PredictedPairing) Name() string { return "predicted-pairing" }

// Pick implements Policy.
func (PredictedPairing) Pick(s *Scheduler, pending []Job) ([]int, error) {
	if s.predictor == nil {
		return nil, errors.New("sched: PredictedPairing needs a predictor")
	}
	return greedyPair(s, pending, func(s *Scheduler, a, b dataset.Member) (float64, error) {
		return s.PredictBag(a, b)
	})
}

// OraclePairing greedily pairs using measured bag times — the upper bound
// on what any predictor-guided pairing can achieve with this heuristic.
type OraclePairing struct{}

// Name implements Policy.
func (OraclePairing) Name() string { return "oracle-pairing" }

// Pick implements Policy.
func (OraclePairing) Pick(s *Scheduler, pending []Job) ([]int, error) {
	return greedyPair(s, pending, func(s *Scheduler, a, b dataset.Member) (float64, error) {
		return s.MeasureBag(a, b)
	})
}
