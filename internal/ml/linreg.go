package ml

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression is ordinary least squares fitted by solving the normal
// equations (Section II-B1). A small ridge term keeps the system solvable
// when features are collinear — which the paper notes they are, motivating
// its choice of trees over linear models.
type LinearRegression struct {
	// Ridge is the L2 regularization strength added to the diagonal of
	// the normal matrix; 0 requests pure OLS with a tiny numerical jitter
	// fallback.
	Ridge float64

	weights []float64 // per-feature coefficients
	bias    float64
	fitted  bool
}

// NewLinearRegression returns an unregularized OLS model.
func NewLinearRegression() *LinearRegression { return &LinearRegression{} }

// Fit estimates weights and bias on the dataset.
func (m *LinearRegression) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	n := d.Len()
	p := len(d.X[0])

	// Augmented design: p features plus an intercept column.
	dim := p + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for k := 0; k < n; k++ {
		copy(row, d.X[k])
		row[p] = 1
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * d.Y[k]
		}
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	ridge := m.Ridge
	if ridge <= 0 {
		ridge = 1e-9
	}
	for i := 0; i < p; i++ { // do not penalize the intercept
		ata[i][i] += ridge
	}

	sol, err := solveGauss(ata, atb)
	if err != nil {
		return fmt.Errorf("ml: linear regression: %w", err)
	}
	m.weights = sol[:p]
	m.bias = sol[p]
	m.fitted = true
	return nil
}

// Predict evaluates the linear model at x.
func (m *LinearRegression) Predict(x []float64) (float64, error) {
	if !m.fitted {
		return 0, errors.New("ml: linear regression not fitted")
	}
	if len(x) != len(m.weights) {
		return 0, fmt.Errorf("ml: feature vector width %d, model expects %d", len(x), len(m.weights))
	}
	y := m.bias
	for i, w := range m.weights {
		y += w * x[i]
	}
	return y, nil
}

// PredictAll predicts every row of X.
func (m *LinearRegression) PredictAll(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	for i, x := range X {
		v, err := m.Predict(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Coefficients returns a copy of the fitted weights and the bias.
func (m *LinearRegression) Coefficients() ([]float64, float64, error) {
	if !m.fitted {
		return nil, 0, errors.New("ml: linear regression not fitted")
	}
	return append([]float64(nil), m.weights...), m.bias, nil
}

// solveGauss solves Ax=b by Gaussian elimination with partial pivoting.
// A and b are modified in place.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-14 {
			return nil, errors.New("singular normal matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
