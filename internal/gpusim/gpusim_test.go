package gpusim

import (
	"testing"

	"mapc/internal/isa"
	"mapc/internal/trace"
)

func synthWorkload(name string, instr uint64, memFrac, ctrlFrac float64, pattern trace.Pattern, footprint int64, par int) *trace.Workload {
	var counts isa.Counts
	mem := uint64(float64(instr) * memFrac)
	ctrl := uint64(float64(instr) * ctrlFrac)
	counts.Add(isa.MEM, mem)
	counts.Add(isa.Control, ctrl)
	counts.Add(isa.FP, instr-mem-ctrl)
	return &trace.Workload{
		Benchmark: name, BatchSize: 1, TransferBytes: 1 << 20,
		Phases: []trace.Phase{{
			Name: "kernel", Counts: counts, Footprint: footprint,
			Pattern: pattern, StrideBytes: 64, Reuse: 0.2,
			Parallelism: par, VectorWidth: 1,
		}},
	}
}

func computeKernel(name string) *trace.Workload {
	return synthWorkload(name, 200_000_000, 0.05, 0.02, trace.Sequential, 1<<20, 1<<22)
}

func memKernel(name string) *trace.Workload {
	return synthWorkload(name, 200_000_000, 0.5, 0.02, trace.Random, 64<<20, 1<<22)
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SMs = 0 },
		func(c *Config) { c.WarpSize = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.L2Bytes = 0 },
		func(c *Config) { c.TLBEntries = 0 },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.PCIeBandwidth = 0 },
		func(c *Config) { c.PCIeLatencySec = -1 },
		func(c *Config) { c.MLP = 0 },
		func(c *Config) { c.FullUtilThreads = 0 },
		func(c *Config) { c.Throughput[isa.FP] = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, nil); err == nil {
		t.Error("empty workload list accepted")
	}
	if _, err := Run(cfg, []*trace.Workload{nil}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(cfg, []*trace.Workload{{}}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSingleRunBasics(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, []*trace.Workload{computeKernel("k")})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.TimeSec <= 0 || r.IPC <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	if r.SMShare != float64(cfg.SMs) {
		t.Errorf("single client SM share %v", r.SMShare)
	}
}

func TestMPSSlowdown(t *testing.T) {
	cfg := DefaultConfig()
	w := computeKernel("k")
	alone, err := Run(cfg, []*trace.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Run(cfg, []*trace.Workload{w.Clone(), w.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	slow := pair[0].TimeSec / alone[0].TimeSec
	// SM partitioning halves compute throughput: a saturating
	// compute-bound kernel must slow by roughly 2x.
	if slow < 1.5 || slow > 2.6 {
		t.Fatalf("homogeneous compute pair slowdown %.2f outside [1.5, 2.6]", slow)
	}
	if pair[0].SMShare != float64(cfg.SMs)/2 {
		t.Errorf("pair SM share %v", pair[0].SMShare)
	}
}

func TestSlowdownGrowsWithClients(t *testing.T) {
	cfg := DefaultConfig()
	w := memKernel("m")
	var prev float64
	for n := 1; n <= 4; n++ {
		ws := make([]*trace.Workload, n)
		for i := range ws {
			ws[i] = w.Clone()
		}
		res, err := Run(cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].TimeSec <= prev {
			t.Fatalf("time did not grow from %d to %d clients (%v <= %v)",
				n-1, n, res[0].TimeSec, prev)
		}
		prev = res[0].TimeSec
	}
}

func TestDivergencePenalizesBranchyKernels(t *testing.T) {
	cfg := DefaultConfig()
	smooth := synthWorkload("smooth", 100_000_000, 0.05, 0.0, trace.Sequential, 1<<20, 1<<22)
	branchy := synthWorkload("branchy", 100_000_000, 0.05, 0.4, trace.Sequential, 1<<20, 1<<22)
	rs, err := Run(cfg, []*trace.Workload{smooth})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(cfg, []*trace.Workload{branchy})
	if err != nil {
		t.Fatal(err)
	}
	if rb[0].TimeSec <= rs[0].TimeSec {
		t.Fatalf("branchy kernel (%v) not slower than smooth (%v)",
			rb[0].TimeSec, rs[0].TimeSec)
	}
}

func TestLowOccupancySlower(t *testing.T) {
	cfg := DefaultConfig()
	wide := synthWorkload("wide", 100_000_000, 0.3, 0.02, trace.Random, 16<<20, 1<<22)
	narrow := synthWorkload("narrow", 100_000_000, 0.3, 0.02, trace.Random, 16<<20, 256)
	rw, err := Run(cfg, []*trace.Workload{wide})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Run(cfg, []*trace.Workload{narrow})
	if err != nil {
		t.Fatal(err)
	}
	if rn[0].TimeSec <= rw[0].TimeSec {
		t.Fatalf("low-parallelism kernel (%v) not slower than wide one (%v)",
			rn[0].TimeSec, rw[0].TimeSec)
	}
}

func TestTransferAddsTime(t *testing.T) {
	cfg := DefaultConfig()
	with := computeKernel("k")
	without := with.Clone()
	without.TransferBytes = 0
	rw, err := Run(cfg, []*trace.Workload{with})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(cfg, []*trace.Workload{without})
	if err != nil {
		t.Fatal(err)
	}
	if rw[0].TimeSec <= ro[0].TimeSec {
		t.Fatal("PCIe transfer did not add time")
	}
}

func TestBagTime(t *testing.T) {
	if got := BagTime([]Result{{TimeSec: 1}, {TimeSec: 3}, {TimeSec: 2}}); got != 3 {
		t.Fatalf("BagTime = %v", got)
	}
	if got := BagTime(nil); got != 0 {
		t.Fatalf("BagTime(nil) = %v", got)
	}
}

func TestPhasedShortJobExitsEarly(t *testing.T) {
	cfg := DefaultConfig()
	short := synthWorkload("short", 5_000_000, 0.3, 0.02, trace.Random, 8<<20, 1<<22)
	long := synthWorkload("long", 500_000_000, 0.3, 0.02, trace.Random, 8<<20, 1<<22)
	aloneLong, err := Run(cfg, []*trace.Workload{long.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Run(cfg, []*trace.Workload{short.Clone(), long.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if pair[0].TimeSec >= pair[1].TimeSec {
		t.Fatal("short job did not finish first")
	}
	// The long job runs nearly alone: its completion must be far below
	// the full-contention bound of ~2x isolated.
	if pair[1].TimeSec > aloneLong[0].TimeSec*1.4 {
		t.Fatalf("long job slowed %.2fx by a brief co-runner",
			pair[1].TimeSec/aloneLong[0].TimeSec)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	cfg := DefaultConfig()
	w := computeKernel("k")
	bd, err := PhaseBreakdown(cfg, []*trace.Workload{w}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != len(w.Phases) {
		t.Fatalf("breakdown has %d phases, workload %d", len(bd), len(w.Phases))
	}
	for i, p := range bd {
		if p.TotalCycles <= 0 {
			t.Errorf("phase %d total cycles %v", i, p.TotalCycles)
		}
		if p.Occupancy <= 0 || p.Occupancy > 1 {
			t.Errorf("phase %d occupancy %v", i, p.Occupancy)
		}
		if p.TotalCycles < p.ComputeCycles {
			t.Errorf("phase %d total < compute bound", i)
		}
	}
	if _, err := PhaseBreakdown(cfg, []*trace.Workload{w}, 5); err == nil {
		t.Error("out-of-range client accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{memKernel("a"), computeKernel("b")}
	r1, err := Run(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].TimeSec != r2[i].TimeSec {
			t.Fatalf("client %d time differs across identical runs", i)
		}
	}
}

func TestTLBContentionWithManyClients(t *testing.T) {
	// Shared-TLB pressure: a kernel's TLB miss rate must not decrease
	// when a second address space competes for the entries.
	cfg := DefaultConfig()
	w := memKernel("m")
	alone, err := Run(cfg, []*trace.Workload{w.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Run(cfg, []*trace.Workload{w.Clone(), w.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if pair[0].TLBMissRate < alone[0].TLBMissRate*0.999 {
		t.Fatalf("TLB miss rate dropped under sharing: %v -> %v",
			alone[0].TLBMissRate, pair[0].TLBMissRate)
	}
}

func TestPatternCoalescing(t *testing.T) {
	// With coalescing on, an LSU-bound sequential kernel gets faster; a
	// random-access kernel must be unaffected.
	seqK := synthWorkload("seq", 100_000_000, 0.9, 0.0, trace.Sequential, 1<<20, 1<<22)
	rndK := synthWorkload("rnd", 100_000_000, 0.9, 0.0, trace.Random, 1<<20, 1<<22)
	run := func(w *trace.Workload, coalesce bool) float64 {
		cfg := DefaultConfig()
		cfg.PatternCoalescing = coalesce
		r, err := Run(cfg, []*trace.Workload{w.Clone()})
		if err != nil {
			t.Fatal(err)
		}
		return r[0].TimeSec
	}
	if on, off := run(seqK, true), run(seqK, false); on >= off {
		t.Errorf("coalescing did not speed a sequential kernel: %v vs %v", on, off)
	}
	if on, off := run(rndK, true), run(rndK, false); on != off {
		t.Errorf("coalescing changed a random-access kernel: %v vs %v", on, off)
	}
}
