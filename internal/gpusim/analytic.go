package gpusim

import (
	"mapc/internal/memsim"
	"mapc/internal/phasesum"
	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// This file is the GPU side of the fast fidelity tier (see
// internal/phasesum): the contended co-run — the shared L2 and shared TLB
// interleave with periodic MPS flushes that RunMemoShares replays
// reference-by-reference — is replaced by closed-form capacity-sharing
// estimates over memoized per-phase reuse sketches (lines for the L2,
// pages for the TLB). Isolated runs stay exact and anchor the deltas.

// memoDomainSum caches the reuse sketch of one client's reference stream.
// Stream generation is pure in (workload, slot) — see streamEntry — so
// sketches are keyed with an empty Config and shared across device
// configurations.
const memoDomainSum = "gpusim/sum"

// summaryEntry is the memoized sketch; immutable once published.
type summaryEntry struct{ sum phasesum.Summary }

// streamFor returns client w's materialized stream for slot ai — through
// the "gpusim/stream" memo when available (the same entries the exact
// shared path uses), cold otherwise.
func streamFor(memo *simcache.Cache, w *trace.Workload, ai int) (streamEntry, error) {
	count := 0
	for pi := range w.Phases {
		if refs := w.Phases[pi].MemRefs(); refs > 0 {
			count += memsim.SampleRefs(refs)
		}
	}
	if memo == nil {
		return materializeStream(w, ai, make([]uint64, count))
	}
	key := simcache.Key{Domain: memoDomainStream, Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		se, err := materializeStream(w, ai, make([]uint64, count))
		if err != nil {
			return nil, 0, err
		}
		return se, se.bytes(), nil
	})
	if err != nil {
		return streamEntry{}, err
	}
	return v.(streamEntry), nil
}

// streamSummaryFor returns the memoized reuse sketch of client w's stream
// at slot ai.
func streamSummaryFor(memo *simcache.Cache, w *trace.Workload, ai int) (phasesum.Summary, error) {
	if memo == nil {
		se, err := streamFor(memo, w, ai)
		if err != nil {
			return phasesum.Summary{}, err
		}
		return phasesum.Summarize(se.addrs, se.ends), nil
	}
	key := simcache.Key{Domain: memoDomainSum, Workload: w.Fingerprint(), Slot: ai}
	v, _, err := memo.GetOrCompute(key, func() (any, int64, error) {
		se, err := streamFor(memo, w, ai)
		if err != nil {
			return nil, 0, err
		}
		sum := phasesum.Summarize(se.addrs, se.ends)
		return summaryEntry{sum: sum}, sum.Bytes(), nil
	})
	if err != nil {
		return phasesum.Summary{}, err
	}
	return v.(summaryEntry).sum, nil
}

// smSharesOf mirrors steadyFromMem's SM partitioning: equal split for nil
// shares, normalized weights otherwise.
func smSharesOf(cfg Config, n int, shares []float64) []float64 {
	out := make([]float64, n)
	if shares == nil {
		equal := float64(cfg.SMs) / float64(n)
		for i := range out {
			out[i] = equal
		}
		return out
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	for i, s := range shares {
		out[i] = float64(cfg.SMs) * (s / sum)
	}
	return out
}

// analyticGate is the steady evaluation's self-assessment: the combined
// model confidence after the share and bandwidth terms, and — when conf
// sits under phasesum.DefaultMinConfidence — which term pushed it there.
type analyticGate struct {
	conf   float64
	reason phasesum.FallbackReason
}

// runSteadyAnalytic is the analytic counterpart of runSteady: exact
// isolated anchors (memo hits), closed-form shared-L2 and shared-TLB miss
// estimates, then the identical timing tail. Returns the model's gate
// (combined confidence plus the would-be fallback reason); an isolated
// client is computed exactly (confidence 1).
func runSteadyAnalytic(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64) ([]Result, analyticGate, error) {
	if len(workloads) == 1 {
		res, err := runSteady(cfg, memo, workloads, shares)
		return res, analyticGate{conf: 1}, err
	}
	n := len(workloads)
	lineSums := make([][]phasesum.PhaseSum, n)
	pageSums := make([][]phasesum.PhaseSum, n)
	rates := make([]int, n)
	isoMems := make([][]phaseMem, n)
	for ai, w := range workloads {
		sum, err := streamSummaryFor(memo, w, ai)
		if err != nil {
			return nil, analyticGate{}, err
		}
		lineSums[ai] = sum.Line
		pageSums[ai] = sum.Page
		rates[ai] = sum.TotalRefs
		// Exact isolated anchor (memoized whole-run iso, slot 0): the
		// model predicts contention's *delta* on top of it. Slot-0
		// streams differ from slot-ai ones only in seed/base, so the
		// anchor transfers; the residual is what the oracle bounds.
		isoMem, _, _, err := simulateMemory(cfg, memo, []*trace.Workload{w})
		if err != nil {
			return nil, analyticGate{}, err
		}
		isoMems[ai] = isoMem[0]
	}

	l2Cfg := phasesum.SharedConfig{Capacity: float64(cfg.L2Bytes) / memsim.LineSize}
	tlbCfg := phasesum.SharedConfig{Capacity: float64(cfg.TLBEntries)}
	if cfg.TLBFlushPeriod > 0 {
		// MPS context interleaving flushes the shared TLB only with more
		// than one resident client — the same n > 1 gate the exact
		// interleave applies.
		tlbCfg.FlushPeriod = float64(cfg.TLBFlushPeriod)
	}
	shL2 := phasesum.SharedMiss(lineSums, rates, l2Cfg)
	shTLB := phasesum.SharedMiss(pageSums, rates, tlbCfg)
	conf := phasesum.CombineConfidence(shL2, lineSums)
	if c := phasesum.CombineConfidence(shTLB, pageSums); c < conf {
		conf = c
	}
	smShares := smSharesOf(cfg, n, shares)

	mem := make([][]phaseMem, n)
	l2Rates := make([]float64, n)
	tlbRates := make([]float64, n)
	for ai, w := range workloads {
		// Isolated model anchors: single-client, no flushing — matching
		// the exact isolated interleave the anchors were measured on.
		isoL2 := phasesum.SharedMiss([][]phasesum.PhaseSum{lineSums[ai]}, []int{rates[ai]}, phasesum.SharedConfig{Capacity: l2Cfg.Capacity})
		isoTLB := phasesum.SharedMiss([][]phasesum.PhaseSum{pageSums[ai]}, []int{rates[ai]}, phasesum.SharedConfig{Capacity: tlbCfg.Capacity})
		pm := make([]phaseMem, len(w.Phases))
		var l2Sum, tlbSum, refSum float64
		for pi := range pm {
			refs := float64(lineSums[ai][pi].Refs)
			if refs == 0 {
				continue
			}
			l2m := phasesum.Clamp01(isoMems[ai][pi].l2Miss + shL2[ai][pi].Miss - isoL2[0][pi].Miss)
			tlbm := phasesum.Clamp01(isoMems[ai][pi].tlbMiss + shTLB[ai][pi].Miss - isoTLB[0][pi].Miss)
			pm[pi].l2Miss = l2m
			pm[pi].tlbMiss = tlbm
			l2Sum += l2m * refs
			tlbSum += tlbm * refs
			refSum += refs
		}
		mem[ai] = pm
		if refSum > 0 {
			l2Rates[ai] = l2Sum / refSum
			tlbRates[ai] = tlbSum / refSum
		}
	}

	// DRAM-contention term: each client's demanded rate is its modelled
	// miss traffic spread over the anchored per-partition time (the same
	// prelim pass steadyFromMem feeds its waterfill from, before the
	// bandwidth floor applies). The bound fraction raises confidence —
	// saturated phase times are pinned by bytes/bandwidth and stop caring
	// about threshold-straddling reuse mass — while demand far past the
	// device bandwidth trips a hard regime gate. See phasesum/shares.go.
	demands := make([]phasesum.BandwidthDemand, n)
	for ai, w := range workloads {
		cycles, bytes := appCycles(cfg, w, mem[ai], smShares[ai], n, 0)
		demands[ai] = phasesum.BandwidthDemand{Bytes: bytes, Sec: cycles / (cfg.FreqGHz * 1e9)}
	}
	gate := analyticGate{conf: conf}
	if phasesum.TotalBandwidthDemand(demands) > phasesum.BandwidthGateRatio*cfg.DRAMBandwidth {
		gate = analyticGate{conf: 0, reason: phasesum.FallbackBandwidthGate}
	} else {
		bwConf := phasesum.BandwidthConfidence(conf, phasesum.BandwidthBoundFrac(cfg.DRAMBandwidth, demands))
		// The share penalty replaces the former sub-SM hard refusal: a
		// continuous effective-capacity deflation by the thinnest client's
		// partition (phasesum.ShareConfidence), applied after the
		// bandwidth blend so extreme skew still demotes saturated bags.
		gate.conf = bwConf * phasesum.ShareConfidence(smShares)
		if gate.conf < phasesum.DefaultMinConfidence {
			if bwConf >= phasesum.DefaultMinConfidence {
				gate.reason = phasesum.FallbackSubSMShare
			} else {
				gate.reason = phasesum.FallbackLowConfidence
			}
		}
	}
	return steadyFromMem(cfg, workloads, shares, mem, l2Rates, tlbRates), gate, nil
}

// RunMemoSharesFidelity is RunMemoShares with a fidelity tier. Exact
// fidelity (and every single-client run) delegates to RunMemoShares
// unchanged — bit-identical to the legacy path. Fast estimates every
// contended co-run analytically; mixed does so only while the model's
// self-reported confidence clears phasesum.DefaultMinConfidence, falling
// back to exact simulation below it (extreme share skew and demand far
// past the device bandwidth land here by construction). The returned
// RunKind reports which simulator answered and, for mixed-tier
// fallbacks, which gate bounced the run.
func RunMemoSharesFidelity(cfg Config, memo *simcache.Cache, workloads []*trace.Workload, shares []float64, fid phasesum.Fidelity) ([]Result, phasesum.RunKind, error) {
	fid = fid.Effective()
	if !fid.Analytic() || len(workloads) == 1 {
		res, err := RunMemoShares(cfg, memo, workloads, shares)
		return res, phasesum.RunKind{UsedExact: true}, err
	}
	if err := validateRun(cfg, workloads, shares); err != nil {
		return nil, phasesum.RunKind{}, err
	}
	// Evaluate the full-contention steady state once: it is both the
	// schedule's first step and the confidence the mixed tier gates on
	// (the full client set is the most contended, so its confidence is
	// the run's worst case).
	steady, gate, err := runSteadyAnalytic(cfg, memo, workloads, shares)
	if err != nil {
		return nil, phasesum.RunKind{}, err
	}
	if fid == phasesum.Mixed && gate.conf < phasesum.DefaultMinConfidence {
		res, err := RunMemoShares(cfg, memo, workloads, shares)
		return res, phasesum.RunKind{UsedExact: true, Fallback: gate.reason}, err
	}
	first := true
	res, err := runPhased(cfg, workloads, shares, func(sub []*trace.Workload, subShares []float64) ([]Result, error) {
		if first && len(sub) == len(workloads) {
			first = false
			return steady, nil
		}
		r, _, err := runSteadyAnalytic(cfg, memo, sub, subShares)
		return r, err
	})
	return res, phasesum.RunKind{}, err
}
