// Command mapc-train generates the corpus, trains the decision-tree
// predictor with a chosen feature scheme, reports cross-validation error,
// and optionally prints the learned tree for manual decision-path analysis
// (Section VI-C).
//
// Usage:
//
//	mapc-train                         # full scheme, LOOCV report
//	mapc-train -scheme insmix+cputime  # one of the Figure-5 schemes
//	mapc-train -dump-tree              # print the fitted tree
//	mapc-train -protocol containing    # stricter LOOCV protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/phasesum"
)

func main() {
	schemeName := flag.String("scheme", "full", "feature scheme: insmix, insmix+cputime, insmix+cputime+fairness, full")
	dumpTree := flag.Bool("dump-tree", false, "print the tree fitted on the full corpus")
	protoName := flag.String("protocol", "own", "LOOCV protocol: own (hold out the benchmark's homogeneous points) or containing (hold out every bag containing it)")
	maxDepth := flag.Int("max-depth", 0, "tree depth bound (0 = unbounded)")
	outModel := flag.String("o", "", "save the full-corpus model to this JSON file")
	k := flag.Int("k", 2, "bag size: applications co-scheduled per corpus point (2 = the paper's 91-run pair corpus, up to 8)")
	workers := flag.Int("workers", 0, "measurement/fold worker goroutines (0 = NumCPU, 1 = serial); results are identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	fidelity := flag.String("fidelity", "exact", "co-run fidelity tier: exact | mixed | fast (analytic co-runs trade accuracy for speed; isolated runs stay exact)")
	flag.Parse()

	scheme, ok := core.SchemeByName(*schemeName)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}
	protocol := core.HoldOutOwn
	switch *protoName {
	case "own":
	case "containing":
		protocol = core.HoldOutContaining
	default:
		fatal(fmt.Errorf("unknown protocol %q", *protoName))
	}

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	cfg.K = *k
	fid, err := phasesum.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	cfg.Fidelity = fid
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapc-train: generating %d-app-bag corpus (%d workers)...\n",
		cfg.EffectiveK(), cfg.EffectiveWorkers())
	corpus, err := gen.Generate()
	if err != nil {
		fatal(err)
	}

	params := core.DefaultTreeParams()
	params.MaxDepth = *maxDepth
	results, err := core.LOOCVWorkers(corpus, scheme, params, protocol, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scheme=%s protocol=%s\n", scheme.Name, protocol)
	for _, r := range results {
		fmt.Printf("  %-8s mean rel. error %7.2f%% over %d points\n",
			r.Benchmark, r.MeanRelErr, len(r.PerPoint))
	}
	fmt.Printf("  %-8s mean rel. error %7.2f%%\n", "MEAN", core.MeanLOOCVError(results))

	var fullModel *core.Predictor
	if *outModel != "" || *dumpTree {
		fullModel, err = core.Train(corpus, scheme, params)
		if err != nil {
			fatal(err)
		}
	}
	if *outModel != "" {
		if err := fullModel.SaveFile(*outModel); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mapc-train: saved model to %s\n", *outModel)
	}

	if *dumpTree {
		p := fullModel
		fmt.Println("\nfitted tree (full corpus):")
		fmt.Print(p.Tree().Export(p.FeatureNames()))
		imps, err := p.Tree().FeatureImportances()
		if err != nil {
			fatal(err)
		}
		fmt.Println("feature importances:")
		for i, name := range p.FeatureNames() {
			if imps[i] > 0 {
				fmt.Printf("  %-12s %.4f\n", name, imps[i])
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-train:", err)
	os.Exit(1)
}
