package vision

import (
	"math"

	"mapc/internal/trace"
)

// SURF implements Speeded-Up Robust Features (Bay et al.): box-filter
// approximations of the Hessian determinant evaluated over an integral
// image at multiple filter sizes, scale-space extrema detection, and 64-d
// descriptors built from Haar-wavelet responses in 4x4 subregions.
type SURF struct {
	FilterSizes []int   // box filter side lengths (9, 15, 21, 27 ≈ octave 1-2)
	HessThresh  float64 // determinant threshold for keypoints
}

// NewSURF returns the standard first-octave configuration.
func NewSURF() *SURF {
	return &SURF{FilterSizes: []int{9, 15, 21}, HessThresh: 40}
}

// Name implements Benchmark.
func (s *SURF) Name() string { return "surf" }

// Scene implements Benchmark.
func (s *SURF) Scene() SceneKind { return SceneTextured }

func (s *SURF) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var kpTotal int
	var descSum float64
	for _, im := range images {
		kps, descs := s.DetectAndDescribe(im, rec)
		kpTotal += len(kps)
		for _, d := range descs {
			for _, v := range d {
				descSum += v
			}
		}
	}
	n := float64(len(images))
	return map[string]float64{
		"keypoints": float64(kpTotal) / n,
		"descSum":   descSum / n,
	}, nil
}

// DetectAndDescribe runs the SURF pipeline on one image.
func (s *SURF) DetectAndDescribe(im *Image, rec *trace.Recorder) ([]Keypoint, [][]float64) {
	// Phase 1: integral image (sequential prefix sums, scalar FP).
	rec.BeginPhase("surf-integral", im.Bytes()*2, trace.PhaseOpts{
		Pattern:     trace.Sequential,
		Reuse:       0.3,
		Parallelism: im.H, // row-parallel with a scan dependency
		VectorWidth: 1,
	})
	it := NewIntegral(im, rec)
	rec.EndPhase()

	// Phase 2: Hessian response maps at each filter size. BoxSum gathers
	// across the integral image: strided + windowed mixture.
	rec.BeginPhase("surf-hessian", im.Bytes()*int64(len(s.FilterSizes)), trace.PhaseOpts{
		Pattern:     trace.Strided,
		StrideBytes: int64(s.FilterSizes[0]) * 8,
		Reuse:       0.55,
		Parallelism: im.W * im.H * len(s.FilterSizes),
		VectorWidth: 1,
	})
	maps := make([]*Image, len(s.FilterSizes))
	for i, fs := range s.FilterSizes {
		maps[i] = s.hessianMap(it, fs, rec)
	}
	rec.EndPhase()

	// Phase 3: extrema across adjacent scales + descriptor from Haar
	// wavelet responses.
	var kps []Keypoint
	rec.BeginPhase("surf-extrema", im.Bytes()*int64(len(maps)), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.7,
		Parallelism: im.W * im.H,
		VectorWidth: 1,
	})
	var probes uint64
	for mi := 1; mi+1 < len(maps); mi++ {
		m := maps[mi]
		border := s.FilterSizes[mi+1]/2 + 1
		for y := border; y < m.H-border; y++ {
			for x := border; x < m.W-border; x++ {
				v := m.At(x, y)
				probes++
				if v < s.HessThresh {
					continue
				}
				if isLocalMax3x3x3(maps[mi-1], m, maps[mi+1], x, y, v) {
					kps = append(kps, Keypoint{X: x, Y: y, Score: v, Octave: mi})
				}
				probes += 26
			}
		}
	}
	rec.Mem(probes)
	rec.FP(probes)
	rec.Control(probes * 2)
	rec.EndPhase()

	rec.BeginPhase("surf-descriptors", int64(len(kps))*64*8+im.Bytes(), trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.45,
		Parallelism: maxInt(len(kps), 1),
		VectorWidth: simdWidth,
	})
	descs := make([][]float64, len(kps))
	for i, kp := range kps {
		descs[i] = s.descriptor(it, kp, rec)
	}
	rec.EndPhase()
	return kps, descs
}

// hessianMap evaluates the box-filter det(Hessian) approximation at one
// filter size: Dxx*Dyy - (0.9*Dxy)^2, normalized by filter area.
func (s *SURF) hessianMap(it *Integral, fs int, rec *trace.Recorder) *Image {
	out := NewImage(it.W, it.H)
	half := fs / 2
	third := fs / 3
	norm := 1 / float64(fs*fs)
	var evals uint64
	for y := half + 1; y < it.H-half-1; y++ {
		for x := half + 1; x < it.W-half-1; x++ {
			// Dxx: three vertical bands (+1, -2, +1).
			dxx := it.BoxSum(x-half, y-third, x-third+1, y+third) -
				2*it.BoxSum(x-third+1, y-third, x+third, y+third) +
				it.BoxSum(x+third, y-third, x+half+1, y+third)
			// Dyy: three horizontal bands.
			dyy := it.BoxSum(x-third, y-half, x+third, y-third+1) -
				2*it.BoxSum(x-third, y-third+1, x+third, y+third) +
				it.BoxSum(x-third, y+third, x+third, y+half+1)
			// Dxy: four diagonal quadrants.
			dxy := it.BoxSum(x-third, y-third, x, y) + it.BoxSum(x, y, x+third, y+third) -
				it.BoxSum(x-third, y, x, y+third) - it.BoxSum(x, y-third, x+third, y)
			dxy *= 0.9
			out.Set(x, y, (dxx*dyy-dxy*dxy)*norm*norm)
			evals++
		}
	}
	CountBoxSum(rec, evals*10)
	rec.FP(evals * 8)
	rec.Mem(evals)
	rec.Control(evals)
	return out
}

// isLocalMax3x3x3 reports whether v at (x,y) strictly dominates its 26
// scale-space neighbours.
func isLocalMax3x3x3(below, mid, above *Image, x, y int, v float64) bool {
	for _, layer := range []*Image{below, mid, above} {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if layer == mid && dx == 0 && dy == 0 {
					continue
				}
				if layer.AtClamped(x+dx, y+dy) >= v {
					return false
				}
			}
		}
	}
	return true
}

// descriptor builds the 64-d SURF descriptor: 4x4 subregions around the
// keypoint, each contributing (Σdx, Σdy, Σ|dx|, Σ|dy|) of Haar responses.
func (s *SURF) descriptor(it *Integral, kp Keypoint, rec *trace.Recorder) []float64 {
	desc := make([]float64, 64)
	step := 2 + kp.Octave // sampling step grows with scale
	var samples uint64
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			var sdx, sdy, adx, ady float64
			for py := 0; py < 5; py++ {
				for px := 0; px < 5; px++ {
					x := kp.X + (sx-2)*5*step/2 + px*step/2
					y := kp.Y + (sy-2)*5*step/2 + py*step/2
					if x < 2 || x >= it.W-2 || y < 2 || y >= it.H-2 {
						continue
					}
					// 4x4 Haar wavelets from the integral image.
					dx := it.BoxSum(x, y-2, x+2, y+2) - it.BoxSum(x-2, y-2, x, y+2)
					dy := it.BoxSum(x-2, y, x+2, y+2) - it.BoxSum(x-2, y-2, x+2, y)
					sdx += dx
					sdy += dy
					adx += math.Abs(dx)
					ady += math.Abs(dy)
					samples++
				}
			}
			base := (sy*4 + sx) * 4
			desc[base] = sdx
			desc[base+1] = sdy
			desc[base+2] = adx
			desc[base+3] = ady
		}
	}
	CountBoxSum(rec, samples*4)
	rec.FP(samples * 8)
	rec.Control(samples * 2)
	rec.ALU(samples * 4)
	L2Normalize(desc, rec)
	return desc
}
