package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mapc/internal/core"
	"mapc/internal/dataset"
)

var (
	k3Once sync.Once
	k3Gen  *dataset.Generator
	k3Mod  *core.Predictor
	k3Err  error
)

// k3Fixture trains a 3-app-bag model (sift+surf+knn, 2 batch sizes) once
// per package, mirroring the pair fixture one k up.
func k3Fixture(t *testing.T) (*dataset.Generator, *core.Predictor) {
	t.Helper()
	k3Once.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Benchmarks = []string{"sift", "surf", "knn"}
		cfg.BatchSizes = []int{20, 40}
		cfg.MixedPairs = 0
		cfg.K = 3
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			k3Err = err
			return
		}
		corpus, err := gen.Generate()
		if err != nil {
			k3Err = err
			return
		}
		k3Mod, k3Err = core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
		k3Gen = gen
	})
	if k3Err != nil {
		t.Fatal(k3Err)
	}
	return k3Gen, k3Mod
}

func newK3Server(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	gen, mod := k3Fixture(t)
	cfg := Config{Model: mod, Generator: gen, Workers: 2}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.trainedK != 3 {
		t.Fatalf("server inferred trainedK=%d from the 3-app model", s.trainedK)
	}
	return s
}

const k3Body = `{"bag":[{"benchmark":"sift","batch":20},{"benchmark":"surf","batch":40},{"benchmark":"knn","batch":20}]}`

// TestPredictK3BagParityAndPermutation is the serve-side tentpole check:
// a 3-app bag served over HTTP matches the offline BagFeatures+PredictRaw
// path exactly, repeated and permuted requests hit the same canonical
// cache entry, and the k>2 response shape drops the legacy a/b fields
// while always listing members.
func TestPredictK3BagParityAndPermutation(t *testing.T) {
	gen, mod := k3Fixture(t)
	s := newK3Server(t, nil)
	h := s.Handler()

	bag := []dataset.Member{
		{Benchmark: "sift", Batch: 20},
		{Benchmark: "surf", Batch: 40},
		{Benchmark: "knn", Batch: 20},
	}
	x, fairness, err := gen.BagFeatures(bag)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mod.PredictRaw(x)
	if err != nil {
		t.Fatal(err)
	}

	var cached bool
	for i := 0; i < 2; i++ {
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", k3Body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: code %d body %s", i, rr.Code, rr.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 {
			t.Fatalf("%d results", len(resp.Results))
		}
		got := resp.Results[0]
		if got.PredictedSec != want {
			t.Errorf("request %d: served %v, offline path computed %v", i, got.PredictedSec, want)
		}
		if got.Fairness != fairness {
			t.Errorf("request %d: fairness %v, want %v", i, got.Fairness, fairness)
		}
		if len(got.Members) != 3 {
			t.Errorf("request %d: %d members in response", i, len(got.Members))
		}
		if got.A != nil || got.B != nil {
			t.Errorf("request %d: legacy a/b fields populated on a 3-app bag", i)
		}
		cached = got.Cached
	}
	if !cached {
		t.Error("second identical 3-app request was not served from the feature cache")
	}

	// Every permutation of the members, in either request form, is the
	// same canonical bag: cached hit, identical prediction.
	perms := [][]int{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, p := range perms {
		ms := make([]string, 3)
		for i, j := range p {
			ms[i] = fmt.Sprintf(`{"benchmark":%q,"batch":%d}`, bag[j].Benchmark, bag[j].Batch)
		}
		for _, body := range []string{
			fmt.Sprintf(`{"bag":[%s]}`, strings.Join(ms, ",")),
			fmt.Sprintf(`{"bags":[{"members":[%s]}]}`, strings.Join(ms, ",")),
		} {
			rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
			if rr.Code != http.StatusOK {
				t.Fatalf("perm %v: code %d body %s", p, rr.Code, rr.Body)
			}
			var resp PredictResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			got := resp.Results[0]
			if !got.Cached || got.PredictedSec != want || got.Fairness != fairness {
				t.Errorf("perm %v: cached=%v pred=%v fairness=%v, want cached hit of %v/%v",
					p, got.Cached, got.PredictedSec, got.Fairness, want, fairness)
			}
		}
	}
	// All permutations share one cache entry.
	if n := s.cache.Len(); n != 1 {
		t.Errorf("cache holds %d entries after permuted requests, want 1", n)
	}
}

// TestPredictWrongBagSize400 pins the descriptive rejection in both
// directions: a pair request against a 3-app model and a 3-app request
// against a pair model each answer 400 with the trained size and the
// remedy in the message.
func TestPredictWrongBagSize400(t *testing.T) {
	pairBody := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`

	rr := doJSON(t, newK3Server(t, nil).Handler(), http.MethodPost, "/v1/predict", pairBody)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("pair bag on 3-app model answered %d: %s", rr.Code, rr.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"2 application(s)", "trained for 3-application bags", "retrain with -k 2"} {
		if !strings.Contains(er.Error, sub) {
			t.Errorf("pair-on-k3 error %q missing %q", er.Error, sub)
		}
	}

	rr = doJSON(t, newTestServer(t, nil).Handler(), http.MethodPost, "/v1/predict", k3Body)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("3-app bag on pair model answered %d: %s", rr.Code, rr.Body)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"3 application(s)", "trained for 2-application bags", "retrain with -k 3"} {
		if !strings.Contains(er.Error, sub) {
			t.Errorf("k3-on-pair error %q missing %q", er.Error, sub)
		}
	}

	// In a batched request the offending bag is identified by index.
	mixed := `{"bags":[
		{"members":[{"benchmark":"sift","batch":20},{"benchmark":"surf","batch":40},{"benchmark":"knn","batch":20}]},
		{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}]}`
	rr = doJSON(t, newK3Server(t, nil).Handler(), http.MethodPost, "/v1/predict", mixed)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("mixed-k batch answered %d: %s", rr.Code, rr.Body)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "bag 1") {
		t.Errorf("mixed-k error %q does not name the offending bag", er.Error)
	}
}

// TestPredictBagFormValidation covers the new request-shape errors: a bag
// that mixes the members list with the legacy a/b fields, and an
// explicitly empty members list.
func TestPredictBagFormValidation(t *testing.T) {
	h := newK3Server(t, nil).Handler()
	cases := []struct {
		name, body, wantSub string
	}{
		{"mixed forms", `{"bags":[{"a":{"benchmark":"sift","batch":20},"members":[{"benchmark":"surf","batch":20}]}]}`, "one form per bag"},
		{"empty members", `{"bags":[{"members":[]}]}`, "bags[0]"},
		{"empty bag list", `{"bag":[]}`, "no bags"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, h, http.MethodPost, "/v1/predict", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("answered %d: %s", rr.Code, rr.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, tc.wantSub) {
				t.Errorf("error %q missing %q", er.Error, tc.wantSub)
			}
		})
	}
}

// TestServerConcurrentK3Hammer drives the 3-app handler concurrently
// (run under -race in CI) with permuted valid bags interleaved with
// wrong-size bags: valid requests succeed or shed with 503, wrong-size
// ones deterministically answer 400, and the in-flight gauge returns to
// zero.
func TestServerConcurrentK3Hammer(t *testing.T) {
	s := newK3Server(t, func(c *Config) { c.MaxInFlight = 8 })
	// Stub the featurizer so the hammer exercises concurrency, not the
	// simulator; width must match the 3-app model (31 features).
	width := s.cfg.Model.NumFeatures()
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		x := make([]float64, width)
		for i := range x {
			x[i] = 0.25
		}
		return x, 0.5, false, nil
	}
	h := s.Handler()

	members := []string{
		`{"benchmark":"sift","batch":20}`,
		`{"benchmark":"surf","batch":40}`,
		`{"benchmark":"knn","batch":20}`,
		`{"benchmark":"sift","batch":40}`,
	}
	const goroutines = 12
	const iters = 25
	var wg sync.WaitGroup
	var ok200, ok400, ok503 atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				var body string
				wrongSize := i%5 == 4
				if wrongSize {
					body = fmt.Sprintf(`{"bag":[%s,%s]}`, members[rng.Intn(4)], members[rng.Intn(4)])
				} else {
					p := rng.Perm(4)[:3]
					body = fmt.Sprintf(`{"bag":[%s,%s,%s]}`,
						members[p[0]], members[p[1]], members[p[2]])
				}
				rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
				switch {
				case wrongSize && rr.Code == http.StatusBadRequest:
					ok400.Add(1)
				case !wrongSize && rr.Code == http.StatusOK:
					ok200.Add(1)
				case rr.Code == http.StatusServiceUnavailable:
					ok503.Add(1) // limiter shed load; acceptable under hammer
				default:
					t.Errorf("wrongSize=%v: unexpected status %d: %s", wrongSize, rr.Code, rr.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no successful 3-app predictions under hammer")
	}
	if ok400.Load() == 0 {
		t.Fatal("no wrong-size rejections under hammer")
	}
	if got := s.Metrics().InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after hammer", got)
	}
}
