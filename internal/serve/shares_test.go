package serve

import (
	"testing"

	"mapc/internal/dataset"
)

// Share-qualified cache namespaces: two caches measuring different MPS
// share profiles must never see each other's entries, the equal split
// must keep the legacy key shape, and snapshots carry the profile.

func TestShareDomainQualifiesKeys(t *testing.T) {
	if got := shareDomain(featureDomain, ""); got != featureDomain {
		t.Errorf("equal split rewrote the domain to %q", got)
	}
	if got := shareDomain(featureDomain, "0.7/0.3"); got != featureDomain+"?shares=0.7/0.3" {
		t.Errorf("share-qualified domain %q", got)
	}
	a := shareDomain(degradedDomain, "0.7/0.3")
	b := shareDomain(featureDomain, "0.7/0.3")
	if a == b {
		t.Error("degraded and exact namespaces collided under a share profile")
	}
}

// TestSharedLRUSeparatesShareProfiles: two featureCaches over one LRU
// (simulating profile-qualified replicas sharing key space) keep distinct
// entries per profile, and entries() only lists the cache's own profile.
func TestSharedLRUSeparatesShareProfiles(t *testing.T) {
	mk := func(shares string, val float64) *featureCache {
		c := newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
			return []float64{val}, val, nil
		}, false, 1<<20)
		c.shares = shares
		return c
	}
	equal := mk("", 1)
	skew := mk("0.7/0.3", 2)

	bag := []dataset.Member{{Benchmark: "sift", Batch: 20}, {Benchmark: "surf", Batch: 20}}
	xe, _, _, err := equal.get(bag)
	if err != nil {
		t.Fatal(err)
	}
	xs, _, _, err := skew.get(bag)
	if err != nil {
		t.Fatal(err)
	}
	if xe[0] == xs[0] {
		t.Fatal("stub caches computed identical values; test is vacuous")
	}

	// Cross-seed: an entry published under one profile must not answer the
	// other profile's key.
	key := dataset.BagKeyOf([]dataset.Member{bag[0], bag[1]})
	if _, ok := equal.peek(key); !ok {
		t.Error("equal-split entry missing from its own namespace")
	}
	if fv, ok := skew.peek(key); !ok {
		t.Error("skewed entry missing from its own namespace")
	} else if fv.x[0] != 2 {
		t.Errorf("skewed namespace answered %v, want the skew-profile vector", fv.x)
	}

	if got := equal.entries(); len(got) != 1 || got[0].X[0] != 1 {
		t.Errorf("equal-split entries() = %+v, want exactly its own entry", got)
	}
	if got := skew.entries(); len(got) != 1 || got[0].X[0] != 2 {
		t.Errorf("skewed entries() = %+v, want exactly its own entry", got)
	}
}
