package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFireNilInjectorIsNoOp(t *testing.T) {
	if err := Fire(nil, "anything", 3); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
}

func TestErrorAtIndex(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: 2, Kind: KindError}}})
	for i := 0; i < 5; i++ {
		err := Fire(in, "s", i)
		if i == 2 {
			var ie *Error
			if !errors.As(err, &ie) || ie.Index != 2 || ie.Site != "s" {
				t.Fatalf("index 2: got %v, want injected *Error", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("index %d: unexpected %v", i, err)
		}
	}
	// Wrong site never fires.
	if err := Fire(in, "other", 2); err != nil {
		t.Fatalf("wrong site fired: %v", err)
	}
}

func TestPanicAtIndex(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: 1, Kind: KindPanic}}})
	if err := Fire(in, "s", 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok || p.Index != 1 {
			t.Fatalf("recovered %v, want *Panic at index 1", r)
		}
	}()
	_ = Fire(in, "s", 1)
	t.Fatal("panic fault did not panic")
}

func TestTornWriteCarriesKeepBytes(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "w", Index: 0, Kind: KindTornWrite, KeepBytes: 7}}})
	err := Fire(in, "w", 0)
	var tw *TornWrite
	if !errors.As(err, &tw) || tw.KeepBytes != 7 {
		t.Fatalf("got %v, want *TornWrite keeping 7 bytes", err)
	}
}

func TestOnceFiresAtMostOnce(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: AnyIndex, Kind: KindError, Once: true}}})
	if err := Fire(in, "s", 0); err == nil {
		t.Fatal("once fault did not fire")
	}
	if err := Fire(in, "s", 1); err != nil {
		t.Fatalf("once fault fired twice: %v", err)
	}
}

func TestAnyIndexRepeats(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: AnyIndex, Kind: KindError}}})
	for i := 0; i < 3; i++ {
		if err := Fire(in, "s", i); err == nil {
			t.Fatalf("AnyIndex fault skipped index %d", i)
		}
	}
}

func TestDelayComposesWithTerminalFault(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Site: "s", Index: 0, Kind: KindDelay, Delay: 20 * time.Millisecond},
		{Site: "s", Index: 0, Kind: KindError},
	}})
	t0 := time.Now()
	err := Fire(in, "s", 0)
	if err == nil {
		t.Fatal("error after delay not injected")
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("delay not applied (%v elapsed)", d)
	}
}

// TestRandomPlansDeterministic: the seeded constructors are pure functions
// of their arguments — the whole point of seed-driven chaos.
func TestRandomPlansDeterministic(t *testing.T) {
	a := RandomKillPlan(7, "s", 100)
	b := RandomKillPlan(7, "s", 100)
	if len(a.Faults) != 1 || a.Faults[0] != b.Faults[0] {
		t.Fatalf("RandomKillPlan not deterministic: %v vs %v", a, b)
	}
	if a.Faults[0].Kind != KindPanic || !a.Faults[0].Once {
		t.Fatalf("kill plan shape wrong: %+v", a.Faults[0])
	}
	if i := a.Faults[0].Index; i < 0 || i >= 100 {
		t.Fatalf("kill index %d out of range", i)
	}

	c := RandomTearPlan(9, "w", 50, 32)
	d := RandomTearPlan(9, "w", 50, 32)
	if len(c.Faults) != 1 || c.Faults[0] != d.Faults[0] {
		t.Fatalf("RandomTearPlan not deterministic: %v vs %v", c, d)
	}
	if c.Faults[0].Kind != KindTornWrite {
		t.Fatalf("tear plan kind %v", c.Faults[0].Kind)
	}
	if k := c.Faults[0].KeepBytes; k < 0 || k > 32 {
		t.Fatalf("tear keep %d out of range", k)
	}

	// Different seeds should (for these constants) pick different indices
	// at least once across a small sweep — guards against an ignored seed.
	distinct := map[int]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		distinct[RandomKillPlan(seed, "s", 1000).Faults[0].Index] = true
	}
	if len(distinct) < 2 {
		t.Fatal("seed does not influence RandomKillPlan")
	}

	if p := RandomKillPlan(1, "s", 0); len(p.Faults) != 0 {
		t.Fatalf("n=0 kill plan not empty: %v", p)
	}
}

// TestInjectorConcurrentFire hammers one injector from many goroutines;
// meaningful under -race. Exactly one goroutine must observe the Once
// fault.
func TestInjectorConcurrentFire(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Site: "s", Index: AnyIndex, Kind: KindError, Once: true}}})
	var wg sync.WaitGroup
	hits := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := Fire(in, "s", g*8+i); err != nil {
					hits <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(hits)
	n := 0
	for range hits {
		n++
	}
	if n != 1 {
		t.Fatalf("Once fault fired %d times under concurrency", n)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindError: "error", KindPanic: "panic", KindDelay: "delay", KindTornWrite: "torn-write",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	f := Fault{Site: "s", Index: 3, Kind: KindPanic}
	if got := fmt.Sprint(f); got != "panic@s[3]" {
		t.Errorf("Fault.String() = %q", got)
	}
}
