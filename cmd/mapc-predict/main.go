// Command mapc-predict trains (or loads) the decision-tree predictor and
// predicts the GPU execution time of one application bag, comparing the
// prediction with the simulated ground truth.
//
// A loaded model must have been trained with the scheme named by -scheme
// (default "full"): models persist their training scheme and feature count,
// and a mismatch is refused loudly instead of silently mispredicting.
//
// Usage:
//
//	mapc-predict -a sift -b surf              # batch 20 each
//	mapc-predict -a knn -abatch 80 -b svm -bbatch 40
//	mapc-predict -bag sift/20,surf/40,knn/80  # a 3-application bag
//	mapc-predict -model model.json            # model from mapc-train -o
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/ml"
	"mapc/internal/phasesum"
)

func main() {
	benchA := flag.String("a", "sift", "first benchmark")
	benchB := flag.String("b", "surf", "second benchmark")
	batchA := flag.Int("abatch", 20, "first benchmark's batch size")
	batchB := flag.Int("bbatch", 20, "second benchmark's batch size")
	bagSpec := flag.String("bag", "", `k-application bag as "bench/batch,bench/batch,..." (2-8 members; overrides -a/-b; batch defaults to 20)`)
	schemeName := flag.String("scheme", "full", "feature scheme: insmix, insmix+cputime, insmix+cputime+fairness, full; a loaded model must match")
	modelPath := flag.String("model", "", "load a saved model (mapc-train -o) instead of training")
	workers := flag.Int("workers", 0, "measurement worker goroutines (0 = NumCPU, 1 = serial); predictions are identical for every value")
	simCacheMB := flag.Int("simcache-mb", dataset.DefaultSimCacheMB, "simulation memo budget in MiB (0 = off); output is identical at every budget")
	fidelity := flag.String("fidelity", "exact", "co-run fidelity tier: exact | mixed | fast (analytic co-runs trade accuracy for speed; isolated runs stay exact)")
	shares := flag.String("shares", "", "MPS share profile for every shared GPU co-run: k slash- or comma-separated relative weights, e.g. 0.7/0.3 (empty = equal split)")
	flag.Parse()

	scheme, ok := core.SchemeByName(*schemeName)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	bag := []dataset.Member{
		{Benchmark: *benchA, Batch: *batchA},
		{Benchmark: *benchB, Batch: *batchB},
	}
	if *bagSpec != "" {
		var err error
		bag, err = parseBag(*bagSpec)
		if err != nil {
			fatal(fmt.Errorf("parsing -bag: %w", err))
		}
	}

	cfg := dataset.DefaultConfig()
	cfg.Workers = *workers
	cfg.SimCacheMB = *simCacheMB
	// Training (when no model is loaded) must produce vectors of the same
	// width the query bag needs, so the corpus bag size follows the query.
	cfg.K = len(bag)
	fid, err := phasesum.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	cfg.Fidelity = fid
	if *shares != "" {
		cfg.Shares, err = dataset.ParseShares(*shares)
		if err != nil {
			fatal(fmt.Errorf("parsing -shares: %w", err))
		}
	}
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	var predictor *core.Predictor
	if *modelPath != "" {
		predictor, err = core.LoadFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		// A model trained under a different scheme would accept the same
		// full-width vectors yet answer a different question; refuse it.
		if err := predictor.RequireScheme(scheme); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "mapc-predict: generating training corpus...")
		corpus, err := gen.Generate()
		if err != nil {
			fatal(err)
		}
		predictor, err = core.Train(corpus, scheme, core.DefaultTreeParams())
		if err != nil {
			fatal(err)
		}
	}

	x, fairness, err := gen.BagFeatures(bag)
	if err != nil {
		fatal(err)
	}
	pred, err := predictor.PredictRaw(x)
	if err != nil {
		fatal(err)
	}

	truth, err := gen.MeasureBag(bag)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("bag: %s (fairness %.3f)\n", bagLabel(bag), fairness)
	fmt.Printf("predicted GPU bag time: %8.3f ms\n", pred*1e3)
	fmt.Printf("simulated GPU bag time: %8.3f ms\n", truth.Y*1e3)
	if rel, ok := ml.PointRelativeError(truth.Y, pred); ok {
		fmt.Printf("relative error:         %8.2f %%\n", rel)
	} else {
		fmt.Printf("relative error:              n/a (zero ground truth)\n")
	}
}

// parseBag parses "bench/batch,bench/batch,...". A member without "/batch"
// defaults to batch 20 (the suite's smallest size).
func parseBag(spec string) ([]dataset.Member, error) {
	var bag []dataset.Member
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty member in %q", spec)
		}
		m := dataset.Member{Benchmark: item, Batch: 20}
		if bench, batch, ok := strings.Cut(item, "/"); ok {
			v, err := strconv.Atoi(strings.TrimSpace(batch))
			if err != nil {
				return nil, fmt.Errorf("member %q: bad batch: %w", item, err)
			}
			m = dataset.Member{Benchmark: strings.TrimSpace(bench), Batch: v}
		}
		bag = append(bag, m)
	}
	return bag, nil
}

func bagLabel(bag []dataset.Member) string {
	parts := make([]string, len(bag))
	for i, m := range bag {
		parts[i] = fmt.Sprintf("%v", m)
	}
	return strings.Join(parts, " + ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-predict:", err)
	os.Exit(1)
}
