package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mapc/internal/dataset"
)

var (
	parCorpusOnce sync.Once
	parCorpus     *dataset.Corpus
	parCorpusErr  error
)

// parallelTestCorpus is a 3-benchmark corpus, small enough to retrain
// per-fold trees many times under -race.
func parallelTestCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	parCorpusOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Benchmarks = []string{"fast", "hog", "knn"}
		cfg.BatchSizes = []int{20, 40, 80}
		cfg.MixedPairs = 2
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			parCorpusErr = err
			return
		}
		parCorpus, parCorpusErr = gen.Generate()
	})
	if parCorpusErr != nil {
		t.Fatal(parCorpusErr)
	}
	return parCorpus
}

// TestLOOCVParallelFoldsMatchSerial runs LOOCV under both hold-out
// protocols with 1 worker (the legacy serial path) and several pool sizes,
// asserting every per-fold output — MeanRelErr, PointIdx, PerPoint, Truth,
// Pred, and the decision Paths — matches the serial run exactly.
func TestLOOCVParallelFoldsMatchSerial(t *testing.T) {
	c := parallelTestCorpus(t)
	params := DefaultTreeParams()
	for _, protocol := range []Protocol{HoldOutOwn, HoldOutContaining} {
		t.Run(protocol.String(), func(t *testing.T) {
			serial, err := LOOCVWorkers(c, SchemeFull, params, protocol, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != 3 {
				t.Fatalf("%d folds, want 3", len(serial))
			}
			for _, workers := range []int{2, 4, runtime.NumCPU(), 0} {
				par, err := LOOCVWorkers(c, SchemeFull, params, protocol, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(par) != len(serial) {
					t.Fatalf("workers=%d: %d folds, serial %d", workers, len(par), len(serial))
				}
				for fi := range serial {
					s, p := &serial[fi], &par[fi]
					if s.Benchmark != p.Benchmark {
						t.Fatalf("workers=%d fold %d: benchmark %q vs serial %q (ordering broken)",
							workers, fi, p.Benchmark, s.Benchmark)
					}
					if s.MeanRelErr != p.MeanRelErr {
						t.Errorf("workers=%d fold %q: MeanRelErr %v vs serial %v",
							workers, s.Benchmark, p.MeanRelErr, s.MeanRelErr)
					}
					if !reflect.DeepEqual(s.PointIdx, p.PointIdx) {
						t.Errorf("workers=%d fold %q: PointIdx differ", workers, s.Benchmark)
					}
					if !reflect.DeepEqual(s.PerPoint, p.PerPoint) {
						t.Errorf("workers=%d fold %q: PerPoint differ", workers, s.Benchmark)
					}
					if !reflect.DeepEqual(s.Truth, p.Truth) || !reflect.DeepEqual(s.Pred, p.Pred) {
						t.Errorf("workers=%d fold %q: truth/pred differ", workers, s.Benchmark)
					}
					if !reflect.DeepEqual(s.Paths, p.Paths) {
						t.Errorf("workers=%d fold %q: decision paths differ", workers, s.Benchmark)
					}
					if !reflect.DeepEqual(s.PathFeatureNames, p.PathFeatureNames) {
						t.Errorf("workers=%d fold %q: path feature names differ", workers, s.Benchmark)
					}
				}
				if MeanLOOCVError(par) != MeanLOOCVError(serial) {
					t.Errorf("workers=%d: headline mean differs", workers)
				}
			}
		})
	}
}

// TestLOOCVConcurrentCallers hammers LOOCV itself from parallel goroutines
// sharing one corpus — the corpus and its dataset view are read-only during
// folds, so this must be race-clean (run under -race in CI).
func TestLOOCVConcurrentCallers(t *testing.T) {
	c := parallelTestCorpus(t)
	want, err := LOOCVWorkers(c, SchemeFull, DefaultTreeParams(), HoldOutOwn, 1)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := LOOCVWorkers(c, SchemeFull, DefaultTreeParams(), HoldOutOwn, 2)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("concurrent LOOCV caller diverged from serial result")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
