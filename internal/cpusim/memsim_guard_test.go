package cpusim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"mapc/internal/isa"
	"mapc/internal/trace"
)

// zeroRefWorkload has one compute-only phase (MemRefs == 0) sandwiched
// between two memory phases: the divide-guard hazard case for
// simulateMemory's per-reference ratios.
func zeroRefWorkload(name string) *trace.Workload {
	var memCounts, aluCounts isa.Counts
	memCounts.Add(isa.MEM, 500_000)
	memCounts.Add(isa.ALU, 500_000)
	aluCounts.Add(isa.ALU, 2_000_000) // no MEM at all
	phase := func(n string, c isa.Counts) trace.Phase {
		return trace.Phase{
			Name: n, Counts: c, Footprint: 8 << 20, Pattern: trace.Random,
			StrideBytes: 64, Reuse: 0.1, Parallelism: 4096, VectorWidth: 1,
		}
	}
	return &trace.Workload{
		Benchmark: name,
		BatchSize: 1,
		Phases: []trace.Phase{
			phase("ld", memCounts),
			phase("compute-only", aluCounts),
			phase("st", memCounts),
		},
	}
}

// TestZeroRefPhaseMissRatesAreZero pins the explicit n == 0 guard style in
// simulateMemory (mirroring gpusim's pa.acc == 0 pattern): a phase with no
// memory references must report exactly zero miss ratios — never NaN from
// a 0/0 — and must not perturb its neighbours.
func TestZeroRefPhaseMissRatesAreZero(t *testing.T) {
	cfg := DefaultConfig()
	apps := []App{{Workload: zeroRefWorkload("zref"), Threads: 4}}
	mem, _, err := simulateMemory(cfg, nil, apps)
	if err != nil {
		t.Fatal(err)
	}
	pm := mem[0][1] // the compute-only phase
	if pm.l1Miss != 0 || pm.l2Miss != 0 || pm.llcMiss != 0 || pm.llcMissN != 0 {
		t.Fatalf("zero-ref phase has non-zero memory behaviour: %+v", pm)
	}
	for pi, pm := range mem[0] {
		for _, v := range []float64{pm.l1Miss, pm.l2Miss, pm.llcMiss} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				t.Fatalf("phase %d has non-finite or out-of-range miss ratio: %+v", pi, pm)
			}
		}
	}
	// The memory phases around it still observed real traffic.
	if mem[0][0].l1Miss == 0 && mem[0][2].l1Miss == 0 {
		t.Fatal("memory phases report no misses; guard is skipping too much")
	}
	// End-to-end: Run must produce a finite positive time.
	res, err := Run(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !(res[0].TimeSec > 0) || math.IsInf(res[0].TimeSec, 0) {
		t.Fatalf("TimeSec = %v", res[0].TimeSec)
	}
}

// TestSimulateMemoryScratchReuse proves the pooled interleaving buffers are
// invisible: repeated and interleaved calls (different app counts, so the
// arena is re-partitioned each time) return identical results, serially
// and from concurrent goroutines (run under -race in CI).
func TestSimulateMemoryScratchReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 2 // exercise the Install path through the scratch loop
	solo := []App{{Workload: memoryBound("a"), Threads: 8}}
	duo := []App{
		{Workload: memoryBound("a"), Threads: 8},
		{Workload: computeBound("b"), Threads: 8},
	}

	type out struct {
		mem   [][]phaseMem
		stats interface{}
	}
	measure := func(apps []App) out {
		mem, stats, err := simulateMemory(cfg, nil, apps)
		if err != nil {
			t.Fatal(err)
		}
		return out{mem, stats}
	}
	wantSolo := measure(solo)
	wantDuo := measure(duo)
	for i := 0; i < 3; i++ {
		if got := measure(duo); !reflect.DeepEqual(got, wantDuo) {
			t.Fatalf("iteration %d: duo results drifted after scratch reuse", i)
		}
		if got := measure(solo); !reflect.DeepEqual(got, wantSolo) {
			t.Fatalf("iteration %d: solo results drifted after scratch reuse", i)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var want, got out
				if (g+i)%2 == 0 {
					want, got = wantSolo, measure(solo)
				} else {
					want, got = wantDuo, measure(duo)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d iter %d: concurrent scratch reuse corrupted results", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
