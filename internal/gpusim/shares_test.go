package gpusim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mapc/internal/trace"
)

// Tests for asymmetric SM partition shares (RunMemoShares): nil shares
// are the bit-exact legacy equal split, explicit weights are normalized
// over the device, validation is loud, and giving an app a larger share
// never slows it down.

func TestRunMemoSharesNilIsEqualSplit(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{computeKernel("a"), memKernel("b"), computeKernel("c")}

	legacy, err := RunMemo(cfg, nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunMemoShares(cfg, nil, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, explicit) {
		t.Fatal("RunMemoShares(..., nil) diverged from RunMemo: nil shares must be the exact equal split")
	}

	// Explicit uniform weights normalize to the same partition up to
	// floating-point rounding (SMs*(w/sum) vs SMs/n differ in the last
	// ulp for n=3); only the nil path promises bit-exact legacy output.
	for _, w := range []float64{1, 3, 0.25} {
		shares := []float64{w, w, w}
		got, err := RunMemoShares(cfg, nil, ws, shares)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if rel := math.Abs(got[i].SMShare-legacy[i].SMShare) / legacy[i].SMShare; rel > 1e-12 {
				t.Errorf("uniform shares %v: app %d SMShare %v vs equal split %v", shares, i, got[i].SMShare, legacy[i].SMShare)
			}
			if rel := math.Abs(got[i].TimeSec-legacy[i].TimeSec) / legacy[i].TimeSec; rel > 1e-9 {
				t.Errorf("uniform shares %v: app %d time %v vs equal split %v", shares, i, got[i].TimeSec, legacy[i].TimeSec)
			}
		}
	}

	equal := float64(cfg.SMs) / float64(len(ws))
	for i, r := range legacy {
		if r.SMShare != equal {
			t.Errorf("app %d SMShare %v, want equal split %v", i, r.SMShare, equal)
		}
	}
}

func TestRunMemoSharesValidation(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{computeKernel("a"), memKernel("b")}

	if _, err := RunMemoShares(cfg, nil, ws, []float64{1}); err == nil ||
		!strings.Contains(err.Error(), "partition shares") {
		t.Errorf("length mismatch: %v", err)
	}
	for _, bad := range [][]float64{
		{1, 0},
		{1, -2},
		{math.NaN(), 1},
		{1, math.Inf(1)},
	} {
		if _, err := RunMemoShares(cfg, nil, ws, bad); err == nil {
			t.Errorf("shares %v accepted", bad)
		} else if !strings.Contains(err.Error(), "positive finite") {
			t.Errorf("shares %v: undescriptive error %v", bad, err)
		}
	}
}

// TestRunMemoSharesAsymmetry pins the semantics of unequal weights: the
// partition is proportional (weights [3,1] on a 40-SM device give 30/10),
// and the favored app finishes no later than under the equal split while
// the starved app finishes no earlier.
func TestRunMemoSharesAsymmetry(t *testing.T) {
	cfg := DefaultConfig()
	ws := []*trace.Workload{computeKernel("fav"), computeKernel("starved")}

	equal, err := RunMemoShares(cfg, nil, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := RunMemoShares(cfg, nil, ws, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := skewed[0].SMShare, 0.75*float64(cfg.SMs); got != want {
		t.Errorf("favored SMShare %v, want %v", got, want)
	}
	if got, want := skewed[1].SMShare, 0.25*float64(cfg.SMs); got != want {
		t.Errorf("starved SMShare %v, want %v", got, want)
	}
	if skewed[0].TimeSec > equal[0].TimeSec {
		t.Errorf("favored app slowed down with a larger share: %v > %v",
			skewed[0].TimeSec, equal[0].TimeSec)
	}
	if skewed[1].TimeSec < equal[1].TimeSec {
		t.Errorf("starved app sped up with a smaller share: %v < %v",
			skewed[1].TimeSec, equal[1].TimeSec)
	}

	// Shares are weights, not SM counts: scaling every weight by a
	// constant is the identity.
	scaled, err := RunMemoShares(cfg, nil, ws, []float64{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skewed, scaled) {
		t.Error("scaling all weights by 10x changed results; shares must be normalized")
	}
}
