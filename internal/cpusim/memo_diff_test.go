package cpusim

import (
	"math/rand"
	"reflect"
	"testing"

	"mapc/internal/simcache"
	"mapc/internal/trace"
)

// TestMemoizedRunsAreBitIdentical is the differential oracle for the
// simulation memo: randomized multi-bag sequences (isolated and shared
// runs over a shared workload pool, the access pattern of corpus
// generation) produce byte-identical []Result with the memo off, at an
// ample budget, and at a tiny budget that forces constant eviction and
// recomputation. Cold results are computed fresh per bag — the reference
// the memo must reproduce exactly.
func TestMemoizedRunsAreBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 2 // exercise the prefetcher in the private replay

	pool := []*trace.Workload{
		memoryBound("a"),
		computeBound("b"),
		memoryBound("c"),
		zeroRefWorkload("z"), // zero-ref phases cross the memo boundary too
	}

	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"ample", 64 << 20},
		// Small enough that entries for one workload evict another's:
		// every lookup path (publish, hit, evict, recompute) cycles.
		{"eviction-pressure", 1 << 14},
	} {
		t.Run(tc.name, func(t *testing.T) {
			memo := simcache.MustNew(tc.budget)
			rng := rand.New(rand.NewSource(7))
			for bag := 0; bag < 40; bag++ {
				var apps []App
				for _, wi := range rng.Perm(len(pool))[:1+rng.Intn(2)] {
					apps = append(apps, App{Workload: pool[wi], Threads: 4 + rng.Intn(8)*2})
				}
				cold, err := Run(cfg, apps)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := RunMemo(cfg, memo, apps)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cold, warm) {
					t.Fatalf("bag %d (%d apps): memoized results diverge from cold run\ncold: %+v\nwarm: %+v",
						bag, len(apps), cold, warm)
				}
			}
			st := memo.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("memo never exercised: %+v", st)
			}
			if tc.name == "eviction-pressure" && st.Evictions == 0 {
				t.Fatalf("eviction-pressure budget produced no evictions: %+v", st)
			}
		})
	}
}
