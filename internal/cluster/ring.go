// Package cluster is the sharded serving tier over internal/serve: a
// consistent-hash router that spreads canonical bag keys across N replica
// processes, with health-checked membership (ejection and re-admission)
// and warm-started replicas behind it.
//
// Sharding is by serve.CanonicalKey — the permutation-invariant identity
// of a bag — so every ordering of the same multiset of applications lands
// on the same replica and therefore the same feature-cache entry. Each
// replica's cache holds roughly 1/N of the keyspace, which is what lets
// the tier's aggregate cache grow linearly with replica count while each
// process keeps its byte-bounded LRU small.
//
// The router holds no model and no simulator: predictions come verbatim
// from the replicas, so a router in front of one replica is bit-identical
// to querying the replica directly (pinned by the parity suite).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-replica vnode count. 128 points per node
// keeps the max/mean key-share ratio under ~1.25 for small clusters while
// the ring stays a few KB.
const DefaultVirtualNodes = 128

// fnv1a is the 64-bit FNV-1a hash of s (stdlib hash/fnv without the
// allocation of the Hash64 interface on the router's per-bag hot path),
// finished with a murmur-style avalanche: raw FNV clusters the hashes of
// near-identical strings — exactly what vnode labels ("node#0".."#127")
// and bag keys are — which skews ring ownership badly.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring is an immutable consistent-hash ring over replica names. Build one
// with NewRing; Lookup and LookupN are safe for concurrent use. Membership
// changes build a new Ring (the Pool swaps it atomically), which keeps
// every lookup lock-free.
type Ring struct {
	hashes []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position → replica name
	nodes  []string          // distinct replica names, stable order
}

// NewRing hashes each node onto the ring vnodes times. Node names must be
// distinct; vnodes <= 0 means DefaultVirtualNodes.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		hashes: make([]uint64, 0, len(nodes)*vnodes),
		owner:  make(map[uint64]string, len(nodes)*vnodes),
		nodes:  append([]string(nil), nodes...),
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			h := fnv1a(fmt.Sprintf("%s#%d", n, v))
			for r.owner[h] != "" && r.owner[h] != n {
				// Vanishingly rare 64-bit collision between two nodes'
				// vnodes: perturb deterministically so both keep their
				// full vnode count.
				h = fnv1a(fmt.Sprintf("%s#%d#%d", n, v, h))
			}
			if _, dup := r.owner[h]; dup {
				continue
			}
			r.owner[h] = n
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r, nil
}

// Nodes returns the ring's member names in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Lookup returns the replica owning key: the first vnode clockwise from
// the key's hash.
func (r *Ring) Lookup(key string) string {
	return r.owner[r.hashes[r.search(key)]]
}

// LookupN returns up to n distinct replicas in ring order starting at the
// key's owner — the owner first, then the fallbacks a router tries when
// the owner is ejected or errs. n past the member count is clamped.
func (r *Ring) LookupN(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search finds the index of the first vnode at or clockwise past the
// key's hash, wrapping at the top of the ring.
func (r *Ring) search(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}
