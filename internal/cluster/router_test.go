package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mapc/internal/core"
	"mapc/internal/dataset"
	"mapc/internal/serve"
)

var (
	fixOnce sync.Once
	fixGen  *dataset.Generator
	fixMod  *core.Predictor
	fixErr  error
)

// fixture trains one tiny full-scheme model (sift+surf, 2 batch sizes) per
// package. Every replica in these tests shares it, which mirrors
// production — replicas are interchangeable copies of one trained model —
// and is what makes bit-identical routing testable.
func fixture(t *testing.T) (*dataset.Generator, *core.Predictor) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Benchmarks = []string{"sift", "surf"}
		cfg.BatchSizes = []int{20, 40}
		cfg.MixedPairs = 0
		gen, err := dataset.NewGenerator(cfg)
		if err != nil {
			fixErr = err
			return
		}
		corpus, err := gen.Generate()
		if err != nil {
			fixErr = err
			return
		}
		fixMod, fixErr = core.Train(corpus, core.SchemeFull, core.DefaultTreeParams())
		fixGen = gen
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixGen, fixMod
}

// newReplica boots one real serve.Server on httptest. Each replica gets
// its own generator-backed cache but shares the trained model.
func newReplica(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	gen, mod := fixture(t)
	s, err := serve.New(serve.Config{Model: mod, Generator: gen, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newTier boots n replicas and a router over them, probes disabled (tests
// step membership explicitly via Pool().Probe).
func newTier(t *testing.T, n int) (*Router, []*serve.Server, []*httptest.Server) {
	t.Helper()
	servers := make([]*serve.Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i], https[i] = newReplica(t)
		urls[i] = https[i].URL
	}
	pool, err := NewPool(PoolConfig{Replicas: urls, FailAfter: 1, ReviveAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	return rt, servers, https
}

func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// mixBody builds a batched request over every pair the fixture can serve,
// in both member orders, exercising multi-replica fan-out in one request.
func mixBody() string {
	var bags []string
	for _, a := range []string{"sift", "surf"} {
		for _, b := range []string{"sift", "surf"} {
			for _, ab := range []int{20, 40} {
				for _, bb := range []int{20, 40} {
					bags = append(bags, fmt.Sprintf(
						`{"members":[{"benchmark":%q,"batch":%d},{"benchmark":%q,"batch":%d}]}`, a, ab, b, bb))
				}
			}
		}
	}
	return `{"bags":[` + strings.Join(bags, ",") + `]}`
}

// normCached erases the cached flag, the only field allowed to differ
// between a cold and a warm answer to the same bag.
func normCached(s string) string {
	s = strings.ReplaceAll(s, `"cached": true`, `"cached": ?`)
	return strings.ReplaceAll(s, `"cached": false`, `"cached": ?`)
}

// TestRouterParityWithSingleReplica is the tier's core contract: the
// router's answer is byte-identical (modulo the cached flag) to asking a
// single-process server directly — across single bags, batched mixes, and
// permuted member orders.
func TestRouterParityWithSingleReplica(t *testing.T) {
	rt, _, _ := newTier(t, 3)
	rh := rt.Handler()
	_, solo := newReplica(t)

	bodies := []string{
		`{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":40}}`,
		`{"bag":[{"benchmark":"surf","batch":40},{"benchmark":"sift","batch":20}]}`, // permuted members
		mixBody(),
	}
	for i, body := range bodies {
		routed := post(t, rh, body)
		if routed.Code != http.StatusOK {
			t.Fatalf("body %d: router answered %d: %s", i, routed.Code, routed.Body)
		}
		resp, err := http.Post(solo.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %d: solo replica answered %d: %s", i, resp.StatusCode, direct)
		}
		if normCached(routed.Body.String()) != normCached(string(direct)) {
			t.Errorf("body %d: routed and direct answers differ:\n--- routed ---\n%s\n--- direct ---\n%s",
				i, routed.Body, direct)
		}
	}
}

// TestRouterShardsAcrossReplicas asserts the mix actually spreads over
// more than one replica (the canonical keys hash apart), so the parity
// test above really exercised reassembly.
func TestRouterShardsAcrossReplicas(t *testing.T) {
	rt, servers, _ := newTier(t, 3)
	rh := rt.Handler()
	if rr := post(t, rh, mixBody()); rr.Code != http.StatusOK {
		t.Fatalf("mix answered %d: %s", rr.Code, rr.Body)
	}
	touched := 0
	for _, s := range servers {
		if s.Metrics().InFlight() != 0 {
			t.Error("replica left in-flight work")
		}
		if s.CacheLen() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("only %d replica(s) served bags; sharding is not spreading", touched)
	}
}

// TestRouterFailoverAndReadmission kills a replica mid-traffic: requests
// keep succeeding bit-identically via ring fallbacks, the dead member is
// ejected passively, and a re-admitted member gets traffic back.
func TestRouterFailoverAndReadmission(t *testing.T) {
	rt, _, https := newTier(t, 3)
	rh := rt.Handler()
	body := mixBody()

	want := post(t, rh, body)
	if want.Code != http.StatusOK {
		t.Fatalf("warmup answered %d: %s", want.Code, want.Body)
	}

	// Kill the replica that owns the first bag's key, so the next request
	// definitely hits the dead member, fails at the transport, retries the
	// fallback, and the pool ejects it passively (FailAfter=1).
	owner := rt.pool.ring.Lookup(serve.CanonicalKey([]serve.Member{
		{Benchmark: "sift", Batch: 20}, {Benchmark: "sift", Batch: 20}}))
	victim := -1
	for i, ts := range https {
		if ts.URL == owner {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not among replicas", owner)
	}
	https[victim].Close()
	got := post(t, rh, body)
	if got.Code != http.StatusOK {
		t.Fatalf("request during outage answered %d: %s", got.Code, got.Body)
	}
	if normCached(got.Body.String()) != normCached(want.Body.String()) {
		t.Error("failover answer differs from the pre-outage answer")
	}
	if rt.Pool().HealthyCount() != 2 {
		t.Errorf("dead replica not passively ejected: %+v", rt.Pool().Status())
	}

	// With the member ejected, further requests route around it without
	// paying the connection error again.
	retriesBefore := rt.metrics.retries.Load()
	got = post(t, rh, body)
	if got.Code != http.StatusOK {
		t.Fatalf("request after ejection answered %d: %s", got.Code, got.Body)
	}
	if rt.metrics.retries.Load() != retriesBefore {
		t.Errorf("ejected replica still receiving first-attempt traffic (%d new retries)",
			rt.metrics.retries.Load()-retriesBefore)
	}

	// Probing re-admits nothing while it is down…
	rt.Pool().Probe(context.Background())
	if rt.Pool().HealthyCount() != 2 {
		t.Fatal("dead replica re-admitted")
	}
}

// TestRouterPropagatesReplicaErrors pins error passthrough: validation
// failures and load shedding surface to the client with the replica's
// status and body, not a router-invented wrapper.
func TestRouterPropagatesReplicaErrors(t *testing.T) {
	rt, _, _ := newTier(t, 2)
	rh := rt.Handler()

	// Unknown benchmark → the owning replica's 400 comes through.
	rr := post(t, rh, `{"a":{"benchmark":"nosuch","batch":20},"b":{"benchmark":"surf","batch":20}}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("invalid bag answered %d: %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), "nosuch") {
		t.Errorf("replica's error body not propagated: %s", rr.Body)
	}

	// Router-level validation matches the replicas' contract.
	rr = post(t, rh, `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}} trailing`)
	if rr.Code != http.StatusBadRequest || !strings.Contains(rr.Body.String(), "trailing data") {
		t.Errorf("trailing data answered %d: %s", rr.Code, rr.Body)
	}
	rr = post(t, rh, `{"nope":1}`)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("unknown field answered %d", rr.Code)
	}
}

// TestRouterAllReplicasDown: every forward fails → 502 with a descriptive
// body, and /healthz reports the tier degraded.
func TestRouterAllReplicasDown(t *testing.T) {
	rt, _, https := newTier(t, 2)
	rh := rt.Handler()
	for _, ts := range https {
		ts.Close()
	}
	rr := post(t, rh, `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`)
	if rr.Code != http.StatusBadGateway {
		t.Fatalf("total outage answered %d: %s", rr.Code, rr.Body)
	}

	rt.Pool().Probe(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrr := httptest.NewRecorder()
	rh.ServeHTTP(hrr, req)
	if hrr.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded tier healthz answered %d", hrr.Code)
	}
	var health RouterHealth
	if err := json.Unmarshal(hrr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Healthy != 0 {
		t.Errorf("health %+v, want degraded/0", health)
	}
}

// TestRouterWarmStartedReplicaParity is the join-path parity leg: a fresh
// replica warm-started from a serving peer answers the same bytes through
// the router as the original tier (the snapshot carries bit-exact
// vectors).
func TestRouterWarmStartedReplicaParity(t *testing.T) {
	seedServer, seedHTTP := newReplica(t)
	body := mixBody()
	resp, err := http.Post(seedHTTP.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_ = seedServer

	// Boot a second replica warm-started from the first, and a router over
	// both.
	warm, warmHTTP := newReplica(t)
	if _, err := warm.WarmFromPeer(context.Background(), nil, seedHTTP.URL); err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(PoolConfig{Replicas: []string{seedHTTP.URL, warmHTTP.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	routed := post(t, rt.Handler(), body)
	if routed.Code != http.StatusOK {
		t.Fatalf("routed answered %d: %s", routed.Code, routed.Body)
	}
	if normCached(routed.Body.String()) != normCached(string(direct)) {
		t.Errorf("warm-started tier differs from the seed replica:\n--- tier ---\n%s\n--- seed ---\n%s",
			routed.Body, direct)
	}
}

// TestRouterMetricsExposition smoke-checks the text exposition names.
func TestRouterMetricsExposition(t *testing.T) {
	rt, _, _ := newTier(t, 2)
	rh := rt.Handler()
	post(t, rh, `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	rh.ServeHTTP(rr, req)
	body := rr.Body.String()
	for _, want := range []string{
		`mapc_router_requests_total{code="200"} 1`,
		"mapc_router_bags_total 1",
		"mapc_router_forwarded_bags_total",
		"mapc_router_replicas_healthy 2",
		"mapc_router_ejections_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
