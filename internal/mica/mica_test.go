package mica

import (
	"math"
	"strings"
	"testing"

	"mapc/internal/isa"
	"mapc/internal/trace"
)

func workloadWith(counts isa.Counts) *trace.Workload {
	return &trace.Workload{
		Benchmark: "w", BatchSize: 1,
		Phases: []trace.Phase{{
			Name: "p", Counts: counts, Parallelism: 1, VectorWidth: 1,
		}},
	}
}

func TestAnalyze(t *testing.T) {
	var c isa.Counts
	c.Add(isa.ALU, 50)
	c.Add(isa.MEM, 30)
	c.Add(isa.FP, 20)
	mix, err := Analyze(workloadWith(c))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.Fraction(isa.ALU)-0.5) > 1e-12 {
		t.Errorf("ALU fraction %v", mix.Fraction(isa.ALU))
	}
	if math.Abs(mix.Percent(isa.MEM)-30) > 1e-12 {
		t.Errorf("MEM percent %v", mix.Percent(isa.MEM))
	}
	var sum float64
	for c := isa.Category(0); c < isa.NumCategories; c++ {
		sum += mix.Fraction(c)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestAnalyzeMultiPhaseAggregates(t *testing.T) {
	var a, b isa.Counts
	a.Add(isa.ALU, 10)
	b.Add(isa.MEM, 30)
	w := workloadWith(a)
	w.Phases = append(w.Phases, trace.Phase{
		Name: "p2", Counts: b, Parallelism: 1, VectorWidth: 1,
	})
	mix, err := Analyze(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.Fraction(isa.MEM)-0.75) > 1e-12 {
		t.Errorf("aggregated MEM fraction %v", mix.Fraction(isa.MEM))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Analyze(&trace.Workload{}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Analyze(workloadWith(isa.Counts{})); err == nil {
		t.Error("zero-instruction workload accepted")
	}
}

func TestMixString(t *testing.T) {
	var c isa.Counts
	c.Add(isa.SSE, 1)
	mix, err := Analyze(workloadWith(c))
	if err != nil {
		t.Fatal(err)
	}
	if s := mix.String(); !strings.Contains(s, "sse=100.0%") {
		t.Errorf("String() = %q", s)
	}
}
