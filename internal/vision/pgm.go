package vision

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"mapc/internal/trace"
)

// PGM (portable graymap) I/O lets users run the benchmark suite on their
// own images instead of the synthetic scenes. Both the binary (P5) and
// ASCII (P2) variants are supported for reading; writing emits P5.

// ReadPGM decodes a PGM image from r.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("vision: reading PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("vision: unsupported PGM magic %q", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("vision: PGM width: %w", err)
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("vision: PGM height: %w", err)
	}
	maxVal, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("vision: PGM maxval: %w", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("vision: implausible PGM dimensions %dx%d", w, h)
	}
	if maxVal <= 0 || maxVal > 65535 {
		return nil, fmt.Errorf("vision: invalid PGM maxval %d", maxVal)
	}

	im := NewImage(w, h)
	scale := 255.0 / float64(maxVal)
	switch magic {
	case "P5":
		bytesPer := 1
		if maxVal > 255 {
			bytesPer = 2
		}
		buf := make([]byte, w*h*bytesPer)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vision: PGM pixel data: %w", err)
		}
		for i := 0; i < w*h; i++ {
			var v int
			if bytesPer == 1 {
				v = int(buf[i])
			} else {
				v = int(buf[2*i])<<8 | int(buf[2*i+1])
			}
			im.Pix[i] = float64(v) * scale
		}
	case "P2":
		for i := 0; i < w*h; i++ {
			v, err := pgmInt(br)
			if err != nil {
				return nil, fmt.Errorf("vision: PGM pixel %d: %w", i, err)
			}
			im.Pix[i] = float64(v) * scale
		}
	}
	return im, nil
}

// WritePGM encodes im as a binary (P5) PGM with 8-bit depth. Pixel values
// are clamped to [0, 255].
func WritePGM(w io.Writer, im *Image) error {
	if im == nil || im.W <= 0 || im.H <= 0 {
		return fmt.Errorf("vision: cannot encode empty image")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, len(im.Pix))
	for i, v := range im.Pix {
		switch {
		case v < 0:
			buf[i] = 0
		case v > 255:
			buf[i] = 255
		default:
			buf[i] = byte(v + 0.5)
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// pgmToken reads the next whitespace-delimited token, skipping '#' comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(tok)
}

// RunOnImages executes benchmark b on caller-supplied images (e.g. loaded
// with ReadPGM) under instrumentation, returning the workload and summary.
// Unlike Run, no sampling/extrapolation is applied: the workload describes
// exactly the given batch.
func RunOnImages(b Benchmark, images []*Image, rec bool) (*Result, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("vision: no images")
	}
	for i, im := range images {
		if im == nil || im.W < 32 || im.H < 32 {
			return nil, fmt.Errorf("vision: image %d too small (min 32x32)", i)
		}
	}
	var recorder *trace.Recorder
	if rec {
		recorder = trace.NewRecorder(b.Name(), len(images))
	}
	summary, err := b.run(images, recorder)
	if err != nil {
		return nil, fmt.Errorf("vision: %s: %w", b.Name(), err)
	}
	res := &Result{Summary: summary}
	if rec {
		w, err := recorder.Workload()
		if err != nil {
			return nil, fmt.Errorf("vision: %s instrumentation: %w", b.Name(), err)
		}
		var bytes int64
		for _, im := range images {
			bytes += im.Bytes()
		}
		w.TransferBytes = bytes
		res.Workload = w
	}
	return res, nil
}
