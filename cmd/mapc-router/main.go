// Command mapc-router fronts a fleet of mapc-serve replicas with a
// consistent-hash router: every permutation of the same application bag
// routes to the same replica (and therefore the same feature-cache entry),
// so the tier's aggregate cache grows linearly with replica count. Health
// probes eject dead replicas and re-admit them when they recover; requests
// fail over to ring neighbours in the meantime.
//
// The router holds no model: responses come verbatim from the replicas,
// so a router in front of one replica is bit-identical to querying the
// replica directly.
//
// Endpoints mirror mapc-serve: POST /v1/predict, GET /healthz, GET /metrics.
//
// Usage:
//
//	mapc-router -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	mapc-router -addr :8080 -replicas ... -probe-interval 2s -timeout 60s
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mapc/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health probe period")
	probeTimeout := flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe deadline")
	failAfter := flag.Int("fail-after", cluster.DefaultFailAfter, "consecutive probe failures before ejection")
	reviveAfter := flag.Int("revive-after", cluster.DefaultReviveAfter, "consecutive probe successes before re-admission")
	timeout := flag.Duration("timeout", cluster.DefaultRouterTimeout, "per-request forwarding deadline")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget for in-flight requests")
	flag.Parse()

	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (comma-separated base URLs)"))
	}
	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, strings.TrimRight(r, "/"))
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mapc-router: "+format+"\n", args...)
	}
	pool, err := cluster.NewPool(cluster.PoolConfig{
		Replicas:      urls,
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		ReviveAfter:   *reviveAfter,
		Logf:          logf,
	})
	if err != nil {
		fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Pool: pool, Timeout: *timeout, Logf: logf})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go pool.Start(ctx)

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logf("listening on %s, routing to %d replica(s) (probe every %v, eject after %d, revive after %d)",
		*addr, len(urls), *probeInterval, *failAfter, *reviveAfter)

	select {
	case err := <-errc:
		fatal(err) // listener failed before any signal
	case <-ctx.Done():
		logf("signal received; draining in-flight requests (up to %v)...", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		logf("drained; bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapc-router:", err)
	os.Exit(1)
}
