package memsim

import (
	"fmt"
	"hash/fnv"

	"mapc/internal/trace"
	"mapc/internal/xrand"
)

// Stream generates a deterministic synthetic address stream realizing a
// phase's access descriptor (pattern, footprint, stride, reuse). The CPU
// and GPU simulators sample a bounded number of references per phase
// through the cache/TLB models and extrapolate the resulting miss ratios to
// the phase's full reference count — the standard sampled-simulation
// technique.
type Stream struct {
	rng       *xrand.Rand
	base      uint64
	footprint uint64
	pattern   trace.Pattern
	stride    uint64
	reuse     float64
	cursor    uint64
	window    uint64
	recent    [16]uint64
	recentN   int
}

// NewStream builds a stream for phase p. base separates the address spaces
// of different applications (and of different phases' heaps); seed makes the
// stochastic components reproducible.
func NewStream(p *trace.Phase, base uint64, seed uint64) (*Stream, error) {
	if p == nil {
		return nil, fmt.Errorf("memsim: nil phase")
	}
	fp := uint64(p.Footprint)
	if fp < LineSize {
		fp = LineSize
	}
	stride := uint64(p.StrideBytes)
	if stride == 0 {
		stride = 8
	}
	return &Stream{
		rng:       xrand.New(seed),
		base:      base,
		footprint: fp,
		pattern:   p.Pattern,
		stride:    stride,
		reuse:     p.Reuse,
		window:    4096, // sliding-window extent for Windowed phases
	}, nil
}

// StreamSeed derives a reproducible stream seed from identifying strings.
func StreamSeed(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Next returns the next reference address.
func (s *Stream) Next() uint64 {
	// Temporal-reuse short-circuit: re-touch a recently used address.
	if s.recentN > 0 && s.rng.Float64() < s.reuse {
		return s.recent[s.rng.Intn(s.recentN)]
	}
	var addr uint64
	switch s.pattern {
	case trace.Sequential:
		addr = s.base + s.cursor%s.footprint
		s.cursor += 8
	case trace.Strided:
		addr = s.base + s.cursor%s.footprint
		s.cursor += s.stride
	case trace.Windowed:
		// The window's origin advances sequentially; accesses scatter
		// within it, capturing sliding-filter locality.
		origin := s.cursor % s.footprint
		off := uint64(s.rng.Intn(int(s.window)))
		addr = s.base + (origin+off)%s.footprint
		s.cursor += 8
	default: // trace.Random
		addr = s.base + s.rng.Uint64()%s.footprint
	}
	s.remember(addr)
	return addr
}

// Fill writes the next len(dst) references into dst, in exactly the order
// repeated Next calls would return them. The simulators batch their
// per-phase sampling through one preallocated buffer instead of calling
// Next in the interleave loops, keeping the hot path call- and
// allocation-free.
func (s *Stream) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = s.Next()
	}
}

func (s *Stream) remember(addr uint64) {
	if s.recentN < len(s.recent) {
		s.recent[s.recentN] = addr
		s.recentN++
		return
	}
	s.recent[s.rng.Intn(len(s.recent))] = addr
}

// SampleRefs chooses how many references to simulate for a phase with the
// given total reference count: enough to warm the structures and resolve
// the miss ratio, capped to keep dataset generation fast.
func SampleRefs(total uint64) int {
	const cap = 24576
	if total < cap {
		return int(total)
	}
	return cap
}
