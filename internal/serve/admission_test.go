package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mapc/internal/dataset"
)

// TestAdmissionBoundsBackgroundWork is the regression test for the
// admission-control leak: servePredict used to release its in-flight slot
// when the handler returned — including the 504 path — while the
// measurement goroutine kept simulating in the background, so a burst of
// slow bags grew actual concurrent computes far past MaxInFlight. Pre-fix
// this test observes up to `burst` concurrent computes; post-fix the slot
// is held until the measurement finishes and concurrency never exceeds
// MaxInFlight, with the overflow shed as 503s.
func TestAdmissionBoundsBackgroundWork(t *testing.T) {
	const maxInFlight = 2
	const burst = 10
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = maxInFlight
		c.RequestTimeout = 25 * time.Millisecond
		c.Workers = 1
	})
	width := s.cfg.Model.NumFeatures()

	var cur, peak atomic.Int64
	block := make(chan struct{})
	s.featuresFn = func(bag []dataset.Member) ([]float64, float64, bool, error) {
		v := cur.Add(1)
		for {
			p := peak.Load()
			if v <= p || peak.CompareAndSwap(p, v) {
				break
			}
		}
		<-block // a slow simulation that outlives the request deadline
		cur.Add(-1)
		x := make([]float64, width)
		return x, 0.5, false, nil
	}
	h := s.Handler()

	// Sequential burst of distinct slow bags (distinct so the feature
	// cache's singleflight cannot collapse them into one compute). Each
	// admitted request times out at 25ms with a 504 while its simulation
	// keeps running; once MaxInFlight simulations are stuck, the rest of
	// the burst must be shed with 503 *before* starting more work.
	var got504, got503 atomic.Int64
	for i := 0; i < burst; i++ {
		body := fmt.Sprintf(`{"a":{"benchmark":"sift","batch":%d},"b":{"benchmark":"surf","batch":%d}}`, i+1, i+1)
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
		switch rr.Code {
		case http.StatusGatewayTimeout:
			got504.Add(1)
		case http.StatusServiceUnavailable:
			got503.Add(1)
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, rr.Code, rr.Body)
		}
	}

	if p := peak.Load(); p > maxInFlight {
		t.Fatalf("admission leak: %d concurrent computes with MaxInFlight=%d", p, maxInFlight)
	}
	if got503.Load() == 0 {
		t.Errorf("no request was shed: 504s=%d 503s=%d (the limiter leaked capacity back)", got504.Load(), got503.Load())
	}
	if got504.Load() == 0 {
		t.Errorf("no request timed out; the fixture did not exercise the slow path")
	}

	// Releasing the stuck simulations frees the slots: the server accepts
	// and completes new work.
	close(block)
	waitFor(t, func() bool { return s.Metrics().InFlight() == 0 })
	rr := doJSON(t, h, http.MethodPost, "/v1/predict",
		`{"a":{"benchmark":"sift","batch":999},"b":{"benchmark":"surf","batch":999}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("request after drain answered %d: %s", rr.Code, rr.Body)
	}
}

// TestPredictRejectsTrailingData pins the request-parsing fix: the decoder
// used to accept (and silently ignore) anything after the first JSON
// value, masking client bugs like concatenated bodies.
func TestPredictRejectsTrailingData(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	valid := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`
	cases := []struct {
		name     string
		body     string
		wantCode int
	}{
		{"clean body", valid, http.StatusOK},
		{"trailing whitespace ok", valid + " \n\t ", http.StatusOK},
		{"second JSON object", valid + `{"a":1}`, http.StatusBadRequest},
		{"trailing garbage word", valid + ` garbage`, http.StatusBadRequest},
		{"trailing bracket", valid + `]`, http.StatusBadRequest},
		{"trailing number", valid + ` 42`, http.StatusBadRequest},
		{"trailing null", valid + ` null`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, h, http.MethodPost, "/v1/predict", tc.body)
			if rr.Code != tc.wantCode {
				t.Fatalf("code %d, want %d; body %s", rr.Code, tc.wantCode, rr.Body)
			}
			if tc.wantCode == http.StatusBadRequest && !strings.Contains(rr.Body.String(), "trailing data") {
				t.Errorf("400 body %q does not mention trailing data", rr.Body)
			}
		})
	}
}

// TestCachedFieldOnlyForPublishedEntries pins the "cached" response-field
// fix: a request that joined an in-progress first computation waited out a
// full simulation and must not report cached=true; only requests answered
// by a completed entry may.
func TestCachedFieldOnlyForPublishedEntries(t *testing.T) {
	s := newTestServer(t, nil)
	width := s.cfg.Model.NumFeatures()
	firstEntered := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64
	var entryOnce sync.Once
	s.cache.compute = func(bag []dataset.Member) ([]float64, float64, error) {
		computes.Add(1)
		entryOnce.Do(func() { close(firstEntered) })
		<-release
		x := make([]float64, width)
		for i := range x {
			x[i] = 0.5
		}
		return x, 0.25, nil
	}
	h := s.Handler()
	body := `{"a":{"benchmark":"sift","batch":20},"b":{"benchmark":"surf","batch":20}}`

	cachedOf := func(rr fmt.Stringer, raw []byte) bool {
		t.Helper()
		var resp PredictResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("bad response %s: %v", rr, err)
		}
		if len(resp.Results) != 1 {
			t.Fatalf("%d results", len(resp.Results))
		}
		return resp.Results[0].Cached
	}

	type result struct {
		code   int
		cached bool
	}
	results := make(chan result, 2)
	// First request starts the computation…
	go func() {
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
		results <- result{rr.Code, cachedOf(rr.Body, rr.Body.Bytes())}
	}()
	<-firstEntered
	// …second request joins the in-flight singleflight slot: it waits out
	// the full simulation, so it must NOT claim "cached".
	go func() {
		rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
		results <- result{rr.Code, cachedOf(rr.Body, rr.Body.Bytes())}
	}()
	// Let the waiter actually attach before releasing (best effort: the
	// singleflight makes attach-after-release equivalent to a hit, which
	// would fail the assertion below only spuriously — so poll the cache
	// for the in-flight entry first).
	waitFor(t, func() bool { return s.cache.Len() == 1 })
	time.Sleep(10 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d answered %d", i, r.code)
		}
		if r.cached {
			t.Errorf("request %d reported cached=true; neither the computing request nor the waiter hit a published entry", i)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}

	// A third request now hits the published entry: cached=true.
	rr := doJSON(t, h, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("third request answered %d", rr.Code)
	}
	if !cachedOf(rr.Body, rr.Body.Bytes()) {
		t.Error("request against the published entry did not report cached=true")
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("published entry recomputed (computes=%d)", n)
	}
}

// TestFeatureCacheStaysBounded drives a randomized long-tail bag workload
// through a tightly bounded cache and asserts the resident bytes never
// exceed the configured budget while evictions occur — the regression test
// for the formerly unbounded entries map (fatal at k=8's combinatorial
// keyspace).
func TestFeatureCacheStaysBounded(t *testing.T) {
	const budget = 32 << 10 // 32 KiB: a few hundred entries at pair width
	var computes atomic.Int64
	c := newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
		computes.Add(1)
		x := make([]float64, 21)
		for i := range x {
			x[i] = float64(bag[0].Batch) + float64(i)
		}
		return x, 0.5, nil
	}, true, budget)

	rng := rand.New(rand.NewSource(7))
	benchmarks := []string{"sift", "surf", "orb", "knn", "hog", "fast", "mog", "gmm", "svm"}
	const requests = 5000
	for i := 0; i < requests; i++ {
		// Long tail: mostly a small hot set, with a fat tail of unique
		// bags (zipf-ish via exponentiated uniform batch draws).
		var batch int
		if rng.Float64() < 0.3 {
			batch = 20 * (1 + rng.Intn(3)) // hot set
		} else {
			batch = 1 + rng.Intn(1<<16) // long tail
		}
		bag := []dataset.Member{
			{Benchmark: benchmarks[rng.Intn(len(benchmarks))], Batch: batch},
			{Benchmark: benchmarks[rng.Intn(len(benchmarks))], Batch: 20},
		}
		if _, _, _, err := c.get(bag); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("request %d: resident %d bytes exceeds the %d budget", i, st.Bytes, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d long-tail requests against a %d-byte budget (stats %+v)", requests, budget, st)
	}
	if st.Bytes > budget {
		t.Fatalf("final resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Hits == 0 {
		t.Error("hot set never hit; workload generator is broken")
	}
	t.Logf("bounded cache: %d computes, %d hits, %d evictions, %d resident bytes (budget %d)",
		computes.Load(), st.Hits, st.Evictions, st.Bytes, budget)
}

// TestMetricsExposeFeatureCacheEvictions wires a tiny-budget server
// through the real handler and asserts the eviction counter surfaces on
// /metrics under the canonical name.
func TestMetricsExposeFeatureCacheEvictions(t *testing.T) {
	s := newTestServer(t, nil)
	// Swap in a 2 KiB cache so a handful of distinct bags forces eviction.
	s.cache = newStubFeatureCache(func(bag []dataset.Member) ([]float64, float64, error) {
		return make([]float64, 21), 0.5, nil
	}, true, 2<<10)
	s.metrics.SetFeatureCacheSource(s.cache.Stats)
	h := s.Handler()

	for i := 0; i < 50; i++ {
		body := fmt.Sprintf(`{"a":{"benchmark":"sift","batch":%d},"b":{"benchmark":"surf","batch":%d}}`, i+1, i+1)
		if rr := doJSON(t, h, http.MethodPost, "/v1/predict", body); rr.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rr.Code, rr.Body)
		}
	}
	if ev := s.cache.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions despite the tiny budget")
	}
	rr := doJSON(t, h, http.MethodGet, "/metrics", "")
	body := rr.Body.String()
	for _, want := range []string{
		"mapc_feature_cache_evictions_total",
		"mapc_feature_cache_bytes",
		"mapc_feature_cache_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "mapc_feature_cache_evictions_total 0\n") {
		t.Error("/metrics reports zero evictions despite forced churn")
	}
}
