package vision

import (
	"mapc/internal/trace"
)

// FaceDet implements Viola-Jones-style face detection: a cascade of stages
// of Haar-like rectangle features evaluated over an integral image with a
// sliding window at multiple scales. Windows must pass every stage to be
// reported; early stages reject most windows cheaply, which produces the
// branchy, integral-image-gather profile characteristic of the benchmark.
type FaceDet struct {
	BaseWindow int     // detector window side at scale 1
	ScaleStep  float64 // multiplicative window growth per scale
	Scales     int     // number of scales scanned
	Stride     int     // window step in pixels
	cascade    []haarStage
}

// haarFeature is a two- or three-rectangle contrast feature inside the unit
// detector window; coordinates are fractions of the window size.
type haarFeature struct {
	// rects are (x, y, w, h, weight) in window-relative units.
	rects  [][5]float64
	thresh float64
}

// haarStage is one cascade stage: a weighted vote of features against a
// stage threshold.
type haarStage struct {
	features []haarFeature
	thresh   float64
}

// NewFaceDet returns a 4-stage cascade tuned for the synthetic face scenes.
func NewFaceDet() *FaceDet {
	f := &FaceDet{BaseWindow: 20, ScaleStep: 1.25, Scales: 4, Stride: 3}
	// Hand-built stages mirroring the classic frontal-face cascade
	// structure: eyes darker than forehead/cheeks, mouth band darker
	// than chin, bridge brighter than eyes. Stage sizes grow (2, 4, 6,
	// 10 features) so rejection cost is front-loaded, as in OpenCV's
	// trained cascades.
	eyeBand := haarFeature{rects: [][5]float64{
		{0.1, 0.2, 0.8, 0.2, -1}, // eye band (dark)
		{0.1, 0.0, 0.8, 0.2, 1},  // forehead (bright)
	}, thresh: 2}
	mouth := haarFeature{rects: [][5]float64{
		{0.25, 0.7, 0.5, 0.15, -1}, // mouth (dark)
		{0.25, 0.55, 0.5, 0.15, 1}, // upper lip area (bright)
	}, thresh: 1}
	bridge := haarFeature{rects: [][5]float64{
		{0.4, 0.2, 0.2, 0.25, 1},   // nose bridge (bright)
		{0.1, 0.2, 0.25, 0.25, -1}, // left eye
	}, thresh: 1.5}
	cheeks := haarFeature{rects: [][5]float64{
		{0.1, 0.45, 0.8, 0.2, 1}, // cheeks (bright)
		{0.1, 0.2, 0.8, 0.2, -1}, // eye band
	}, thresh: 2}
	f.cascade = []haarStage{
		{features: []haarFeature{eyeBand, mouth}, thresh: 1.0},
		{features: []haarFeature{eyeBand, mouth, bridge, cheeks}, thresh: 2.0},
		{features: []haarFeature{eyeBand, mouth, bridge, cheeks, eyeBand, mouth}, thresh: 3.0},
		{features: []haarFeature{eyeBand, bridge, mouth, cheeks, eyeBand, bridge, mouth, cheeks, eyeBand, mouth}, thresh: 5.0},
	}
	return f
}

// Name implements Benchmark.
func (f *FaceDet) Name() string { return "facedet" }

// Scene implements Benchmark.
func (f *FaceDet) Scene() SceneKind { return SceneFaces }

// Detection is one accepted window.
type Detection struct {
	X, Y, Size int
	Score      float64
}

func (f *FaceDet) run(images []*Image, rec *trace.Recorder) (map[string]float64, error) {
	var total int
	for _, im := range images {
		total += len(f.Detect(im, rec))
	}
	return map[string]float64{
		"detections": float64(total) / float64(len(images)),
	}, nil
}

// Detect runs the cascade over all scales and window positions.
func (f *FaceDet) Detect(im *Image, rec *trace.Recorder) []Detection {
	rec.BeginPhase("facedet-integral", im.Bytes()*2, trace.PhaseOpts{
		Pattern:     trace.Sequential,
		Reuse:       0.3,
		Parallelism: im.H,
		VectorWidth: 1,
	})
	it := NewIntegral(im, rec)
	rec.EndPhase()

	var out []Detection
	var windows, featureEvals, rectLookups uint64
	rec.BeginPhase("facedet-cascade", im.Bytes()*2, trace.PhaseOpts{
		Pattern:     trace.Windowed,
		Reuse:       0.6,
		Parallelism: (im.W / f.Stride) * (im.H / f.Stride) * f.Scales,
		VectorWidth: 1,
	})
	size := float64(f.BaseWindow)
	for s := 0; s < f.Scales; s++ {
		wsize := int(size)
		if wsize >= im.W || wsize >= im.H {
			break
		}
		for y := 0; y+wsize < im.H; y += f.Stride {
			for x := 0; x+wsize < im.W; x += f.Stride {
				windows++
				score, evals, rects, ok := f.evalWindow(it, x, y, wsize)
				featureEvals += evals
				rectLookups += rects
				if ok {
					out = append(out, Detection{X: x, Y: y, Size: wsize, Score: score})
				}
			}
		}
		size *= f.ScaleStep
	}
	// Cascade cost: every rectangle lookup is a 4-corner integral-image
	// gather plus weighting; stage logic is compare/branch heavy.
	CountBoxSum(rec, rectLookups)
	rec.FP(featureEvals * 3)
	rec.ALU(featureEvals*2 + windows*4)
	rec.Control(featureEvals*2 + windows*2)
	rec.Shift(windows * 2)
	rec.EndPhase()
	return out
}

// evalWindow runs the cascade on one window, returning the summed stage
// score, the number of features and rectangles evaluated, and acceptance.
func (f *FaceDet) evalWindow(it *Integral, x, y, wsize int) (score float64, featureEvals, rectLookups uint64, ok bool) {
	ws := float64(wsize)
	area := ws * ws
	// Normalize contrast by the window mean so bright scenes don't pass
	// trivially.
	mean := it.BoxSum(x, y, x+wsize, y+wsize) / area
	rectLookups++
	if mean < 1e-9 {
		return 0, 1, rectLookups, false
	}
	for _, stage := range f.cascade {
		var stageSum float64
		for _, feat := range stage.features {
			var v float64
			for _, r := range feat.rects {
				x0 := x + int(r[0]*ws)
				y0 := y + int(r[1]*ws)
				x1 := x0 + maxInt(1, int(r[2]*ws))
				y1 := y0 + maxInt(1, int(r[3]*ws))
				if x1 > it.W {
					x1 = it.W
				}
				if y1 > it.H {
					y1 = it.H
				}
				v += r[4] * it.BoxSum(x0, y0, x1, y1)
				rectLookups++
			}
			featureEvals++
			// Feature response normalized by window area and mean.
			if v/(area*mean)*100 > feat.thresh {
				stageSum++
			}
		}
		score += stageSum
		if stageSum < stage.thresh {
			return score, featureEvals, rectLookups, false
		}
	}
	return score, featureEvals, rectLookups, true
}
