package vision

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im := SynthesizeImage(SceneTextured, 48, 36, 5)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("round trip size %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if math.Abs(got.Pix[i]-im.Pix[i]) > 0.51 { // 8-bit quantization
			t.Fatalf("pixel %d: %v -> %v", i, im.Pix[i], got.Pix[i])
		}
	}
}

func TestReadPGMASCII(t *testing.T) {
	src := "P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 3 || im.H != 2 {
		t.Fatalf("size %dx%d", im.W, im.H)
	}
	if im.At(1, 0) != 128 || im.At(2, 1) != 30 {
		t.Fatalf("pixels %v", im.Pix)
	}
}

func TestReadPGM16Bit(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("P5\n2 1\n65535\n")
	buf.Write([]byte{0xFF, 0xFF, 0x00, 0x00}) // 65535, 0
	im, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.At(0, 0)-255) > 1e-9 || im.At(1, 0) != 0 {
		t.Fatalf("16-bit pixels %v", im.Pix)
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := []string{
		"",
		"P7\n2 2\n255\n",
		"P5\n-3 2\n255\n",
		"P5\n2 2\n0\n",
		"P5\n2 2\n255\nX",       // truncated pixel data
		"P2\n2 2\n255\n1 2 3\n", // not enough ASCII pixels
	}
	for i, c := range cases {
		if _, err := ReadPGM(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWritePGMClamps(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, -50)
	im.Set(1, 0, 999)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 0 || got.At(1, 0) != 255 {
		t.Fatalf("clamped pixels %v", got.Pix)
	}
	if err := WritePGM(&buf, nil); err == nil {
		t.Error("nil image encoded")
	}
}

func TestRunOnImages(t *testing.T) {
	images := []*Image{
		SynthesizeImage(SceneTextured, 64, 64, 1),
		SynthesizeImage(SceneTextured, 64, 64, 2),
	}
	res, err := RunOnImages(NewFAST(), images, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload == nil {
		t.Fatal("no workload recorded")
	}
	if res.Workload.BatchSize != 2 {
		t.Errorf("batch size %d", res.Workload.BatchSize)
	}
	if res.Workload.TransferBytes != images[0].Bytes()+images[1].Bytes() {
		t.Errorf("transfer bytes %d", res.Workload.TransferBytes)
	}
	// Uninstrumented mode.
	res2, err := RunOnImages(NewFAST(), images, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Workload != nil {
		t.Error("workload recorded without instrumentation")
	}
	if len(res2.Summary) == 0 {
		t.Error("no summary")
	}
}

func TestRunOnImagesValidation(t *testing.T) {
	if _, err := RunOnImages(NewFAST(), nil, true); err == nil {
		t.Error("empty image list accepted")
	}
	if _, err := RunOnImages(NewFAST(), []*Image{NewImage(4, 4)}, true); err == nil {
		t.Error("tiny image accepted")
	}
}
