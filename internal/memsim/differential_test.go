package memsim

import (
	"testing"

	"mapc/internal/trace"
	"mapc/internal/xrand"
)

// Differential tests: drive millions of randomized accesses through the
// optimized structures and their retained pre-optimization references
// (reference_test.go) in lockstep, failing on the first diverging hit/miss
// outcome. Because a single wrong victim choice immediately skews every
// subsequent hit/miss result on a shared structure, per-access outcome
// equality over millions of eviction-heavy references is a proof of
// identical replacement sequences; the final full-state comparison makes
// the victim identity explicit entry by entry.

// tlbStateEqual asserts the fast TLB's full entry state matches the
// reference's: same valid slots, same (page, source) contents, and a
// recency order consistent with the reference's logical clocks.
func tlbStateEqual(t *testing.T, step int, fast *TLB, ref *refTLB) {
	t.Helper()
	for i := 0; i < fast.entries; i++ {
		valid := i < fast.nextFree
		if valid != ref.valid[i] {
			t.Fatalf("step %d: slot %d valid=%v, reference %v", step, i, valid, ref.valid[i])
		}
		if !valid {
			continue
		}
		page := fast.slots[i].key / fast.nSources
		src := int(fast.slots[i].key % fast.nSources)
		if page != ref.pages[i] || src != ref.srcs[i] {
			t.Fatalf("step %d: slot %d holds (page=%d src=%d), reference (page=%d src=%d)",
				step, i, page, src, ref.pages[i], ref.srcs[i])
		}
	}
	if fast.index.len() != fast.nextFree {
		t.Fatalf("step %d: index has %d keys, %d valid slots", step, fast.index.len(), fast.nextFree)
	}
	// Walking LRU -> MRU must visit strictly increasing reference clocks.
	last := uint64(0)
	seen := 0
	for i := fast.head; i >= 0; i = fast.slots[i].next {
		if ref.lru[i] <= last {
			t.Fatalf("step %d: recency list out of order at slot %d (clock %d after %d)",
				step, i, ref.lru[i], last)
		}
		last = ref.lru[i]
		seen++
	}
	if seen != fast.nextFree {
		t.Fatalf("step %d: recency list has %d slots, want %d", step, seen, fast.nextFree)
	}
}

func TestTLBDifferential(t *testing.T) {
	configs := []struct {
		name             string
		entries, sources int
		pages            uint64 // page pool; > entries forces evictions
		accesses         int
	}{
		{"small-evict-heavy", 48, 3, 160, 400_000},
		{"t4-geometry", 512, 4, 1400, 500_000},
		{"single-source", 64, 1, 200, 300_000},
	}
	totalAccesses := 0
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			fast, err := NewTLB(cc.entries, cc.sources)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefTLB(cc.entries, cc.sources)
			rng := xrand.New(uint64(cc.entries)*7919 + uint64(cc.sources))
			for i := 0; i < cc.accesses; i++ {
				switch r := rng.Uint64() % 10000; {
				case r == 0:
					// Rare full reset (statistics included).
					fast.Reset()
					ref.Reset()
				case r < 12:
					// MPS context-boundary flush.
					fast.Flush()
					ref.Flush()
				}
				src := rng.Intn(cc.sources)
				addr := (rng.Uint64()%cc.pages)*PageSize + rng.Uint64()%PageSize
				fh := fast.Access(src, addr)
				rh := ref.Access(src, addr)
				if fh != rh {
					t.Fatalf("access %d (src=%d addr=%#x): fast=%v reference=%v", i, src, addr, fh, rh)
				}
				if i%100_000 == 0 {
					tlbStateEqual(t, i, fast, ref)
				}
			}
			tlbStateEqual(t, cc.accesses, fast, ref)
			for s := 0; s < cc.sources; s++ {
				if fast.Stats(s) != ref.Stats(s) {
					t.Errorf("source %d stats: fast %+v, reference %+v", s, fast.Stats(s), ref.Stats(s))
				}
			}
			if fast.Flushes() != ref.Flushes() {
				t.Errorf("flushes: fast %d, reference %d", fast.Flushes(), ref.Flushes())
			}
		})
		totalAccesses += cc.accesses
	}
	if totalAccesses < 1_000_000 {
		t.Fatalf("differential coverage shrank to %d accesses; keep it >= 1M", totalAccesses)
	}
}

// cacheStateEqual asserts every way of every set matches the reference
// exactly: tag, validity, owning source, and recency clock. Equal lru
// clocks entry-by-entry mean both implementations chose the same victim on
// every installation since the last reset.
func cacheStateEqual(t *testing.T, step int, fast *Cache, ref *refCache) {
	t.Helper()
	if fast.clock != ref.clock {
		t.Fatalf("step %d: clock fast=%d reference=%d", step, fast.clock, ref.clock)
	}
	for i := range fast.lines {
		l := &fast.lines[i]
		if l.valid != ref.valid[i] || (l.valid && (l.tag != ref.tags[i] || int(l.src) != ref.src[i] || l.lru != ref.lru[i])) {
			t.Fatalf("step %d: line %d fast={tag:%#x src:%d lru:%d valid:%v} reference={tag:%#x src:%d lru:%d valid:%v}",
				step, i, l.tag, l.src, l.lru, l.valid, ref.tags[i], ref.src[i], ref.lru[i], ref.valid[i])
		}
	}
}

func TestCacheDifferential(t *testing.T) {
	configs := []struct {
		name     string
		bytes    int64
		ways     int
		sources  int
		lines    uint64 // line pool; > capacity forces evictions
		accesses int
	}{
		{"llc-like", 64 << 10, 11, 2, 3000, 400_000},
		{"l2-like-4src", 128 << 10, 16, 4, 5000, 400_000},
		{"direct-pressure", 8 << 10, 2, 3, 400, 300_000},
	}
	totalAccesses := 0
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			fast, err := NewCache("diff", cc.bytes, cc.ways, cc.sources)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefCache(cc.bytes, cc.ways, cc.sources)
			if fast.Sets() != ref.sets {
				t.Fatalf("geometry mismatch: fast %d sets, reference %d", fast.Sets(), ref.sets)
			}
			rng := xrand.New(uint64(cc.bytes) + uint64(cc.ways))
			for i := 0; i < cc.accesses; i++ {
				src := rng.Intn(cc.sources)
				addr := (rng.Uint64()%cc.lines)*LineSize + rng.Uint64()%LineSize
				switch r := rng.Uint64() % 10000; {
				case r == 0:
					fast.Reset()
					ref.Reset()
				case r < 400:
					// Prefetch-fill path: mutates state, returns nothing.
					fast.Install(src, addr)
					ref.Install(src, addr)
					continue
				}
				fh := fast.Access(src, addr)
				rh := ref.Access(src, addr)
				if fh != rh {
					t.Fatalf("access %d (src=%d addr=%#x): fast=%v reference=%v", i, src, addr, fh, rh)
				}
				if i%100_000 == 0 {
					cacheStateEqual(t, i, fast, ref)
				}
			}
			cacheStateEqual(t, cc.accesses, fast, ref)
			for s := 0; s < cc.sources; s++ {
				if fast.Stats(s) != ref.Stats(s) {
					t.Errorf("source %d stats: fast %+v, reference %+v", s, fast.Stats(s), ref.Stats(s))
				}
				if fast.CrossEvictions(s) != ref.CrossEvictions(s) {
					t.Errorf("source %d cross-evictions: fast %d, reference %d",
						s, fast.CrossEvictions(s), ref.CrossEvictions(s))
				}
			}
		})
		totalAccesses += cc.accesses
	}
	if totalAccesses < 1_000_000 {
		t.Fatalf("differential coverage shrank to %d accesses; keep it >= 1M", totalAccesses)
	}
}

// TestStreamFillMatchesNext pins Fill's contract: batched generation draws
// exactly the same reference sequence as repeated Next calls.
func TestStreamFillMatchesNext(t *testing.T) {
	for _, pat := range []trace.Pattern{trace.Sequential, trace.Strided, trace.Windowed, trace.Random} {
		p := benchPhase(pat)
		a, err := NewStream(p, 1<<40, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewStream(p, 1<<40, 99)
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]uint64, 4096)
		a.Fill(batch)
		for i, want := range batch {
			if got := b.Next(); got != want {
				t.Fatalf("pattern %d ref %d: Fill=%#x Next=%#x", pat, i, want, got)
			}
		}
	}
}
