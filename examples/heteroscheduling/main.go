// Heteroscheduling: the workload the paper's introduction motivates — an
// edge server receiving offloaded vision jobs must decide which pending
// pairs to co-schedule on its GPU. This example trains the predictor, then
// uses it to rank all candidate pairings of a job queue by predicted bag
// makespan and picks the pairing plan with the lowest total predicted time.
package main

import (
	"fmt"
	"log"
	"sort"

	"mapc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heteroscheduling: ")

	corpus, err := mapc.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	predictor, err := mapc.Train(corpus, mapc.SchemeFull)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := mapc.NewGenerator(mapc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The pending job queue: six offloaded vision requests.
	queue := []mapc.Member{
		{Benchmark: "sift", Batch: 40},
		{Benchmark: "fast", Batch: 80},
		{Benchmark: "knn", Batch: 20},
		{Benchmark: "facedet", Batch: 40},
		{Benchmark: "surf", Batch: 20},
		{Benchmark: "hog", Batch: 80},
	}

	// Predict every pair's bag time.
	type pairing struct {
		i, j int
		pred float64
	}
	var pairs []pairing
	for i := 0; i < len(queue); i++ {
		for j := i + 1; j < len(queue); j++ {
			x, _, err := gen.FeaturesFor(queue[i], queue[j])
			if err != nil {
				log.Fatal(err)
			}
			p, err := predictor.PredictRaw(x)
			if err != nil {
				log.Fatal(err)
			}
			pairs = append(pairs, pairing{i, j, p})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].pred < pairs[b].pred })

	fmt.Println("candidate co-schedules, ranked by predicted GPU bag time:")
	for _, p := range pairs {
		fmt.Printf("  %-12v + %-12v -> %8.3f ms\n", queue[p.i], queue[p.j], p.pred*1e3)
	}

	// Greedy plan: repeatedly take the fastest pairing of unscheduled jobs.
	fmt.Println("\ngreedy pairing plan:")
	used := make([]bool, len(queue))
	var total float64
	for _, p := range pairs {
		if used[p.i] || used[p.j] {
			continue
		}
		used[p.i], used[p.j] = true, true
		total += p.pred

		// Validate the decision against the simulated ground truth.
		truth, err := gen.MeasurePoint(queue[p.i], queue[p.j])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %-12v with %-12v predicted %8.3f ms, simulated %8.3f ms\n",
			queue[p.i], queue[p.j], p.pred*1e3, truth.Y*1e3)
	}
	fmt.Printf("total predicted makespan of the plan: %.3f ms\n", total*1e3)
}
