// Package benchio is the shared schema and storage for serving-tier
// benchmark results (BENCH_serve.json): cmd/mapc-loadgen appends entries,
// scripts/benchjson gates CI on them, and the committed file documents the
// serving tier's measured latency/throughput/shed profile for the repo's
// reference machine.
//
// The file is a single JSON document — machine metadata plus an append-only
// entry list — replaced atomically on every append via internal/fsatomic,
// so a crashed or interrupted loadgen run never leaves a truncated file.
package benchio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"mapc/internal/fsatomic"
)

// ServeEntry is one recorded load-generation run against a replica or the
// router. Latencies cover successful (200) responses only, measured after
// the warmup window; shed rate is the fraction of sent requests answered
// 503 (admission control) over the same window.
type ServeEntry struct {
	Label       string  `json:"label"`
	Date        string  `json:"date"`     // RFC 3339, UTC
	Target      string  `json:"target"`   // "replica" or "router"
	Replicas    int     `json:"replicas"` // serving processes behind the target
	K           int     `json:"k"`        // bag size replayed
	QPS         float64 `json:"offered_qps"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"` // measured window, warmup excluded

	Requests     int64            `json:"requests"` // sent during the measured window
	StatusCounts map[string]int64 `json:"status_counts"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	ThroughputRPS     float64 `json:"throughput_rps"`          // 200s per second
	ThroughputPerCore float64 `json:"throughput_rps_per_core"` // ThroughputRPS / cores
	ShedRate          float64 `json:"shed_rate"`               // 503s / Requests

	// Degraded counts 200 responses answered from the brownout fast
	// fidelity tier (the X-Mapc-Degraded response header); DegradedRate is
	// Degraded / Requests. Absent for pre-brownout entries.
	Degraded     int64   `json:"degraded,omitempty"`
	DegradedRate float64 `json:"degraded_rate,omitempty"`
	// ErrorRate is the fraction of sent requests that failed hard:
	// transport errors (status 0) plus every 5xx except 503 — shedding is
	// deliberate backpressure and is gated separately via ShedRate.
	// Availability is its complement. Both are recomputable from
	// StatusCounts (see ComputedErrorRate), which is what benchjson gates
	// on, so entries recorded before these fields existed still gate
	// correctly.
	ErrorRate    float64 `json:"error_rate"`
	Availability float64 `json:"availability"`
}

// errorStatus reports whether a recorded status-count key counts as a hard
// failure: transport errors land under "0", and every 5xx except 503 (the
// admission-control shed signal) is a server-side failure.
func errorStatus(key string) bool {
	if key == "0" {
		return true
	}
	return len(key) == 3 && key[0] == '5' && key != "503"
}

// ComputedErrorRate derives the hard-failure rate from StatusCounts —
// the ground truth benchjson gates on, independent of whether the entry
// was recorded before the ErrorRate field existed. Client-side drops
// ("dropped") are not requests and are excluded from both numerator and
// denominator.
func (e *ServeEntry) ComputedErrorRate() float64 {
	var sent, failed int64
	for key, n := range e.StatusCounts {
		if key == "dropped" {
			continue
		}
		sent += n
		if errorStatus(key) {
			failed += n
		}
	}
	if sent == 0 {
		return 0
	}
	return float64(failed) / float64(sent)
}

// ComputedAvailability is 1 - ComputedErrorRate: the fraction of sent
// requests that got a deliberate answer (200s — degraded included — plus
// client-error rejections and 503 backpressure).
func (e *ServeEntry) ComputedAvailability() float64 {
	return 1 - e.ComputedErrorRate()
}

// ServeBench is the schema of BENCH_serve.json.
type ServeBench struct {
	Machine string       `json:"machine"`
	Cores   int          `json:"cores"`
	Entries []ServeEntry `json:"entries"`
}

// Load reads a ServeBench file. A missing file is not an error: it returns
// an empty document, ready to append to.
func Load(path string) (*ServeBench, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &ServeBench{}, nil
	}
	if err != nil {
		return nil, err
	}
	var sb ServeBench
	if err := json.Unmarshal(b, &sb); err != nil {
		return nil, fmt.Errorf("benchio: parsing %s: %w", path, err)
	}
	return &sb, nil
}

// Append adds entry to the file at path, creating it with the given
// machine/cores metadata when absent, and replaces the file atomically.
// Existing machine metadata wins over the arguments, matching benchjson's
// BENCH_baseline.json convention: the file describes one reference machine.
func Append(path, machine string, cores int, entry ServeEntry) error {
	sb, err := Load(path)
	if err != nil {
		return err
	}
	if sb.Machine == "" {
		sb.Machine = machine
	}
	if sb.Cores == 0 {
		sb.Cores = cores
	}
	sb.Entries = append(sb.Entries, entry)
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sb)
	})
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted ascending
// samples using linear interpolation between closest ranks — the same
// estimate for p50 whether n is odd or even, and a defined p999 even for
// small n. Returns NaN for an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles sorts samples in place and returns the p50, p99 and p999
// estimates in one pass. Returns NaNs for an empty slice.
func Quantiles(samples []float64) (p50, p99, p999 float64) {
	sort.Float64s(samples)
	return Quantile(samples, 0.50), Quantile(samples, 0.99), Quantile(samples, 0.999)
}
